// hdsky_proxy — a deterministic adversarial network in front of a
// hdsky_serve instance.
//
// Wraps service::FaultInjectingProxy as a standalone process so smoke
// tests (and curious humans) can put frame drops, truncations, spurious
// rate limits, and delays between any client and any server — including
// one backend of a federation, which is exactly how the CI federation
// smoke exercises degraded-backend behaviour.
//
//   hdsky_proxy --upstream 127.0.0.1:7447 --drop 0.05 --rate-limit 0.1
//
// Flags:
//   --upstream HOST:PORT  the real server to forward to (required)
//   --port P              TCP port; 0 picks an ephemeral one (default 0)
//   --bind ADDR           IPv4 bind address (default 127.0.0.1)
//   --seed S              fault-decision seed (default 1; deterministic)
//   --drop P              probability a frame is dropped        [0,1]
//   --truncate P          probability a frame is truncated      [0,1]
//   --rate-limit P        probability a Query is bounced BUSY   [0,1]
//   --delay P             probability a frame is delayed        [0,1]
//   --delay-ms MS         delay length for --delay (default 20)
//   --blackout-after N    deterministic kill/revive schedule: client
//                         queries with arrival index [N, N+M) (counted
//                         across connections, retries included) kill the
//                         connection as if the backend died; the proxy
//                         recovers afterwards. -1 disables (default)
//   --blackout-queries M  blackout window length for --blackout-after
//   --io-timeout-ms MS    per-connection I/O backstop (default 30000)
//
// Prints exactly one "listening on ADDR:PORT" line to stdout once ready
// (the same contract as hdsky_serve, so scripts parse both the same
// way), then proxies until SIGINT/SIGTERM, finally printing fault
// statistics to stderr.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/socket.h"
#include "service/fault_proxy.h"

namespace {

using namespace hdsky;

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

struct Args {
  std::string upstream;
  int64_t port = 0;
  std::string bind = "127.0.0.1";
  uint64_t seed = 1;
  double drop = 0.0;
  double truncate = 0.0;
  double rate_limit = 0.0;
  double delay = 0.0;
  int64_t delay_ms = 20;
  int64_t blackout_after = -1;
  int64_t blackout_queries = 0;
  int64_t io_timeout_ms = 30000;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hdsky_proxy --upstream HOST:PORT [options]\n"
      "  --port P            TCP port, 0 = ephemeral (default 0)\n"
      "  --bind ADDR         IPv4 bind address (default 127.0.0.1)\n"
      "  --seed S            fault-decision seed (default 1)\n"
      "  --drop P            frame drop probability [0,1]\n"
      "  --truncate P        frame truncation probability [0,1]\n"
      "  --rate-limit P      spurious BUSY probability [0,1]\n"
      "  --delay P           frame delay probability [0,1]\n"
      "  --delay-ms MS       delay length (default 20)\n"
      "  --blackout-after N  kill queries [N, N+M) then recover; -1 "
      "disables\n"
      "  --blackout-queries M\n"
      "                      blackout window length (default 0)\n"
      "  --io-timeout-ms MS  per-connection I/O backstop (default "
      "30000)\n");
}

/// Strict integer parse: the whole token must be a number in [min, max].
bool ParseInt(const std::string& s, int64_t min, int64_t max, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

/// Strict probability parse: a float in [0, 1].
bool ParseProb(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    auto int_flag = [&](int64_t min, int64_t max, int64_t* dst) {
      std::string value;
      if (!need_value(&value) || !ParseInt(value, min, max, dst)) {
        std::fprintf(stderr, "invalid value for %s\n", flag.c_str());
        return false;
      }
      return true;
    };
    auto prob_flag = [&](double* dst) {
      std::string value;
      if (!need_value(&value) || !ParseProb(value, dst)) {
        std::fprintf(stderr, "invalid probability for %s\n", flag.c_str());
        return false;
      }
      return true;
    };
    std::string value;
    if (flag == "--upstream" && need_value(&value)) {
      args->upstream = value;
    } else if (flag == "--port") {
      if (!int_flag(0, 65535, &args->port)) return false;
    } else if (flag == "--bind" && need_value(&value)) {
      args->bind = value;
    } else if (flag == "--seed") {
      int64_t seed;
      if (!int_flag(0, INT64_MAX, &seed)) return false;
      args->seed = static_cast<uint64_t>(seed);
    } else if (flag == "--drop") {
      if (!prob_flag(&args->drop)) return false;
    } else if (flag == "--truncate") {
      if (!prob_flag(&args->truncate)) return false;
    } else if (flag == "--rate-limit") {
      if (!prob_flag(&args->rate_limit)) return false;
    } else if (flag == "--delay") {
      if (!prob_flag(&args->delay)) return false;
    } else if (flag == "--delay-ms") {
      if (!int_flag(0, 60000, &args->delay_ms)) return false;
    } else if (flag == "--blackout-after") {
      if (!int_flag(-1, INT64_MAX, &args->blackout_after)) return false;
    } else if (flag == "--blackout-queries") {
      if (!int_flag(0, INT64_MAX, &args->blackout_queries)) return false;
    } else if (flag == "--io-timeout-ms") {
      if (!int_flag(1, INT64_MAX, &args->io_timeout_ms)) return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                   flag.c_str());
      return false;
    }
  }
  if (args->upstream.empty()) {
    std::fprintf(stderr, "--upstream is required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 64;
  }

  std::string upstream_host;
  uint16_t upstream_port = 0;
  const common::Status parsed =
      net::ParseHostPort(args.upstream, &upstream_host, &upstream_port);
  if (!parsed.ok()) {
    std::fprintf(stderr, "upstream: %s\n", parsed.ToString().c_str());
    return 64;
  }

  service::FaultInjectingProxy::Policy policy;
  policy.seed = args.seed;
  policy.drop_prob = args.drop;
  policy.truncate_prob = args.truncate;
  policy.rate_limit_prob = args.rate_limit;
  policy.delay_prob = args.delay;
  policy.delay_ms = static_cast<int>(args.delay_ms);
  policy.blackout_after_queries = args.blackout_after;
  policy.blackout_queries = args.blackout_queries;

  service::FaultInjectingProxy::Options options;
  options.bind_address = args.bind;
  options.port = static_cast<uint16_t>(args.port);
  options.io_timeout_ms = static_cast<int>(args.io_timeout_ms);

  auto proxy_result = service::FaultInjectingProxy::Start(
      upstream_host, upstream_port, policy, options);
  if (!proxy_result.ok()) {
    std::fprintf(stderr, "proxy: %s\n",
                 proxy_result.status().ToString().c_str());
    return 1;
  }
  auto proxy = std::move(proxy_result).value();

  std::fprintf(stderr,
               "upstream: %s (drop %.3f, truncate %.3f, rate-limit %.3f, "
               "delay %.3f x %lld ms, seed %llu)\n",
               args.upstream.c_str(), args.drop, args.truncate,
               args.rate_limit, args.delay,
               static_cast<long long>(args.delay_ms),
               static_cast<unsigned long long>(args.seed));
  std::printf("listening on %s:%u\n", args.bind.c_str(), proxy->port());
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  proxy->Stop();
  const service::FaultInjectingProxy::Stats stats = proxy->stats();
  std::fprintf(stderr,
               "proxied : %lld connections, %lld frames forwarded "
               "(%lld dropped, %lld truncated, %lld rate-limited, %lld "
               "delayed, %lld blacked out)\n",
               static_cast<long long>(stats.connections),
               static_cast<long long>(stats.frames_forwarded),
               static_cast<long long>(stats.frames_dropped),
               static_cast<long long>(stats.frames_truncated),
               static_cast<long long>(stats.rate_limits_injected),
               static_cast<long long>(stats.delays_injected),
               static_cast<long long>(stats.queries_blacked_out));
  return 0;
}
