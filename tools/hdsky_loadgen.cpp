// hdsky_loadgen — drive thousands of concurrent pipelined discovery
// sessions against the event-driven hidden-database service and report
// latency percentiles plus the cross-session queries-deduped ratio.
//
// By default it is self-contained: it generates a synthetic dataset,
// starts an in-process EventDrivenServer on an ephemeral loopback port,
// and unleashes the LoadDriver on it. With --connect it targets an
// already-running server instead (the server must answer kStatsRequest
// for the dedup ratio to be reported).
//
//   hdsky_loadgen --sessions 1000 --queries 32 --json BENCH_service.json
//   hdsky_loadgen --connect 127.0.0.1:7447 --sessions 200
//
// Flags:
//   --sessions N        concurrent sessions (default 1000)
//   --queries Q         queries per session (default 32)
//   --pipeline D        pipelined queries per connection (default 8)
//   --loops L           client event loops (0 = auto)
//   --server-loops L    in-process server event loops (0 = auto)
//   --workers W         in-process server backend workers (0 = auto)
//   --n N               synthetic dataset size (default 20000)
//   --m M               synthetic attributes (default 3)
//   --k K               interface page size (default 10)
//   --no-shared-cache   disable the cross-session cache (dedup -> 0)
//   --max-pending P     server admission limit (default 1024)
//   --timeout-ms T      whole-run deadline (default 120000)
//   --seed S            workload seed (default 42)
//   --connect HOST:PORT external server instead of in-process
//   --probe             pre-flight a single RemoteHiddenDatabase client
//                       before the load and report its wire counters
//                       (handshake bytes, retries, backoff) to stderr
//   --json PATH         write a google-benchmark-shaped JSON report
//
// $HDSKY_SCALE (a float, default 1) multiplies --sessions and --queries,
// the same knob the bench suite uses, so CI can run a reduced-scale
// smoke of the exact same binary.
//
// Exit status: 0 when the run completed (all sessions served inside the
// deadline), 1 otherwise — CI treats a nonzero exit as a load failure.

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "net/socket.h"
#include "service/event_server.h"
#include "service/load_driver.h"
#include "service/remote_database.h"

namespace {

using namespace hdsky;

struct Args {
  int64_t sessions = 1000;
  int64_t queries = 32;
  int64_t pipeline = 8;
  int64_t loops = 0;
  int64_t server_loops = 0;
  int64_t workers = 0;
  int64_t n = 20000;
  int64_t m = 3;
  int64_t k = 10;
  bool shared_cache = true;
  int64_t max_pending = 1024;
  int64_t timeout_ms = 120000;
  int64_t seed = 42;
  std::string connect;
  bool probe = false;
  std::string json;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hdsky_loadgen [options]\n"
      "  --sessions N        concurrent sessions (default 1000)\n"
      "  --queries Q         queries per session (default 32)\n"
      "  --pipeline D        pipelined queries per connection (default 8)\n"
      "  --loops L           client event loops (0 = auto)\n"
      "  --server-loops L    server event loops (0 = auto)\n"
      "  --workers W         server backend workers (0 = auto)\n"
      "  --n N               synthetic dataset size (default 20000)\n"
      "  --m M               synthetic attributes (default 3)\n"
      "  --k K               interface page size (default 10)\n"
      "  --no-shared-cache   disable the cross-session cache\n"
      "  --max-pending P     server admission limit (default 1024)\n"
      "  --timeout-ms T      whole-run deadline (default 120000)\n"
      "  --seed S            workload seed (default 42)\n"
      "  --connect HOST:PORT target an external server\n"
      "  --probe             pre-flight one client, report wire counters\n"
      "  --json PATH         write a google-benchmark-shaped JSON report\n");
}

bool ParseInt(const std::string& s, int64_t min, int64_t max, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    auto int_flag = [&](int64_t min, int64_t max, int64_t* dst) {
      std::string value;
      if (!need_value(&value) || !ParseInt(value, min, max, dst)) {
        std::fprintf(stderr, "invalid value for %s\n", flag.c_str());
        return false;
      }
      return true;
    };
    std::string value;
    if (flag == "--sessions") {
      if (!int_flag(1, 1000000, &args->sessions)) return false;
    } else if (flag == "--queries") {
      if (!int_flag(1, 1000000, &args->queries)) return false;
    } else if (flag == "--pipeline") {
      if (!int_flag(1, 4096, &args->pipeline)) return false;
    } else if (flag == "--loops") {
      if (!int_flag(0, 256, &args->loops)) return false;
    } else if (flag == "--server-loops") {
      if (!int_flag(0, 256, &args->server_loops)) return false;
    } else if (flag == "--workers") {
      if (!int_flag(0, 256, &args->workers)) return false;
    } else if (flag == "--n") {
      if (!int_flag(1, INT64_MAX, &args->n)) return false;
    } else if (flag == "--m") {
      if (!int_flag(2, 64, &args->m)) return false;
    } else if (flag == "--k") {
      if (!int_flag(1, 1000000, &args->k)) return false;
    } else if (flag == "--no-shared-cache") {
      args->shared_cache = false;
    } else if (flag == "--max-pending") {
      if (!int_flag(0, 1000000, &args->max_pending)) return false;
    } else if (flag == "--timeout-ms") {
      if (!int_flag(1, INT64_MAX, &args->timeout_ms)) return false;
    } else if (flag == "--seed") {
      if (!int_flag(0, INT64_MAX, &args->seed)) return false;
    } else if (flag == "--connect" && need_value(&value)) {
      args->connect = value;
    } else if (flag == "--probe") {
      args->probe = true;
    } else if (flag == "--json" && need_value(&value)) {
      args->json = value;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                   flag.c_str());
      return false;
    }
  }
  return true;
}

/// $HDSKY_SCALE scales session/query counts with a floor of 1, mirroring
/// bench::Scale without dragging google-benchmark into a tool.
double ScaleFactor() {
  const char* env = std::getenv("HDSKY_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v <= 0.0) return 1.0;
  return v;
}

int64_t Scaled(int64_t n, double factor) {
  const int64_t s = static_cast<int64_t>(static_cast<double>(n) * factor);
  return s < 1 ? 1 : s;
}

void WriteJson(const std::string& path, const Args& args,
               const service::LoadReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  // google-benchmark report shape: counters are flat keys on each
  // benchmark entry, which is what scripts/compare_bench.py consumes.
  std::fprintf(f,
               "{\n"
               "  \"context\": {\n"
               "    \"executable\": \"hdsky_loadgen\",\n"
               "    \"caches\": []\n"
               "  },\n"
               "  \"benchmarks\": [\n"
               "    {\n"
               "      \"name\": \"loadgen/sessions:%" PRId64
               "/queries:%" PRId64 "\",\n"
               "      \"run_name\": \"loadgen/sessions:%" PRId64
               "/queries:%" PRId64 "\",\n"
               "      \"run_type\": \"iteration\",\n"
               "      \"repetitions\": 1,\n"
               "      \"repetition_index\": 0,\n"
               "      \"threads\": 1,\n"
               "      \"iterations\": 1,\n"
               "      \"real_time\": %.3f,\n"
               "      \"cpu_time\": %.3f,\n"
               "      \"time_unit\": \"ms\",\n"
               "      \"sessions\": %d,\n"
               "      \"sessions_failed\": %d,\n"
               "      \"queries_completed\": %" PRId64 ",\n"
               "      \"busy_retries\": %" PRId64 ",\n"
               "      \"qps\": %.1f,\n"
               "      \"p50_us\": %.1f,\n"
               "      \"p99_us\": %.1f,\n"
               "      \"mean_us\": %.1f,\n"
               "      \"backend_executions\": %" PRId64 ",\n"
               "      \"dedup_ratio\": %.6f\n"
               "    }\n"
               "  ]\n"
               "}\n",
               args.sessions, args.queries, args.sessions, args.queries,
               report.elapsed_ms, report.elapsed_ms,
               report.sessions_completed, report.sessions_failed,
               report.queries_completed, report.busy_retries, report.qps,
               report.latency_p50_us, report.latency_p99_us,
               report.latency_mean_us,
               report.server_stats_valid ? report.server.backend_executions
                                         : -1,
               report.dedup_ratio);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 64;
  }
  const double scale = ScaleFactor();
  args.sessions = Scaled(args.sessions, scale);
  args.queries = Scaled(args.queries, scale);

  // In-process server unless --connect points elsewhere.
  std::unique_ptr<interface::TopKInterface> iface;
  std::unique_ptr<service::EventDrivenServer> server;
  data::Table table;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (args.connect.empty()) {
    dataset::SyntheticOptions synth;
    synth.num_tuples = args.n;
    synth.num_attributes = static_cast<int>(args.m);
    synth.seed = static_cast<uint64_t>(args.seed);
    auto table_result = dataset::GenerateSynthetic(synth);
    if (!table_result.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   table_result.status().ToString().c_str());
      return 1;
    }
    table = std::move(table_result).value();
    interface::TopKOptions topk;
    topk.k = static_cast<int>(args.k);
    auto iface_result = interface::TopKInterface::Create(
        &table, interface::MakeSumRanking(), topk);
    if (!iface_result.ok()) {
      std::fprintf(stderr, "interface: %s\n",
                   iface_result.status().ToString().c_str());
      return 1;
    }
    iface = std::move(iface_result).value();

    service::EventDrivenServer::Options opts;
    opts.num_loops = static_cast<int>(args.server_loops);
    opts.num_workers = static_cast<int>(args.workers);
    opts.max_connections = static_cast<int>(args.sessions) + 16;
    opts.shared_cache = args.shared_cache;
    opts.max_pending_queries = static_cast<int>(args.max_pending);
    auto server_result =
        service::EventDrivenServer::Start(iface.get(), opts);
    if (!server_result.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   server_result.status().ToString().c_str());
      return 1;
    }
    server = std::move(server_result).value();
    port = server->port();
  } else {
    auto parse = net::ParseHostPort(args.connect, &host, &port);
    if (!parse.ok()) {
      std::fprintf(stderr, "--connect: %s\n", parse.ToString().c_str());
      return 64;
    }
  }

  if (args.probe) {
    // A single real client ahead of the storm: proves the server answers
    // the full handshake and surfaces the wire cost of connecting (the
    // per-connection counters every RemoteHiddenDatabase now keeps).
    auto probe = service::RemoteHiddenDatabase::Connect(host, port);
    if (!probe.ok()) {
      std::fprintf(stderr, "probe    : %s%s\n",
                   probe.status().ToString().c_str(),
                   probe.status().IsUnavailable()
                       ? " (server shedding load)"
                       : "");
      return 1;
    }
    const service::RemoteHiddenDatabase::Stats& ps = (*probe)->stats();
    std::fprintf(stderr,
                 "probe    : %s k=%d, handshake %" PRId64 " B out / %"
                 PRId64 " B in, %" PRId64 " retries, %" PRId64
                 " ms backoff\n",
                 (*probe)->schema().ToString().c_str(), (*probe)->k(),
                 ps.bytes_sent, ps.bytes_received, ps.retries,
                 ps.backoff_ms);
  }

  service::LoadOptions load;
  load.host = host;
  load.port = port;
  load.sessions = static_cast<int>(args.sessions);
  load.queries_per_session = static_cast<int>(args.queries);
  load.pipeline_depth = static_cast<int>(args.pipeline);
  load.num_loops = static_cast<int>(args.loops);
  load.total_timeout_ms = static_cast<int>(args.timeout_ms);
  load.workload_seed = static_cast<uint64_t>(args.seed);
  auto run = service::RunLoad(load);
  if (!run.ok()) {
    std::fprintf(stderr, "load: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const service::LoadReport report = std::move(run).value();
  if (server != nullptr) server->Stop();

  std::fprintf(stderr,
               "sessions : %d completed, %d failed (of %" PRId64 ")\n",
               report.sessions_completed, report.sessions_failed,
               args.sessions);
  std::fprintf(stderr,
               "queries  : %" PRId64 " answered in %.1f ms (%.0f qps, "
               "%" PRId64 " busy retries)\n",
               report.queries_completed, report.elapsed_ms, report.qps,
               report.busy_retries);
  std::fprintf(stderr, "latency  : p50 %.0f us, p99 %.0f us, mean %.0f us\n",
               report.latency_p50_us, report.latency_p99_us,
               report.latency_mean_us);
  if (report.server_stats_valid) {
    std::fprintf(stderr,
                 "dedup    : %.4f (%" PRId64 " backend executions for "
                 "%" PRId64 " served; %" PRId64 " cache hits, %" PRId64
                 " single-flight joins)\n",
                 report.dedup_ratio, report.server.backend_executions,
                 report.server.queries_served, report.server.cache_hits,
                 report.server.singleflight_joins);
  } else {
    std::fprintf(stderr, "dedup    : server stats unavailable\n");
  }

  if (!args.json.empty()) WriteJson(args.json, args, report);

  if (!report.complete) {
    std::fprintf(stderr, "load run incomplete%s\n",
                 report.sessions_failed > 0 ? " (sessions failed)"
                                            : " (timed out)");
    return 1;
  }
  return 0;
}
