// hdsky_discover — command-line skyline / sky-band discovery.
//
// Runs the paper's algorithms against a dataset loaded from a
// self-describing CSV (see dataset/csv.h), one of the built-in
// simulators, or a remote hdsky_serve instance. Prints a summary and
// optionally writes the discovered tuples as CSV.
//
//   hdsky_discover --data listings.csv --algorithm mq --k 50
//   hdsky_discover --demo bluenile --k 50 --out skyline.csv
//   hdsky_discover --demo flights --n 100000 --algorithm rq --budget 500
//   hdsky_discover --demo autos --band 2
//   hdsky_discover --connect 127.0.0.1:7447 --algorithm sq --cache
//   hdsky_discover --connect h1:7447,h2:7447,h3:7447 --federate union
//
// Flags:
//   --data PATH         input CSV (one source: --data | --demo |
//                       --dataset-file | --connect)
//   --demo NAME         flights | bluenile | autos | route
//   --dataset-file FILE packed block file written by hdsky_pack;
//                       discovery runs out-of-core through the buffer
//                       pool (ranking/order are baked into the file, so
//                       the local-generation flags are rejected)
//   --buffer-pool-bytes N
//                       resident-memory budget for --dataset-file
//                       (default 256 MiB)
//   --connect HOST:PORT[,HOST:PORT...]
//                       discover against remote hdsky_serve instance(s);
//                       more than one endpoint requires --federate
//   --federate MODE     union | join — federated discovery over every
//                       --connect endpoint (src/federation); sq/rq only
//   --join-attr NAME    entity key for --federate join
//   --round-budget N    paid queries per federation scheduling round
//                       (0 = auto)
//   --probe-attempts N  re-probes a transiently failed (DEGRADED)
//                       backend gets before it is declared DEAD and
//                       dropped (default 3; 0 drops on first failure)
//   --probe-backoff N   base backoff, in scheduling rounds, before the
//                       first re-probe; doubles per failed probe
//                       (default 2)
//   --federation-json PATH
//                       write the federation summary as benchmark JSON
//                       (gated in CI by scripts/compare_bench.py)
//   --dump-data PATH    write the generated/loaded dataset as CSV and
//                       exit (local sources; builds smoke ground truth)
//   --n N               demo dataset size (default: the paper's)
//   --algorithm A       auto | sq | rq | pq | mq | baseline  (default auto)
//   --k K               page size of the interface (default 10)
//   --ranking R         sum | lex:<attr_name>        (default sum)
//   --budget B          query budget; 0 = unlimited  (default 0)
//   --band H            discover the top-H sky band instead (RQ/PQ only)
//   --cache             stack a concurrent query cache over the source
//   --cache-file PATH   persist the cache: load at start, save (atomically)
//                       at exit; implies --cache
//   --journal DIR       durable session: write-ahead query journal +
//                       atomic checkpoints in DIR; re-running with the
//                       same DIR resumes a crashed/interrupted run with
//                       zero re-charged queries (docs/robustness.md).
//                       Works under --federate too: DIR holds one
//                       journal per backend plus the coordinator's
//                       round-barrier state, so a killed federated run
//                       resumes with zero replayed backend queries and
//                       byte-identical outputs (docs/federation.md,
//                       "Durable federation")
//   --sync-every N      journal group-fsync interval (default 1)
//   --checkpoint-every N  paid queries between checkpoints (default 256)
//   --trace PATH        write the anytime progress trace as CSV
//   --crash-point SPEC  die abruptly at a named recovery boundary
//                       (testing; see src/recovery/crash_point.h)
//   --out PATH          write discovered tuples as CSV
//   --seed S            generator seed for --demo
//   --trials T          run T independent trials (seeds S..S+T-1; --demo)
//   --threads W         workers for --trials (default $HDSKY_THREADS)
//
// The remote interface's page size, ranking, and budget are fixed by the
// server, so --k/--ranking/--budget (and the local-generation flags) are
// rejected alongside --connect instead of being silently ignored. Under
// --federate, --budget and --threads come back: they configure the
// federation coordinator (total query budget, fan-out workers), not the
// remote interfaces.
//
// Exit codes: 0 success (including anytime-partial results), 64 usage,
// 69 (EX_UNAVAILABLE) the backend is unreachable right now but nothing
// is broken — the server is shedding load, or a durable session being
// RESUMED cannot reach a backend it must replay against (retry later;
// the journal keeps every paid answer) — and 1 for everything else
// (protocol failure, bad data, I/O).
//
// SIGINT/SIGTERM interrupt the discovery cooperatively: the run unwinds
// as an anytime partial result, the journal (if any) takes a final
// checkpoint, and the partial skyline/outputs are still written.

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "core/baseline_crawler.h"
#include "core/mq_db_sky.h"
#include "core/pq_db_sky.h"
#include "core/rq_db_sky.h"
#include "core/skyband_discovery.h"
#include "core/sq_db_sky.h"
#include "data/paged_table.h"
#include "dataset/blue_nile.h"
#include "dataset/csv.h"
#include "dataset/flights_on_time.h"
#include "dataset/google_flights.h"
#include "dataset/yahoo_autos.h"
#include "federation/federated_discovery.h"
#include "interface/concurrent_caching_database.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "net/socket.h"
#include "recovery/checkpoint.h"
#include "recovery/crash_point.h"
#include "recovery/journaling_database.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "service/remote_database.h"

namespace {

using namespace hdsky;

/// Set by SIGINT/SIGTERM; polled by DiscoveryOptions::interrupt so the
/// run unwinds as an anytime partial result instead of dying mid-query.
std::atomic<bool> g_interrupt{false};

void HandleSignal(int) { g_interrupt.store(true); }

void InstallSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

struct Args {
  std::string data;
  std::string demo;
  std::string dataset_file;
  int64_t buffer_pool_bytes = 0;  // 0 = PagedTableOptions default
  std::string read_path = "mmap";
  int64_t readahead_pages = 8;
  std::string connect;
  std::vector<std::string> connects;  // --connect split on commas
  std::string federate;               // "" | "union" | "join"
  std::string join_attr;
  int64_t round_budget = 0;
  int64_t probe_attempts = 3;
  int64_t probe_backoff = 2;
  std::string federation_json;
  std::string dump_data;
  int64_t n = 0;
  std::string algorithm = "auto";
  int64_t k = 10;
  std::string ranking = "sum";
  int64_t budget = 0;
  int64_t band = 0;
  bool cache = false;
  std::string cache_file;
  std::string journal;
  int64_t sync_every = 1;
  int64_t checkpoint_every = 256;
  std::string trace;
  std::string crash_point;
  std::string out;
  uint64_t seed = 42;
  int64_t trials = 1;
  int64_t threads = 0;  // 0 = take $HDSKY_THREADS
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hdsky_discover (--data PATH | --demo NAME | --dataset-file "
      "FILE | --connect HOST:PORT[,...]) [options]\n"
      "  --demo NAME         flights | bluenile | autos | route\n"
      "  --dataset-file FILE packed block file (hdsky_pack); runs "
      "out-of-core\n"
      "  --buffer-pool-bytes N\n"
      "                      resident budget for --dataset-file (default "
      "256 MiB)\n"
      "  --read-path P       mmap | pread page fetch for --dataset-file "
      "(default mmap)\n"
      "  --readahead-pages N pread readahead depth, 0 disables (default "
      "8)\n"
      "  --connect HOST:PORT[,HOST:PORT...]\n"
      "                      discover against remote hdsky_serve(s)\n"
      "  --federate MODE     union | join over every --connect endpoint\n"
      "  --join-attr NAME    entity key for --federate join\n"
      "  --round-budget N    paid queries per federation round (0 = "
      "auto)\n"
      "  --probe-attempts N  re-probes before a failed backend is "
      "dropped (default 3)\n"
      "  --probe-backoff N   rounds before the first re-probe "
      "(default 2)\n"
      "  --federation-json PATH  write the federation benchmark JSON\n"
      "  --dump-data PATH    write the local dataset as CSV and exit\n"
      "  --n N               demo dataset size\n"
      "  --algorithm A       auto | sq | rq | pq | mq | baseline\n"
      "  --k K               interface page size (default 10)\n"
      "  --ranking R         sum | lex:<attr_name>\n"
      "  --budget B          query budget (0 = unlimited)\n"
      "  --band H            discover the top-H sky band (RQ/PQ)\n"
      "  --cache             stack a concurrent query cache\n"
      "  --cache-file PATH   persist the cache across runs (implies "
      "--cache)\n"
      "  --journal DIR       durable session: journal + checkpoints; "
      "rerun to resume\n"
      "  --sync-every N      journal group-fsync interval (default 1)\n"
      "  --checkpoint-every N  paid queries between checkpoints "
      "(default 256)\n"
      "  --trace PATH        write the anytime progress trace as CSV\n"
      "  --crash-point SPEC  die at a named recovery boundary (testing)\n"
      "  --out PATH          write discovered tuples as CSV\n"
      "  --seed S            demo generator seed\n"
      "  --trials T          independent trials, seeds S..S+T-1 (--demo)\n"
      "  --threads W         workers for --trials (default "
      "$HDSKY_THREADS)\n");
}

/// Strict integer parse: the whole token must be a base-10 number in
/// [min, max]. "12x", "", " 3", and out-of-range values all fail.
bool ParseInt(const std::string& s, int64_t min, int64_t max, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    seen.insert(flag);
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    auto int_flag = [&](int64_t min, int64_t max, int64_t* dst) {
      std::string value;
      if (!need_value(&value) || !ParseInt(value, min, max, dst)) {
        std::fprintf(stderr, "invalid value for %s\n", flag.c_str());
        return false;
      }
      return true;
    };
    std::string value;
    if (flag == "--data" && need_value(&value)) {
      args->data = value;
    } else if (flag == "--demo" && need_value(&value)) {
      args->demo = value;
    } else if (flag == "--dataset-file" && need_value(&value)) {
      args->dataset_file = value;
    } else if (flag == "--buffer-pool-bytes") {
      if (!int_flag(1, INT64_MAX, &args->buffer_pool_bytes)) return false;
    } else if (flag == "--read-path" && need_value(&value)) {
      data::ReadPathKind kind;
      if (!data::ParseReadPathKind(value, &kind)) {
        std::fprintf(stderr, "invalid value for --read-path: %s\n",
                     value.c_str());
        return false;
      }
      args->read_path = value;
    } else if (flag == "--readahead-pages") {
      if (!int_flag(0, 1 << 16, &args->readahead_pages)) return false;
    } else if (flag == "--connect" && need_value(&value)) {
      args->connect = value;
      args->connects.clear();
      // Comma-separated endpoints; each must parse as HOST:PORT.
      std::string rest = value;
      while (!rest.empty()) {
        const size_t comma = rest.find(',');
        const std::string endpoint = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        std::string host;
        uint16_t port = 0;
        const common::Status s =
            net::ParseHostPort(endpoint, &host, &port);
        if (!s.ok()) {
          std::fprintf(stderr, "invalid --connect endpoint '%s': %s\n",
                       endpoint.c_str(), s.ToString().c_str());
          return false;
        }
        args->connects.push_back(endpoint);
      }
      if (args->connects.empty()) {
        std::fprintf(stderr, "empty --connect\n");
        return false;
      }
    } else if (flag == "--federate" && need_value(&value)) {
      if (value != "union" && value != "join") {
        std::fprintf(stderr, "--federate takes union | join\n");
        return false;
      }
      args->federate = value;
    } else if (flag == "--join-attr" && need_value(&value)) {
      args->join_attr = value;
    } else if (flag == "--round-budget") {
      if (!int_flag(0, INT64_MAX, &args->round_budget)) return false;
    } else if (flag == "--probe-attempts") {
      if (!int_flag(0, INT64_MAX, &args->probe_attempts)) return false;
    } else if (flag == "--probe-backoff") {
      if (!int_flag(1, 1 << 20, &args->probe_backoff)) return false;
    } else if (flag == "--federation-json" && need_value(&value)) {
      args->federation_json = value;
    } else if (flag == "--dump-data" && need_value(&value)) {
      args->dump_data = value;
    } else if (flag == "--n") {
      if (!int_flag(1, INT64_MAX, &args->n)) return false;
    } else if (flag == "--algorithm" && need_value(&value)) {
      args->algorithm = value;
    } else if (flag == "--k") {
      if (!int_flag(1, 1000000, &args->k)) return false;
    } else if (flag == "--ranking" && need_value(&value)) {
      args->ranking = value;
    } else if (flag == "--budget") {
      if (!int_flag(0, INT64_MAX, &args->budget)) return false;
    } else if (flag == "--band") {
      if (!int_flag(1, 1000000, &args->band)) return false;
    } else if (flag == "--cache") {
      args->cache = true;
    } else if (flag == "--cache-file" && need_value(&value)) {
      args->cache_file = value;
      args->cache = true;
    } else if (flag == "--journal" && need_value(&value)) {
      args->journal = value;
    } else if (flag == "--sync-every") {
      if (!int_flag(1, 1000000, &args->sync_every)) return false;
    } else if (flag == "--checkpoint-every") {
      if (!int_flag(1, INT64_MAX, &args->checkpoint_every)) return false;
    } else if (flag == "--trace" && need_value(&value)) {
      args->trace = value;
    } else if (flag == "--crash-point" && need_value(&value)) {
      args->crash_point = value;
    } else if (flag == "--out" && need_value(&value)) {
      args->out = value;
    } else if (flag == "--seed") {
      int64_t seed;
      if (!int_flag(0, INT64_MAX, &seed)) return false;
      args->seed = static_cast<uint64_t>(seed);
    } else if (flag == "--trials") {
      if (!int_flag(1, 1000000, &args->trials)) return false;
    } else if (flag == "--threads") {
      if (!int_flag(1, 4096, &args->threads)) return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                   flag.c_str());
      return false;
    }
  }
  const int sources = (!args->data.empty() ? 1 : 0) +
                      (!args->demo.empty() ? 1 : 0) +
                      (!args->dataset_file.empty() ? 1 : 0) +
                      (!args->connect.empty() ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr,
                 "exactly one of --data / --demo / --dataset-file / "
                 "--connect is required\n");
    return false;
  }
  for (const char* pool_flag :
       {"--buffer-pool-bytes", "--read-path", "--readahead-pages"}) {
    if (seen.count(pool_flag) && args->dataset_file.empty()) {
      std::fprintf(stderr, "%s requires --dataset-file\n", pool_flag);
      return false;
    }
  }
  if (!args->dataset_file.empty()) {
    // Generation and ranking are baked into the file at pack time.
    for (const char* baked :
         {"--n", "--seed", "--ranking", "--trials", "--dump-data"}) {
      if (seen.count(baked)) {
        std::fprintf(stderr,
                     "%s configures local generation/ranking; a packed "
                     "--dataset-file fixes these at pack time\n",
                     baked);
        return false;
      }
    }
  }
  if (!args->federate.empty() && args->connect.empty()) {
    std::fprintf(stderr, "--federate requires --connect\n");
    return false;
  }
  if (args->connects.size() > 1 && args->federate.empty()) {
    std::fprintf(stderr,
                 "multiple --connect endpoints need --federate "
                 "union|join\n");
    return false;
  }
  if (!args->federate.empty()) {
    if (args->federate == "join" && args->join_attr.empty()) {
      std::fprintf(stderr, "--federate join needs --join-attr\n");
      return false;
    }
    if (args->federate == "union" && !args->join_attr.empty()) {
      std::fprintf(stderr, "--join-attr only applies to --federate "
                           "join\n");
      return false;
    }
    if (args->algorithm != "auto" && args->algorithm != "sq" &&
        args->algorithm != "rq") {
      std::fprintf(stderr,
                   "--federate drives the checkpointable sq/rq "
                   "algorithms only (got --algorithm %s)\n",
                   args->algorithm.c_str());
      return false;
    }
    for (const char* single_site :
         {"--band", "--cache", "--cache-file", "--trace"}) {
      if (seen.count(single_site)) {
        std::fprintf(stderr, "%s is a single-site feature; it cannot be "
                             "combined with --federate\n",
                     single_site);
        return false;
      }
    }
  } else {
    for (const char* federate_only :
         {"--round-budget", "--federation-json", "--probe-attempts",
          "--probe-backoff"}) {
      if (seen.count(federate_only)) {
        std::fprintf(stderr, "%s requires --federate\n", federate_only);
        return false;
      }
    }
  }
  if (!args->connect.empty()) {
    // The server controls the interface; under --federate, --budget and
    // --threads configure the coordinator instead and stay legal.
    std::vector<const char*> local_only = {"--n", "--k", "--ranking",
                                           "--seed", "--trials"};
    if (args->federate.empty()) {
      local_only.push_back("--budget");
      local_only.push_back("--threads");
    }
    for (const char* flag : local_only) {
      if (seen.count(flag)) {
        std::fprintf(stderr,
                     "%s configures a local interface; the server "
                     "controls it under --connect\n",
                     flag);
        return false;
      }
    }
    if (seen.count("--dump-data")) {
      std::fprintf(stderr,
                   "--dump-data exports a locally generated dataset; it "
                   "cannot be combined with --connect\n");
      return false;
    }
  }
  if (args->trials > 1 && args->demo.empty()) {
    std::fprintf(stderr, "--trials needs --demo (seeds vary per trial)\n");
    return false;
  }
  if (args->trials > 1) {
    for (const char* single_run :
         {"--journal", "--cache-file", "--trace", "--dump-data"}) {
      if (seen.count(single_run)) {
        std::fprintf(stderr,
                     "%s describes one durable run; it cannot be combined "
                     "with --trials\n",
                     single_run);
        return false;
      }
    }
  }
  if (args->journal.empty()) {
    for (const char* journal_only : {"--sync-every", "--checkpoint-every"}) {
      if (seen.count(journal_only)) {
        std::fprintf(stderr, "%s requires --journal\n", journal_only);
        return false;
      }
    }
  }
  return true;
}

common::Result<data::Table> LoadTable(const Args& args) {
  if (!args.data.empty()) return dataset::ReadCsv(args.data);
  if (args.demo == "flights") {
    dataset::FlightsOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateFlightsOnTime(o);
  }
  if (args.demo == "bluenile") {
    dataset::BlueNileOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateBlueNile(o);
  }
  if (args.demo == "autos") {
    dataset::YahooAutosOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateYahooAutos(o);
  }
  if (args.demo == "route") {
    dataset::GoogleFlightsOptions o;
    if (args.n > 0) o.num_flights = args.n;
    o.seed = args.seed;
    return dataset::GenerateRoute(o);
  }
  return common::Status::InvalidArgument("unknown demo '" + args.demo +
                                         "'");
}

common::Result<std::shared_ptr<interface::RankingPolicy>> MakeRanking(
    const Args& args, const data::Schema& schema) {
  if (args.ranking == "sum") {
    return interface::MakeSumRanking();
  }
  if (args.ranking.rfind("lex:", 0) == 0) {
    const std::string name = args.ranking.substr(4);
    HDSKY_ASSIGN_OR_RETURN(const int attr, schema.IndexOf(name));
    return interface::MakeLexicographicRanking({attr});
  }
  return common::Status::InvalidArgument("unknown ranking '" +
                                         args.ranking + "'");
}

/// The algorithm Run() will actually dispatch to, as a stable name for
/// journal state blobs ("auto" resolves; --band picks its variant from
/// the schema). A resumed journal is rejected when this changed.
std::string ResolveAlgorithm(const Args& args, const data::Schema& schema) {
  if (args.band > 0) {
    const bool any_range =
        !schema.RankingAttributesWithInterface(data::InterfaceType::kRQ)
             .empty();
    return any_range ? "band-rq" : "band-pq";
  }
  return args.algorithm == "auto" ? "mq" : args.algorithm;
}

/// Only SQ/RQ/PQ expose checkpointable frontiers; the other algorithms
/// resume by full replay through the journal (free but linear).
bool FrontierCapable(const std::string& resolved_algorithm) {
  return resolved_algorithm == "sq" || resolved_algorithm == "rq" ||
         resolved_algorithm == "pq";
}

// Every algorithm programs against HiddenDatabase, so the same Run serves
// local TopKInterface, cached, journaled, and remote sources.
common::Result<core::DiscoveryResult> Run(
    const Args& args, interface::HiddenDatabase* iface,
    const core::DiscoveryOptions& common) {
  if (args.band > 0) {
    core::SkybandOptions opts;
    opts.common = common;
    opts.band = static_cast<int>(args.band);
    // Pick by interface mix: PQ-only schemas use the PQ extension.
    const bool any_range =
        !iface->schema()
             .RankingAttributesWithInterface(data::InterfaceType::kRQ)
             .empty();
    return any_range ? core::RqDbSkyband(iface, opts)
                     : core::PqDbSkyband(iface, opts);
  }
  const std::string& a = args.algorithm;
  if (a == "auto" || a == "mq") {
    core::MqDbSkyOptions opts;
    opts.common = common;
    return core::MqDbSky(iface, opts);
  }
  if (a == "sq") {
    core::SqDbSkyOptions opts;
    opts.common = common;
    return core::SqDbSky(iface, opts);
  }
  if (a == "rq") {
    core::RqDbSkyOptions opts;
    opts.common = common;
    return core::RqDbSky(iface, opts);
  }
  if (a == "pq") {
    core::PqDbSkyOptions opts;
    opts.common = common;
    return core::PqDbSky(iface, opts);
  }
  if (a == "baseline") {
    core::CrawlOptions opts;
    opts.common = common;
    return core::BaselineSkyline(iface, opts);
  }
  return common::Status::InvalidArgument("unknown algorithm '" + a + "'");
}

// Fans --trials independent discoveries (seed, seed+1, ...) across
// --threads workers. Each trial owns its table, ranking, and interface,
// so the per-trial numbers are identical at every worker count.
int RunTrials(const Args& args) {
  struct Trial {
    bool ok = false;
    std::string error;
    int64_t cost = 0;
    size_t found = 0;
    bool complete = false;
  };
  const int threads = args.threads > 0 ? static_cast<int>(args.threads)
                                       : runtime::EnvThreadCount();
  std::vector<Trial> trials(static_cast<size_t>(args.trials));
  runtime::ParallelFor(threads, 0, args.trials, [&](int64_t i) {
    Args trial_args = args;
    trial_args.seed = args.seed + static_cast<uint64_t>(i);
    Trial& out = trials[static_cast<size_t>(i)];
    auto table = LoadTable(trial_args);
    if (!table.ok()) {
      out.error = table.status().ToString();
      return;
    }
    auto ranking = MakeRanking(trial_args, table->schema());
    if (!ranking.ok()) {
      out.error = ranking.status().ToString();
      return;
    }
    interface::TopKOptions topk;
    topk.k = static_cast<int>(trial_args.k);
    topk.query_budget = trial_args.budget;
    auto iface = interface::TopKInterface::Create(
        &*table, std::move(ranking).value(), topk);
    if (!iface.ok()) {
      out.error = iface.status().ToString();
      return;
    }
    core::DiscoveryOptions common;
    common.interrupt = [] { return g_interrupt.load(); };
    auto result = Run(trial_args, iface->get(), common);
    if (!result.ok()) {
      out.error = result.status().ToString();
      return;
    }
    out.ok = true;
    out.cost = result->query_cost;
    out.found = result->skyline.size();
    out.complete = result->complete;
  });

  int64_t total_cost = 0;
  for (int64_t i = 0; i < args.trials; ++i) {
    const Trial& t = trials[static_cast<size_t>(i)];
    if (!t.ok) {
      std::fprintf(stderr, "trial %lld (seed %llu): %s\n",
                   static_cast<long long>(i),
                   static_cast<unsigned long long>(
                       args.seed + static_cast<uint64_t>(i)),
                   t.error.c_str());
      return 1;
    }
    std::printf("trial %lld: seed %llu  found %zu  queries %lld%s\n",
                static_cast<long long>(i),
                static_cast<unsigned long long>(
                    args.seed + static_cast<uint64_t>(i)),
                t.found, static_cast<long long>(t.cost),
                t.complete ? "" : "  (partial)");
    total_cost += t.cost;
  }
  // stdout stays byte-identical at every worker count; the worker note
  // goes to stderr.
  std::printf("mean queries over %lld trials: %.2f\n",
              static_cast<long long>(args.trials),
              static_cast<double>(total_cost) /
                  static_cast<double>(args.trials));
  std::fprintf(stderr, "(ran on %d worker%s)\n", threads,
               threads == 1 ? "" : "s");
  return 0;
}

/// Loads (or mints and persists) the session id a durable remote session
/// presents to the server. Reusing the id across restarts is what lets
/// the server's per-session replay cache deduplicate a re-sent query
/// instead of charging for it again.
common::Result<uint64_t> LoadOrCreateSessionId(const std::string& dir) {
  const std::string path = dir + "/SESSION";
  auto existing = common::ReadFileToString(path);
  if (existing.ok()) {
    std::string text = std::move(existing).value();
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long id = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' || id == 0) {
      return common::Status::IOError(path + ": malformed session id");
    }
    return static_cast<uint64_t>(id);
  }
  if (!existing.status().IsNotFound()) return existing.status();
  std::random_device rd;
  uint64_t id = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  if (id == 0) id = 1;
  HDSKY_RETURN_IF_ERROR(
      common::AtomicWriteFile(path, std::to_string(id) + "\n"));
  return id;
}

/// Writes the anytime progress trace ("queries,skyline" per line).
common::Status WriteTrace(const core::ProgressTrace& trace,
                          const std::string& path) {
  std::string csv = "queries,skyline\n";
  for (const core::ProgressPoint& p : trace) {
    csv += std::to_string(p.queries_issued) + "," +
           std::to_string(p.skyline_discovered) + "\n";
  }
  return common::AtomicWriteFile(path, csv);
}

/// Exit code for a failed connect/discovery: 69 (EX_UNAVAILABLE) when the
/// server is shedding load — the caller should retry later, nothing is
/// broken — and 1 for protocol or local failures.
int FailureExit(const common::Status& s, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  if (s.IsUnavailable()) {
    std::fprintf(stderr,
                 "%s: the server is shedding load (rate limited / at "
                 "capacity), not failing; retry later\n",
                 what);
    return 69;
  }
  return 1;
}

/// Federation summary in google-benchmark JSON shape, so
/// scripts/compare_bench.py can gate the prune ratio and coverage in CI.
common::Status WriteFederationJson(const Args& args,
                                   const federation::FederatedResult& fr,
                                   double elapsed_ms) {
  const int64_t skyline_size =
      args.federate == "join" ? static_cast<int64_t>(fr.joined.size())
                              : static_cast<int64_t>(fr.skyline.size());
  const double denom =
      static_cast<double>(fr.total_paid + fr.total_pruned);
  const double prune_ratio =
      denom > 0 ? static_cast<double>(fr.total_pruned) / denom : 0.0;
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"context\": {\"executable\": \"hdsky_discover\"},\n"
      "  \"benchmarks\": [\n"
      "    {\n"
      "      \"name\": \"federation/%s/backends:%zu\",\n"
      "      \"run_type\": \"iteration\",\n"
      "      \"iterations\": 1,\n"
      "      \"real_time\": %.3f,\n"
      "      \"cpu_time\": %.3f,\n"
      "      \"time_unit\": \"ms\",\n"
      "      \"backends\": %zu,\n"
      "      \"paid_queries\": %lld,\n"
      "      \"pruned_queries\": %lld,\n"
      "      \"prune_ratio\": %.6f,\n"
      "      \"probe_queries\": %lld,\n"
      "      \"skyline_size\": %lld,\n"
      "      \"rounds\": %lld,\n"
      "      \"complete\": %d,\n"
      "      \"partial_coverage\": %d\n"
      "    }\n"
      "  ]\n"
      "}\n",
      args.federate.c_str(), fr.backends.size(), elapsed_ms, elapsed_ms,
      fr.backends.size(), static_cast<long long>(fr.total_paid),
      static_cast<long long>(fr.total_pruned), prune_ratio,
      static_cast<long long>(fr.probe_queries),
      static_cast<long long>(skyline_size),
      static_cast<long long>(fr.rounds), fr.complete ? 1 : 0,
      fr.partial_coverage ? 1 : 0);
  return common::AtomicWriteFile(args.federation_json, buf);
}

/// Federated discovery over every --connect endpoint: connect to each,
/// run the round-scheduled coordinator, report, and write the optional
/// benchmark JSON / skyline CSV. Under --journal the session is durable:
/// DIR/backend-<i> holds each backend's write-ahead journal (plus the
/// persisted session id the server's replay cache is keyed by) and
/// DIR/STATE the coordinator's latest round-barrier checkpoint, so a
/// killed run resumed with the same flags replays its paid prefix for
/// free and produces byte-identical outputs.
int RunFederation(const Args& args) {
  const bool durable = !args.journal.empty();
  bool resuming = false;
  if (durable) {
    if (::mkdir(args.journal.c_str(), 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "journal: mkdir %s: %s\n", args.journal.c_str(),
                   std::strerror(errno));
      return 1;
    }
    // A coordinator checkpoint on disk means a previous run paid for
    // queries this one is expected to replay; losing a backend now is
    // "come back when the site is up" (69), not a fresh-run failure.
    struct stat st;
    const std::string state_path =
        args.journal + "/" + recovery::kFederationStateFileName;
    resuming = ::stat(state_path.c_str(), &st) == 0;
  }

  std::vector<std::unique_ptr<service::RemoteHiddenDatabase>> remotes;
  std::vector<std::unique_ptr<recovery::JournalingDatabase>> journals;
  std::vector<interface::HiddenDatabase*> backends;
  for (size_t i = 0; i < args.connects.size(); ++i) {
    const std::string& endpoint = args.connects[i];
    std::string host;
    uint16_t port = 0;
    const common::Status parsed =
        net::ParseHostPort(endpoint, &host, &port);
    if (!parsed.ok()) {  // ParseArgs validated; defensive
      std::fprintf(stderr, "connect: %s\n", parsed.ToString().c_str());
      return 64;
    }
    service::RemoteHiddenDatabase::Options ropts;
    std::string backend_dir;
    if (durable) {
      backend_dir = args.journal + "/backend-" + std::to_string(i);
      if (::mkdir(backend_dir.c_str(), 0777) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "journal: mkdir %s: %s\n", backend_dir.c_str(),
                     std::strerror(errno));
        return 1;
      }
      auto session_id = LoadOrCreateSessionId(backend_dir);
      if (!session_id.ok()) {
        std::fprintf(stderr, "journal: %s\n",
                     session_id.status().ToString().c_str());
        return 1;
      }
      ropts.session_id = *session_id;
    }
    auto remote = service::RemoteHiddenDatabase::Connect(host, port, ropts);
    if (!remote.ok()) {
      if (resuming && (remote.status().IsIOError() ||
                       remote.status().IsUnavailable())) {
        std::fprintf(stderr, "connect %s: %s\n", endpoint.c_str(),
                     remote.status().ToString().c_str());
        std::fprintf(stderr,
                     "connect %s: backend unreachable while resuming a "
                     "durable federated session; the journals keep every "
                     "paid answer — retry when the backend is back\n",
                     endpoint.c_str());
        return 69;
      }
      return FailureExit(remote.status(),
                         ("connect " + endpoint).c_str());
    }
    std::fprintf(stderr, "remote  : %s, %s, k=%d\n", endpoint.c_str(),
                 (*remote)->schema().ToString().c_str(), (*remote)->k());
    if (durable) {
      recovery::JournalingDatabase::Options jopts;
      jopts.sync_every = static_cast<int>(args.sync_every);
      jopts.checkpoint_every = args.checkpoint_every;
      // Between queries every point is consistent for pure replay; the
      // coordinator's own frontier state lives in DIR/STATE, not here.
      jopts.auto_checkpoint = true;
      recovery::SessionState alg_only;
      alg_only.algorithm = args.algorithm;
      jopts.auto_checkpoint_state = recovery::EncodeSessionState(alg_only);
      service::RemoteHiddenDatabase* r = remote->get();
      jopts.seq_provider = [r] { return r->next_seq(); };
      auto journal = recovery::JournalingDatabase::Open(remote->get(),
                                                        backend_dir, jopts);
      if (!journal.ok()) {
        std::fprintf(stderr, "journal: %s: %s\n", endpoint.c_str(),
                     journal.status().ToString().c_str());
        return 1;
      }
      // Continue the wire sequence where the journal left off; a dangling
      // intent re-sends under its original number and hits the server's
      // replay cache instead of the budget.
      (*remote)->set_next_seq((*journal)->next_wire_seq());
      if ((*journal)->resumed()) {
        std::fprintf(stderr,
                     "journal : %s resuming (%lld journaled answers, "
                     "epoch %lld)\n",
                     endpoint.c_str(),
                     static_cast<long long>((*journal)->entries()),
                     static_cast<long long>((*journal)->epoch()));
      }
      backends.push_back(journal->get());
      journals.push_back(std::move(journal).value());
    } else {
      backends.push_back(remote->get());
    }
    remotes.push_back(std::move(remote).value());
  }

  federation::FederationOptions fopts;
  fopts.mode = args.federate == "join"
                   ? federation::FederationOptions::Mode::kJoin
                   : federation::FederationOptions::Mode::kUnion;
  fopts.total_budget = args.budget;
  fopts.round_budget = args.round_budget;
  fopts.num_threads = static_cast<int>(args.threads);
  fopts.algorithm = args.algorithm;
  fopts.join_attr = args.join_attr;
  fopts.max_probe_attempts = args.probe_attempts;
  fopts.probe_backoff_rounds = args.probe_backoff;
  fopts.interrupt = [] { return g_interrupt.load(); };

  recovery::FederationSessionState restored;
  if (durable) {
    if (resuming) {
      auto loaded = recovery::LoadFederationState(args.journal);
      if (!loaded.ok()) {
        std::fprintf(stderr, "journal: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      restored = std::move(loaded).value();
      fopts.resume_state = &restored;
      std::fprintf(stderr,
                   "journal : resuming federated session at round %lld\n",
                   static_cast<long long>(restored.rounds));
    }
    fopts.on_round_checkpoint =
        [&args, &journals](const recovery::FederationSessionState& s)
        -> common::Status {
      // The backend journals must be durable before the coordinator
      // state that presumes their payments (a no-op at --sync-every 1).
      for (auto& j : journals) HDSKY_RETURN_IF_ERROR(j->Sync());
      return recovery::SaveFederationState(args.journal, s);
    };
    fopts.on_backend_reprobe = [&journals](size_t i) {
      return journals[i]->ResolvePending();
    };
  }

  const auto start = std::chrono::steady_clock::now();
  auto result =
      federation::RunFederatedDiscovery(backends, fopts, args.connects);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  const bool interrupted = g_interrupt.load();
  if (durable) {
    // Final compaction, on success AND on interrupt/failure: every paid
    // answer (torn-round payments included) folds into each backend's
    // snapshot, and the last consistent round barrier in DIR/STATE is
    // what a rerun resumes from.
    recovery::SessionState alg_only;
    alg_only.algorithm = args.algorithm;
    const std::string blob = recovery::EncodeSessionState(alg_only);
    for (size_t i = 0; i < journals.size(); ++i) {
      const common::Status s = journals[i]->Finish(blob);
      if (!s.ok()) {
        std::fprintf(stderr, "journal: %s: final checkpoint: %s\n",
                     args.connects[i].c_str(), s.ToString().c_str());
      }
    }
  }
  if (!result.ok()) return FailureExit(result.status(), "federation");
  const federation::FederatedResult& fr = *result;

  std::printf("federate: %s over %zu backends\n", args.federate.c_str(),
              backends.size());
  if (args.federate == "join") {
    std::printf("found   : %zu joined skyline entities%s\n",
                fr.joined.size(),
                fr.join_exact ? "" : "  (approximate: a probe overflowed)");
  } else {
    std::printf("found   : %zu skyline groups\n", fr.skyline.size());
  }
  std::printf("queries : %lld paid, %lld answered free from the shared "
              "index, %lld rounds\n",
              static_cast<long long>(fr.total_paid),
              static_cast<long long>(fr.total_pruned),
              static_cast<long long>(fr.rounds));
  if (fr.probe_queries > 0) {
    std::printf("probes  : %lld join probes (included in paid)\n",
                static_cast<long long>(fr.probe_queries));
  }
  if (fr.partial_coverage) {
    std::printf("coverage: PARTIAL — a backend failed or ran out of "
                "budget; tuples only it holds may be missing\n");
  }
  for (size_t i = 0; i < fr.backends.size(); ++i) {
    const federation::BackendReport& r = fr.backends[i];
    std::fprintf(stderr,
                 "backend : %s  paid %lld  pruned %lld  confirmed %lld  "
                 "rounds %lld  health %s  recovered %lld  %s%s\n",
                 r.name.c_str(), static_cast<long long>(r.paid_queries),
                 static_cast<long long>(r.pruned_queries),
                 static_cast<long long>(r.confirmed),
                 static_cast<long long>(r.rounds),
                 federation::BackendHealthName(r.health),
                 static_cast<long long>(r.recoveries),
                 r.failed ? "FAILED: " : (r.complete ? "complete" : "stopped"),
                 r.failed ? r.error.c_str() : "");
    if (i < remotes.size()) {
      const service::RemoteHiddenDatabase::Stats& t = remotes[i]->stats();
      std::fprintf(stderr,
                   "network : %s  %lld remote queries, %lld retries, "
                   "%lld reconnects, %lld rate-limited, %lld failed, "
                   "%lld B out, %lld B in, %lld ms backoff\n",
                   r.name.c_str(),
                   static_cast<long long>(t.remote_queries),
                   static_cast<long long>(t.retries),
                   static_cast<long long>(t.reconnects),
                   static_cast<long long>(t.rate_limited),
                   static_cast<long long>(t.failed_queries),
                   static_cast<long long>(t.bytes_sent),
                   static_cast<long long>(t.bytes_received),
                   static_cast<long long>(t.backoff_ms));
    }
    if (i < journals.size()) {
      const recovery::JournalingDatabase::Stats& js = journals[i]->stats();
      std::fprintf(stderr,
                   "journal : %s  %lld replayed, %lld paid, %lld errors, "
                   "epoch %lld\n",
                   r.name.c_str(), static_cast<long long>(js.replayed),
                   static_cast<long long>(js.paid),
                   static_cast<long long>(js.errors),
                   static_cast<long long>(journals[i]->epoch()));
    }
  }
  if (interrupted && durable) {
    std::fprintf(stderr,
                 "interrupted: rerun with --journal %s to resume\n",
                 args.journal.c_str());
  }

  if (!args.federation_json.empty()) {
    // A durable session's outputs must be byte-identical between an
    // uninterrupted run and a crash-then-resume (the chaos smoke diffs
    // them), so the one nondeterministic field is pinned under --journal.
    const common::Status s =
        WriteFederationJson(args, fr, durable ? 0.0 : elapsed_ms);
    if (!s.ok()) {
      std::fprintf(stderr, "federation-json: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("json    : %s\n", args.federation_json.c_str());
  }

  if (!args.out.empty()) {
    if (args.federate == "join") {
      std::fprintf(stderr,
                   "--out writes union-mode representative tuples; join "
                   "mode has no full tuples to write\n");
      return 64;
    }
    // Representatives are full tuples of their source backend, so one CSV
    // needs every backend to share the full schema.
    for (size_t i = 1; i < remotes.size(); ++i) {
      if (remotes[i]->schema().ToString() !=
          remotes[0]->schema().ToString()) {
        std::fprintf(stderr,
                     "--out needs identical backend schemas (%s differs "
                     "from %s)\n",
                     args.connects[i].c_str(), args.connects[0].c_str());
        return 1;
      }
    }
    data::Table out(remotes[0]->schema());
    out.Reserve(static_cast<int64_t>(fr.skyline.size()));
    for (const federation::UnionGroup& g : fr.skyline) {
      const common::Status s = out.Append(g.representative);
      if (!s.ok()) {
        std::fprintf(stderr, "collect: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const common::Status s = dataset::WriteCsv(out, args.out);
    if (!s.ok()) {
      std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote   : %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 64;
  }

  InstallSignalHandlers();
  recovery::ArmCrashPointFromEnv();
  if (!args.crash_point.empty()) recovery::ArmCrashPoint(args.crash_point);

  if (args.trials > 1) return RunTrials(args);
  if (!args.federate.empty()) return RunFederation(args);

  // Exactly one of these owners is populated; `source` aliases it.
  data::Table table;  // local sources only
  std::unique_ptr<data::PagedTable> paged;  // --dataset-file only
  std::unique_ptr<interface::TopKInterface> local;
  std::unique_ptr<service::RemoteHiddenDatabase> remote;
  interface::HiddenDatabase* source = nullptr;

  if (!args.dataset_file.empty()) {
    data::PagedTableOptions popts;
    if (args.buffer_pool_bytes > 0) {
      popts.buffer_pool_bytes =
          static_cast<size_t>(args.buffer_pool_bytes);
    }
    data::ParseReadPathKind(args.read_path, &popts.read_path);
    popts.readahead_pages = static_cast<int>(args.readahead_pages);
    auto paged_result = data::Table::OpenPaged(args.dataset_file, popts);
    if (!paged_result.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   paged_result.status().ToString().c_str());
      return 1;
    }
    paged = std::move(paged_result).value();
    if (paged->pool()->budget_was_clamped()) {
      std::fprintf(
          stderr,
          "warning: --buffer-pool-bytes %llu below one page; effective "
          "budget %llu bytes\n",
          static_cast<unsigned long long>(
              paged->pool()->requested_budget_bytes()),
          static_cast<unsigned long long>(paged->pool()->budget_bytes()));
    }
    std::printf("dataset : %lld tuples (paged %s, ranking %s, pool %lld "
                "bytes), %s\n",
                static_cast<long long>(paged->num_rows()),
                paged->pool()->read_path_name(),
                paged->ranking_name().c_str(),
                static_cast<long long>(paged->pool()->budget_bytes()),
                paged->schema().ToString().c_str());
    interface::TopKOptions topk;
    topk.k = static_cast<int>(args.k);
    topk.query_budget = args.budget;
    auto iface_result =
        interface::TopKInterface::CreatePaged(paged.get(), topk);
    if (!iface_result.ok()) {
      std::fprintf(stderr, "interface: %s\n",
                   iface_result.status().ToString().c_str());
      return 1;
    }
    local = std::move(iface_result).value();
    source = local.get();
  } else if (!args.connect.empty()) {
    std::string host;
    uint16_t port = 0;
    const common::Status parsed =
        net::ParseHostPort(args.connect, &host, &port);
    if (!parsed.ok()) {
      std::fprintf(stderr, "connect: %s\n", parsed.ToString().c_str());
      return 64;
    }
    service::RemoteHiddenDatabase::Options ropts;
    if (!args.journal.empty()) {
      // A durable remote session must present the SAME session id on every
      // run: the id keys the server's budget and replay cache, which is
      // what makes re-sent journaled queries free. Persist it next to the
      // journal before connecting.
      if (::mkdir(args.journal.c_str(), 0777) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "journal: mkdir %s: %s\n", args.journal.c_str(),
                     std::strerror(errno));
        return 1;
      }
      auto session_id = LoadOrCreateSessionId(args.journal);
      if (!session_id.ok()) {
        std::fprintf(stderr, "journal: %s\n",
                     session_id.status().ToString().c_str());
        return 1;
      }
      ropts.session_id = *session_id;
    }
    auto remote_result =
        service::RemoteHiddenDatabase::Connect(host, port, ropts);
    if (!remote_result.ok()) {
      if (!args.journal.empty() && (remote_result.status().IsIOError() ||
                                    remote_result.status().IsUnavailable())) {
        // A journal manifest on disk means a previous run paid for
        // answers this one would replay: the backend being down is
        // "retry later" (69), exactly like live-run load shedding —
        // nothing is lost and nothing is broken.
        struct stat st;
        const std::string manifest =
            args.journal + "/" + recovery::kManifestFileName;
        if (::stat(manifest.c_str(), &st) == 0) {
          std::fprintf(stderr, "connect: %s\n",
                       remote_result.status().ToString().c_str());
          std::fprintf(stderr,
                       "connect: backend unreachable while resuming a "
                       "durable session; the journal keeps every paid "
                       "answer — retry when the backend is back\n");
          return 69;
        }
      }
      return FailureExit(remote_result.status(), "connect");
    }
    remote = std::move(remote_result).value();
    source = remote.get();
    std::fprintf(stderr, "remote  : %s, %s, k=%d\n", args.connect.c_str(),
                 remote->schema().ToString().c_str(), remote->k());
  } else {
    auto table_result = LoadTable(args);
    if (!table_result.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   table_result.status().ToString().c_str());
      return 1;
    }
    table = std::move(table_result).value();
    std::printf("dataset : %lld tuples, %s\n",
                static_cast<long long>(table.num_rows()),
                table.schema().ToString().c_str());
    if (!args.dump_data.empty()) {
      // Pure data export — the smoke harness uses it to build a merged
      // ground-truth table from the per-backend generator seeds.
      const common::Status s = dataset::WriteCsv(table, args.dump_data);
      if (!s.ok()) {
        std::fprintf(stderr, "dump-data: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("dumped  : %s\n", args.dump_data.c_str());
      return 0;
    }

    auto ranking_result = MakeRanking(args, table.schema());
    if (!ranking_result.ok()) {
      std::fprintf(stderr, "ranking: %s\n",
                   ranking_result.status().ToString().c_str());
      return 1;
    }
    interface::TopKOptions topk;
    topk.k = static_cast<int>(args.k);
    topk.query_budget = args.budget;
    auto iface_result = interface::TopKInterface::Create(
        &table, std::move(ranking_result).value(), topk);
    if (!iface_result.ok()) {
      std::fprintf(stderr, "interface: %s\n",
                   iface_result.status().ToString().c_str());
      return 1;
    }
    local = std::move(iface_result).value();
    source = local.get();
  }

  // --journal wraps the source in a durable write-ahead journal: answers a
  // previous (crashed or interrupted) run paid for replay locally at zero
  // backend cost, and checkpoints compact the history into snapshots.
  const std::string resolved_alg = ResolveAlgorithm(args, source->schema());
  const bool frontier_capable =
      args.band == 0 && FrontierCapable(resolved_alg);
  recovery::SessionState alg_only;
  alg_only.algorithm = resolved_alg;
  std::unique_ptr<recovery::JournalingDatabase> journal;
  if (!args.journal.empty()) {
    recovery::JournalingDatabase::Options jopts;
    jopts.sync_every = static_cast<int>(args.sync_every);
    jopts.checkpoint_every = args.checkpoint_every;
    // Frontier-capable algorithms checkpoint from their own consistent
    // boundaries (on_checkpoint below); the rest let the journal compact
    // itself between queries — any point is consistent for pure replay.
    jopts.auto_checkpoint = !frontier_capable;
    jopts.auto_checkpoint_state = recovery::EncodeSessionState(alg_only);
    if (remote) {
      service::RemoteHiddenDatabase* r = remote.get();
      jopts.seq_provider = [r] { return r->next_seq(); };
    }
    auto journal_result =
        recovery::JournalingDatabase::Open(source, args.journal, jopts);
    if (!journal_result.ok()) {
      std::fprintf(stderr, "journal: %s\n",
                   journal_result.status().ToString().c_str());
      return 1;
    }
    journal = std::move(journal_result).value();
    if (remote) {
      // Continue the wire sequence where the journal left off; a dangling
      // intent re-sends under its original number and hits the server's
      // replay cache instead of the budget.
      remote->set_next_seq(journal->next_wire_seq());
    }
    source = journal.get();
    if (journal->resumed()) {
      std::fprintf(stderr,
                   "journal : resuming %s (%lld journaled answers, epoch "
                   "%lld)\n",
                   args.journal.c_str(),
                   static_cast<long long>(journal->entries()),
                   static_cast<long long>(journal->epoch()));
    }
  }

  // --cache memoizes repeat queries before they hit the source — for a
  // remote source, before they touch the network at all. It stacks over
  // the journal: a cache hit does not even cost a journal lookup.
  std::unique_ptr<interface::ConcurrentCachingDatabase> cache;
  interface::HiddenDatabase* iface = source;
  if (args.cache) {
    cache = std::make_unique<interface::ConcurrentCachingDatabase>(source);
    if (!args.cache_file.empty()) {
      struct stat st;
      if (::stat(args.cache_file.c_str(), &st) == 0) {
        const common::Status s = cache->LoadFromFile(args.cache_file);
        if (!s.ok()) {
          std::fprintf(stderr, "cache: %s\n", s.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr, "cache   : loaded %lld entries from %s\n",
                     static_cast<long long>(cache->size()),
                     args.cache_file.c_str());
      }
    }
    iface = cache.get();
  }

  core::DiscoveryOptions common;
  common.interrupt = [] { return g_interrupt.load(); };
  if (journal && frontier_capable) {
    recovery::JournalingDatabase* j = journal.get();
    common.on_checkpoint = [j, &resolved_alg](
                               core::DiscoveryRun& run,
                               const core::FrontierSaver& save_frontier) {
      if (!j->checkpoint_due()) return;
      recovery::SessionState state;
      state.algorithm = resolved_alg;
      run.SaveState(&state.run_state);
      save_frontier(&state.frontier);
      const common::Status s =
          j->Checkpoint(recovery::EncodeSessionState(state));
      if (!s.ok()) {
        // A failed checkpoint loses nothing: the session keeps appending
        // to the current epoch and will try again.
        std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
      }
    };
  }
  if (journal && journal->resumed() && !journal->restored_state().empty()) {
    auto state_result =
        recovery::DecodeSessionState(journal->restored_state());
    if (!state_result.ok()) {
      std::fprintf(stderr, "journal: %s\n",
                   state_result.status().ToString().c_str());
      return 1;
    }
    const recovery::SessionState& state = *state_result;
    if (!state.algorithm.empty() && state.algorithm != resolved_alg) {
      std::fprintf(stderr,
                   "journal: %s belongs to algorithm '%s'; resuming it "
                   "with '%s' would diverge from the journaled queries "
                   "(rerun with --algorithm %s, or a fresh --journal "
                   "directory)\n",
                   args.journal.c_str(), state.algorithm.c_str(),
                   resolved_alg.c_str(), state.algorithm.c_str());
      return 1;
    }
    if (frontier_capable && !state.frontier.empty()) {
      // Fast-forward from the checkpointed frontier. Without one the run
      // restarts from the root and replays its paid prefix through the
      // journal — slower to walk, but equally free and equally correct.
      common.resume_run_state = state.run_state;
      common.resume_frontier = state.frontier;
    }
  }

  auto result = Run(args, iface, common);
  const bool interrupted = g_interrupt.load();
  if (journal) {
    // Final checkpoint, on success AND on interrupt/failure: everything
    // journaled so far compacts into a snapshot a later run resumes from.
    const common::Status s =
        journal->Finish(recovery::EncodeSessionState(alg_only));
    if (!s.ok()) {
      std::fprintf(stderr, "journal: final checkpoint: %s\n",
                   s.ToString().c_str());
    }
  }
  if (!result.ok()) return FailureExit(result.status(), "discovery");

  std::printf("found   : %zu %s tuples\n", result->skyline.size(),
              args.band > 0 ? "sky-band" : "skyline");
  std::printf("queries : %lld%s\n",
              static_cast<long long>(result->query_cost),
              result->complete   ? ""
              : interrupted      ? "  (interrupted: partial)"
                                 : "  (budget exhausted: partial)");
  if (!result->skyline.empty()) {
    std::printf("cost per tuple: %.2f\n",
                static_cast<double>(result->query_cost) /
                    static_cast<double>(result->skyline.size()));
  }
  if (cache) {
    std::fprintf(stderr,
                 "cache   : %lld hits, %lld misses, %lld errors\n",
                 static_cast<long long>(cache->hits()),
                 static_cast<long long>(cache->misses()),
                 static_cast<long long>(cache->errors()));
  }
  if (journal) {
    const recovery::JournalingDatabase::Stats& js = journal->stats();
    std::fprintf(stderr,
                 "journal : %lld replayed, %lld paid, %lld errors, epoch "
                 "%lld\n",
                 static_cast<long long>(js.replayed),
                 static_cast<long long>(js.paid),
                 static_cast<long long>(js.errors),
                 static_cast<long long>(journal->epoch()));
  }
  if (paged) {
    const data::BufferPool::Stats ps = paged->pool_stats();
    std::fprintf(stderr,
                 "pool    : %s path, %llu hits, %llu misses, %llu loads, "
                 "%llu evictions, %llu prefetched (%llu hit), %llu bytes "
                 "read, %llu resident bytes\n",
                 paged->pool()->read_path_name(),
                 static_cast<unsigned long long>(ps.hits),
                 static_cast<unsigned long long>(ps.misses),
                 static_cast<unsigned long long>(ps.loads),
                 static_cast<unsigned long long>(ps.evictions),
                 static_cast<unsigned long long>(ps.prefetch_loads),
                 static_cast<unsigned long long>(ps.prefetch_hits),
                 static_cast<unsigned long long>(ps.bytes_read),
                 static_cast<unsigned long long>(ps.resident_bytes));
  }
  if (remote) {
    const service::RemoteHiddenDatabase::Stats& t = remote->stats();
    std::fprintf(stderr,
                 "network : %lld remote queries, %lld retries, %lld "
                 "reconnects, %lld rate-limited, %lld B out, %lld B in, "
                 "%lld ms backoff\n",
                 static_cast<long long>(t.remote_queries),
                 static_cast<long long>(t.retries),
                 static_cast<long long>(t.reconnects),
                 static_cast<long long>(t.rate_limited),
                 static_cast<long long>(t.bytes_sent),
                 static_cast<long long>(t.bytes_received),
                 static_cast<long long>(t.backoff_ms));
  }
  if (interrupted && !args.journal.empty()) {
    std::fprintf(stderr,
                 "interrupted: rerun with --journal %s to resume\n",
                 args.journal.c_str());
  }

  if (!args.trace.empty()) {
    const common::Status s = WriteTrace(result->trace, args.trace);
    if (!s.ok()) {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace   : %s\n", args.trace.c_str());
  }

  if (!args.out.empty()) {
    data::Table out(iface->schema());
    out.Reserve(static_cast<int64_t>(result->skyline.size()));
    for (const data::Tuple& t : result->skyline) {
      const common::Status s = out.Append(t);
      if (!s.ok()) {
        std::fprintf(stderr, "collect: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const common::Status s = dataset::WriteCsv(out, args.out);
    if (!s.ok()) {
      std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote   : %s\n", args.out.c_str());
  }

  if (cache && !args.cache_file.empty()) {
    const common::Status s = cache->SaveToFile(args.cache_file);
    if (!s.ok()) {
      std::fprintf(stderr, "cache: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "cache   : saved %lld entries to %s\n",
                 static_cast<long long>(cache->size()),
                 args.cache_file.c_str());
  }
  return 0;
}
