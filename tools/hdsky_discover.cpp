// hdsky_discover — command-line skyline / sky-band discovery.
//
// Runs the paper's algorithms against a dataset loaded from a
// self-describing CSV (see dataset/csv.h) or one of the built-in
// simulators, through a simulated top-k interface. Prints a summary and
// optionally writes the discovered tuples as CSV.
//
//   hdsky_discover --data listings.csv --algorithm mq --k 50
//   hdsky_discover --demo bluenile --k 50 --out skyline.csv
//   hdsky_discover --demo flights --n 100000 --algorithm rq --budget 500
//   hdsky_discover --demo autos --band 2
//
// Flags:
//   --data PATH         input CSV (mutually exclusive with --demo)
//   --demo NAME         flights | bluenile | autos | route
//   --n N               demo dataset size (default: the paper's)
//   --algorithm A       auto | sq | rq | pq | mq | baseline  (default auto)
//   --k K               page size of the interface (default 10)
//   --ranking R         sum | lex:<attr_name>        (default sum)
//   --budget B          query budget; 0 = unlimited  (default 0)
//   --band H            discover the top-H sky band instead (RQ/PQ only)
//   --out PATH          write discovered tuples as CSV
//   --seed S            generator seed for --demo
//   --trials T          run T independent trials (seeds S..S+T-1; --demo)
//   --threads W         workers for --trials (default $HDSKY_THREADS)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/baseline_crawler.h"
#include "core/mq_db_sky.h"
#include "core/pq_db_sky.h"
#include "core/rq_db_sky.h"
#include "core/skyband_discovery.h"
#include "core/sq_db_sky.h"
#include "dataset/blue_nile.h"
#include "dataset/csv.h"
#include "dataset/flights_on_time.h"
#include "dataset/google_flights.h"
#include "dataset/yahoo_autos.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace {

using namespace hdsky;

struct Args {
  std::string data;
  std::string demo;
  int64_t n = 0;
  std::string algorithm = "auto";
  int k = 10;
  std::string ranking = "sum";
  int64_t budget = 0;
  int band = 0;
  std::string out;
  uint64_t seed = 42;
  int trials = 1;
  int threads = 0;  // 0 = take $HDSKY_THREADS
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hdsky_discover (--data PATH | --demo NAME) [options]\n"
      "  --demo NAME       flights | bluenile | autos | route\n"
      "  --n N             demo dataset size\n"
      "  --algorithm A     auto | sq | rq | pq | mq | baseline\n"
      "  --k K             interface page size (default 10)\n"
      "  --ranking R       sum | lex:<attr_name>\n"
      "  --budget B        query budget (0 = unlimited)\n"
      "  --band H          discover the top-H sky band (RQ/PQ)\n"
      "  --out PATH        write discovered tuples as CSV\n"
      "  --seed S          demo generator seed\n"
      "  --trials T        independent trials, seeds S..S+T-1 (--demo)\n"
      "  --threads W       workers for --trials (default $HDSKY_THREADS)\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    std::string value;
    if (flag == "--data" && need_value(&value)) {
      args->data = value;
    } else if (flag == "--demo" && need_value(&value)) {
      args->demo = value;
    } else if (flag == "--n" && need_value(&value)) {
      args->n = std::atoll(value.c_str());
    } else if (flag == "--algorithm" && need_value(&value)) {
      args->algorithm = value;
    } else if (flag == "--k" && need_value(&value)) {
      args->k = std::atoi(value.c_str());
    } else if (flag == "--ranking" && need_value(&value)) {
      args->ranking = value;
    } else if (flag == "--budget" && need_value(&value)) {
      args->budget = std::atoll(value.c_str());
    } else if (flag == "--band" && need_value(&value)) {
      args->band = std::atoi(value.c_str());
    } else if (flag == "--out" && need_value(&value)) {
      args->out = value;
    } else if (flag == "--seed" && need_value(&value)) {
      args->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--trials" && need_value(&value)) {
      args->trials = std::atoi(value.c_str());
    } else if (flag == "--threads" && need_value(&value)) {
      args->threads = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                   flag.c_str());
      return false;
    }
  }
  if (args->data.empty() == args->demo.empty()) {
    std::fprintf(stderr, "exactly one of --data / --demo is required\n");
    return false;
  }
  if (args->trials < 1) {
    std::fprintf(stderr, "--trials must be >= 1\n");
    return false;
  }
  if (args->trials > 1 && args->demo.empty()) {
    std::fprintf(stderr, "--trials needs --demo (seeds vary per trial)\n");
    return false;
  }
  return true;
}

common::Result<data::Table> LoadTable(const Args& args) {
  if (!args.data.empty()) return dataset::ReadCsv(args.data);
  if (args.demo == "flights") {
    dataset::FlightsOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateFlightsOnTime(o);
  }
  if (args.demo == "bluenile") {
    dataset::BlueNileOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateBlueNile(o);
  }
  if (args.demo == "autos") {
    dataset::YahooAutosOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateYahooAutos(o);
  }
  if (args.demo == "route") {
    dataset::GoogleFlightsOptions o;
    if (args.n > 0) o.num_flights = args.n;
    o.seed = args.seed;
    return dataset::GenerateRoute(o);
  }
  return common::Status::InvalidArgument("unknown demo '" + args.demo +
                                         "'");
}

common::Result<std::shared_ptr<interface::RankingPolicy>> MakeRanking(
    const Args& args, const data::Schema& schema) {
  if (args.ranking == "sum") {
    return interface::MakeSumRanking();
  }
  if (args.ranking.rfind("lex:", 0) == 0) {
    const std::string name = args.ranking.substr(4);
    HDSKY_ASSIGN_OR_RETURN(const int attr, schema.IndexOf(name));
    return interface::MakeLexicographicRanking({attr});
  }
  return common::Status::InvalidArgument("unknown ranking '" +
                                         args.ranking + "'");
}

common::Result<core::DiscoveryResult> Run(const Args& args,
                                          interface::TopKInterface* iface) {
  if (args.band > 0) {
    core::SkybandOptions opts;
    opts.band = args.band;
    // Pick by interface mix: PQ-only schemas use the PQ extension.
    const bool any_range =
        !iface->schema()
             .RankingAttributesWithInterface(data::InterfaceType::kRQ)
             .empty();
    return any_range ? core::RqDbSkyband(iface, opts)
                     : core::PqDbSkyband(iface, opts);
  }
  const std::string& a = args.algorithm;
  if (a == "auto" || a == "mq") return core::MqDbSky(iface);
  if (a == "sq") return core::SqDbSky(iface);
  if (a == "rq") return core::RqDbSky(iface);
  if (a == "pq") return core::PqDbSky(iface);
  if (a == "baseline") return core::BaselineSkyline(iface);
  return common::Status::InvalidArgument("unknown algorithm '" + a + "'");
}

// Fans --trials independent discoveries (seed, seed+1, ...) across
// --threads workers. Each trial owns its table, ranking, and interface,
// so the per-trial numbers are identical at every worker count.
int RunTrials(const Args& args) {
  struct Trial {
    bool ok = false;
    std::string error;
    int64_t cost = 0;
    size_t found = 0;
    bool complete = false;
  };
  const int threads =
      args.threads > 0 ? args.threads : runtime::EnvThreadCount();
  std::vector<Trial> trials(static_cast<size_t>(args.trials));
  runtime::ParallelFor(threads, 0, args.trials, [&](int64_t i) {
    Args trial_args = args;
    trial_args.seed = args.seed + static_cast<uint64_t>(i);
    Trial& out = trials[static_cast<size_t>(i)];
    auto table = LoadTable(trial_args);
    if (!table.ok()) {
      out.error = table.status().ToString();
      return;
    }
    auto ranking = MakeRanking(trial_args, table->schema());
    if (!ranking.ok()) {
      out.error = ranking.status().ToString();
      return;
    }
    interface::TopKOptions topk;
    topk.k = trial_args.k;
    topk.query_budget = trial_args.budget;
    auto iface = interface::TopKInterface::Create(
        &*table, std::move(ranking).value(), topk);
    if (!iface.ok()) {
      out.error = iface.status().ToString();
      return;
    }
    auto result = Run(trial_args, iface->get());
    if (!result.ok()) {
      out.error = result.status().ToString();
      return;
    }
    out.ok = true;
    out.cost = result->query_cost;
    out.found = result->skyline.size();
    out.complete = result->complete;
  });

  int64_t total_cost = 0;
  for (int i = 0; i < args.trials; ++i) {
    const Trial& t = trials[static_cast<size_t>(i)];
    if (!t.ok) {
      std::fprintf(stderr, "trial %d (seed %llu): %s\n", i,
                   static_cast<unsigned long long>(
                       args.seed + static_cast<uint64_t>(i)),
                   t.error.c_str());
      return 1;
    }
    std::printf("trial %d: seed %llu  found %zu  queries %lld%s\n", i,
                static_cast<unsigned long long>(
                    args.seed + static_cast<uint64_t>(i)),
                t.found, static_cast<long long>(t.cost),
                t.complete ? "" : "  (partial)");
    total_cost += t.cost;
  }
  // stdout stays byte-identical at every worker count; the worker note
  // goes to stderr.
  std::printf("mean queries over %d trials: %.2f\n", args.trials,
              static_cast<double>(total_cost) /
                  static_cast<double>(args.trials));
  std::fprintf(stderr, "(ran on %d worker%s)\n", threads,
               threads == 1 ? "" : "s");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 64;
  }

  if (args.trials > 1) return RunTrials(args);

  auto table_result = LoadTable(args);
  if (!table_result.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const data::Table table = std::move(table_result).value();
  std::printf("dataset : %lld tuples, %s\n",
              static_cast<long long>(table.num_rows()),
              table.schema().ToString().c_str());

  auto ranking_result = MakeRanking(args, table.schema());
  if (!ranking_result.ok()) {
    std::fprintf(stderr, "ranking: %s\n",
                 ranking_result.status().ToString().c_str());
    return 1;
  }
  interface::TopKOptions topk;
  topk.k = args.k;
  topk.query_budget = args.budget;
  auto iface_result = interface::TopKInterface::Create(
      &table, std::move(ranking_result).value(), topk);
  if (!iface_result.ok()) {
    std::fprintf(stderr, "interface: %s\n",
                 iface_result.status().ToString().c_str());
    return 1;
  }
  auto iface = std::move(iface_result).value();

  auto result = Run(args, iface.get());
  if (!result.ok()) {
    std::fprintf(stderr, "discovery: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("found   : %zu %s tuples\n", result->skyline.size(),
              args.band > 0 ? "sky-band" : "skyline");
  std::printf("queries : %lld%s\n",
              static_cast<long long>(result->query_cost),
              result->complete ? "" : "  (budget exhausted: partial)");
  if (!result->skyline.empty()) {
    std::printf("cost per tuple: %.2f\n",
                static_cast<double>(result->query_cost) /
                    static_cast<double>(result->skyline.size()));
  }

  if (!args.out.empty()) {
    data::Table out(table.schema());
    out.Reserve(static_cast<int64_t>(result->skyline.size()));
    for (const data::Tuple& t : result->skyline) {
      const common::Status s = out.Append(t);
      if (!s.ok()) {
        std::fprintf(stderr, "collect: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const common::Status s = dataset::WriteCsv(out, args.out);
    if (!s.ok()) {
      std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote   : %s\n", args.out.c_str());
  }
  return 0;
}
