// hdsky_serve — expose a hidden database over the hdsky wire protocol.
//
// Loads a dataset (CSV or one of the built-in simulators), wraps it in a
// TopKInterface with the chosen ranking/page-size/budget, and serves it on
// a TCP port so hdsky_discover --connect (or any RemoteHiddenDatabase
// client) can run discovery against a genuinely remote interface.
//
//   hdsky_serve --demo bluenile --n 100000 --k 50 --port 7447
//   hdsky_serve --data listings.csv --k 10 --port 0        # ephemeral port
//   hdsky_serve --demo flights --client-budget 500         # per-session cap
//
// Flags:
//   --data PATH            input CSV (one source: --data | --demo |
//                          --dataset-file)
//   --demo NAME            flights | bluenile | autos | route
//   --dataset-file FILE    packed block file written by hdsky_pack; the
//                          server answers out-of-core through the buffer
//                          pool (--ranking is rejected: the rank order
//                          is baked into the file at pack time)
//   --buffer-pool-bytes N  resident-memory budget for --dataset-file
//                          (default 256 MiB)
//   --n N                  demo dataset size (default: the paper's)
//   --k K                  page size of the interface (default 10)
//   --ranking R            sum | lex:<attr_name>   (default sum)
//   --budget B             backend-wide query budget (0 = unlimited)
//   --client-budget B      per-client-session budget (0 = unlimited)
//   --seed S               generator seed for --demo
//   --port P               TCP port; 0 picks an ephemeral one (default 0)
//   --bind ADDR            IPv4 bind address (default 127.0.0.1)
//   --max-connections C    concurrent connections served (default 8 for
//                          the threaded engine, 4096 for epoll)
//   --engine E             epoll (event-driven, default) | threaded
//                          (the original thread-per-connection server)
//   --loops L              epoll event-loop threads (0 = auto)
//   --workers W            epoll backend executor threads (0 = auto)
//   --no-shared-cache      disable the cross-session query cache (epoll)
//   --max-pending P        backend admission limit before BUSY (epoll)
//   --idle-timeout-ms T    idle connection eviction, 0 = never (epoll)
//
// Prints exactly one "listening on ADDR:PORT" line to stdout once ready
// (scripts parse it to learn an ephemeral port), then serves until
// SIGINT/SIGTERM, finally printing access statistics to stderr.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "data/paged_table.h"
#include "dataset/blue_nile.h"
#include "dataset/csv.h"
#include "dataset/flights_on_time.h"
#include "dataset/google_flights.h"
#include "dataset/yahoo_autos.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "service/event_server.h"
#include "service/server.h"

namespace {

using namespace hdsky;

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

struct Args {
  std::string data;
  std::string demo;
  std::string dataset_file;
  int64_t buffer_pool_bytes = 0;  // 0 = PagedTableOptions default
  std::string read_path = "mmap";
  bool read_path_set = false;
  int64_t readahead_pages = 8;
  bool readahead_set = false;
  bool ranking_set = false;
  int64_t n = 0;
  int64_t k = 10;
  std::string ranking = "sum";
  int64_t budget = 0;
  int64_t client_budget = 0;
  uint64_t seed = 42;
  int64_t port = 0;
  std::string bind = "127.0.0.1";
  int64_t max_connections = -1;  // engine-dependent default
  std::string engine = "epoll";
  int64_t loops = 0;
  int64_t workers = 0;
  bool shared_cache = true;
  int64_t max_pending = 1024;
  int64_t idle_timeout_ms = 60000;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hdsky_serve (--data PATH | --demo NAME | --dataset-file "
      "FILE) [options]\n"
      "  --demo NAME          flights | bluenile | autos | route\n"
      "  --dataset-file FILE  packed block file (hdsky_pack); serves "
      "out-of-core\n"
      "  --buffer-pool-bytes N\n"
      "                       resident budget for --dataset-file "
      "(default 256 MiB)\n"
      "  --read-path P        mmap | pread page fetch for --dataset-file "
      "(default mmap)\n"
      "  --readahead-pages N  pread readahead depth, 0 disables "
      "(default 8)\n"
      "  --n N                demo dataset size\n"
      "  --k K                interface page size (default 10)\n"
      "  --ranking R          sum | lex:<attr_name>\n"
      "  --budget B           backend query budget (0 = unlimited)\n"
      "  --client-budget B    per-client-session budget (0 = unlimited)\n"
      "  --seed S             demo generator seed\n"
      "  --port P             TCP port, 0 = ephemeral (default 0)\n"
      "  --bind ADDR          IPv4 bind address (default 127.0.0.1)\n"
      "  --max-connections C  concurrent connections (default: 8\n"
      "                       threaded, 4096 epoll)\n"
      "  --engine E           epoll (default) | threaded\n"
      "  --loops L            epoll event-loop threads (0 = auto)\n"
      "  --workers W          epoll backend workers (0 = auto)\n"
      "  --no-shared-cache    disable the cross-session query cache\n"
      "  --max-pending P      backend admission limit (default 1024)\n"
      "  --idle-timeout-ms T  idle eviction, 0 = never (default 60000)\n");
}

/// Strict integer parse: the whole token must be a number in [min, max].
bool ParseInt(const std::string& s, int64_t min, int64_t max, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    auto int_flag = [&](int64_t min, int64_t max, int64_t* dst) {
      std::string value;
      if (!need_value(&value) || !ParseInt(value, min, max, dst)) {
        std::fprintf(stderr, "invalid value for %s\n", flag.c_str());
        return false;
      }
      return true;
    };
    std::string value;
    if (flag == "--data" && need_value(&value)) {
      args->data = value;
    } else if (flag == "--demo" && need_value(&value)) {
      args->demo = value;
    } else if (flag == "--dataset-file" && need_value(&value)) {
      args->dataset_file = value;
    } else if (flag == "--buffer-pool-bytes") {
      if (!int_flag(1, INT64_MAX, &args->buffer_pool_bytes)) return false;
    } else if (flag == "--read-path" && need_value(&value)) {
      data::ReadPathKind kind;
      if (!data::ParseReadPathKind(value, &kind)) {
        std::fprintf(stderr, "invalid value for --read-path: %s\n",
                     value.c_str());
        return false;
      }
      args->read_path = value;
      args->read_path_set = true;
    } else if (flag == "--readahead-pages") {
      if (!int_flag(0, 1 << 16, &args->readahead_pages)) return false;
      args->readahead_set = true;
    } else if (flag == "--n") {
      if (!int_flag(1, INT64_MAX, &args->n)) return false;
    } else if (flag == "--k") {
      if (!int_flag(1, 1000000, &args->k)) return false;
    } else if (flag == "--ranking" && need_value(&value)) {
      args->ranking = value;
      args->ranking_set = true;
    } else if (flag == "--budget") {
      if (!int_flag(0, INT64_MAX, &args->budget)) return false;
    } else if (flag == "--client-budget") {
      if (!int_flag(0, INT64_MAX, &args->client_budget)) return false;
    } else if (flag == "--seed") {
      int64_t seed;
      if (!int_flag(0, INT64_MAX, &seed)) return false;
      args->seed = static_cast<uint64_t>(seed);
    } else if (flag == "--port") {
      if (!int_flag(0, 65535, &args->port)) return false;
    } else if (flag == "--bind" && need_value(&value)) {
      args->bind = value;
    } else if (flag == "--max-connections") {
      if (!int_flag(1, 65536, &args->max_connections)) return false;
    } else if (flag == "--engine" && need_value(&value)) {
      if (value != "epoll" && value != "threaded") {
        std::fprintf(stderr, "unknown engine '%s'\n", value.c_str());
        return false;
      }
      args->engine = value;
    } else if (flag == "--loops") {
      if (!int_flag(0, 256, &args->loops)) return false;
    } else if (flag == "--workers") {
      if (!int_flag(0, 256, &args->workers)) return false;
    } else if (flag == "--no-shared-cache") {
      args->shared_cache = false;
    } else if (flag == "--max-pending") {
      if (!int_flag(0, 1000000, &args->max_pending)) return false;
    } else if (flag == "--idle-timeout-ms") {
      if (!int_flag(0, INT64_MAX, &args->idle_timeout_ms)) return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                   flag.c_str());
      return false;
    }
  }
  const int sources = (!args->data.empty() ? 1 : 0) +
                      (!args->demo.empty() ? 1 : 0) +
                      (!args->dataset_file.empty() ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr,
                 "exactly one of --data / --demo / --dataset-file is "
                 "required\n");
    return false;
  }
  if (args->buffer_pool_bytes > 0 && args->dataset_file.empty()) {
    std::fprintf(stderr, "--buffer-pool-bytes requires --dataset-file\n");
    return false;
  }
  if ((args->read_path_set || args->readahead_set) &&
      args->dataset_file.empty()) {
    std::fprintf(stderr,
                 "--read-path / --readahead-pages require "
                 "--dataset-file\n");
    return false;
  }
  if (!args->dataset_file.empty() && args->ranking_set) {
    std::fprintf(stderr,
                 "--ranking is baked into a packed --dataset-file at "
                 "pack time\n");
    return false;
  }
  return true;
}

common::Result<data::Table> LoadTable(const Args& args) {
  if (!args.data.empty()) return dataset::ReadCsv(args.data);
  if (args.demo == "flights") {
    dataset::FlightsOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateFlightsOnTime(o);
  }
  if (args.demo == "bluenile") {
    dataset::BlueNileOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateBlueNile(o);
  }
  if (args.demo == "autos") {
    dataset::YahooAutosOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateYahooAutos(o);
  }
  if (args.demo == "route") {
    dataset::GoogleFlightsOptions o;
    if (args.n > 0) o.num_flights = args.n;
    o.seed = args.seed;
    return dataset::GenerateRoute(o);
  }
  return common::Status::InvalidArgument("unknown demo '" + args.demo +
                                         "'");
}

common::Result<std::shared_ptr<interface::RankingPolicy>> MakeRanking(
    const Args& args, const data::Schema& schema) {
  if (args.ranking == "sum") return interface::MakeSumRanking();
  if (args.ranking.rfind("lex:", 0) == 0) {
    HDSKY_ASSIGN_OR_RETURN(const int attr,
                           schema.IndexOf(args.ranking.substr(4)));
    return interface::MakeLexicographicRanking({attr});
  }
  return common::Status::InvalidArgument("unknown ranking '" +
                                         args.ranking + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 64;
  }

  data::Table table;  // local in-memory sources only
  std::unique_ptr<data::PagedTable> paged;  // --dataset-file only
  std::unique_ptr<interface::TopKInterface> iface;
  interface::TopKOptions topk;
  topk.k = static_cast<int>(args.k);
  topk.query_budget = args.budget;
  if (!args.dataset_file.empty()) {
    data::PagedTableOptions popts;
    if (args.buffer_pool_bytes > 0) {
      popts.buffer_pool_bytes =
          static_cast<size_t>(args.buffer_pool_bytes);
    }
    data::ParseReadPathKind(args.read_path, &popts.read_path);
    popts.readahead_pages = static_cast<int>(args.readahead_pages);
    auto paged_result = data::Table::OpenPaged(args.dataset_file, popts);
    if (!paged_result.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   paged_result.status().ToString().c_str());
      return 1;
    }
    paged = std::move(paged_result).value();
    if (paged->pool()->budget_was_clamped()) {
      std::fprintf(
          stderr,
          "warning: --buffer-pool-bytes %llu below one page; effective "
          "budget %llu bytes\n",
          static_cast<unsigned long long>(
              paged->pool()->requested_budget_bytes()),
          static_cast<unsigned long long>(paged->pool()->budget_bytes()));
    }
    auto iface_result =
        interface::TopKInterface::CreatePaged(paged.get(), topk);
    if (!iface_result.ok()) {
      std::fprintf(stderr, "interface: %s\n",
                   iface_result.status().ToString().c_str());
      return 1;
    }
    iface = std::move(iface_result).value();
  } else {
    auto table_result = LoadTable(args);
    if (!table_result.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   table_result.status().ToString().c_str());
      return 1;
    }
    table = std::move(table_result).value();

    auto ranking_result = MakeRanking(args, table.schema());
    if (!ranking_result.ok()) {
      std::fprintf(stderr, "ranking: %s\n",
                   ranking_result.status().ToString().c_str());
      return 1;
    }
    auto iface_result = interface::TopKInterface::Create(
        &table, std::move(ranking_result).value(), topk);
    if (!iface_result.ok()) {
      std::fprintf(stderr, "interface: %s\n",
                   iface_result.status().ToString().c_str());
      return 1;
    }
    iface = std::move(iface_result).value();
  }

  // TopKInterface with a static-order ranking is thread-safe (see
  // docs/concurrency.md); both built-in rankings qualify, so connections
  // may hit the backend concurrently.
  std::unique_ptr<service::DatabaseServer> threaded_server;
  std::unique_ptr<service::EventDrivenServer> epoll_server;
  uint16_t bound_port = 0;
  if (args.engine == "threaded") {
    service::DatabaseServer::Options server_options;
    server_options.bind_address = args.bind;
    server_options.port = static_cast<uint16_t>(args.port);
    server_options.max_connections = static_cast<int>(
        args.max_connections < 0 ? 8 : args.max_connections);
    server_options.per_client_query_budget = args.client_budget;
    server_options.serialize_backend = false;
    auto server_result =
        service::DatabaseServer::Start(iface.get(), server_options);
    if (!server_result.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   server_result.status().ToString().c_str());
      return 1;
    }
    threaded_server = std::move(server_result).value();
    bound_port = threaded_server->port();
  } else {
    service::EventDrivenServer::Options server_options;
    server_options.bind_address = args.bind;
    server_options.port = static_cast<uint16_t>(args.port);
    server_options.max_connections = static_cast<int>(
        args.max_connections < 0 ? 4096 : args.max_connections);
    server_options.per_client_query_budget = args.client_budget;
    server_options.num_loops = static_cast<int>(args.loops);
    server_options.num_workers = static_cast<int>(args.workers);
    server_options.shared_cache = args.shared_cache;
    server_options.max_pending_queries = static_cast<int>(args.max_pending);
    server_options.idle_timeout_ms = static_cast<int>(args.idle_timeout_ms);
    server_options.serialize_backend = false;
    auto server_result =
        service::EventDrivenServer::Start(iface.get(), server_options);
    if (!server_result.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   server_result.status().ToString().c_str());
      return 1;
    }
    epoll_server = std::move(server_result).value();
    bound_port = epoll_server->port();
  }

  if (paged != nullptr) {
    std::fprintf(stderr,
                 "dataset : %lld tuples (paged, ranking %s, pool %lld "
                 "bytes), %s\n",
                 static_cast<long long>(paged->num_rows()),
                 paged->ranking_name().c_str(),
                 static_cast<long long>(paged->pool()->budget_bytes()),
                 paged->schema().ToString().c_str());
  } else {
    std::fprintf(stderr, "dataset : %lld tuples, %s\n",
                 static_cast<long long>(table.num_rows()),
                 table.schema().ToString().c_str());
  }
  std::fprintf(stderr, "engine  : %s\n", args.engine.c_str());
  std::printf("listening on %s:%u\n", args.bind.c_str(), bound_port);
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (threaded_server != nullptr) {
    threaded_server->Stop();
    const service::DatabaseServer::Stats stats = threaded_server->stats();
    std::fprintf(stderr,
                 "served  : %lld queries (%lld replayed, %lld budget "
                 "rejections) over %lld connections (%lld rejected)\n",
                 static_cast<long long>(stats.queries_served),
                 static_cast<long long>(stats.queries_replayed),
                 static_cast<long long>(stats.budget_rejections),
                 static_cast<long long>(stats.connections_accepted),
                 static_cast<long long>(stats.connections_rejected));
  } else {
    epoll_server->Stop();
    const service::EventDrivenServer::Stats stats = epoll_server->stats();
    std::fprintf(stderr,
                 "served  : %lld queries (%lld replayed, %lld budget "
                 "rejections, %lld busy) over %lld connections "
                 "(%lld rejected, %lld shed)\n",
                 static_cast<long long>(stats.queries_served),
                 static_cast<long long>(stats.queries_replayed),
                 static_cast<long long>(stats.budget_rejections),
                 static_cast<long long>(stats.busy_rejections),
                 static_cast<long long>(stats.connections_accepted),
                 static_cast<long long>(stats.connections_rejected),
                 static_cast<long long>(stats.connections_shed));
    std::fprintf(stderr,
                 "cache   : %lld hits, %lld single-flight joins, %lld "
                 "backend executions\n",
                 static_cast<long long>(stats.cache_hits),
                 static_cast<long long>(stats.singleflight_joins),
                 static_cast<long long>(stats.backend_executions));
  }
  const interface::AccessStats access = iface->stats();
  std::fprintf(stderr, "backend : %lld queries issued, %lld tuples returned\n",
               static_cast<long long>(access.queries_issued),
               static_cast<long long>(access.tuples_returned));
  if (paged != nullptr) {
    const data::BufferPool::Stats ps = paged->pool_stats();
    std::fprintf(stderr,
                 "pool    : %s path, %llu hits, %llu misses, %llu loads, "
                 "%llu evictions, %llu prefetched (%llu hit), %llu bytes "
                 "read, %llu resident bytes\n",
                 paged->pool()->read_path_name(),
                 static_cast<unsigned long long>(ps.hits),
                 static_cast<unsigned long long>(ps.misses),
                 static_cast<unsigned long long>(ps.loads),
                 static_cast<unsigned long long>(ps.evictions),
                 static_cast<unsigned long long>(ps.prefetch_loads),
                 static_cast<unsigned long long>(ps.prefetch_hits),
                 static_cast<unsigned long long>(ps.bytes_read),
                 static_cast<unsigned long long>(ps.resident_bytes));
  }
  return 0;
}
