// hdsky_pack — streaming STR bulk load of a dataset into a paged block
// file (data/block_file.h) that hdsky_serve / hdsky_discover can open
// out-of-core via --dataset-file.
//
// Loads a dataset (CSV or a built-in simulator), binds the chosen
// static-order ranking, and writes the table in rank order — header,
// PAX data pages, zone-map index levels — through the atomic
// temp+fsync+rename path, so a crash never leaves a half-written file.
//
//   hdsky_pack --demo bluenile --n 1000000 --out bluenile.hdb
//   hdsky_pack --data listings.csv --ranking lex:price --out listings.hdb
//
// Flags:
//   --data PATH           input CSV (mutually exclusive with --demo)
//   --demo NAME           flights | bluenile | autos | route
//   --out FILE            output block file (required)
//   --n N                 demo dataset size (default: the paper's)
//   --seed S              generator seed for --demo
//   --ranking R           sum | lex:<attr_name>   (default sum)
//   --rows-per-block B    rows per data page (default 4096)
//   --compress MODE       auto (format v2, per-run FOR/delta/dict
//                         encoding; default) | off (format v1 raw)
//   --stats               print pages, zone-map levels, bytes/row, and
//                         per-attribute compression ratios after packing
//
// Prints one summary line to stderr and exits 0 on success; exit 64 on
// usage errors (including --compress with a value type the encoders do
// not support), 1 on load/pack failures.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "data/block_file.h"
#include "dataset/blue_nile.h"
#include "dataset/csv.h"
#include "dataset/flights_on_time.h"
#include "dataset/google_flights.h"
#include "dataset/pack.h"
#include "dataset/yahoo_autos.h"
#include "interface/ranking.h"

namespace {

using namespace hdsky;

struct Args {
  std::string data;
  std::string demo;
  std::string out;
  int64_t n = 0;
  uint64_t seed = 42;
  std::string ranking = "sum";
  int64_t rows_per_block = 4096;
  std::string compress = "auto";
  bool stats = false;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hdsky_pack (--data PATH | --demo NAME) --out FILE [options]\n"
      "  --demo NAME         flights | bluenile | autos | route\n"
      "  --out FILE          output block file (required)\n"
      "  --n N               demo dataset size\n"
      "  --seed S            demo generator seed\n"
      "  --ranking R         sum | lex:<attr_name>   (default sum)\n"
      "  --rows-per-block B  rows per data page (default 4096)\n"
      "  --compress MODE     auto (format v2, default) | off (format v1)\n"
      "  --stats             print page/level/compression stats\n");
}

/// Strict integer parse: the whole token must be a number in [min, max].
bool ParseInt(const std::string& s, int64_t min, int64_t max, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    auto int_flag = [&](int64_t min, int64_t max, int64_t* dst) {
      std::string value;
      if (!need_value(&value) || !ParseInt(value, min, max, dst)) {
        std::fprintf(stderr, "invalid value for %s\n", flag.c_str());
        return false;
      }
      return true;
    };
    std::string value;
    if (flag == "--data" && need_value(&value)) {
      args->data = value;
    } else if (flag == "--demo" && need_value(&value)) {
      args->demo = value;
    } else if (flag == "--out" && need_value(&value)) {
      args->out = value;
    } else if (flag == "--n") {
      if (!int_flag(1, INT64_MAX, &args->n)) return false;
    } else if (flag == "--seed") {
      int64_t seed;
      if (!int_flag(0, INT64_MAX, &seed)) return false;
      args->seed = static_cast<uint64_t>(seed);
    } else if (flag == "--ranking" && need_value(&value)) {
      args->ranking = value;
    } else if (flag == "--rows-per-block") {
      if (!int_flag(1, 1 << 20, &args->rows_per_block)) return false;
    } else if (flag == "--compress" && need_value(&value)) {
      if (value != "auto" && value != "off") {
        std::fprintf(stderr, "invalid value for --compress: %s\n",
                     value.c_str());
        return false;
      }
      args->compress = value;
    } else if (flag == "--stats") {
      args->stats = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                   flag.c_str());
      return false;
    }
  }
  if (args->data.empty() == args->demo.empty()) {
    std::fprintf(stderr, "exactly one of --data / --demo is required\n");
    return false;
  }
  if (args->out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return false;
  }
  return true;
}

common::Result<data::Table> LoadTable(const Args& args) {
  if (!args.data.empty()) return dataset::ReadCsv(args.data);
  if (args.demo == "flights") {
    dataset::FlightsOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateFlightsOnTime(o);
  }
  if (args.demo == "bluenile") {
    dataset::BlueNileOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateBlueNile(o);
  }
  if (args.demo == "autos") {
    dataset::YahooAutosOptions o;
    if (args.n > 0) o.num_tuples = args.n;
    o.seed = args.seed;
    return dataset::GenerateYahooAutos(o);
  }
  if (args.demo == "route") {
    dataset::GoogleFlightsOptions o;
    if (args.n > 0) o.num_flights = args.n;
    o.seed = args.seed;
    return dataset::GenerateRoute(o);
  }
  return common::Status::InvalidArgument("unknown demo '" + args.demo +
                                         "'");
}

common::Result<std::shared_ptr<interface::RankingPolicy>> MakeRanking(
    const Args& args, const data::Schema& schema) {
  if (args.ranking == "sum") return interface::MakeSumRanking();
  if (args.ranking.rfind("lex:", 0) == 0) {
    HDSKY_ASSIGN_OR_RETURN(const int attr,
                           schema.IndexOf(args.ranking.substr(4)));
    return interface::MakeLexicographicRanking({attr});
  }
  return common::Status::InvalidArgument("unknown ranking '" +
                                         args.ranking + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 64;
  }

  auto table_result = LoadTable(args);
  if (!table_result.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const data::Table table = std::move(table_result).value();

  auto ranking_result = MakeRanking(args, table.schema());
  if (!ranking_result.ok()) {
    std::fprintf(stderr, "ranking: %s\n",
                 ranking_result.status().ToString().c_str());
    return 1;
  }

  data::BlockFileOptions options;
  options.rows_per_block = args.rows_per_block;
  options.compression = args.compress == "off" ? data::Compression::kOff
                                               : data::Compression::kAuto;
  if (options.compression == data::Compression::kAuto) {
    // The per-run encoders operate on bounded int64 rank codes; an
    // attribute with an inverted domain has no representable value
    // range and cannot be compressed.
    for (int a = 0; a < table.schema().num_attributes(); ++a) {
      const data::AttributeSpec& spec = table.schema().attribute(a);
      if (spec.domain_min > spec.domain_max) {
        std::fprintf(stderr,
                     "--compress=auto: attribute %s has an unsupported "
                     "value type (inverted domain); use --compress=off\n",
                     spec.name.c_str());
        return 64;
      }
    }
  }
  data::BlockFileWriteStats stats;
  auto packed = dataset::PackTable(table, std::move(ranking_result).value(),
                                   args.out, options, &stats);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack: %s\n",
                 packed.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "packed  : %lld rows (%s, ranking %s) -> %s\n",
               static_cast<long long>(packed.value()),
               table.schema().ToString().c_str(), args.ranking.c_str(),
               args.out.c_str());
  if (args.stats) {
    const double rows = stats.rows > 0 ? static_cast<double>(stats.rows)
                                       : 1.0;
    std::fprintf(stderr,
                 "stats   : %lld data pages + %lld index pages, %d "
                 "zone-map levels, %.1f bytes/row on disk (%.1f logical)\n",
                 static_cast<long long>(stats.data_pages),
                 static_cast<long long>(stats.index_pages),
                 stats.num_index_levels,
                 static_cast<double>(stats.file_bytes) / rows,
                 static_cast<double>(stats.raw_payload_bytes()) / rows);
    for (size_t c = 0; c < stats.columns.size(); ++c) {
      const auto& col = stats.columns[c];
      const char* name =
          c == 0 ? "<tuple id>"
                 : table.schema()
                       .attribute(static_cast<int>(c) - 1)
                       .name.c_str();
      const double ratio =
          col.encoded_bytes > 0
              ? static_cast<double>(col.raw_bytes) /
                    static_cast<double>(col.encoded_bytes)
              : 1.0;
      std::fprintf(stderr,
                   "stats   :   %-12s %10llu B -> %10llu B (%.2fx)\n",
                   name, static_cast<unsigned long long>(col.raw_bytes),
                   static_cast<unsigned long long>(col.encoded_bytes),
                   ratio);
    }
  }
  return 0;
}
