#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace hdsky {
namespace net {

using common::Result;
using common::Status;

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

Status SetBlocking(int fd, bool blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (fcntl(fd, F_SETFL, want) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

timeval MillisToTimeval(int ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int gai = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(gai));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    Socket sock(fd);
    // Non-blocking connect with a poll-based deadline, then back to
    // blocking mode for the frame I/O.
    Status s = SetBlocking(fd, false);
    if (!s.ok()) {
      last = s;
      continue;
    }
    int rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      last = ErrnoStatus("connect " + host + ":" + port_str, errno);
      continue;
    }
    if (rc != 0) {
      pollfd pfd{fd, POLLOUT, 0};
      do {
        rc = poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        last = Status::IOError("connect " + host + ":" + port_str +
                               " timed out");
        continue;
      }
      if (rc < 0) {
        last = ErrnoStatus("poll", errno);
        continue;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
          err != 0) {
        last = ErrnoStatus("connect " + host + ":" + port_str,
                           err != 0 ? err : errno);
        continue;
      }
    }
    s = SetBlocking(fd, true);
    if (!s.ok()) {
      last = s;
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    freeaddrinfo(res);
    return sock;
  }
  freeaddrinfo(res);
  return last;
}

Status Socket::SetIoTimeout(int ms) {
  if (!valid()) return Status::IOError("socket is closed");
  const timeval tv = MillisToTimeval(ms);
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)", errno);
  }
  if (setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return ErrnoStatus("setsockopt(SO_SNDTIMEO)", errno);
  }
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t len) {
  if (!valid()) return Status::IOError("socket is closed");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that went away yields EPIPE, not a process
    // signal.
    const ssize_t n = send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("send timed out");
      }
      return ErrnoStatus("send", errno);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvExact(void* data, size_t len) {
  if (!valid()) return Status::IOError("socket is closed");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = recv(fd_, p + got, len - got, 0);
    if (n == 0) return Status::IOError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("recv timed out");
      }
      return ErrnoStatus("recv", errno);
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> Socket::PollIn(int timeout_ms) {
  if (!valid()) return Status::IOError("socket is closed");
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("poll", errno);
  return rc > 0;
}

void Socket::Shutdown() {
  if (valid()) shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    close(fd_);
    fd_ = -1;
  }
}

ServerSocket& ServerSocket::operator=(ServerSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<ServerSocket> ServerSocket::Listen(const std::string& bind_address,
                                          uint16_t port, int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + bind_address +
                                   "' (IPv4 dotted quad expected)");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  ServerSocket server;
  server.fd_ = fd;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind " + bind_address + ":" + std::to_string(port),
                       errno);
  }
  if (listen(fd, backlog) < 0) return ErrnoStatus("listen", errno);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  server.port_ = ntohs(bound.sin_port);
  return server;
}

Result<bool> ServerSocket::PollAccept(int timeout_ms) {
  if (!valid()) return Status::IOError("listener is closed");
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("poll", errno);
  return rc > 0;
}

Result<Socket> ServerSocket::Accept() {
  if (!valid()) return Status::IOError("listener is closed");
  int fd;
  do {
    fd = accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return ErrnoStatus("accept", errno);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void ServerSocket::Close() {
  if (valid()) {
    close(fd_);
    fd_ = -1;
  }
}

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload) {
  std::string wire = EncodeFrameHeader(
      type, static_cast<uint32_t>(payload.size()));
  wire.append(payload.data(), payload.size());
  return socket.SendAll(wire.data(), wire.size());
}

Status ReadFrame(Socket& socket, Frame* frame) {
  char header_bytes[kFrameHeaderBytes];
  HDSKY_RETURN_IF_ERROR(socket.RecvExact(header_bytes, sizeof(header_bytes)));
  HDSKY_ASSIGN_OR_RETURN(
      const FrameHeader header,
      DecodeFrameHeader(std::string_view(header_bytes, sizeof(header_bytes))));
  frame->type = header.type;
  frame->payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    HDSKY_RETURN_IF_ERROR(
        socket.RecvExact(frame->payload.data(), frame->payload.size()));
  }
  return Status::OK();
}

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected HOST:PORT, got '" + spec + "'");
  }
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(port_str.c_str(), &end, 10);
  if (errno != 0 || end == port_str.c_str() || *end != '\0' || value < 1 ||
      value > 65535) {
    return Status::InvalidArgument("bad port '" + port_str + "' in '" +
                                   spec + "'");
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

}  // namespace net
}  // namespace hdsky
