#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/resource.h>
#include <unistd.h>

#include <utility>
#include <vector>

namespace hdsky {
namespace net {

using common::Result;
using common::Status;

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IOError(std::string("fcntl(F_GETFL): ") +
                           std::strerror(errno));
  }
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(F_SETFL): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status EnsureFdCapacity(uint64_t need) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    return Status::IOError(std::string("getrlimit(RLIMIT_NOFILE): ") +
                           std::strerror(errno));
  }
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur < need) {
    rlimit want = lim;
    want.rlim_cur = (lim.rlim_max == RLIM_INFINITY || lim.rlim_max >= need)
                        ? static_cast<rlim_t>(need)
                        : lim.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &want) != 0) {
      return Status::IOError(std::string("setrlimit(RLIMIT_NOFILE): ") +
                             std::strerror(errno));
    }
    if (want.rlim_cur < need) {
      return Status::ResourceExhausted(
          "fd hard limit " + std::to_string(want.rlim_cur) +
          " below the " + std::to_string(need) + " descriptors needed");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  const int epoll_fd = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  const int wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    const Status s = Status::IOError(std::string("eventfd: ") +
                                     std::strerror(errno));
    close(epoll_fd);
    return s;
  }
  auto loop = std::unique_ptr<EventLoop>(new EventLoop(epoll_fd, wake_fd));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(ADD wakeup): ") +
                           std::strerror(errno));
  }
  return loop;
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(ADD): ") +
                           std::strerror(errno));
  }
  callbacks_[fd] = std::make_shared<IoCallback>(std::move(cb));
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(MOD): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(Task task) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still means the loop will wake.
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeups() {
  uint64_t count = 0;
  while (read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::RunPosted() {
  // Swap the whole queue out so posted tasks that Post() again (e.g. a
  // completion that schedules a follow-up) run on the next iteration
  // instead of livelocking this drain.
  std::deque<Task> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (Task& t : batch) t();
}

void EventLoop::Run(int tick_ms, const Task& on_tick) {
  run_thread_.store(std::this_thread::get_id());
  std::vector<epoll_event> events(64);
  while (!stopping_.load(std::memory_order_acquire)) {
    int n;
    do {
      n = epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), tick_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) break;  // unrecoverable epoll failure
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeups();
        continue;
      }
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // removed by an earlier handler
      // Keep the functor alive across the call even if the handler
      // removes its own registration.
      const std::shared_ptr<IoCallback> cb = it->second;
      (*cb)(events[i].events);
    }
    RunPosted();
    if (on_tick) on_tick();
    if (n == static_cast<int>(events.size()) && events.size() < 4096) {
      events.resize(events.size() * 2);
    }
  }
  // Final drain so tasks posted concurrently with Stop() are not lost.
  RunPosted();
  run_thread_.store(std::thread::id());
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof(one));
}

}  // namespace net
}  // namespace hdsky
