// The hdsky wire protocol: versioned, length-prefixed binary frames
// carrying top-k queries and answers between a discovery client and a
// hidden-database server (tools/hdsky_serve).
//
// Frame layout (all integers little-endian, fixed width):
//
//   offset  size  field
//   0       2     magic "HD"
//   2       1     protocol version (kProtocolVersion)
//   3       1     frame type (FrameType)
//   4       4     payload length in bytes (<= kMaxPayloadBytes)
//   8       n     payload
//
// Frame types and payloads:
//   kHello       client->server  u64 session id
//   kDescriptor  server->client  u32 k, i64 remaining budget (-1 =
//                                unlimited), schema (see EncodeDescriptor)
//   kQuery       client->server  u64 seq, u32 arity, arity x {i64 lo, i64 hi}
//   kResult      server->client  u64 seq, u8 overflow, u32 count, u32 width,
//                                count x {i64 id, width x i64 values}
//   kStatus      server->client  u64 seq, u16 wire status, string message
//
// The sequence number makes retries idempotent: a client re-sends the same
// seq after a connection failure and the server replays its cached reply
// instead of re-executing the query, so backend query accounting is exact
// even under an adversarial network (see src/service/server.h).
//
// Wire status codes extend common::StatusCode with service-level signals:
// kBudgetExhausted is a *permanent* "your query budget is spent" (maps to
// ResourceExhausted), while kRateLimited is a *transient* "slow down"
// that clients retry with backoff before giving up.
//
// Decoders never trust the peer: every read is bounds-checked, lengths are
// capped, and any malformed byte sequence yields a descriptive IOError
// instead of partial state (the same hardening discipline as the
// hdsky-cache-v1 reader in interface/cache_io.cc).

#ifndef HDSKY_NET_WIRE_H_
#define HDSKY_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/schema.h"
#include "interface/hidden_database.h"
#include "interface/query.h"

namespace hdsky {
namespace net {

inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
/// Upper bound on a frame payload; anything larger is a protocol error.
/// Generous for QueryResult frames (k tuples of m int64s) while keeping a
/// malicious length prefix from allocating unbounded memory.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

enum class FrameType : uint8_t {
  kHello = 1,
  kDescriptor = 2,
  kQuery = 3,
  kResult = 4,
  kStatus = 5,
  /// client->server: ask for the server's service counters (u64 seq).
  kStatsRequest = 6,
  /// server->client: u64 seq + ServiceStats counters. Added so load
  /// generators can compute the queries-deduped ratio without scraping
  /// the server's stderr; protocol version stays 1 because the exchange
  /// is strictly opt-in (old clients never send kStatsRequest).
  kStats = 7,
};

const char* FrameTypeToString(FrameType t);

/// Service-level status codes carried by kStatus frames.
enum class WireStatus : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kUnsupported = 2,
  kNotFound = 3,
  /// The client's query budget is spent: permanent for this session, maps
  /// to common::Status::ResourceExhausted (the anytime signal).
  kBudgetExhausted = 4,
  kOutOfRange = 5,
  kIOError = 6,
  kInternal = 7,
  kAlreadyExists = 8,
  /// Transient throttle (connection limit, burst control, injected fault):
  /// the client should back off and retry the same sequence number.
  kRateLimited = 100,
};

/// True for codes a client may retry with backoff.
bool IsTransient(WireStatus code);

/// Maps a local failure onto the wire (OK must not be passed).
WireStatus WireStatusFromStatus(const common::Status& status);

/// Maps a wire code + message back into the common::Status model.
/// kRateLimited and kBudgetExhausted both surface as ResourceExhausted —
/// the code the discovery algorithms already turn into anytime results.
common::Status StatusFromWire(uint16_t code, const std::string& message);

// ---------------------------------------------------------------------------
// Primitive append-only encoder / bounds-checked decoder.

/// Appends little-endian fixed-width primitives to a byte string.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// u32 length prefix followed by the raw bytes.
  void PutString(std::string_view s);

 private:
  std::string* out_;
};

/// Reads primitives back; after any failed read every subsequent Get*
/// fails too, so decode functions can check ok() once at the end.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  /// Length-prefixed string; the length is validated against the bytes
  /// actually remaining, so a lying prefix cannot trigger a huge allocation.
  bool GetString(std::string* s);

  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  /// True when the decoder is healthy and fully consumed — frame payloads
  /// must not carry trailing garbage.
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frame header.

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kStatus;
  uint32_t payload_len = 0;
};

/// Exactly kFrameHeaderBytes bytes.
std::string EncodeFrameHeader(FrameType type, uint32_t payload_len);

/// Validates magic, version, known type, and the payload-length cap.
common::Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

// ---------------------------------------------------------------------------
// Payload codecs. Encoders append to *out; decoders are total functions of
// the payload bytes and fail with IOError on any malformation.

void EncodeHello(uint64_t session_id, std::string* out);
common::Status DecodeHello(std::string_view payload, uint64_t* session_id);

/// The public face of the served database: search-form schema, page size,
/// and the client's remaining query budget (-1 = unlimited).
struct Descriptor {
  data::Schema schema;
  int k = 0;
  int64_t remaining_budget = -1;
};

void EncodeDescriptor(const data::Schema& schema, int k,
                      int64_t remaining_budget, std::string* out);
common::Result<Descriptor> DecodeDescriptor(std::string_view payload);

void EncodeQuery(uint64_t seq, const interface::Query& q, std::string* out);
common::Status DecodeQuery(std::string_view payload, uint64_t* seq,
                           interface::Query* q);

/// Body-only query codec (arity + per-attribute interval bounds, no
/// sequence number), for embedding queries inside larger records — the
/// recovery journal and the algorithm frontier snapshots reuse it so a
/// query has exactly one serialized form. DecodeQueryBody consumes its
/// bytes from `dec` and fails (returning false) on truncation or an
/// implausible arity.
void EncodeQueryBody(const interface::Query& q, Encoder* enc);
bool DecodeQueryBody(Decoder* dec, interface::Query* q);

void EncodeResult(uint64_t seq, const interface::QueryResult& result,
                  std::string* out);
/// `expected_width` is the schema arity the client knows; a frame whose
/// tuples disagree is rejected.
common::Status DecodeResult(std::string_view payload, int expected_width,
                            uint64_t* seq, interface::QueryResult* result);
/// Streaming variant for result bodies embedded inside larger records
/// (journal records, checkpoint snapshots): consumes exactly one encoded
/// result from `dec`, leaving any following bytes for the caller.
common::Status DecodeResultBody(Decoder* dec, int expected_width,
                                uint64_t* seq,
                                interface::QueryResult* result);

void EncodeStatus(uint64_t seq, WireStatus code, std::string_view message,
                  std::string* out);
common::Status DecodeStatusFrame(std::string_view payload, uint64_t* seq,
                                 uint16_t* code, std::string* message);

/// Service-level counters a server exposes through kStats frames. The
/// queries-deduped ratio of a shared-cache server is
/// 1 - backend_executions / queries_served (both count only fresh,
/// successful, client-visible answers — replays and rejections excluded).
struct ServiceStats {
  /// Fresh client-visible queries answered successfully (from the backend
  /// or the shared cross-session cache).
  int64_t queries_served = 0;
  /// Queries that actually reached the backend database.
  int64_t backend_executions = 0;
  /// Answers served from the shared cross-session cache (ready entries).
  int64_t cache_hits = 0;
  /// Answers obtained by joining another session's in-flight execution.
  int64_t singleflight_joins = 0;
  /// Retried sequences replayed from per-session reply caches.
  int64_t queries_replayed = 0;
  /// BUSY (kRateLimited) responses issued by admission control.
  int64_t busy_rejections = 0;
  /// kBudgetExhausted responses issued.
  int64_t budget_rejections = 0;
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;
  /// Connections dropped by the server (slow reader, pipeline abuse,
  /// idle timeout).
  int64_t connections_shed = 0;
  int64_t protocol_errors = 0;
};

void EncodeStatsRequest(uint64_t seq, std::string* out);
common::Status DecodeStatsRequest(std::string_view payload, uint64_t* seq);

void EncodeStats(uint64_t seq, const ServiceStats& stats, std::string* out);
common::Status DecodeStats(std::string_view payload, uint64_t* seq,
                           ServiceStats* stats);

}  // namespace net
}  // namespace hdsky

#endif  // HDSKY_NET_WIRE_H_
