// Minimal blocking TCP socket wrapper (POSIX, no third-party deps) for
// the hdsky network service. Status-based like the rest of the codebase:
// no exceptions, every syscall failure surfaces as IOError with errno
// context.
//
// Blocking with timeouts by design: the service layer runs one connection
// per runtime::ThreadPool worker, so straightforward blocking reads keep
// the protocol code linear while SO_RCVTIMEO/SO_SNDTIMEO plus PollIn
// guarantee no call can hang forever (the robustness contract of the
// fault-injection tests).

#ifndef HDSKY_NET_SOCKET_H_
#define HDSKY_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/wire.h"

namespace hdsky {
namespace net {

/// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of an already connected fd.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IP or resolvable name) within
  /// `timeout_ms`. The returned socket has TCP_NODELAY set (frames are
  /// small and latency-bound).
  static common::Result<Socket> Connect(const std::string& host,
                                        uint16_t port, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Applies SO_RCVTIMEO and SO_SNDTIMEO (milliseconds; 0 = no timeout).
  common::Status SetIoTimeout(int ms);

  /// Writes the full buffer, retrying on short writes and EINTR.
  common::Status SendAll(const void* data, size_t len);

  /// Reads exactly `len` bytes. A clean peer close mid-read reports
  /// IOError("connection closed by peer"); a timeout reports
  /// IOError("... timed out").
  common::Status RecvExact(void* data, size_t len);

  /// Waits up to `timeout_ms` for readability. Returns true when data (or
  /// EOF) is pending, false on timeout.
  common::Result<bool> PollIn(int timeout_ms);

  /// shutdown(SHUT_RDWR): unblocks any thread inside RecvExact/SendAll on
  /// this socket without racing against fd reuse the way close() would.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket bound to one address.
class ServerSocket {
 public:
  ServerSocket() = default;
  ~ServerSocket() { Close(); }

  ServerSocket(ServerSocket&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  ServerSocket& operator=(ServerSocket&& other) noexcept;
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port; the actual port
  /// is available via port().
  static common::Result<ServerSocket> Listen(const std::string& bind_address,
                                             uint16_t port, int backlog);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a pending connection. Returns true when
  /// Accept will not block, false on timeout. Accept loops poll with a
  /// short timeout and re-check their stop flag, which is the portable way
  /// to interrupt a blocking accept.
  common::Result<bool> PollAccept(int timeout_ms);

  /// Accepts one pending connection (call after PollAccept says ready).
  common::Result<Socket> Accept();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// One decoded frame off the wire.
struct Frame {
  FrameType type = FrameType::kStatus;
  std::string payload;
};

/// Sends header + payload as one buffered write.
common::Status WriteFrame(Socket& socket, FrameType type,
                          std::string_view payload);

/// Reads one full frame, validating the header before trusting the length.
common::Status ReadFrame(Socket& socket, Frame* frame);

/// Splits "host:port". Fails on a missing colon, empty host, or a port
/// outside [1, 65535].
common::Status ParseHostPort(const std::string& spec, std::string* host,
                             uint16_t* port);

}  // namespace net
}  // namespace hdsky

#endif  // HDSKY_NET_SOCKET_H_
