#include "net/wire.h"

#include <cstring>

namespace hdsky {
namespace net {

using common::Result;
using common::Status;
using common::StatusCode;

namespace {

constexpr char kMagic0 = 'H';
constexpr char kMagic1 = 'D';

/// Caps speculative reserve() calls on peer-supplied counts: never reserve
/// more elements than the remaining bytes could possibly encode.
template <typename T>
size_t SafeReserve(uint32_t claimed, size_t remaining_bytes) {
  const size_t fits = remaining_bytes / sizeof(T);
  return claimed < fits ? claimed : fits;
}

}  // namespace

const char* FrameTypeToString(FrameType t) {
  switch (t) {
    case FrameType::kHello:
      return "Hello";
    case FrameType::kDescriptor:
      return "Descriptor";
    case FrameType::kQuery:
      return "Query";
    case FrameType::kResult:
      return "Result";
    case FrameType::kStatus:
      return "Status";
    case FrameType::kStatsRequest:
      return "StatsRequest";
    case FrameType::kStats:
      return "Stats";
  }
  return "Unknown";
}

bool IsTransient(WireStatus code) {
  return code == WireStatus::kRateLimited;
}

WireStatus WireStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kUnsupported:
      return WireStatus::kUnsupported;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kResourceExhausted:
      return WireStatus::kBudgetExhausted;
    case StatusCode::kOutOfRange:
      return WireStatus::kOutOfRange;
    case StatusCode::kIOError:
      return WireStatus::kIOError;
    case StatusCode::kInternal:
      return WireStatus::kInternal;
    case StatusCode::kAlreadyExists:
      return WireStatus::kAlreadyExists;
  }
  return WireStatus::kInternal;
}

Status StatusFromWire(uint16_t code, const std::string& message) {
  switch (static_cast<WireStatus>(code)) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kUnsupported:
      return Status::Unsupported(message);
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kBudgetExhausted:
    case WireStatus::kRateLimited:
      return Status::ResourceExhausted(message);
    case WireStatus::kOutOfRange:
      return Status::OutOfRange(message);
    case WireStatus::kIOError:
      return Status::IOError(message);
    case WireStatus::kInternal:
      return Status::Internal(message);
    case WireStatus::kAlreadyExists:
      return Status::AlreadyExists(message);
  }
  return Status::Internal("unknown wire status " + std::to_string(code) +
                          ": " + message);
}

// ---------------------------------------------------------------------------
// Encoder / Decoder.

void Encoder::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

bool Decoder::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Decoder::GetU8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Decoder::GetU16(uint16_t* v) {
  const char* p;
  if (!Take(2, &p)) return false;
  *v = static_cast<uint16_t>(static_cast<uint8_t>(p[0])) |
       static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8;
  return true;
}

bool Decoder::GetU32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Decoder::GetU64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Decoder::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Decoder::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

// ---------------------------------------------------------------------------
// Frame header.

std::string EncodeFrameHeader(FrameType type, uint32_t payload_len) {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  Encoder enc(&out);
  enc.PutU8(kProtocolVersion);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU32(payload_len);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    return Status::IOError("frame header must be " +
                           std::to_string(kFrameHeaderBytes) + " bytes");
  }
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    return Status::IOError("bad frame magic (not an hdsky peer)");
  }
  Decoder dec(bytes.substr(2));
  FrameHeader header;
  uint8_t type = 0;
  dec.GetU8(&header.version);
  dec.GetU8(&type);
  dec.GetU32(&header.payload_len);
  if (!dec.ok()) return Status::IOError("truncated frame header");
  if (header.version != kProtocolVersion) {
    return Status::IOError("unsupported protocol version " +
                           std::to_string(header.version));
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kStats)) {
    return Status::IOError("unknown frame type " + std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::IOError("frame payload length " +
                           std::to_string(header.payload_len) +
                           " exceeds the protocol cap");
  }
  return header;
}

// ---------------------------------------------------------------------------
// Hello.

void EncodeHello(uint64_t session_id, std::string* out) {
  Encoder enc(out);
  enc.PutU64(session_id);
}

Status DecodeHello(std::string_view payload, uint64_t* session_id) {
  Decoder dec(payload);
  dec.GetU64(session_id);
  if (!dec.exhausted()) return Status::IOError("malformed Hello payload");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Descriptor.

void EncodeDescriptor(const data::Schema& schema, int k,
                      int64_t remaining_budget, std::string* out) {
  Encoder enc(out);
  enc.PutU32(static_cast<uint32_t>(k));
  enc.PutI64(remaining_budget);
  enc.PutU32(static_cast<uint32_t>(schema.num_attributes()));
  for (const data::AttributeSpec& spec : schema.attributes()) {
    enc.PutString(spec.name);
    enc.PutU8(static_cast<uint8_t>(spec.kind));
    enc.PutU8(static_cast<uint8_t>(spec.iface));
    enc.PutI64(spec.domain_min);
    enc.PutI64(spec.domain_max);
  }
}

Result<Descriptor> DecodeDescriptor(std::string_view payload) {
  Decoder dec(payload);
  uint32_t k = 0;
  int64_t remaining = -1;
  uint32_t num_attrs = 0;
  dec.GetU32(&k);
  dec.GetI64(&remaining);
  dec.GetU32(&num_attrs);
  if (!dec.ok()) return Status::IOError("truncated Descriptor payload");
  // Every attribute costs at least 18 bytes (empty name), so a lying
  // count cannot force a large reserve.
  std::vector<data::AttributeSpec> attrs;
  attrs.reserve(SafeReserve<int64_t>(num_attrs, dec.remaining()));
  for (uint32_t a = 0; a < num_attrs; ++a) {
    data::AttributeSpec spec;
    uint8_t kind = 0;
    uint8_t iface = 0;
    dec.GetString(&spec.name);
    dec.GetU8(&kind);
    dec.GetU8(&iface);
    dec.GetI64(&spec.domain_min);
    dec.GetI64(&spec.domain_max);
    if (!dec.ok()) return Status::IOError("truncated Descriptor attribute");
    if (kind > static_cast<uint8_t>(data::AttributeKind::kFiltering)) {
      return Status::IOError("Descriptor: unknown attribute kind " +
                             std::to_string(kind));
    }
    if (iface > static_cast<uint8_t>(data::InterfaceType::kFilterEquality)) {
      return Status::IOError("Descriptor: unknown interface type " +
                             std::to_string(iface));
    }
    spec.kind = static_cast<data::AttributeKind>(kind);
    spec.iface = static_cast<data::InterfaceType>(iface);
    attrs.push_back(std::move(spec));
  }
  if (!dec.exhausted()) {
    return Status::IOError("Descriptor payload has trailing bytes");
  }
  if (k < 1 || k > 1000000) {
    return Status::IOError("Descriptor: implausible k " +
                           std::to_string(k));
  }
  Descriptor descriptor;
  // Schema::Create re-validates names, domains, and taxonomy, so a hostile
  // descriptor cannot smuggle in an inconsistent schema.
  HDSKY_ASSIGN_OR_RETURN(descriptor.schema,
                         data::Schema::Create(std::move(attrs)));
  descriptor.k = static_cast<int>(k);
  descriptor.remaining_budget = remaining;
  return descriptor;
}

// ---------------------------------------------------------------------------
// Query.

void EncodeQueryBody(const interface::Query& q, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(q.num_attributes()));
  for (int a = 0; a < q.num_attributes(); ++a) {
    const interface::Interval& iv = q.interval(a);
    enc->PutI64(iv.lower);
    enc->PutI64(iv.upper);
  }
}

bool DecodeQueryBody(Decoder* dec, interface::Query* q) {
  uint32_t num_attrs = 0;
  if (!dec->GetU32(&num_attrs)) return false;
  if (static_cast<size_t>(num_attrs) * 16 > dec->remaining()) return false;
  interface::Query decoded(static_cast<int>(num_attrs));
  for (uint32_t a = 0; a < num_attrs; ++a) {
    int64_t lower, upper;
    dec->GetI64(&lower);
    if (!dec->GetI64(&upper)) return false;
    // AddAtLeast/AddAtMost intersect with an unconstrained interval, so
    // the decoded bounds reproduce the encoded ones exactly (including
    // empty intervals with lower > upper).
    if (lower != interface::Interval::kMin) {
      decoded.AddAtLeast(static_cast<int>(a), lower);
    }
    if (upper != interface::Interval::kMax) {
      decoded.AddAtMost(static_cast<int>(a), upper);
    }
  }
  *q = std::move(decoded);
  return true;
}

void EncodeQuery(uint64_t seq, const interface::Query& q, std::string* out) {
  Encoder enc(out);
  enc.PutU64(seq);
  EncodeQueryBody(q, &enc);
}

Status DecodeQuery(std::string_view payload, uint64_t* seq,
                   interface::Query* q) {
  Decoder dec(payload);
  if (!dec.GetU64(seq)) return Status::IOError("truncated Query payload");
  interface::Query decoded;
  if (!DecodeQueryBody(&dec, &decoded) || !dec.exhausted()) {
    return Status::IOError("truncated or malformed Query payload");
  }
  *q = std::move(decoded);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Result.

void EncodeResult(uint64_t seq, const interface::QueryResult& result,
                  std::string* out) {
  Encoder enc(out);
  enc.PutU64(seq);
  enc.PutU8(result.overflow ? 1 : 0);
  enc.PutU32(static_cast<uint32_t>(result.ids.size()));
  const uint32_t width =
      result.tuples.empty() ? 0
                            : static_cast<uint32_t>(result.tuples[0].size());
  enc.PutU32(width);
  for (size_t i = 0; i < result.ids.size(); ++i) {
    enc.PutI64(result.ids[i]);
    for (data::Value v : result.tuples[i]) enc.PutI64(v);
  }
}

Status DecodeResultBody(Decoder* dec, int expected_width, uint64_t* seq,
                        interface::QueryResult* result) {
  uint8_t overflow = 0;
  uint32_t count = 0;
  uint32_t width = 0;
  dec->GetU64(seq);
  dec->GetU8(&overflow);
  dec->GetU32(&count);
  dec->GetU32(&width);
  if (!dec->ok()) return Status::IOError("truncated Result payload");
  if (overflow > 1) {
    return Status::IOError("Result: overflow flag must be 0 or 1");
  }
  if (count > 0 && width != static_cast<uint32_t>(expected_width)) {
    return Status::IOError("Result tuple width " + std::to_string(width) +
                           " does not match the schema arity " +
                           std::to_string(expected_width));
  }
  const size_t row_bytes = (1 + static_cast<size_t>(width)) * 8;
  if (static_cast<size_t>(count) * row_bytes > dec->remaining()) {
    return Status::IOError("Result payload size disagrees with its count");
  }
  interface::QueryResult decoded;
  decoded.overflow = overflow != 0;
  decoded.ids.reserve(count);
  decoded.tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t id;
    dec->GetI64(&id);
    if (!dec->ok()) return Status::IOError("truncated Result tuple");
    if (id < 0) return Status::IOError("Result: negative tuple id");
    data::Tuple t(width);
    for (uint32_t a = 0; a < width; ++a) {
      dec->GetI64(&t[a]);
    }
    if (!dec->ok()) return Status::IOError("truncated Result tuple values");
    decoded.ids.push_back(id);
    decoded.tuples.push_back(std::move(t));
  }
  *result = std::move(decoded);
  return Status::OK();
}

Status DecodeResult(std::string_view payload, int expected_width,
                    uint64_t* seq, interface::QueryResult* result) {
  Decoder dec(payload);
  HDSKY_RETURN_IF_ERROR(DecodeResultBody(&dec, expected_width, seq, result));
  if (!dec.exhausted()) {
    return Status::IOError("Result payload has trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Status frame.

void EncodeStatus(uint64_t seq, WireStatus code, std::string_view message,
                  std::string* out) {
  Encoder enc(out);
  enc.PutU64(seq);
  enc.PutU16(static_cast<uint16_t>(code));
  enc.PutString(message);
}

Status DecodeStatusFrame(std::string_view payload, uint64_t* seq,
                         uint16_t* code, std::string* message) {
  Decoder dec(payload);
  dec.GetU64(seq);
  dec.GetU16(code);
  dec.GetString(message);
  if (!dec.exhausted()) return Status::IOError("malformed Status payload");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Stats frames.

void EncodeStatsRequest(uint64_t seq, std::string* out) {
  Encoder enc(out);
  enc.PutU64(seq);
}

Status DecodeStatsRequest(std::string_view payload, uint64_t* seq) {
  Decoder dec(payload);
  dec.GetU64(seq);
  if (!dec.exhausted()) {
    return Status::IOError("malformed StatsRequest payload");
  }
  return Status::OK();
}

namespace {

/// The counters travel as a counted list of i64s so a server that grows
/// new fields stays readable by older clients (extra fields ignored) and
/// a shorter server payload decodes as zeros on the client.
constexpr uint32_t kServiceStatsFields = 11;

}  // namespace

void EncodeStats(uint64_t seq, const ServiceStats& stats, std::string* out) {
  Encoder enc(out);
  enc.PutU64(seq);
  enc.PutU32(kServiceStatsFields);
  enc.PutI64(stats.queries_served);
  enc.PutI64(stats.backend_executions);
  enc.PutI64(stats.cache_hits);
  enc.PutI64(stats.singleflight_joins);
  enc.PutI64(stats.queries_replayed);
  enc.PutI64(stats.busy_rejections);
  enc.PutI64(stats.budget_rejections);
  enc.PutI64(stats.connections_accepted);
  enc.PutI64(stats.connections_rejected);
  enc.PutI64(stats.connections_shed);
  enc.PutI64(stats.protocol_errors);
}

Status DecodeStats(std::string_view payload, uint64_t* seq,
                   ServiceStats* stats) {
  Decoder dec(payload);
  uint32_t count = 0;
  dec.GetU64(seq);
  dec.GetU32(&count);
  if (!dec.ok() || count > 1024) {
    return Status::IOError("malformed Stats payload");
  }
  *stats = ServiceStats();
  int64_t* fields[kServiceStatsFields] = {
      &stats->queries_served,     &stats->backend_executions,
      &stats->cache_hits,         &stats->singleflight_joins,
      &stats->queries_replayed,   &stats->busy_rejections,
      &stats->budget_rejections,  &stats->connections_accepted,
      &stats->connections_rejected, &stats->connections_shed,
      &stats->protocol_errors};
  for (uint32_t i = 0; i < count; ++i) {
    int64_t v = 0;
    dec.GetI64(&v);
    if (i < kServiceStatsFields) *fields[i] = v;
  }
  if (!dec.exhausted()) return Status::IOError("malformed Stats payload");
  return Status::OK();
}

}  // namespace net
}  // namespace hdsky
