// A minimal epoll event loop, the substrate of the event-driven service
// layer (service/event_server.h) and of the load-generator client driver
// (service/load_driver.h).
//
// Model: one EventLoop is driven by exactly one thread calling Run().
// Everything the loop owns — fd callbacks, connection state in the
// caller's hands — is touched only from that thread, so the per-loop
// state needs no locks. Other threads communicate with a loop only
// through Post(), which enqueues a task under a small mutex and wakes
// the loop via an eventfd; the loop drains the queue on its own thread.
//
// Dispatch is level-triggered: a callback that does not drain its fd is
// simply called again on the next epoll_wait, which keeps the
// correctness argument local to each handler (no "you must read until
// EAGAIN or starve" contract, although handlers do drain for
// efficiency).
//
// Timers: the loop wakes at least every tick_ms and invokes the tick
// handler — a deliberately blunt instrument that is exactly enough for
// coarse idle/slow-peer timeout scans without a timer heap.

#ifndef HDSKY_NET_EVENT_LOOP_H_
#define HDSKY_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/status.h"

namespace hdsky {
namespace net {

/// Sets O_NONBLOCK on `fd`.
common::Status SetNonBlocking(int fd);

/// Raises RLIMIT_NOFILE's soft limit toward the hard limit until at
/// least `need` descriptors fit (no-op when the limit already suffices).
/// Thousands of concurrent loopback sessions need this on default
/// soft limits of 1024.
common::Status EnsureFdCapacity(uint64_t need);

class EventLoop {
 public:
  /// Callback for fd readiness; receives the EPOLLIN/EPOLLOUT/... mask.
  using IoCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  /// Creates the epoll instance and wakeup eventfd.
  static common::Result<std::unique_ptr<EventLoop>> Create();

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN and friends). Loop thread only
  /// (or before Run starts). The callback may Remove its own fd.
  common::Status Add(int fd, uint32_t events, IoCallback cb);

  /// Changes the interest mask of a registered fd. Loop thread only.
  common::Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`; safe to call from inside its own callback. Does
  /// not close the fd. Loop thread only.
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread; thread-safe, callable
  /// from any thread. Tasks posted after Stop() are silently dropped
  /// when the loop exits.
  void Post(Task task);

  /// Runs the loop on the calling thread until Stop(). `tick_ms` bounds
  /// how long the loop sleeps between `on_tick` invocations (pass a
  /// no-op handler for pure I/O loops).
  void Run(int tick_ms, const Task& on_tick);

  /// Requests Run() to return; thread-safe and idempotent.
  void Stop();

  /// True when called from the thread currently inside Run().
  bool InLoopThread() const {
    return run_thread_ == std::this_thread::get_id();
  }

  /// Number of registered fds (excluding the internal wakeup fd).
  size_t num_fds() const { return callbacks_.size(); }

 private:
  EventLoop(int epoll_fd, int wake_fd)
      : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

  void DrainWakeups();
  void RunPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::thread::id> run_thread_{};

  /// shared_ptr so a handler that removes itself (or another fd) while
  /// the dispatch loop still holds a reference cannot free the functor
  /// out from under the running call.
  std::unordered_map<int, std::shared_ptr<IoCallback>> callbacks_;

  std::mutex posted_mu_;
  std::deque<Task> posted_;
};

}  // namespace net
}  // namespace hdsky

#endif  // HDSKY_NET_EVENT_LOOP_H_
