#include "service/event_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.h"

namespace hdsky {
namespace service {

using common::Result;
using common::Status;
using net::FrameType;
using net::WireStatus;

namespace {

/// Sentinel prefix distinguishing the transient admission-control BUSY
/// from a genuine budget exhaustion: both travel internally as
/// ResourceExhausted, but BUSY goes on the wire as kRateLimited (retry
/// with backoff) and is never recorded in the session replay cache.
constexpr const char kBusyPrefix[] = "server busy";

Status BusyStatus() {
  return Status::ResourceExhausted(
      std::string(kBusyPrefix) + ": admission limit reached, retry later");
}

bool IsBusy(const Status& status) {
  return status.IsResourceExhausted() &&
         status.message().rfind(kBusyPrefix, 0) == 0;
}

}  // namespace

Result<std::unique_ptr<EventDrivenServer>> EventDrivenServer::Start(
    interface::HiddenDatabase* db, const Options& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("backend database must not be null");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.per_client_query_budget < 0) {
    return Status::InvalidArgument("per_client_query_budget must be >= 0");
  }
  if (options.num_loops < 0 || options.num_workers < 0) {
    return Status::InvalidArgument("thread counts must be >= 0");
  }
  if (options.max_pipeline_depth < 1) {
    return Status::InvalidArgument("max_pipeline_depth must be >= 1");
  }
  if (options.write_buffer_limit > 0 &&
      options.read_pause_bytes >= options.write_buffer_limit) {
    return Status::InvalidArgument(
        "read_pause_bytes must be below write_buffer_limit");
  }

  auto server = std::unique_ptr<EventDrivenServer>(
      new EventDrivenServer(db, options));
  Options& opts = server->options_;
  if (opts.num_loops == 0) {
    opts.num_loops = std::min(4, runtime::HardwareThreadCount());
  }
  if (opts.num_workers == 0) {
    opts.num_workers = std::min(8, runtime::HardwareThreadCount());
  }

  // Best effort: thousands of sessions need more than the default 1024
  // soft fd limit; a failure surfaces later as accept errors, exactly
  // like any other fd exhaustion.
  (void)net::EnsureFdCapacity(
      static_cast<uint64_t>(opts.max_connections) + 64);

  HDSKY_ASSIGN_OR_RETURN(
      server->listener_,
      net::ServerSocket::Listen(opts.bind_address, opts.port,
                                std::min(opts.max_connections, 4096)));
  HDSKY_RETURN_IF_ERROR(net::SetNonBlocking(server->listener_.fd()));

  if (opts.shared_cache) {
    SharedQueryCache::Options cache_opts;
    cache_opts.max_entries = opts.cache_max_entries;
    server->cache_ = std::make_unique<SharedQueryCache>(cache_opts);
  }

  server->conn_maps_.resize(static_cast<size_t>(opts.num_loops));
  for (int i = 0; i < opts.num_loops; ++i) {
    HDSKY_ASSIGN_OR_RETURN(auto loop, net::EventLoop::Create());
    server->loops_.push_back(std::move(loop));
  }
  server->executor_ =
      std::make_unique<runtime::ThreadPool>(opts.num_workers);

  // Listener lives on loop 0. Registered before the loop threads start,
  // which is the other moment Add may be called safely off-thread.
  EventDrivenServer* s = server.get();
  HDSKY_RETURN_IF_ERROR(server->loops_[0]->Add(
      server->listener_.fd(), EPOLLIN, [s](uint32_t) { s->AcceptReady(); }));

  const int tick_ms =
      opts.idle_timeout_ms > 0
          ? std::clamp(opts.idle_timeout_ms / 4, 10, 500)
          : 500;
  for (size_t i = 0; i < server->loops_.size(); ++i) {
    server->loop_threads_.emplace_back([s, i, tick_ms] {
      s->loops_[i]->Run(tick_ms, [s, i] { s->TickLoop(i); });
    });
  }
  return server;
}

EventDrivenServer::EventDrivenServer(interface::HiddenDatabase* db,
                                     const Options& options)
    : db_(db), options_(options) {}

EventDrivenServer::~EventDrivenServer() { Stop(); }

void EventDrivenServer::Stop() {
  if (stopping_.exchange(true)) return;
  for (auto& loop : loops_) loop->Stop();
  loop_threads_.clear();  // joins
  listener_.Close();
  // Drains in-flight backend executions; their completions post into the
  // stopped loops, where they are retained but never run.
  executor_.reset();
  // No loop thread is alive, so the connection maps are safe to clear
  // from here; Socket destructors close the fds.
  for (auto& m : conn_maps_) m.clear();
}

EventDrivenServer::Stats EventDrivenServer::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  s.connections_shed = connections_shed_.load();
  s.idle_closed = idle_closed_.load();
  s.queries_served = queries_served_.load();
  s.backend_executions = backend_executions_.load();
  s.cache_hits = cache_hits_.load();
  s.singleflight_joins = singleflight_joins_.load();
  s.queries_replayed = queries_replayed_.load();
  s.busy_rejections = busy_rejections_.load();
  s.budget_rejections = budget_rejections_.load();
  s.protocol_errors = protocol_errors_.load();
  return s;
}

net::ServiceStats EventDrivenServer::wire_stats() const {
  const Stats s = stats();
  net::ServiceStats w;
  w.queries_served = s.queries_served;
  w.backend_executions = s.backend_executions;
  w.cache_hits = s.cache_hits;
  w.singleflight_joins = s.singleflight_joins;
  w.queries_replayed = s.queries_replayed;
  w.busy_rejections = s.busy_rejections;
  w.budget_rejections = s.budget_rejections;
  w.connections_accepted = s.connections_accepted;
  w.connections_rejected = s.connections_rejected;
  w.connections_shed = s.connections_shed;
  w.protocol_errors = s.protocol_errors;
  return w;
}

EventDrivenServer::Session* EventDrivenServer::GetSession(
    uint64_t session_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    it = sessions_.emplace(session_id, std::make_unique<Session>()).first;
  }
  return it->second.get();
}

EventDrivenServer::Conn* EventDrivenServer::FindConn(size_t loop_index,
                                                     uint64_t conn_id) {
  auto& map = conn_maps_[loop_index];
  auto it = map.find(conn_id);
  return it == map.end() ? nullptr : it->second.get();
}

bool EventDrivenServer::SubmitBackendTask(std::function<void()> task) {
  // TrySubmit is an atomic check-and-enqueue over queued + running
  // backend executions; the executor runs nothing else, so its pending
  // count is exactly the backend admission queue.
  return executor_->TrySubmit(task, options_.max_pending_queries);
}

// ---------------------------------------------------------------------------
// Accept path.

void EventDrivenServer::AcceptReady() {
  for (;;) {
    int fd = accept4(listener_.fd(), nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const int active = active_connections_.fetch_add(1);
    if (active >= options_.max_connections) {
      active_connections_.fetch_sub(1);
      connections_rejected_.fetch_add(1);
      // Best-effort transient rejection; a fresh socket's send buffer is
      // empty, so this tiny frame virtually always fits.
      std::string payload;
      net::EncodeStatus(0, WireStatus::kRateLimited,
                        "connection limit reached, retry later", &payload);
      const std::string frame =
          net::EncodeFrameHeader(FrameType::kStatus,
                                 static_cast<uint32_t>(payload.size())) +
          payload;
      (void)send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1);
    const size_t li = next_loop_.fetch_add(1) % loops_.size();
    loops_[li]->Post([this, li, fd] { AdoptConnection(li, fd); });
  }
}

void EventDrivenServer::AdoptConnection(size_t loop_index, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_.fetch_add(1);
  conn->loop_index = loop_index;
  conn->sock = net::Socket(fd);
  conn->last_activity = std::chrono::steady_clock::now();
  const uint64_t id = conn->id;
  const Status s = loops_[loop_index]->Add(
      fd, EPOLLIN,
      [this, loop_index, id](uint32_t ev) { HandleIo(loop_index, id, ev); });
  if (!s.ok()) {
    active_connections_.fetch_sub(1);
    return;  // conn destructor closes fd
  }
  conn_maps_[loop_index].emplace(id, std::move(conn));
}

void EventDrivenServer::CloseConn(Conn* conn) {
  if (conn->dead) return;
  conn->dead = true;
  const size_t li = conn->loop_index;
  const uint64_t id = conn->id;
  loops_[li]->Remove(conn->sock.fd());
  // Destruction is deferred to a posted task so every frame currently on
  // the call stack may keep using the Conn it holds.
  loops_[li]->Post([this, li, id] {
    if (conn_maps_[li].erase(id) > 0) active_connections_.fetch_sub(1);
  });
}

void EventDrivenServer::TickLoop(size_t loop_index) {
  if (options_.idle_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto& [id, conn] : conn_maps_[loop_index]) {
    // A connection waiting on a slow backend is busy, not idle.
    if (conn->dead || conn->in_flight) continue;
    if (now - conn->last_activity > limit) {
      idle_closed_.fetch_add(1);
      connections_shed_.fetch_add(1);
      CloseConn(conn.get());
    }
  }
}

// ---------------------------------------------------------------------------
// Per-connection I/O.

void EventDrivenServer::HandleIo(size_t loop_index, uint64_t conn_id,
                                 uint32_t events) {
  Conn* conn = FindConn(loop_index, conn_id);
  if (conn == nullptr || conn->dead) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(conn);
    return;
  }
  if (events & EPOLLOUT) {
    FlushWrites(conn);
    if (conn->dead) return;
    if (conn->read_paused &&
        conn->wbuf.size() - conn->wpos <= options_.read_pause_bytes / 2) {
      conn->read_paused = false;
    }
    UpdateInterest(conn);
  }
  if ((events & EPOLLIN) && !conn->read_paused) {
    HandleRead(conn);
  }
}

void EventDrivenServer::HandleRead(Conn* conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = recv(conn->sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;  // likely drained
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConn(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }
  conn->last_activity = std::chrono::steady_clock::now();
  ParseFrames(conn);
}

void EventDrivenServer::ParseFrames(Conn* conn) {
  while (!conn->dead) {
    const size_t available = conn->rbuf.size() - conn->rpos;
    if (available < net::kFrameHeaderBytes) break;
    auto header = net::DecodeFrameHeader(std::string_view(
        conn->rbuf.data() + conn->rpos, net::kFrameHeaderBytes));
    if (!header.ok()) {
      protocol_errors_.fetch_add(1);
      CloseConn(conn);
      return;
    }
    const size_t need = net::kFrameHeaderBytes + header->payload_len;
    if (available < need) break;
    const std::string_view payload(
        conn->rbuf.data() + conn->rpos + net::kFrameHeaderBytes,
        header->payload_len);
    conn->rpos += need;
    HandleFrame(conn, header->type, payload);
  }
  if (conn->rpos > 65536 && conn->rpos * 2 >= conn->rbuf.size()) {
    conn->rbuf.erase(0, conn->rpos);
    conn->rpos = 0;
  }
}

void EventDrivenServer::HandleFrame(Conn* conn, FrameType type,
                                    std::string_view payload) {
  if (!conn->handshaken) {
    uint64_t session_id = 0;
    if (type != FrameType::kHello ||
        !net::DecodeHello(payload, &session_id).ok()) {
      protocol_errors_.fetch_add(1);
      CloseConn(conn);
      return;
    }
    conn->session = GetSession(session_id);
    conn->handshaken = true;
    int64_t remaining = -1;
    if (options_.per_client_query_budget > 0) {
      std::lock_guard<std::mutex> lock(conn->session->mu);
      remaining =
          options_.per_client_query_budget - conn->session->queries_used;
      if (remaining < 0) remaining = 0;
    }
    std::string reply;
    net::EncodeDescriptor(db_->schema(), db_->k(), remaining, &reply);
    EnqueueFrame(conn, FrameType::kDescriptor, reply);
    return;
  }

  switch (type) {
    case FrameType::kQuery: {
      uint64_t seq = 0;
      interface::Query query;
      const Status s = net::DecodeQuery(payload, &seq, &query);
      if (!s.ok()) {
        protocol_errors_.fetch_add(1);
        std::string reply;
        net::EncodeStatus(0, WireStatus::kInvalidArgument, s.message(),
                          &reply);
        EnqueueFrame(conn, FrameType::kStatus, reply);
        if (!conn->dead) CloseConn(conn);
        return;
      }
      if (conn->busy_floor != 0) {
        if (seq == conn->busy_floor) {
          conn->busy_floor = 0;  // client restarted from the barrier
        } else if (seq > conn->busy_floor) {
          DeliverBusy(conn, seq);
          return;
        }
      }
      if (conn->in_flight || !conn->pending.empty()) {
        if (static_cast<int>(conn->pending.size()) >=
            options_.max_pipeline_depth) {
          DeliverBusy(conn, seq);
          return;
        }
        conn->pending.emplace_back(seq, std::move(query));
        return;
      }
      HandleQuery(conn, seq, query);
      return;
    }
    case FrameType::kStatsRequest: {
      uint64_t seq = 0;
      if (!net::DecodeStatsRequest(payload, &seq).ok()) {
        protocol_errors_.fetch_add(1);
        CloseConn(conn);
        return;
      }
      // Stats replies are out-of-band: they bypass any queued queries
      // (load generators ask after their workload has been answered).
      std::string reply;
      net::EncodeStats(seq, wire_stats(), &reply);
      EnqueueFrame(conn, FrameType::kStats, reply);
      return;
    }
    default: {
      protocol_errors_.fetch_add(1);
      std::string reply;
      net::EncodeStatus(0, WireStatus::kInvalidArgument,
                        std::string("unexpected ") +
                            net::FrameTypeToString(type) + " frame",
                        &reply);
      EnqueueFrame(conn, FrameType::kStatus, reply);
      if (!conn->dead) CloseConn(conn);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Query processing.

void EventDrivenServer::HandleQuery(Conn* conn, uint64_t seq,
                                    const interface::Query& query) {
  Session* session = conn->session;
  {
    // Everything written while the session lock is held; the reply frame
    // is enqueued after release (EnqueueFrame may shed the connection).
    net::FrameType reply_type = FrameType::kStatus;
    std::string reply;
    bool have_reply = false;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      if (session->has_reply && seq == session->last_seq) {
        // Retried sequence: replay the cached reply; neither the backend
        // nor the budget sees the query a second time.
        queries_replayed_.fetch_add(1);
        reply_type = session->reply_type;
        reply = session->reply_payload;
        have_reply = true;
      } else {
        const uint64_t expected =
            session->has_reply ? session->last_seq + 1 : seq;
        if (seq != expected || seq == 0) {
          protocol_errors_.fetch_add(1);
          net::EncodeStatus(
              seq, WireStatus::kInvalidArgument,
              "out-of-order sequence number " + std::to_string(seq),
              &reply);
          have_reply = true;
        } else if (options_.per_client_query_budget > 0 &&
                   session->queries_used >=
                       options_.per_client_query_budget) {
          budget_rejections_.fetch_add(1);
          net::EncodeStatus(seq, WireStatus::kBudgetExhausted,
                            "per-client query budget exhausted", &reply);
          session->last_seq = seq;
          session->has_reply = true;
          session->reply_type = FrameType::kStatus;
          session->reply_payload = reply;
          have_reply = true;
        }
      }
    }
    if (have_reply) {
      EnqueueFrame(conn, reply_type, reply);
      return;
    }
  }

  // Fresh query. All async completions funnel through FinalizeAsync on
  // this connection's loop.
  conn->in_flight = true;
  if (cache_ == nullptr) {
    auto cb = MakeCompletion(conn, seq);
    const bool admitted = SubmitBackendTask(
        [this, query, cb = std::move(cb)] {
          interface::QueryResult result;
          const Status s = ExecuteBackend(query, &result);
          if (s.ok()) {
            cb(s, std::make_shared<const interface::QueryResult>(
                      std::move(result)));
          } else {
            cb(s, nullptr);
          }
        });
    if (!admitted) {
      conn->in_flight = false;
      DeliverBusy(conn, seq);
    }
    return;
  }

  const std::string key = query.Signature();
  std::shared_ptr<const interface::QueryResult> ready;
  switch (cache_->StartLookup(key, &ready, MakeCompletion(conn, seq))) {
    case SharedQueryCache::Lookup::kHit:
      conn->in_flight = false;
      cache_hits_.fetch_add(1);
      Deliver(conn, seq, Status::OK(), ready);
      return;
    case SharedQueryCache::Lookup::kWait:
      singleflight_joins_.fetch_add(1);
      return;  // completion arrives via the owner's Complete
    case SharedQueryCache::Lookup::kOwner:
      if (!SubmitBackendTask([this, key, query] {
            interface::QueryResult result;
            const Status s = ExecuteBackend(query, &result);
            if (s.ok()) {
              cache_->Complete(
                  key, s,
                  std::make_shared<const interface::QueryResult>(
                      std::move(result)));
            } else {
              cache_->Complete(key, s, nullptr);
            }
          })) {
        // Resolve the flight as BUSY; the owner's own callback (and any
        // waiter that raced in) gets the transient rejection.
        cache_->Complete(key, BusyStatus(), nullptr);
      }
      return;
  }
}

Status EventDrivenServer::ExecuteBackend(const interface::Query& query,
                                         interface::QueryResult* result) {
  Status s;
  if (options_.serialize_backend) {
    std::lock_guard<std::mutex> lock(backend_mu_);
    s = db_->Execute(query, result);
  } else {
    s = db_->Execute(query, result);
  }
  if (s.ok()) backend_executions_.fetch_add(1);
  return s;
}

SharedQueryCache::Callback EventDrivenServer::MakeCompletion(Conn* conn,
                                                             uint64_t seq) {
  const size_t li = conn->loop_index;
  const uint64_t id = conn->id;
  return [this, li, id, seq](
             const Status& status,
             const std::shared_ptr<const interface::QueryResult>& result) {
    loops_[li]->Post([this, li, id, seq, status, result] {
      FinalizeAsync(li, id, seq, status, result);
    });
  };
}

void EventDrivenServer::FinalizeAsync(
    size_t loop_index, uint64_t conn_id, uint64_t seq, const Status& status,
    std::shared_ptr<const interface::QueryResult> result) {
  Conn* conn = FindConn(loop_index, conn_id);
  if (conn == nullptr || conn->dead) {
    // The client is gone: nothing is delivered, the session is not
    // charged, and nothing enters the replay cache. A reconnecting
    // session retries the same sequence and (with the shared cache) hits
    // the now-ready entry, so the backend is still charged exactly once.
    return;
  }
  conn->in_flight = false;
  conn->last_activity = std::chrono::steady_clock::now();
  if (IsBusy(status)) {
    DeliverBusy(conn, seq);
  } else {
    Deliver(conn, seq, status, result);
  }
  if (!conn->dead) ProcessPending(conn);
}

void EventDrivenServer::ProcessPending(Conn* conn) {
  while (!conn->dead && !conn->in_flight && !conn->pending.empty()) {
    auto [seq, query] = std::move(conn->pending.front());
    conn->pending.pop_front();
    HandleQuery(conn, seq, query);
  }
}

void EventDrivenServer::Deliver(
    Conn* conn, uint64_t seq, const Status& status,
    const std::shared_ptr<const interface::QueryResult>& result) {
  std::string payload;
  FrameType type;
  if (status.ok()) {
    type = FrameType::kResult;
    net::EncodeResult(seq, *result, &payload);
  } else {
    type = FrameType::kStatus;
    net::EncodeStatus(seq, net::WireStatusFromStatus(status),
                      status.message(), &payload);
  }
  {
    std::lock_guard<std::mutex> lock(conn->session->mu);
    if (status.ok()) conn->session->queries_used += 1;
    conn->session->last_seq = seq;
    conn->session->has_reply = true;
    conn->session->reply_type = type;
    conn->session->reply_payload = payload;
  }
  if (status.ok()) queries_served_.fetch_add(1);
  EnqueueFrame(conn, type, payload);
}

void EventDrivenServer::DeliverBusy(Conn* conn, uint64_t seq) {
  // Raise the barrier: later seqs cannot be processed in order anymore,
  // so they are BUSY'd too until the client retries `seq` itself.
  if (conn->busy_floor == 0 || seq < conn->busy_floor) {
    conn->busy_floor = seq;
  }
  busy_rejections_.fetch_add(1);
  std::string payload;
  net::EncodeStatus(seq, WireStatus::kRateLimited,
                    "server busy, retry later", &payload);
  // Deliberately NOT recorded in the session replay cache: the client
  // retries the same sequence number and it must be processed fresh.
  EnqueueFrame(conn, FrameType::kStatus, payload);
  // Pipelined queries already queued behind the barrier are a suffix of
  // `pending` (seqs ascend); flush them with BUSY in order.
  while (!conn->dead && !conn->pending.empty() &&
         conn->pending.front().first > conn->busy_floor) {
    const uint64_t flushed = conn->pending.front().first;
    conn->pending.pop_front();
    busy_rejections_.fetch_add(1);
    std::string flush_payload;
    net::EncodeStatus(flushed, WireStatus::kRateLimited,
                      "server busy, retry later", &flush_payload);
    EnqueueFrame(conn, FrameType::kStatus, flush_payload);
  }
}

// ---------------------------------------------------------------------------
// Write path.

void EventDrivenServer::EnqueueFrame(Conn* conn, FrameType type,
                                     std::string_view payload) {
  if (conn->dead) return;
  conn->wbuf += net::EncodeFrameHeader(
      type, static_cast<uint32_t>(payload.size()));
  conn->wbuf.append(payload.data(), payload.size());
  FlushWrites(conn);
  if (conn->dead) return;
  const size_t backlog = conn->wbuf.size() - conn->wpos;
  if (options_.write_buffer_limit > 0 &&
      backlog > options_.write_buffer_limit) {
    // Slow reader: shedding beats buffering without bound.
    connections_shed_.fetch_add(1);
    CloseConn(conn);
    return;
  }
  if (backlog > options_.read_pause_bytes) conn->read_paused = true;
  UpdateInterest(conn);
}

void EventDrivenServer::FlushWrites(Conn* conn) {
  while (conn->wpos < conn->wbuf.size()) {
    const ssize_t n =
        send(conn->sock.fd(), conn->wbuf.data() + conn->wpos,
             conn->wbuf.size() - conn->wpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wpos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->want_write = true;
      return;
    }
    CloseConn(conn);  // peer reset / broken pipe
    return;
  }
  conn->wbuf.clear();
  conn->wpos = 0;
  conn->want_write = false;
}

void EventDrivenServer::UpdateInterest(Conn* conn) {
  if (conn->dead) return;
  uint32_t events = 0;
  if (!conn->read_paused) events |= EPOLLIN;
  if (conn->want_write) events |= EPOLLOUT;
  if (events == 0) events = EPOLLOUT;  // paused + drained: wait for writable
  (void)loops_[conn->loop_index]->Modify(conn->sock.fd(), events);
}

}  // namespace service
}  // namespace hdsky
