// EventDrivenServer: the multi-tenant, event-driven core of the hidden-
// database service — the successor of the thread-per-connection
// DatabaseServer (server.h), built for thousands of concurrent
// discovery sessions instead of a handful of loopback tests.
//
// Architecture
//
//   listener ──► loop 0 ──┐         ┌─► executor ThreadPool ─► backend
//                          │ round- │      (Execute calls)
//   conns ◄──► loop 0..L-1 ┘ robin  │
//        nonblocking sockets        │
//        read/write buffers    SharedQueryCache (single-flight)
//        request pipelining         │
//        admission control ◄────────┘ completions posted back to the
//        idle/slow timeouts           owning loop
//
//  * N event-loop threads (net/event_loop.h) own the sockets: each
//    connection lives on exactly one loop, so connection state is
//    lock-free. The accept path (listener on loop 0) spreads new
//    connections round-robin.
//  * Backend queries run on a runtime::ThreadPool executor, never on a
//    loop thread, so one expensive query cannot stall unrelated
//    connections' I/O. Completions are posted back to the owning loop.
//  * Request pipelining: a client may stream many Query frames on one
//    connection without waiting; the server answers strictly in order
//    (the per-session sequence contract requires it). Queries beyond
//    Options::max_pipeline_depth are answered with a transient BUSY
//    (kRateLimited) instead of being buffered without bound.
//  * Admission control: at most Options::max_pending_queries backend
//    executions may be queued or running; excess fresh queries get BUSY
//    so an overloaded server degrades by shedding work, not by growing
//    queues until it falls over. Accept-time overload (max_connections)
//    sheds whole connections the same way.
//  * Slow clients: a connection whose unsent reply backlog exceeds
//    write_buffer_limit is shed; above read_pause_bytes the server
//    additionally stops reading from it (backpressure) until the
//    backlog drains. Idle connections are evicted after idle_timeout_ms.
//
// Shared cross-session query cache
//
//  The per-session replay cache (exactly-once accounting under retries,
//  identical to DatabaseServer's) is kept, and a SharedQueryCache is
//  layered across sessions: N sessions discovering the same database
//  pay each distinct backend query once. Per-session budgets charge
//  *client-visible* answers — a session is charged whether its answer
//  came from the backend, the cache, or another session's in-flight
//  execution — so budget accounting is indistinguishable from a
//  cache-less server while backend load drops by the deduped ratio.
//  Budget rejections and replays behave exactly as before.
//
// Wire compatibility: speaks the same protocol as DatabaseServer, so
// RemoteHiddenDatabase and all PR 4 resume machinery work unchanged;
// additionally answers kStatsRequest frames with live ServiceStats so
// load generators can compute the queries-deduped ratio remotely.

#ifndef HDSKY_SERVICE_EVENT_SERVER_H_
#define HDSKY_SERVICE_EVENT_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "interface/hidden_database.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "runtime/thread_pool.h"
#include "service/shared_cache.h"

namespace hdsky {
namespace service {

class EventDrivenServer {
 public:
  struct Options {
    /// IPv4 address to bind; loopback by default.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    uint16_t port = 0;
    /// Event-loop (I/O) threads. 0 = min(4, hardware threads).
    int num_loops = 0;
    /// Backend executor threads. 0 = min(8, hardware threads).
    int num_workers = 0;
    /// Concurrent connections; excess gets a best-effort kRateLimited
    /// frame and is closed at accept time.
    int max_connections = 4096;
    /// Per-session query budget (0 = unlimited); charges client-visible
    /// answers, replays never count.
    int64_t per_client_query_budget = 0;
    /// Enable the shared cross-session cache with single-flight dedup.
    bool shared_cache = true;
    /// Ready entries the shared cache may hold (0 = unlimited).
    size_t cache_max_entries = 1 << 20;
    /// Backend executions queued or running before fresh queries are
    /// answered BUSY (0 = unlimited).
    int max_pending_queries = 1024;
    /// Unanswered pipelined queries buffered per connection before BUSY.
    int max_pipeline_depth = 64;
    /// Unsent reply bytes before a slow reader is shed.
    size_t write_buffer_limit = 8u << 20;
    /// Unsent reply bytes above which the server stops reading from the
    /// connection until the backlog drains (must be < write_buffer_limit).
    size_t read_pause_bytes = 1u << 20;
    /// Connections idle this long are evicted (0 = never).
    int idle_timeout_ms = 60000;
    /// Serialize backend Execute calls under one mutex; leave false for
    /// thread-safe backends (TopKInterface with static-order rankings).
    bool serialize_backend = false;
  };

  struct Stats {
    int64_t connections_accepted = 0;
    int64_t connections_rejected = 0;
    /// Connections dropped by the server: slow readers over the write
    /// cap and idle-timeout evictions.
    int64_t connections_shed = 0;
    int64_t idle_closed = 0;
    /// Fresh client-visible queries answered successfully.
    int64_t queries_served = 0;
    /// Queries that reached the backend (successful executions).
    int64_t backend_executions = 0;
    /// Served from a ready shared-cache entry.
    int64_t cache_hits = 0;
    /// Served by joining another session's in-flight execution.
    int64_t singleflight_joins = 0;
    int64_t queries_replayed = 0;
    int64_t busy_rejections = 0;
    int64_t budget_rejections = 0;
    int64_t protocol_errors = 0;
  };

  /// Binds, listens, spawns the loops and executor. `db` must outlive
  /// the server; it is the single backend all sessions share.
  static common::Result<std::unique_ptr<EventDrivenServer>> Start(
      interface::HiddenDatabase* db, const Options& options);

  ~EventDrivenServer();

  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, closes every connection, joins loops and executor.
  /// Idempotent.
  void Stop();

  Stats stats() const;
  /// The same counters in wire form (what kStats frames carry).
  net::ServiceStats wire_stats() const;

 private:
  /// Replay + budget state of one client session; shared across the
  /// session's reconnects. Protected by its own mutex because two
  /// connections may present the same session id.
  struct Session {
    std::mutex mu;
    uint64_t last_seq = 0;
    bool has_reply = false;
    net::FrameType reply_type = net::FrameType::kStatus;
    std::string reply_payload;
    int64_t queries_used = 0;
  };

  /// One live connection; owned and touched by exactly one loop thread.
  struct Conn {
    uint64_t id = 0;
    size_t loop_index = 0;
    net::Socket sock;
    bool handshaken = false;
    bool dead = false;
    /// True while a backend execution / shared-cache wait is outstanding
    /// for this connection (per-session ordering admits only one).
    bool in_flight = false;
    /// Reading paused because the reply backlog crossed read_pause_bytes.
    bool read_paused = false;
    std::string rbuf;
    size_t rpos = 0;
    std::string wbuf;
    size_t wpos = 0;
    bool want_write = false;
    /// Parsed-but-unprocessed pipelined queries (seq, query).
    std::deque<std::pair<uint64_t, interface::Query>> pending;
    /// BUSY barrier: after answering BUSY for this seq, every arriving
    /// query with a larger seq is also answered BUSY (it could not be
    /// processed in order anymore). Cleared when the client retries the
    /// barrier seq itself. 0 = no barrier.
    uint64_t busy_floor = 0;
    Session* session = nullptr;
    std::chrono::steady_clock::time_point last_activity;
  };

  EventDrivenServer(interface::HiddenDatabase* db, const Options& options);

  void AcceptReady();
  void AdoptConnection(size_t loop_index, int fd);
  void HandleIo(size_t loop_index, uint64_t conn_id, uint32_t events);
  void HandleRead(Conn* conn);
  void ParseFrames(Conn* conn);
  void HandleFrame(Conn* conn, net::FrameType type,
                   std::string_view payload);
  void HandleQuery(Conn* conn, uint64_t seq, const interface::Query& query);
  void ProcessPending(Conn* conn);
  /// Runs on the owning loop thread when a backend/cache flight resolves.
  void FinalizeAsync(size_t loop_index, uint64_t conn_id, uint64_t seq,
                     const common::Status& status,
                     std::shared_ptr<const interface::QueryResult> result);
  /// Encodes and enqueues the reply, charges the session budget on
  /// success, and records the reply in the session replay cache.
  void Deliver(Conn* conn, uint64_t seq, const common::Status& status,
               const std::shared_ptr<const interface::QueryResult>& result);
  /// Transient BUSY: kRateLimited, never recorded for replay.
  void DeliverBusy(Conn* conn, uint64_t seq);
  void EnqueueFrame(Conn* conn, net::FrameType type,
                    std::string_view payload);
  void FlushWrites(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(Conn* conn);
  void TickLoop(size_t loop_index);
  /// Admission-controlled enqueue onto the executor; false = answer BUSY.
  bool SubmitBackendTask(std::function<void()> task);
  /// Runs the query on the backend (optionally serialized) and counts it.
  common::Status ExecuteBackend(const interface::Query& query,
                                interface::QueryResult* result);
  SharedQueryCache::Callback MakeCompletion(Conn* conn, uint64_t seq);
  Session* GetSession(uint64_t session_id);

  Conn* FindConn(size_t loop_index, uint64_t conn_id);

  interface::HiddenDatabase* db_;
  Options options_;
  net::ServerSocket listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_loop_{0};

  std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;

  std::unique_ptr<SharedQueryCache> cache_;

  std::mutex backend_mu_;  // only used when serialize_backend

  // Atomic counters: bumped from loop threads and the executor.
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> connections_shed_{0};
  std::atomic<int64_t> idle_closed_{0};
  std::atomic<int64_t> queries_served_{0};
  std::atomic<int64_t> backend_executions_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> singleflight_joins_{0};
  std::atomic<int64_t> queries_replayed_{0};
  std::atomic<int64_t> busy_rejections_{0};
  std::atomic<int64_t> budget_rejections_{0};
  std::atomic<int64_t> protocol_errors_{0};

  /// Loops before executor: executor tasks post completions into loops,
  /// so the loops must be destroyed after the executor drains.
  std::vector<std::unique_ptr<net::EventLoop>> loops_;
  /// conn_maps_[i] is owned by loop i's thread exclusively.
  std::vector<std::unordered_map<uint64_t, std::unique_ptr<Conn>>> conn_maps_;
  std::unique_ptr<runtime::ThreadPool> executor_;
  std::vector<std::jthread> loop_threads_;  // last: joins first
};

}  // namespace service
}  // namespace hdsky

#endif  // HDSKY_SERVICE_EVENT_SERVER_H_
