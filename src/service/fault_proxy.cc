#include "service/fault_proxy.h"

#include <chrono>
#include <utility>

namespace hdsky {
namespace service {

using common::Result;
using common::Status;
using net::Frame;
using net::FrameType;
using net::WireStatus;

Result<std::unique_ptr<FaultInjectingProxy>> FaultInjectingProxy::Start(
    const std::string& upstream_host, uint16_t upstream_port,
    const Policy& policy, const Options& options) {
  for (double p : {policy.drop_prob, policy.truncate_prob,
                   policy.rate_limit_prob, policy.delay_prob}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "fault probabilities must lie in [0, 1]");
    }
  }
  auto proxy = std::unique_ptr<FaultInjectingProxy>(new FaultInjectingProxy(
      upstream_host, upstream_port, policy, options));
  HDSKY_ASSIGN_OR_RETURN(
      proxy->listener_,
      net::ServerSocket::Listen(options.bind_address, options.port,
                                /*backlog=*/16));
  proxy->accept_thread_ = std::jthread([p = proxy.get()] {
    p->AcceptLoop();
  });
  return proxy;
}

FaultInjectingProxy::~FaultInjectingProxy() { Stop(); }

void FaultInjectingProxy::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Shut both ends of every proxied pair so pump threads unblock, then
  // join them by destroying the connection objects.
  std::list<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    doomed.swap(conns_);
  }
  for (auto& conn : doomed) {
    conn->client.Shutdown();
    conn->upstream.Shutdown();
  }
  doomed.clear();  // jthread destructors join the pumps
}

FaultInjectingProxy::Stats FaultInjectingProxy::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void FaultInjectingProxy::BumpStat(int64_t Stats::* field) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += 1;
}

void FaultInjectingProxy::ReapFinished() {
  std::list<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->live_pumps.load(std::memory_order_acquire) == 0) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  finished.clear();  // joins outside conns_mu_
}

void FaultInjectingProxy::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinished();
    auto ready = listener_.PollAccept(/*timeout_ms=*/50);
    if (!ready.ok() || !*ready) continue;
    auto accepted = listener_.Accept();
    if (!accepted.ok()) continue;
    auto upstream = net::Socket::Connect(upstream_host_, upstream_port_,
                                         /*timeout_ms=*/5000);
    if (!upstream.ok()) continue;  // client sees a dead connection
    BumpStat(&Stats::connections);
    auto conn = std::make_unique<Connection>();
    conn->client = std::move(accepted).value();
    conn->upstream = std::move(upstream).value();
    conn->client.SetIoTimeout(options_.io_timeout_ms);
    conn->upstream.SetIoTimeout(options_.io_timeout_ms);
    conn->live_pumps.store(2, std::memory_order_release);
    const uint64_t index = next_conn_index_++;
    Connection* raw = conn.get();
    // Distinct derived seeds per direction keep fault schedules
    // deterministic and independent.
    conn->c2s = std::jthread([this, raw, index] {
      Pump(raw, /*client_to_server=*/true, policy_.seed + 2 * index);
      raw->live_pumps.fetch_sub(1, std::memory_order_acq_rel);
    });
    conn->s2c = std::jthread([this, raw, index] {
      Pump(raw, /*client_to_server=*/false, policy_.seed + 2 * index + 1);
      raw->live_pumps.fetch_sub(1, std::memory_order_acq_rel);
    });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void FaultInjectingProxy::Pump(Connection* conn, bool client_to_server,
                               uint64_t rng_seed) {
  common::Rng rng(rng_seed);
  net::Socket& src = client_to_server ? conn->client : conn->upstream;
  net::Socket& dst = client_to_server ? conn->upstream : conn->client;
  // Closing both directions on any fault or error makes the failure an
  // honest connection loss from both peers' point of view.
  auto kill_connection = [conn] {
    conn->client.Shutdown();
    conn->upstream.Shutdown();
  };
  while (!stopping_.load(std::memory_order_acquire)) {
    auto ready = src.PollIn(/*timeout_ms=*/100);
    if (!ready.ok()) return;
    if (!*ready) continue;
    Frame frame;
    if (!net::ReadFrame(src, &frame).ok()) {
      kill_connection();
      return;
    }
    // Blackout schedule: a deterministic window of client queries during
    // which the backend is dark — the connection dies exactly as if the
    // server were gone, and comes back once the window has passed.
    if (client_to_server && frame.type == FrameType::kQuery &&
        policy_.blackout_after_queries >= 0) {
      const int64_t arrival =
          queries_seen_.fetch_add(1, std::memory_order_acq_rel);
      if (arrival >= policy_.blackout_after_queries &&
          arrival < policy_.blackout_after_queries +
                        policy_.blackout_queries) {
        BumpStat(&Stats::queries_blacked_out);
        kill_connection();
        return;
      }
    }
    // Spurious rate limit: only meaningful for client queries, and the
    // reply goes straight back to the client.
    if (client_to_server && frame.type == FrameType::kQuery &&
        rng.Bernoulli(policy_.rate_limit_prob)) {
      uint64_t seq = 0;
      interface::Query ignored;
      if (net::DecodeQuery(frame.payload, &seq, &ignored).ok()) {
        std::string payload;
        net::EncodeStatus(seq, WireStatus::kRateLimited,
                          "injected rate limit", &payload);
        std::lock_guard<std::mutex> lock(conn->client_write_mu);
        if (!net::WriteFrame(conn->client, FrameType::kStatus, payload)
                 .ok()) {
          kill_connection();
          return;
        }
        BumpStat(&Stats::rate_limits_injected);
        continue;
      }
    }
    if (rng.Bernoulli(policy_.drop_prob)) {
      BumpStat(&Stats::frames_dropped);
      kill_connection();
      return;
    }
    if (rng.Bernoulli(policy_.truncate_prob)) {
      std::string wire = net::EncodeFrameHeader(
          frame.type, static_cast<uint32_t>(frame.payload.size()));
      wire += frame.payload;
      // Forward a strict prefix — at least the header (so the receiver
      // commits to reading a payload that never arrives), never the
      // whole frame.
      const size_t cut =
          frame.payload.empty()
              ? net::kFrameHeaderBytes - 1  // partial header
              : net::kFrameHeaderBytes +
                    static_cast<size_t>(rng.UniformInt(
                        0, static_cast<int64_t>(frame.payload.size()) - 1));
      if (client_to_server) {
        dst.SendAll(wire.data(), cut);
      } else {
        std::lock_guard<std::mutex> lock(conn->client_write_mu);
        dst.SendAll(wire.data(), cut);
      }
      BumpStat(&Stats::frames_truncated);
      kill_connection();
      return;
    }
    if (policy_.delay_ms > 0 && rng.Bernoulli(policy_.delay_prob)) {
      BumpStat(&Stats::delays_injected);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(policy_.delay_ms));
    }
    Status forwarded;
    if (client_to_server) {
      forwarded = net::WriteFrame(dst, frame.type, frame.payload);
    } else {
      std::lock_guard<std::mutex> lock(conn->client_write_mu);
      forwarded = net::WriteFrame(dst, frame.type, frame.payload);
    }
    if (!forwarded.ok()) {
      kill_connection();
      return;
    }
    BumpStat(&Stats::frames_forwarded);
  }
}

}  // namespace service
}  // namespace hdsky
