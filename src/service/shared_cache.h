// SharedQueryCache: the cross-session backend query cache with
// single-flight semantics at the heart of the event-driven server.
//
// The paper's scarce resource is queries against the rate-limited hidden
// database. PR 2's replay cache already guarantees exactly-once
// accounting *per session*; this cache lifts deduplication to *per
// backend*: when N concurrent sessions discover the same hidden database
// with the same algorithm, each distinct backend query is paid exactly
// once — the first session to ask becomes the flight's owner, everyone
// else joins the in-flight execution, and later sessions hit the cached
// answer.
//
// Single-flight protocol:
//   1. Lookup(key) with a completion callback. Outcomes:
//        kHit   — a ready answer was copied out; the callback is unused.
//        kOwner — the caller must execute the query and call Complete();
//                 its callback fires from inside that Complete.
//        kWait  — another caller owns the flight; the callback fires when
//                 the owner completes (with the owner's status/result).
//   2. Complete(key, status, result) resolves the flight: an OK result is
//      cached for future hits; an error resolves the waiters but caches
//      nothing (errors are never memoized — a transient backend failure
//      must not poison the key forever).
//
// Threading: fully thread-safe; sharded like ConcurrentCachingDatabase so
// unrelated keys never contend. Callbacks run on the Complete() caller's
// thread and must not call back into the cache for the same key.
// Results travel as shared_ptr<const QueryResult> so resolving a flight
// with hundreds of waiters copies nothing.
//
// Capacity: max_entries bounds memory; when full, insertion evicts a
// random-ish victim from the same shard (cheap, and discovery workloads
// are sweep-shaped — precise LRU buys little over the paper's cost
// model). In-flight entries are never evicted.

#ifndef HDSKY_SERVICE_SHARED_CACHE_H_
#define HDSKY_SERVICE_SHARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "interface/hidden_database.h"

namespace hdsky {
namespace service {

class SharedQueryCache {
 public:
  enum class Lookup {
    kHit,
    kOwner,
    kWait,
  };

  /// Completion callback: status of the flight plus the result (non-null
  /// iff status is OK).
  using Callback = std::function<void(
      const common::Status&,
      const std::shared_ptr<const interface::QueryResult>&)>;

  struct Options {
    /// Max ready entries kept (0 = unlimited).
    size_t max_entries = 1 << 20;
  };

  struct Stats {
    int64_t hits = 0;    // answered from a ready entry
    int64_t owners = 0;  // flights started (== backend executions)
    int64_t joins = 0;   // callers who joined an in-flight execution
    int64_t evictions = 0;
  };

  SharedQueryCache() : SharedQueryCache(Options()) {}
  explicit SharedQueryCache(Options options);

  /// See the single-flight protocol above. On kHit, *out receives the
  /// cached answer and `cb` is never invoked; on kOwner/kWait, `cb` is
  /// retained until the flight completes.
  Lookup StartLookup(const std::string& key,
                     std::shared_ptr<const interface::QueryResult>* out,
                     Callback cb);

  /// Resolves the flight for `key`, invoking every retained callback
  /// (owner's included). OK results are cached; errors are not. Calling
  /// Complete for a key with no in-flight entry is a no-op.
  void Complete(const std::string& key, const common::Status& status,
                std::shared_ptr<const interface::QueryResult> result);

  /// Ready entries currently cached (in-flight excluded).
  size_t size() const;

  Stats stats() const;

 private:
  static constexpr size_t kNumShards = 32;

  struct Entry {
    bool ready = false;
    std::shared_ptr<const interface::QueryResult> result;
    /// Callbacks of the owner and all joined waiters, pending Complete.
    std::vector<Callback> pending;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  Options options_;
  Shard shards_[kNumShards];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> owners_{0};
  std::atomic<int64_t> joins_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace service
}  // namespace hdsky

#endif  // HDSKY_SERVICE_SHARED_CACHE_H_
