// LoadDriver: an epoll-based load-generation client for the hdsky wire
// protocol, built on the same net::EventLoop substrate as the server it
// exercises. It opens many concurrent sessions (one connection each),
// pipelines queries on every connection, retries transient BUSY
// rejections with backoff, measures per-query latency, and finally asks
// the server for its ServiceStats (kStatsRequest) so callers can report
// the cross-session queries-deduped ratio.
//
// Workload model: every session runs the SAME deterministic query
// sequence, derived from the served schema's interface taxonomy (SQ
// attributes get upper bounds, RQ attributes two-ended ranges, PQ
// attributes point predicates — the Section 2.2 forms). N sessions over
// Q distinct queries make the ideal dedup ratio 1 - 1/N: exactly the
// "many clients discovering the same hidden database" scenario the
// shared cross-session cache exists for.
//
// Threading: `num_loops` client event loops each own sessions/num_loops
// connections; per-loop state (latency samples included) is touched only
// by its loop thread, so the hot path takes no locks. RunLoad blocks the
// calling thread until the run completes, times out, or fails.

#ifndef HDSKY_SERVICE_LOAD_DRIVER_H_
#define HDSKY_SERVICE_LOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "interface/query.h"
#include "net/wire.h"

namespace hdsky {
namespace service {

struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent sessions; each opens one connection and keeps it open
  /// until the whole run finishes (sustained concurrency, not churn).
  int sessions = 100;
  /// Distinct queries per session; identical across sessions.
  int queries_per_session = 32;
  /// Max unanswered queries pipelined on one connection.
  int pipeline_depth = 8;
  /// Client event loops. 0 = min(4, hardware threads).
  int num_loops = 0;
  /// Whole-run deadline; the run fails (partial report) past it.
  int total_timeout_ms = 120000;
  /// Backoff before retrying after a BUSY rejection.
  int busy_backoff_ms = 2;
  /// Seed of the deterministic workload generator.
  uint64_t workload_seed = 42;
  /// Session ids handed to kHello: base .. base + sessions - 1.
  uint64_t session_id_base = 1;
  /// Fetch the server's ServiceStats after the workload completes.
  bool fetch_server_stats = true;
};

struct LoadReport {
  /// Sessions whose full workload was answered.
  int sessions_completed = 0;
  /// Sessions that failed (connect error, protocol error, reset).
  int sessions_failed = 0;
  /// Successful query answers received (across all sessions).
  int64_t queries_completed = 0;
  /// BUSY (kRateLimited) replies received and retried.
  int64_t busy_retries = 0;
  double elapsed_ms = 0;
  /// Successful answers per second of wall clock.
  double qps = 0;
  double latency_p50_us = 0;
  double latency_p99_us = 0;
  double latency_mean_us = 0;
  /// True when the run finished inside the deadline with zero failures.
  bool complete = false;
  /// Server-side counters (valid iff server_stats_valid).
  bool server_stats_valid = false;
  net::ServiceStats server;
  /// 1 - backend_executions / queries_served, from the server counters;
  /// 0 when stats are unavailable or nothing was served.
  double dedup_ratio = 0;
};

/// The deterministic shared workload: `count` queries over `schema`,
/// respecting each attribute's interface type. Exposed for tests (the
/// driver and the expectations must agree on the query set).
std::vector<interface::Query> GenerateWorkload(const data::Schema& schema,
                                               int count, uint64_t seed);

/// Runs the load described by `options` against a listening server.
/// Returns a report even on timeout (complete = false); returns an error
/// Status only for invalid options or setup failures (no event loop,
/// fd limits too low to even start).
common::Result<LoadReport> RunLoad(const LoadOptions& options);

}  // namespace service
}  // namespace hdsky

#endif  // HDSKY_SERVICE_LOAD_DRIVER_H_
