#include "service/server.h"

#include <sys/socket.h>

#include <utility>

namespace hdsky {
namespace service {

using common::Result;
using common::Status;
using net::Frame;
using net::FrameType;
using net::WireStatus;

Result<std::unique_ptr<DatabaseServer>> DatabaseServer::Start(
    interface::HiddenDatabase* db, const Options& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("backend database must not be null");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.per_client_query_budget < 0) {
    return Status::InvalidArgument("per_client_query_budget must be >= 0");
  }
  auto server = std::unique_ptr<DatabaseServer>(
      new DatabaseServer(db, options));
  HDSKY_ASSIGN_OR_RETURN(
      server->listener_,
      net::ServerSocket::Listen(options.bind_address, options.port,
                                /*backlog=*/options.max_connections + 8));
  server->pool_ =
      std::make_unique<runtime::ThreadPool>(options.max_connections);
  server->accept_thread_ = std::jthread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

DatabaseServer::DatabaseServer(interface::HiddenDatabase* db,
                               const Options& options)
    : db_(db), options_(options) {}

DatabaseServer::~DatabaseServer() { Stop(); }

void DatabaseServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: the first one already tore everything down (the
    // members below are only reset once).
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  {
    // Unblock workers parked in RecvExact on a live connection.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) shutdown(fd, SHUT_RDWR);
  }
  // ThreadPool destruction drains queued connections and joins workers.
  pool_.reset();
}

DatabaseServer::Stats DatabaseServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void DatabaseServer::BumpStat(int64_t Stats::* field) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += 1;
}

DatabaseServer::Session* DatabaseServer::GetSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    it = sessions_.emplace(session_id, std::make_unique<Session>()).first;
  }
  return it->second.get();
}

void DatabaseServer::RegisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  conn_fds_.insert(fd);
}

void DatabaseServer::UnregisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  conn_fds_.erase(fd);
}

void DatabaseServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto ready = listener_.PollAccept(/*timeout_ms=*/50);
    if (!ready.ok() || !*ready) continue;
    auto accepted = listener_.Accept();
    if (!accepted.ok()) continue;
    net::Socket sock = std::move(accepted).value();
    // Admission control: claim a slot before handing the connection to
    // the pool so at most max_connections handlers are ever in flight.
    const int active =
        active_connections_.fetch_add(1, std::memory_order_acq_rel);
    if (active >= options_.max_connections) {
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      BumpStat(&Stats::connections_rejected);
      std::string payload;
      net::EncodeStatus(0, WireStatus::kRateLimited,
                        "connection limit reached, retry later", &payload);
      sock.SetIoTimeout(1000);
      net::WriteFrame(sock, FrameType::kStatus, payload);  // best effort
      continue;  // sock closes on scope exit
    }
    BumpStat(&Stats::connections_accepted);
    // The pool owns the socket from here; shared_ptr because
    // std::function requires copyable callables.
    auto shared = std::make_shared<net::Socket>(std::move(sock));
    pool_->Submit([this, shared]() mutable {
      ServeConnection(std::move(*shared));
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
}

void DatabaseServer::ServeConnection(net::Socket sock) {
  sock.SetIoTimeout(options_.io_timeout_ms);
  RegisterConnection(sock.fd());
  // Ensure the fd is deregistered on every exit path; Close happens via
  // the Socket destructor after this guard runs.
  struct Deregister {
    DatabaseServer* server;
    int fd;
    ~Deregister() { server->UnregisterConnection(fd); }
  } deregister{this, sock.fd()};

  // Handshake: Hello in, Descriptor out.
  Frame frame;
  Status s = net::ReadFrame(sock, &frame);
  if (!s.ok() || frame.type != FrameType::kHello) {
    BumpStat(&Stats::protocol_errors);
    return;
  }
  uint64_t session_id = 0;
  if (!net::DecodeHello(frame.payload, &session_id).ok()) {
    BumpStat(&Stats::protocol_errors);
    return;
  }
  Session* session = GetSession(session_id);
  {
    std::string payload;
    int64_t remaining = -1;
    if (options_.per_client_query_budget > 0) {
      std::lock_guard<std::mutex> lock(session->mu);
      remaining = options_.per_client_query_budget - session->queries_used;
      if (remaining < 0) remaining = 0;
    }
    net::EncodeDescriptor(db_->schema(), db_->k(), remaining, &payload);
    if (!net::WriteFrame(sock, FrameType::kDescriptor, payload).ok()) {
      return;
    }
  }

  // Query loop.
  while (!stopping_.load(std::memory_order_acquire)) {
    auto ready = sock.PollIn(/*timeout_ms=*/100);
    if (!ready.ok()) return;
    if (!*ready) continue;  // idle; re-check the stop flag
    if (!net::ReadFrame(sock, &frame).ok()) return;  // closed / timed out
    if (frame.type == FrameType::kStatsRequest) {
      uint64_t seq = 0;
      if (!net::DecodeStatsRequest(frame.payload, &seq).ok()) {
        BumpStat(&Stats::protocol_errors);
        return;
      }
      net::ServiceStats wire_stats;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        wire_stats.queries_served = stats_.queries_served;
        // No shared cache in this engine: every fresh query hits the
        // backend, so the deduped ratio reported to load generators is 0.
        wire_stats.backend_executions = stats_.queries_served;
        wire_stats.queries_replayed = stats_.queries_replayed;
        wire_stats.budget_rejections = stats_.budget_rejections;
        wire_stats.connections_accepted = stats_.connections_accepted;
        wire_stats.connections_rejected = stats_.connections_rejected;
        wire_stats.protocol_errors = stats_.protocol_errors;
      }
      std::string payload;
      net::EncodeStats(seq, wire_stats, &payload);
      if (!net::WriteFrame(sock, FrameType::kStats, payload).ok()) return;
      continue;
    }
    if (frame.type != FrameType::kQuery) {
      BumpStat(&Stats::protocol_errors);
      std::string payload;
      net::EncodeStatus(0, WireStatus::kInvalidArgument,
                        std::string("unexpected ") +
                            net::FrameTypeToString(frame.type) + " frame",
                        &payload);
      net::WriteFrame(sock, FrameType::kStatus, payload);
      return;
    }
    uint64_t seq = 0;
    interface::Query query;
    s = net::DecodeQuery(frame.payload, &seq, &query);
    if (!s.ok()) {
      BumpStat(&Stats::protocol_errors);
      std::string payload;
      net::EncodeStatus(0, WireStatus::kInvalidArgument, s.message(),
                        &payload);
      net::WriteFrame(sock, FrameType::kStatus, payload);
      return;
    }
    FrameType reply_type;
    std::string reply_payload;
    AnswerQuery(session, seq, query, &reply_type, &reply_payload);
    if (!net::WriteFrame(sock, reply_type, reply_payload).ok()) return;
  }
}

void DatabaseServer::AnswerQuery(Session* session, uint64_t seq,
                                 const interface::Query& query,
                                 FrameType* reply_type,
                                 std::string* reply_payload) {
  std::lock_guard<std::mutex> session_lock(session->mu);
  // Retried sequence: replay the cached reply; the backend never sees the
  // query a second time, so its accounting stays exact under retries.
  if (session->has_reply && seq == session->last_seq) {
    *reply_type = session->reply_type;
    *reply_payload = session->reply_payload;
    BumpStat(&Stats::queries_replayed);
    return;
  }
  const uint64_t expected =
      session->has_reply ? session->last_seq + 1 : seq;
  if (seq != expected || seq == 0) {
    // Out-of-order client; answered but never cached (a replayed gap
    // would poison the session).
    *reply_type = FrameType::kStatus;
    reply_payload->clear();
    net::EncodeStatus(seq, WireStatus::kInvalidArgument,
                      "out-of-order sequence number " + std::to_string(seq),
                      reply_payload);
    BumpStat(&Stats::protocol_errors);
    return;
  }

  reply_payload->clear();
  if (options_.per_client_query_budget > 0 &&
      session->queries_used >= options_.per_client_query_budget) {
    *reply_type = FrameType::kStatus;
    net::EncodeStatus(seq, WireStatus::kBudgetExhausted,
                      "per-client query budget exhausted", reply_payload);
    BumpStat(&Stats::budget_rejections);
  } else {
    Result<interface::QueryResult> result = [&] {
      if (options_.serialize_backend) {
        std::lock_guard<std::mutex> backend_lock(backend_mu_);
        return db_->Execute(query);
      }
      return db_->Execute(query);
    }();
    if (result.ok()) {
      *reply_type = FrameType::kResult;
      net::EncodeResult(seq, *result, reply_payload);
      session->queries_used += 1;
      BumpStat(&Stats::queries_served);
    } else {
      *reply_type = FrameType::kStatus;
      net::EncodeStatus(seq, net::WireStatusFromStatus(result.status()),
                        result.status().message(), reply_payload);
    }
  }
  session->last_seq = seq;
  session->has_reply = true;
  session->reply_type = *reply_type;
  session->reply_payload = *reply_payload;
}

}  // namespace service
}  // namespace hdsky
