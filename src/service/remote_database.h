// RemoteHiddenDatabase: the client half of the network service — a
// HiddenDatabase whose Execute travels over TCP to a DatabaseServer
// (tools/hdsky_serve). Because every discovery algorithm programs against
// the HiddenDatabase interface, SQ/RQ/PQ/MIXED/MQ-DB-SKY and the sky-band
// variants run over the network *unchanged*.
//
// Failure policy:
//  * Transient failures — connection loss, I/O timeouts, truncated or
//    malformed frames, kRateLimited statuses — are retried up to
//    Options::max_attempts with bounded exponential backoff plus jitter
//    (full-jitter on the upper half of the window, seeded and
//    deterministic for tests).
//  * Permanent statuses from the server (Unsupported, kBudgetExhausted,
//    InvalidArgument, ...) are surfaced honestly through the existing
//    common::Status model: kBudgetExhausted maps to ResourceExhausted,
//    exactly what in-process discovery sees when TopKInterface's budget
//    runs dry, so anytime behavior is identical locally and remotely.
//  * When retries run out, Execute fails Unavailable with a descriptive
//    message carrying the last underlying error — it never hangs and never
//    lies. Whether the backend kept shedding load (kRateLimited past the
//    retry budget) or the link itself kept dying, the meaning is the same:
//    the site is unreachable right now, come back later — distinct from
//    the ResourceExhausted a spent query budget produces ("budget is
//    gone") and from IOError (interior protocol corruption). Federation
//    failover and the 69/EX_UNAVAILABLE exit code key off this.
//
// Retries cannot double-count queries: every query carries a session-scoped
// sequence number and the server replays its cached answer for a sequence
// it has already executed (see service/server.h).
//
// Thread safety: NOT thread-safe (one connection, one in-flight query).
// Share one remote session across threads by stacking
// interface::ConcurrentCachingDatabase on top with serialize_backend =
// true — which also short-circuits repeated queries before they touch the
// network.

#ifndef HDSKY_SERVICE_REMOTE_DATABASE_H_
#define HDSKY_SERVICE_REMOTE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "interface/hidden_database.h"
#include "net/socket.h"

namespace hdsky {
namespace service {

class RemoteHiddenDatabase : public interface::HiddenDatabase {
 public:
  struct Options {
    int connect_timeout_ms = 5000;
    /// Per-frame send/recv deadline; a stalled server turns into a
    /// transient failure after this long.
    int io_timeout_ms = 5000;
    /// Total tries per query (first attempt + retries).
    int max_attempts = 5;
    /// Backoff before retry r (1-based) is drawn uniformly from
    /// [d/2, d] with d = min(initial_backoff_ms << (r-1), max_backoff_ms).
    int initial_backoff_ms = 10;
    int max_backoff_ms = 2000;
    /// Session identity presented to the server; 0 derives a random one.
    /// Reusing an id resumes that session's budget and replay state.
    uint64_t session_id = 0;
    /// Seed for backoff jitter; 0 derives it from the session id.
    uint64_t jitter_seed = 0;
  };

  /// Per-connection counters, cumulative over the session's lifetime.
  /// The federation budget scheduler reads these to weigh a backend's
  /// observed network cost, and hdsky_loadgen reports them per probe.
  struct Stats {
    /// Queries answered by the server (each counted once, however many
    /// network attempts it took).
    int64_t remote_queries = 0;
    /// Retry attempts across all queries.
    int64_t retries = 0;
    /// Reconnects after the initial connection.
    int64_t reconnects = 0;
    /// kRateLimited bounces absorbed by backoff.
    int64_t rate_limited = 0;
    /// Wire bytes written / read, frame headers included (handshake and
    /// resent retries too — this is what actually crossed the socket).
    int64_t bytes_sent = 0;
    int64_t bytes_received = 0;
    /// Total milliseconds spent asleep in retry backoff.
    int64_t backoff_ms = 0;
    /// Queries that exhausted the retry budget and failed Unavailable.
    /// The federation coordinator's health machine reads this as its
    /// wire-level failure signal.
    int64_t failed_queries = 0;
  };

  /// Connects, performs the Hello/Descriptor handshake, and captures the
  /// server's schema and k. Fails fast if the server is unreachable.
  static common::Result<std::unique_ptr<RemoteHiddenDatabase>> Connect(
      const std::string& host, uint16_t port, const Options& options);
  static common::Result<std::unique_ptr<RemoteHiddenDatabase>> Connect(
      const std::string& host, uint16_t port) {
    return Connect(host, port, Options());
  }

  /// Executes remotely with retry/backoff as described above.
  using interface::HiddenDatabase::Execute;
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override;

  const data::Schema& schema() const override { return schema_; }
  int k() const override { return k_; }

  const Stats& stats() const { return stats_; }
  /// Remaining per-client budget reported by the server at the last
  /// handshake; -1 = unlimited.
  int64_t server_remaining_budget() const { return remaining_budget_; }
  uint64_t session_id() const { return options_.session_id; }

  /// The sequence number the next query will be sent under. A durable
  /// session journals this alongside each query intent so a resumed
  /// process can re-send a possibly-charged query under its original
  /// number and hit the server's replay cache (src/recovery).
  uint64_t next_seq() const { return next_seq_; }
  /// Fast-forwards the sequence counter to a journaled position. Only
  /// legal before the first Execute of this object's lifetime; the server
  /// rejects out-of-order numbers, so an arbitrary mid-session jump would
  /// simply fail loudly.
  void set_next_seq(uint64_t seq) { next_seq_ = seq; }

 private:
  RemoteHiddenDatabase(std::string host, uint16_t port, Options options)
      : host_(std::move(host)), port_(port), options_(options) {}

  /// (Re)establishes the connection + handshake if needed.
  common::Status EnsureConnected();
  void Disconnect() { socket_.Close(); }
  /// Sleeps the jittered backoff before (1-based) retry `attempt`.
  void Backoff(int attempt);
  /// WriteFrame/ReadFrame wrappers that account wire bytes in stats_.
  common::Status SendFrame(net::FrameType type, const std::string& payload);
  common::Status RecvFrame(net::Frame* frame);

  std::string host_;
  uint16_t port_;
  Options options_;
  data::Schema schema_;
  int k_ = 0;
  int64_t remaining_budget_ = -1;
  net::Socket socket_;
  bool ever_connected_ = false;
  uint64_t next_seq_ = 1;
  common::Rng jitter_;
  Stats stats_;
};

}  // namespace service
}  // namespace hdsky

#endif  // HDSKY_SERVICE_REMOTE_DATABASE_H_
