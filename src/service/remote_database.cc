#include "service/remote_database.h"

#include <chrono>
#include <random>
#include <thread>

namespace hdsky {
namespace service {

using common::Result;
using common::Status;
using net::Frame;
using net::FrameType;
using net::WireStatus;

namespace {

uint64_t RandomSessionId() {
  // Session ids only need uniqueness, not reproducibility: two clients
  // sharing an id would share budget and replay state.
  std::random_device rd;
  uint64_t id = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  if (id == 0) id = 1;
  return id;
}

}  // namespace

Result<std::unique_ptr<RemoteHiddenDatabase>> RemoteHiddenDatabase::Connect(
    const std::string& host, uint16_t port, const Options& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (options.io_timeout_ms < 1 || options.connect_timeout_ms < 1) {
    return Status::InvalidArgument("timeouts must be positive");
  }
  Options resolved = options;
  if (resolved.session_id == 0) resolved.session_id = RandomSessionId();
  if (resolved.jitter_seed == 0) resolved.jitter_seed = resolved.session_id;
  auto db = std::unique_ptr<RemoteHiddenDatabase>(
      new RemoteHiddenDatabase(host, port, resolved));
  db->jitter_.Seed(resolved.jitter_seed);
  HDSKY_RETURN_IF_ERROR(db->EnsureConnected());
  return db;
}

Status RemoteHiddenDatabase::SendFrame(net::FrameType type,
                                       const std::string& payload) {
  Status s = net::WriteFrame(socket_, type, payload);
  // Count on success only: a failed write may have sent anywhere from 0
  // to all bytes, and undercounting a torn frame beats inventing traffic.
  if (s.ok()) {
    stats_.bytes_sent +=
        static_cast<int64_t>(net::kFrameHeaderBytes + payload.size());
  }
  return s;
}

Status RemoteHiddenDatabase::RecvFrame(net::Frame* frame) {
  Status s = net::ReadFrame(socket_, frame);
  if (s.ok()) {
    stats_.bytes_received +=
        static_cast<int64_t>(net::kFrameHeaderBytes + frame->payload.size());
  }
  return s;
}

Status RemoteHiddenDatabase::EnsureConnected() {
  if (socket_.valid()) return Status::OK();
  HDSKY_ASSIGN_OR_RETURN(
      net::Socket sock,
      net::Socket::Connect(host_, port_, options_.connect_timeout_ms));
  HDSKY_RETURN_IF_ERROR(sock.SetIoTimeout(options_.io_timeout_ms));
  std::string hello;
  net::EncodeHello(options_.session_id, &hello);
  socket_ = std::move(sock);
  Status hs = SendFrame(FrameType::kHello, hello);
  if (!hs.ok()) {
    Disconnect();
    return hs;
  }
  Frame frame;
  hs = RecvFrame(&frame);
  if (!hs.ok()) {
    Disconnect();
    return hs;
  }
  if (frame.type == FrameType::kStatus) {
    // The server refused the connection (e.g. connection limit).
    Disconnect();
    uint64_t seq;
    uint16_t code;
    std::string message;
    HDSKY_RETURN_IF_ERROR(
        net::DecodeStatusFrame(frame.payload, &seq, &code, &message));
    if (net::IsTransient(static_cast<WireStatus>(code))) {
      // The server is shedding load, not broken: Unavailable, which the
      // retry loop below still treats as transient.
      return Status::Unavailable("server throttled the connection: " +
                                 message);
    }
    return net::StatusFromWire(code, message);
  }
  if (frame.type != FrameType::kDescriptor) {
    Disconnect();
    return Status::IOError(std::string("expected Descriptor, got ") +
                           net::FrameTypeToString(frame.type));
  }
  auto descriptor_or = net::DecodeDescriptor(frame.payload);
  if (!descriptor_or.ok()) {
    Disconnect();
    return descriptor_or.status();
  }
  net::Descriptor descriptor = std::move(descriptor_or).value();
  if (ever_connected_) {
    if (descriptor.schema.num_attributes() != schema_.num_attributes() ||
        descriptor.k != k_) {
      Disconnect();
      return Status::IOError(
          "server changed its interface mid-session (schema or k differs)");
    }
    stats_.reconnects += 1;
  } else {
    schema_ = std::move(descriptor.schema);
    k_ = descriptor.k;
    ever_connected_ = true;
  }
  remaining_budget_ = descriptor.remaining_budget;
  return Status::OK();
}

void RemoteHiddenDatabase::Backoff(int attempt) {
  int64_t delay = options_.initial_backoff_ms;
  for (int i = 1; i < attempt && delay < options_.max_backoff_ms; ++i) {
    delay *= 2;
  }
  if (delay > options_.max_backoff_ms) delay = options_.max_backoff_ms;
  if (delay <= 0) return;
  // Full jitter over the upper half of the window: desynchronizes
  // competing clients while keeping a floor under the wait.
  const int64_t jittered = delay / 2 + jitter_.UniformInt(0, delay / 2);
  stats_.backoff_ms += jittered;
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

Result<interface::QueryResult> RemoteHiddenDatabase::Execute(
    const interface::Query& q) {
  // Local validation against the served schema is free and mirrors what a
  // user can read off the search form; the server re-validates anyway.
  HDSKY_RETURN_IF_ERROR(ValidateQuery(q));

  const uint64_t seq = next_seq_;
  std::string query_payload;
  net::EncodeQuery(seq, q, &query_payload);

  Status last_error = Status::IOError("no attempt made");
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      stats_.retries += 1;
      Backoff(attempt - 1);
    }
    Status s = EnsureConnected();
    if (!s.ok()) {
      // IOError (link trouble) and Unavailable (throttled connect) are
      // transient; anything else is a permanent refusal from the server.
      if (!s.IsIOError() && !s.IsUnavailable()) return s;
      last_error = s;
      continue;
    }
    s = SendFrame(FrameType::kQuery, query_payload);
    if (!s.ok()) {
      Disconnect();
      last_error = s;
      continue;
    }
    Frame frame;
    s = RecvFrame(&frame);
    if (!s.ok()) {
      Disconnect();
      last_error = s;
      continue;
    }
    if (frame.type == FrameType::kResult) {
      uint64_t reply_seq = 0;
      interface::QueryResult result;
      s = net::DecodeResult(frame.payload, schema_.num_attributes(),
                            &reply_seq, &result);
      if (!s.ok() || reply_seq != seq) {
        Disconnect();
        last_error = s.ok() ? Status::IOError(
                                  "response sequence mismatch (got " +
                                  std::to_string(reply_seq) + ", want " +
                                  std::to_string(seq) + ")")
                            : s;
        continue;
      }
      next_seq_ += 1;
      stats_.remote_queries += 1;
      return result;
    }
    if (frame.type == FrameType::kStatus) {
      uint64_t reply_seq = 0;
      uint16_t code = 0;
      std::string message;
      s = net::DecodeStatusFrame(frame.payload, &reply_seq, &code, &message);
      if (!s.ok()) {
        Disconnect();
        last_error = s;
        continue;
      }
      if (net::IsTransient(static_cast<WireStatus>(code))) {
        // Server-side throttle: the connection is healthy, the query was
        // not executed; back off and retry the same sequence number.
        stats_.rate_limited += 1;
        last_error = Status::Unavailable(
            "rate limited by server: " + message);
        continue;
      }
      // Permanent, honestly propagated. The server cached this reply
      // under `seq`, so advance past it.
      next_seq_ += 1;
      return net::StatusFromWire(code, message);
    }
    Disconnect();
    last_error = Status::IOError(std::string("unexpected ") +
                                 net::FrameTypeToString(frame.type) +
                                 " frame in response to a query");
  }

  // Retries exhausted: the backend is unreachable right now, whether the
  // last symptom was server-side shedding (kRateLimited bounces) or link
  // trouble (connect refused, timeouts, torn frames). Both are
  // Unavailable — "site is down or busy, come back later" — distinct from
  // a spent budget (ResourceExhausted) and from interior protocol
  // corruption, which surfaces as IOError from the attempt itself, not
  // here. Federation health machines and exit-code mapping key off this.
  stats_.failed_queries += 1;
  return Status::Unavailable("backend unreachable: remote query failed "
                             "after " +
                             std::to_string(options_.max_attempts) +
                             " attempts: " + last_error.ToString());
}

}  // namespace service
}  // namespace hdsky
