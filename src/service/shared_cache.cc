#include "service/shared_cache.h"

#include <utility>

namespace hdsky {
namespace service {

using common::Status;

SharedQueryCache::SharedQueryCache(Options options)
    : options_(options) {}

SharedQueryCache::Shard& SharedQueryCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

const SharedQueryCache::Shard& SharedQueryCache::ShardFor(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

SharedQueryCache::Lookup SharedQueryCache::StartLookup(
    const std::string& key,
    std::shared_ptr<const interface::QueryResult>* out, Callback cb) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    Entry& entry = shard.map[key];
    entry.pending.push_back(std::move(cb));
    owners_.fetch_add(1, std::memory_order_relaxed);
    return Lookup::kOwner;
  }
  if (it->second.ready) {
    *out = it->second.result;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return Lookup::kHit;
  }
  it->second.pending.push_back(std::move(cb));
  joins_.fetch_add(1, std::memory_order_relaxed);
  return Lookup::kWait;
}

void SharedQueryCache::Complete(
    const std::string& key, const Status& status,
    std::shared_ptr<const interface::QueryResult> result) {
  std::vector<Callback> pending;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.ready) return;
    pending = std::move(it->second.pending);
    if (status.ok()) {
      it->second.ready = true;
      it->second.result = result;
      it->second.pending.clear();
      if (options_.max_entries > 0 &&
          shard.map.size() > (options_.max_entries + kNumShards - 1) /
                                 kNumShards) {
        // Evict one ready entry other than the one just completed. The
        // bucket walk makes the victim effectively arbitrary without
        // maintaining any recency structure under the hot-path lock.
        for (auto victim = shard.map.begin(); victim != shard.map.end();
             ++victim) {
          if (victim->second.ready && victim != it) {
            shard.map.erase(victim);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    } else {
      // Errors resolve the flight but are never memoized.
      shard.map.erase(it);
    }
  }
  // Callbacks run outside the shard lock: they post to event loops and
  // may trigger fresh lookups for other keys.
  for (Callback& cb : pending) {
    if (cb) cb(status, result);
  }
}

size_t SharedQueryCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      if (entry.ready) ++total;
    }
  }
  return total;
}

SharedQueryCache::Stats SharedQueryCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.owners = owners_.load(std::memory_order_relaxed);
  s.joins = joins_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace service
}  // namespace hdsky
