// FaultInjectingProxy: a frame-aware man-in-the-middle for robustness
// testing. It listens like a DatabaseServer, forwards every frame to a
// real upstream server, and injects faults by policy:
//
//   * drop      — swallow a frame and kill the connection (the client sees
//                 a reset or a read timeout, exactly like a flaky network),
//   * truncate  — forward only a prefix of the frame's bytes, then kill
//                 the connection (exercises the decoder hardening),
//   * rate-limit— bounce a client Query with a spurious kRateLimited
//                 status without consulting the upstream (exercises the
//                 client's backoff), and
//   * delay     — sleep before forwarding (exercises timeouts).
//
// All randomness flows through common::Rng seeded from Policy::seed plus
// the connection index and direction, so a given test run injects the
// same faults every time — a deterministic adversarial network.
//
// Because the proxy understands frame boundaries, faults land on whole
// protocol messages (or deliberate prefixes of them), which is what makes
// the exactly-once retry machinery of server/client testable: a dropped
// Result frame forces a retry of a query the upstream has already
// executed and must replay from its session cache.

#ifndef HDSKY_SERVICE_FAULT_PROXY_H_
#define HDSKY_SERVICE_FAULT_PROXY_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "net/socket.h"

namespace hdsky {
namespace service {

class FaultInjectingProxy {
 public:
  struct Policy {
    /// Root seed for all fault decisions.
    uint64_t seed = 1;
    /// Probability a forwarded frame is dropped (connection killed).
    double drop_prob = 0.0;
    /// Probability a forwarded frame is truncated mid-bytes.
    double truncate_prob = 0.0;
    /// Probability a client Query is bounced with a spurious
    /// kRateLimited status instead of reaching the upstream.
    double rate_limit_prob = 0.0;
    /// Probability a frame is delayed by `delay_ms` before forwarding.
    double delay_prob = 0.0;
    int delay_ms = 0;
    /// Deterministic kill/revive schedule, counted in client Query
    /// frames seen across all connections: queries with 0-based arrival
    /// index in [blackout_after_queries, blackout_after_queries +
    /// blackout_queries) kill the connection instead of reaching the
    /// upstream, then the proxy recovers. Because a blacked-out client
    /// retry arrives as a fresh Query frame, each blacked-out logical
    /// query consumes max_attempts arrivals — the schedule is a query
    /// counter, not wall clock, so it is exactly reproducible. -1
    /// disables.
    int64_t blackout_after_queries = -1;
    int64_t blackout_queries = 0;
  };

  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral
    /// Backstop so a proxied connection cannot park a pump thread forever.
    int io_timeout_ms = 30000;
  };

  struct Stats {
    int64_t connections = 0;
    int64_t frames_forwarded = 0;
    int64_t frames_dropped = 0;
    int64_t frames_truncated = 0;
    int64_t rate_limits_injected = 0;
    int64_t delays_injected = 0;
    /// Client queries killed by the blackout schedule.
    int64_t queries_blacked_out = 0;
  };

  static common::Result<std::unique_ptr<FaultInjectingProxy>> Start(
      const std::string& upstream_host, uint16_t upstream_port,
      const Policy& policy, const Options& options);
  static common::Result<std::unique_ptr<FaultInjectingProxy>> Start(
      const std::string& upstream_host, uint16_t upstream_port,
      const Policy& policy) {
    return Start(upstream_host, upstream_port, policy, Options());
  }

  ~FaultInjectingProxy();

  uint16_t port() const { return listener_.port(); }
  void Stop();
  Stats stats() const;

 private:
  /// One proxied client<->upstream pair with its two pump threads.
  struct Connection {
    net::Socket client;
    net::Socket upstream;
    /// Serializes writes to the client socket: the c2s pump may inject a
    /// rate-limit reply while the s2c pump forwards a response.
    std::mutex client_write_mu;
    std::atomic<int> live_pumps{0};
    std::jthread c2s;
    std::jthread s2c;
  };

  FaultInjectingProxy(std::string upstream_host, uint16_t upstream_port,
                      const Policy& policy, const Options& options)
      : upstream_host_(std::move(upstream_host)),
        upstream_port_(upstream_port),
        policy_(policy),
        options_(options) {}

  void AcceptLoop();
  /// Pumps frames src -> dst until a fault or error ends the connection.
  void Pump(Connection* conn, bool client_to_server, uint64_t rng_seed);
  void ReapFinished();
  void BumpStat(int64_t Stats::* field);

  std::string upstream_host_;
  uint16_t upstream_port_;
  Policy policy_;
  Options options_;
  net::ServerSocket listener_;
  std::atomic<bool> stopping_{false};
  /// Arrival index for the blackout schedule (client Query frames,
  /// counted across every connection).
  std::atomic<int64_t> queries_seen_{0};

  mutable std::mutex stats_mu_;
  Stats stats_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_index_ = 0;

  std::jthread accept_thread_;  // last member: joins first
};

}  // namespace service
}  // namespace hdsky

#endif  // HDSKY_SERVICE_FAULT_PROXY_H_
