#include "service/load_driver.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/event_loop.h"
#include "runtime/thread_pool.h"

namespace hdsky {
namespace service {

using common::Result;
using common::Status;
using net::FrameType;
using net::WireStatus;

namespace {

/// splitmix64: the workload must be deterministic and cheap, not
/// statistically fancy.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<interface::Query> GenerateWorkload(const data::Schema& schema,
                                               int count, uint64_t seed) {
  std::vector<interface::Query> out;
  if (count <= 0) return out;
  out.reserve(static_cast<size_t>(count));
  const int m = schema.num_attributes();

  const auto roll = [&](uint64_t mix_seed) {
    interface::Query q(m);
    uint64_t h = mix_seed;
    for (int a = 0; a < m; ++a) {
      const data::AttributeSpec& spec = schema.attribute(a);
      h = Mix(h);
      // Constrain roughly two thirds of the attributes so queries vary
      // in selectivity; an occasional fully unconstrained query is fine.
      if (h % 3 == 0) continue;
      const int64_t size = spec.DomainSize();
      if (size <= 0) continue;
      const uint64_t h1 = Mix(h + 1);
      const uint64_t h2 = Mix(h + 2);
      const data::Value v1 =
          spec.domain_min + static_cast<data::Value>(
                                h1 % static_cast<uint64_t>(size));
      const data::Value v2 =
          spec.domain_min + static_cast<data::Value>(
                                h2 % static_cast<uint64_t>(size));
      // Respect the Section 2.2 taxonomy: the interface rejects
      // predicate forms it does not support, so the workload must only
      // issue legal ones.
      switch (spec.iface) {
        case data::InterfaceType::kRQ:
          q.AddAtLeast(a, std::min(v1, v2));
          q.AddAtMost(a, std::max(v1, v2));
          break;
        case data::InterfaceType::kSQ:
          q.AddAtMost(a, std::max(v1, v2));
          break;
        case data::InterfaceType::kPQ:
          q.AddEquals(a, v1);
          break;
        case data::InterfaceType::kFilterEquality:
          // Equality filters are very selective; apply them rarely.
          if (h % 8 == 0) q.AddEquals(a, v1);
          break;
      }
    }
    return q;
  };

  // The dedup math (ideal ratio 1 - 1/N over N sessions) assumes the Q
  // queries are pairwise distinct backend keys, so collisions are
  // re-rolled with a salted seed. Tiny schemas may not have Q distinct
  // legal queries at all; after a bounded number of attempts the
  // duplicate is kept (the run just deduplicates a little more).
  std::unordered_set<std::string> signatures;
  signatures.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    interface::Query q(m);
    for (uint64_t attempt = 0; attempt < 16; ++attempt) {
      q = roll(Mix(seed ^ (static_cast<uint64_t>(i) + 1 +
                           (attempt << 32))));
      if (signatures.insert(q.Signature()).second) break;
    }
    out.push_back(std::move(q));
  }
  return out;
}

namespace {

class LoadDriver {
 public:
  explicit LoadDriver(const LoadOptions& options) : options_(options) {}

  Result<LoadReport> Run();

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int session_index = 0;
    uint64_t session_id = 0;
    size_t loop_index = 0;
    int fd = -1;
    bool connected = false;
    bool dead = false;
    bool finished_counted = false;
    bool done = false;
    int schema_width = 0;
    std::string rbuf;
    size_t rpos = 0;
    std::string wbuf;
    size_t wpos = 0;
    bool want_write = false;
    /// Next seq to send (1-based; seq i carries workload query i-1).
    uint64_t next_seq = 1;
    /// Sent, reply still pending — replies arrive in this order.
    std::deque<uint64_t> awaiting;
    /// Nonzero: a BUSY barrier; resend from this seq once `awaiting`
    /// drains and the backoff expires.
    uint64_t rewind_to = 0;
    Clock::time_point backoff_until{};
    std::unordered_map<uint64_t, Clock::time_point> sent_at;
  };

  /// Loop-thread-owned accumulator (no locks on the hot path).
  struct LoopState {
    std::vector<uint32_t> latencies_us;
    int64_t busy_retries = 0;
    int64_t completed = 0;
    int sessions_done = 0;
    int sessions_failed = 0;
  };

  Status SetupConnections();
  void HandleIo(Conn* conn, uint32_t events);
  void FinishConnect(Conn* conn);
  void HandleRead(Conn* conn);
  void ParseFrames(Conn* conn);
  void HandleFrame(Conn* conn, FrameType type, std::string_view payload);
  void PumpSend(Conn* conn);
  void SendFrame(Conn* conn, FrameType type, std::string_view payload);
  void FlushWrites(Conn* conn);
  void UpdateInterest(Conn* conn);
  void FailSession(Conn* conn);
  void FinishSession(Conn* conn);
  void OnSessionFinished();
  void Tick(size_t loop_index);
  void RequestStats();
  void StopAll();

  LoadOptions options_;
  std::vector<interface::Query> workload_;
  std::mutex workload_mu_;
  std::atomic<bool> workload_ready_{false};

  std::vector<std::unique_ptr<net::EventLoop>> loops_;
  std::vector<std::vector<std::unique_ptr<Conn>>> conns_;
  std::vector<LoopState> loop_states_;

  std::atomic<int> finished_sessions_{0};
  std::atomic<bool> stats_requested_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<int64_t> end_us_{0};

  std::mutex stats_mu_;
  bool server_stats_valid_ = false;
  net::ServiceStats server_stats_;

  Clock::time_point start_{};
  Clock::time_point deadline_{};
};

Status LoadDriver::SetupConnections() {
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("load driver needs a numeric IPv4 host: " +
                                   options_.host);
  }
  const size_t num_loops = loops_.size();
  for (int i = 0; i < options_.sessions; ++i) {
    const size_t li = static_cast<size_t>(i) % num_loops;
    auto conn = std::make_unique<Conn>();
    conn->session_index = i;
    conn->session_id = options_.session_id_base + static_cast<uint64_t>(i);
    conn->loop_index = li;
    conn->fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      0);
    if (conn->fd < 0) {
      return Status::IOError(std::string("socket: ") +
                             std::strerror(errno));
    }
    const int one = 1;
    setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connect(conn->fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      close(conn->fd);
      return Status::IOError(std::string("connect: ") +
                             std::strerror(errno));
    }
    Conn* raw = conn.get();
    // Registered before the loop threads start; EPOLLOUT fires when the
    // nonblocking connect resolves.
    HDSKY_RETURN_IF_ERROR(loops_[li]->Add(
        conn->fd, EPOLLOUT | EPOLLIN,
        [this, raw](uint32_t ev) { HandleIo(raw, ev); }));
    conns_[li].push_back(std::move(conn));
  }
  return Status::OK();
}

Result<LoadReport> LoadDriver::Run() {
  if (options_.sessions < 1 || options_.queries_per_session < 1 ||
      options_.pipeline_depth < 1) {
    return Status::InvalidArgument(
        "sessions, queries_per_session, and pipeline_depth must be >= 1");
  }
  if (options_.port == 0) {
    return Status::InvalidArgument("load driver needs an explicit port");
  }
  int num_loops = options_.num_loops;
  if (num_loops <= 0) {
    num_loops = std::min(4, runtime::HardwareThreadCount());
  }
  num_loops = std::min(num_loops, options_.sessions);
  (void)net::EnsureFdCapacity(
      static_cast<uint64_t>(options_.sessions) + 64);

  for (int i = 0; i < num_loops; ++i) {
    HDSKY_ASSIGN_OR_RETURN(auto loop, net::EventLoop::Create());
    loops_.push_back(std::move(loop));
  }
  conns_.resize(loops_.size());
  loop_states_.resize(loops_.size());
  HDSKY_RETURN_IF_ERROR(SetupConnections());

  start_ = Clock::now();
  deadline_ = start_ + std::chrono::milliseconds(options_.total_timeout_ms);
  const int tick_ms =
      std::clamp(options_.busy_backoff_ms, 1, 50);
  {
    std::vector<std::jthread> threads;
    threads.reserve(loops_.size());
    for (size_t i = 0; i < loops_.size(); ++i) {
      threads.emplace_back(
          [this, i, tick_ms] { loops_[i]->Run(tick_ms, [this, i] { Tick(i); }); });
    }
    // jthread destructors join: the run is over when every loop stopped.
  }

  LoadReport report;
  std::vector<uint32_t> latencies;
  for (const LoopState& ls : loop_states_) {
    report.sessions_completed += ls.sessions_done;
    report.sessions_failed += ls.sessions_failed;
    report.queries_completed += ls.completed;
    report.busy_retries += ls.busy_retries;
    latencies.insert(latencies.end(), ls.latencies_us.begin(),
                     ls.latencies_us.end());
  }
  const int64_t end_us = end_us_.load();
  report.elapsed_ms =
      end_us > 0 ? static_cast<double>(end_us) / 1000.0
                 : std::chrono::duration<double, std::milli>(Clock::now() -
                                                             start_)
                       .count();
  if (report.elapsed_ms > 0) {
    report.qps = static_cast<double>(report.queries_completed) /
                 (report.elapsed_ms / 1000.0);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      const size_t idx = std::min(
          latencies.size() - 1,
          static_cast<size_t>(p * static_cast<double>(latencies.size())));
      return static_cast<double>(latencies[idx]);
    };
    report.latency_p50_us = pct(0.50);
    report.latency_p99_us = pct(0.99);
    double sum = 0;
    for (uint32_t v : latencies) sum += static_cast<double>(v);
    report.latency_mean_us = sum / static_cast<double>(latencies.size());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    report.server_stats_valid = server_stats_valid_;
    report.server = server_stats_;
  }
  if (report.server_stats_valid && report.server.queries_served > 0) {
    report.dedup_ratio =
        1.0 - static_cast<double>(report.server.backend_executions) /
                  static_cast<double>(report.server.queries_served);
  }
  report.complete = !timed_out_.load() && report.sessions_failed == 0 &&
                    report.sessions_completed == options_.sessions;
  return report;
}

void LoadDriver::Tick(size_t loop_index) {
  if (loop_index == 0 && Clock::now() > deadline_) {
    timed_out_.store(true);
    StopAll();
    return;
  }
  // Resume connections whose BUSY backoff expired.
  const Clock::time_point now = Clock::now();
  for (auto& conn : conns_[loop_index]) {
    if (conn->dead || conn->done) continue;
    if (conn->rewind_to != 0 && conn->awaiting.empty() &&
        now >= conn->backoff_until) {
      conn->next_seq = conn->rewind_to;
      conn->rewind_to = 0;
      PumpSend(conn.get());
    }
  }
}

void LoadDriver::StopAll() {
  if (stopped_.exchange(true)) return;
  end_us_.store(std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - start_)
                    .count());
  for (auto& loop : loops_) loop->Stop();
}

void LoadDriver::HandleIo(Conn* conn, uint32_t events) {
  if (conn->dead) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    FailSession(conn);
    return;
  }
  if (!conn->connected) {
    if (events & EPOLLOUT) FinishConnect(conn);
    if (conn->dead || !conn->connected) return;
  }
  if (events & EPOLLOUT) {
    FlushWrites(conn);
    if (conn->dead) return;
    UpdateInterest(conn);
  }
  if (events & EPOLLIN) HandleRead(conn);
}

void LoadDriver::FinishConnect(Conn* conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
      err != 0) {
    FailSession(conn);
    return;
  }
  conn->connected = true;
  std::string hello;
  net::EncodeHello(conn->session_id, &hello);
  SendFrame(conn, FrameType::kHello, hello);
}

void LoadDriver::HandleRead(Conn* conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      FailSession(conn);  // server closed mid-session
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    FailSession(conn);
    return;
  }
  ParseFrames(conn);
}

void LoadDriver::ParseFrames(Conn* conn) {
  while (!conn->dead) {
    const size_t available = conn->rbuf.size() - conn->rpos;
    if (available < net::kFrameHeaderBytes) break;
    auto header = net::DecodeFrameHeader(std::string_view(
        conn->rbuf.data() + conn->rpos, net::kFrameHeaderBytes));
    if (!header.ok()) {
      FailSession(conn);
      return;
    }
    const size_t need = net::kFrameHeaderBytes + header->payload_len;
    if (available < need) break;
    const std::string_view payload(
        conn->rbuf.data() + conn->rpos + net::kFrameHeaderBytes,
        header->payload_len);
    conn->rpos += need;
    HandleFrame(conn, header->type, payload);
  }
  if (conn->rpos > 65536 && conn->rpos * 2 >= conn->rbuf.size()) {
    conn->rbuf.erase(0, conn->rpos);
    conn->rpos = 0;
  }
}

void LoadDriver::HandleFrame(Conn* conn, FrameType type,
                             std::string_view payload) {
  LoopState& ls = loop_states_[conn->loop_index];
  switch (type) {
    case FrameType::kDescriptor: {
      auto descriptor = net::DecodeDescriptor(payload);
      if (!descriptor.ok()) {
        FailSession(conn);
        return;
      }
      conn->schema_width = descriptor->schema.num_attributes();
      if (!workload_ready_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(workload_mu_);
        if (!workload_ready_.load(std::memory_order_relaxed)) {
          workload_ = GenerateWorkload(descriptor->schema,
                                       options_.queries_per_session,
                                       options_.workload_seed);
          workload_ready_.store(true, std::memory_order_release);
        }
      }
      PumpSend(conn);
      return;
    }
    case FrameType::kResult: {
      uint64_t seq = 0;
      interface::QueryResult result;
      if (!net::DecodeResult(payload, conn->schema_width, &seq, &result)
               .ok()) {
        FailSession(conn);
        return;
      }
      if (conn->awaiting.empty() || conn->awaiting.front() != seq) {
        FailSession(conn);  // successes must arrive strictly in order
        return;
      }
      conn->awaiting.pop_front();
      auto it = conn->sent_at.find(seq);
      if (it != conn->sent_at.end()) {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - it->second)
                            .count();
        ls.latencies_us.push_back(static_cast<uint32_t>(
            std::min<int64_t>(us, std::numeric_limits<uint32_t>::max())));
        conn->sent_at.erase(it);
      }
      ls.completed += 1;
      if (seq == static_cast<uint64_t>(options_.queries_per_session)) {
        FinishSession(conn);
        return;
      }
      PumpSend(conn);
      return;
    }
    case FrameType::kStatus: {
      uint64_t seq = 0;
      uint16_t code = 0;
      std::string message;
      if (!net::DecodeStatusFrame(payload, &seq, &code, &message).ok()) {
        FailSession(conn);
        return;
      }
      if (static_cast<WireStatus>(code) == WireStatus::kRateLimited) {
        ls.busy_retries += 1;
        if (conn->rewind_to == 0 || seq < conn->rewind_to) {
          conn->rewind_to = seq;
        }
        conn->backoff_until =
            Clock::now() + std::chrono::milliseconds(options_.busy_backoff_ms);
        // Drop it (and any later BUSY'd seq) from the await queue; the
        // rewound resend re-adds them.
        auto it = std::find(conn->awaiting.begin(), conn->awaiting.end(),
                            seq);
        if (it != conn->awaiting.end()) conn->awaiting.erase(it);
        conn->sent_at.erase(seq);
        return;
      }
      // Any other status (budget, unsupported, protocol) is terminal for
      // the session.
      FailSession(conn);
      return;
    }
    case FrameType::kStats: {
      uint64_t seq = 0;
      net::ServiceStats stats;
      if (net::DecodeStats(payload, &seq, &stats).ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        server_stats_ = stats;
        server_stats_valid_ = true;
      }
      StopAll();
      return;
    }
    default:
      FailSession(conn);
      return;
  }
}

void LoadDriver::PumpSend(Conn* conn) {
  if (conn->dead || conn->done || conn->rewind_to != 0) return;
  if (!workload_ready_.load(std::memory_order_acquire)) return;
  while (static_cast<int>(conn->awaiting.size()) <
             options_.pipeline_depth &&
         conn->next_seq <=
             static_cast<uint64_t>(options_.queries_per_session)) {
    const uint64_t seq = conn->next_seq++;
    std::string payload;
    net::EncodeQuery(seq, workload_[seq - 1], &payload);
    conn->sent_at[seq] = Clock::now();
    conn->awaiting.push_back(seq);
    SendFrame(conn, FrameType::kQuery, payload);
    if (conn->dead) return;
  }
}

void LoadDriver::SendFrame(Conn* conn, FrameType type,
                           std::string_view payload) {
  conn->wbuf += net::EncodeFrameHeader(
      type, static_cast<uint32_t>(payload.size()));
  conn->wbuf.append(payload.data(), payload.size());
  FlushWrites(conn);
  if (!conn->dead) UpdateInterest(conn);
}

void LoadDriver::FlushWrites(Conn* conn) {
  while (conn->wpos < conn->wbuf.size()) {
    const ssize_t n = send(conn->fd, conn->wbuf.data() + conn->wpos,
                           conn->wbuf.size() - conn->wpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wpos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->want_write = true;
      return;
    }
    FailSession(conn);
    return;
  }
  conn->wbuf.clear();
  conn->wpos = 0;
  conn->want_write = false;
}

void LoadDriver::UpdateInterest(Conn* conn) {
  if (conn->dead) return;
  uint32_t events = EPOLLIN;
  if (!conn->connected || conn->want_write) events |= EPOLLOUT;
  (void)loops_[conn->loop_index]->Modify(conn->fd, events);
}

void LoadDriver::FailSession(Conn* conn) {
  if (conn->dead) return;
  conn->dead = true;
  loops_[conn->loop_index]->Remove(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  if (!conn->finished_counted) {
    conn->finished_counted = true;
    loop_states_[conn->loop_index].sessions_failed += 1;
    OnSessionFinished();
  } else if (stats_requested_.load()) {
    // A finished connection dying after the stats probe went out may BE
    // the probe; no kStats can arrive anymore, so shut down without it.
    StopAll();
  }
}

void LoadDriver::FinishSession(Conn* conn) {
  if (conn->finished_counted) return;
  conn->finished_counted = true;
  conn->done = true;
  loop_states_[conn->loop_index].sessions_done += 1;
  // The connection stays open (sustained concurrency): it idles until
  // the stats exchange / shutdown.
  OnSessionFinished();
}

void LoadDriver::OnSessionFinished() {
  if (finished_sessions_.fetch_add(1) + 1 != options_.sessions) return;
  if (!options_.fetch_server_stats) {
    StopAll();
    return;
  }
  RequestStats();
}

void LoadDriver::RequestStats() {
  if (stats_requested_.exchange(true)) return;
  // The stats probe rides on session 0's connection (loop 0); fall back
  // to plain shutdown when it did not survive.
  loops_[0]->Post([this] {
    Conn* probe = nullptr;
    for (auto& conn : conns_[0]) {
      if (!conn->dead) {
        probe = conn.get();
        break;
      }
    }
    if (probe == nullptr) {
      StopAll();
      return;
    }
    std::string payload;
    net::EncodeStatsRequest(1, &payload);
    SendFrame(probe, FrameType::kStatsRequest, payload);
  });
}

}  // namespace

Result<LoadReport> RunLoad(const LoadOptions& options) {
  LoadDriver driver(options);
  return driver.Run();
}

}  // namespace service
}  // namespace hdsky
