// DatabaseServer: serves any HiddenDatabase over the hdsky wire protocol
// (net/wire.h), turning the in-process top-k simulator into the genuinely
// remote interface the paper assumes.
//
// Connection lifecycle: accept -> Hello (client session id) -> Descriptor
// (schema, k, remaining budget) -> a stream of Query frames answered by
// Result or Status frames. Each connection is handled on one
// runtime::ThreadPool worker; the accept loop rejects connections beyond
// Options::max_connections with a kRateLimited status so well-behaved
// clients back off instead of queueing.
//
// Exactly-once query accounting. Clients tag queries with a per-session
// sequence number. The server remembers, per session, the last sequence it
// answered and the encoded reply. A retried sequence (the client never saw
// the reply — dropped frame, broken connection) is answered from that
// cache without touching the backend, so the backend's query counter moves
// exactly once per client-visible query no matter how hostile the network
// is. Sessions survive reconnects: the client re-sends its session id in
// Hello.
//
// Per-client budgets: Options::per_client_query_budget enforces the
// paper's rate-limit model per session, independent of any budget the
// backend itself enforces. Exhaustion is answered with kBudgetExhausted
// (permanent), which RemoteHiddenDatabase surfaces as ResourceExhausted —
// the code discovery algorithms already turn into anytime partial results.

#ifndef HDSKY_SERVICE_SERVER_H_
#define HDSKY_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "interface/hidden_database.h"
#include "net/socket.h"
#include "runtime/thread_pool.h"

namespace hdsky {
namespace service {

class DatabaseServer {
 public:
  struct Options {
    /// IPv4 address to bind. The default serves loopback only; bind
    /// "0.0.0.0" to serve real traffic.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    uint16_t port = 0;
    /// Concurrent connections served; excess connections receive a
    /// kRateLimited status frame and are closed.
    int max_connections = 8;
    /// Queries each client session may issue (0 = unlimited). Replayed
    /// retries do not count — only fresh backend executions.
    int64_t per_client_query_budget = 0;
    /// Serialize backend Execute calls under one mutex. Keep true unless
    /// the backend is thread-safe (TopKInterface with a static-order
    /// ranking qualifies; see docs/concurrency.md).
    bool serialize_backend = true;
    /// Per-frame I/O backstop on accepted connections; a peer that stalls
    /// mid-frame is dropped after this long.
    int io_timeout_ms = 30000;
  };

  struct Stats {
    int64_t connections_accepted = 0;
    int64_t connections_rejected = 0;
    /// Fresh queries executed against the backend.
    int64_t queries_served = 0;
    /// Retried sequences answered from the session reply cache.
    int64_t queries_replayed = 0;
    /// Budget rejections issued (kBudgetExhausted frames).
    int64_t budget_rejections = 0;
    /// Malformed frames / protocol violations observed.
    int64_t protocol_errors = 0;
  };

  /// Binds, listens, and starts the accept loop. `db` must outlive the
  /// server and is the single backend all connections share.
  static common::Result<std::unique_ptr<DatabaseServer>> Start(
      interface::HiddenDatabase* db, const Options& options);

  /// Stops and joins everything.
  ~DatabaseServer();

  /// The port actually bound (useful with Options::port = 0).
  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, unblocks in-flight connections, and joins all
  /// workers. Idempotent.
  void Stop();

  Stats stats() const;

 private:
  /// Replay state of one client session (identified by the Hello id).
  struct Session {
    std::mutex mu;
    uint64_t last_seq = 0;
    bool has_reply = false;
    net::FrameType reply_type = net::FrameType::kStatus;
    std::string reply_payload;
    int64_t queries_used = 0;
  };

  DatabaseServer(interface::HiddenDatabase* db, const Options& options);

  void AcceptLoop();
  void ServeConnection(net::Socket sock);
  /// Handles one Query frame; fills `reply_type`/`reply_payload`.
  void AnswerQuery(Session* session, uint64_t seq,
                   const interface::Query& query,
                   net::FrameType* reply_type, std::string* reply_payload);
  Session* GetSession(uint64_t session_id);
  void RegisterConnection(int fd);
  void UnregisterConnection(int fd);
  void BumpStat(int64_t Stats::* field);

  interface::HiddenDatabase* db_;
  Options options_;
  net::ServerSocket listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};

  std::mutex sessions_mu_;
  /// unordered_map guarantees reference stability, so Session pointers
  /// handed to connection handlers stay valid across rehashes.
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;

  std::mutex backend_mu_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  /// Live connection fds, so Stop() can shutdown(2) them and unblock
  /// workers parked in RecvExact.
  std::mutex conns_mu_;
  std::unordered_set<int> conn_fds_;

  std::unique_ptr<runtime::ThreadPool> pool_;
  std::jthread accept_thread_;  // last member: joins first
};

}  // namespace service
}  // namespace hdsky

#endif  // HDSKY_SERVICE_SERVER_H_
