// Atomic checkpoints for durable discovery sessions.
//
// A journal directory holds, at any instant, one *epoch* of state:
//
//   MANIFEST            "hdsky-manifest-v1 <epoch> <has_snapshot>"
//   journal-<epoch>     the live write-ahead journal (see journal.h)
//   snapshot-<epoch>    compacted state the journal is a suffix of
//                       (absent in epoch 1, before the first checkpoint)
//
// A checkpoint compacts journal history into the next epoch: write
// snapshot-(e+1) and a fresh journal-(e+1), then atomically swing MANIFEST
// to epoch e+1, then delete the epoch-e files. Every write along the way
// is temp-file + fsync + rename (common/fs_util.h), so a crash at any
// boundary leaves MANIFEST pointing at one complete, self-consistent
// snapshot+journal pair: before the manifest swing recovery still sees
// epoch e (the half-built e+1 files are deleted as orphans); after it,
// epoch e+1 is live and the stale epoch-e files are deleted on the next
// open.
//
// The snapshot is a single CRC32C-framed blob containing the replay map
// (signature -> answer), the highest wire sequence number accounted for,
// and an opaque session-state blob (algorithm name + DiscoveryRun progress
// + frontier) that lets a resumed run fast-forward instead of replaying
// from the first query.

#ifndef HDSKY_RECOVERY_CHECKPOINT_H_
#define HDSKY_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "interface/hidden_database.h"

namespace hdsky {
namespace recovery {

inline constexpr char kManifestFileName[] = "MANIFEST";

/// "journal-000007" / "snapshot-000007" for epoch 7.
std::string JournalFileName(int64_t epoch);
std::string SnapshotFileName(int64_t epoch);

struct Manifest {
  int64_t epoch = 1;
  /// False only for epoch 1 (no checkpoint has run yet).
  bool has_snapshot = false;
};

/// Atomically replaces dir/MANIFEST.
common::Status WriteManifest(const std::string& dir, const Manifest& m);

/// NotFound when no manifest exists (a fresh directory); IOError on any
/// malformation — a damaged manifest is never guessed around.
common::Result<Manifest> ReadManifest(const std::string& dir);

/// Deletes journal-*/snapshot-* files of every epoch except `keep_epoch`:
/// half-built next-epoch files after a crash before the manifest swing,
/// or stale previous-epoch files after a crash before cleanup.
void RemoveOtherEpochFiles(const std::string& dir, int64_t keep_epoch);

// ---------------------------------------------------------------------------
// Snapshot blob.

struct SnapshotEntry {
  std::string signature;
  interface::QueryResult result;
};

struct Snapshot {
  /// Highest wire sequence number covered by the compacted history.
  uint64_t last_seq = 0;
  /// Opaque session state (EncodeSessionState), possibly empty.
  std::string state_blob;
  /// Replay map in insertion order.
  std::vector<SnapshotEntry> entries;
};

/// Writes the snapshot atomically (temp + fsync + rename).
common::Status WriteSnapshot(const std::string& path, int width,
                             const Snapshot& snap);

/// Reads and verifies a snapshot; any damage (bad CRC, truncation, width
/// mismatch) rejects the whole file — snapshots are atomic or absent.
common::Result<Snapshot> ReadSnapshot(const std::string& path, int width);

// ---------------------------------------------------------------------------
// Session state: what the discovery driver needs to fast-forward.

struct SessionState {
  /// Resolved algorithm name ("sq", "rq", ...); a resume under a different
  /// algorithm is rejected rather than silently diverging.
  std::string algorithm;
  /// DiscoveryRun::SaveState blob (progress counters + confirmed skyline +
  /// anytime trace). Empty means "replay from the start".
  std::string run_state;
  /// Algorithm-specific frontier blob (queue / stack / plane cursor).
  /// Empty means "replay from the start".
  std::string frontier;
};

std::string EncodeSessionState(const SessionState& state);
/// An empty blob decodes to an empty SessionState (full-replay resume).
common::Result<SessionState> DecodeSessionState(std::string_view blob);

}  // namespace recovery
}  // namespace hdsky

#endif  // HDSKY_RECOVERY_CHECKPOINT_H_
