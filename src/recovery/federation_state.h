// Durable coordinator state for federated discovery sessions.
//
// A federated run under --journal DIR keeps one write-ahead journal per
// backend (recovery/journaling_database.h, in DIR/backend-<i>) plus ONE
// coordinator-level round checkpoint: DIR/STATE, a single CRC32C-framed
// blob holding the round number, the budget remaining, and every
// backend's barrier state (paused frontier codec, confirmed candidates,
// yield counters, health-machine position). The coordinator rewrites
// STATE atomically (temp + fsync + rename) at the end of every
// scheduling round, so at any instant the directory holds exactly one
// consistent round boundary.
//
// Crash discipline. Every value in STATE is captured at a round barrier
// — never mid-round — so a resumed coordinator re-executes the crashed
// round from identical inputs (same frozen dominance snapshot, same
// budget allocations, same frontiers). The re-executed queries hit the
// per-backend journals' replay maps and cost nothing; queries past the
// crash point are genuinely new. That is what makes `kill -9` at any
// crash point + resume produce byte-identical output with zero repeated
// backend queries (docs/federation.md, "Durable federation").
//
// Crash points: "federation.checkpoint.pre_state" fires with the new
// round fully executed but STATE still describing the previous round;
// "federation.checkpoint.post_state" fires just after the atomic STATE
// swing. Both are round barriers, so recovery from either is exact.

#ifndef HDSKY_RECOVERY_FEDERATION_STATE_H_
#define HDSKY_RECOVERY_FEDERATION_STATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace hdsky {
namespace recovery {

inline constexpr char kFederationStateFileName[] = "STATE";

/// One backend's barrier state, exactly what the coordinator needs to
/// re-enter the next round as if the process had never died.
struct FederatedBackendState {
  /// Identity, validated on resume: a session restarted against a
  /// different endpoint list or driver is rejected, never guessed around.
  std::string name;
  std::string algorithm;  // resolved driver: "sq" or "rq"

  /// PR 4 pause state: DiscoveryRun::SaveState blob + the algorithm's
  /// frontier codec, captured at the last starved checkpoint.
  bool has_resume = false;
  std::string run_state;
  std::string frontier;

  /// Confirmed candidates at the barrier (the backend's local skyline),
  /// the coordinator's input to the frozen dominance snapshot.
  std::vector<data::TupleId> cand_ids;
  std::vector<data::Tuple> cand_tuples;

  /// Yield counters feeding BudgetScheduler, plus the pruner's
  /// cumulative accounting.
  int64_t prev_confirmed = 0;
  int64_t prev_paid = 0;
  int64_t last_round_paid = 0;
  int64_t last_round_new = 0;
  int64_t rounds = 0;
  int64_t paid = 0;
  int64_t pruned = 0;

  /// Health state machine: 0 = healthy, 1 = degraded, 2 = dead
  /// (federation::BackendHealth). A degraded backend resumes mid-backoff.
  uint8_t health = 0;
  int64_t probe_attempts = 0;
  int64_t next_probe_round = 0;
  int64_t recoveries = 0;

  bool complete = false;
  bool failed = false;
  bool backend_exhausted = false;
  std::string error;

  /// The pruner's deduplicated observed-tuple pool (join-mode entity
  /// coverage; persisted so resumed joins need no extra probes).
  std::vector<data::TupleId> observed_ids;
  std::vector<data::Tuple> observed_tuples;
};

/// The coordinator's round checkpoint.
struct FederationSessionState {
  std::string mode;       // "union" | "join"
  std::string algorithm;  // requested driver ("auto" | "sq" | "rq")
  int64_t rounds = 0;
  /// Federation-wide budget still unspent (meaningful only when the run
  /// was started with a total budget).
  int64_t total_remaining = 0;
  std::vector<FederatedBackendState> backends;
};

std::string EncodeFederationState(const FederationSessionState& state);
common::Result<FederationSessionState> DecodeFederationState(
    std::string_view blob);

/// Atomically replaces dir/STATE with the checkpoint. Crash points
/// "federation.checkpoint.pre_state" / "federation.checkpoint.post_state"
/// bracket the swing.
common::Status SaveFederationState(const std::string& dir,
                                   const FederationSessionState& state);

/// Reads and verifies dir/STATE. NotFound when no checkpoint exists (a
/// fresh session); IOError on any damage — a corrupt checkpoint is
/// rejected whole, never partially adopted.
common::Result<FederationSessionState> LoadFederationState(
    const std::string& dir);

}  // namespace recovery
}  // namespace hdsky

#endif  // HDSKY_RECOVERY_FEDERATION_STATE_H_
