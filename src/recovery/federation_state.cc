#include "recovery/federation_state.h"

#include <utility>

#include "common/fs_util.h"
#include "net/wire.h"
#include "recovery/crash_point.h"
#include "recovery/journal.h"

namespace hdsky {
namespace recovery {

using common::Result;
using common::Status;

namespace {

constexpr char kFederationStateMagic[] = "hdsky-fedstate-v1";

void PutTuplePool(const std::vector<data::TupleId>& ids,
                  const std::vector<data::Tuple>& tuples, net::Encoder* enc) {
  enc->PutU64(static_cast<uint64_t>(ids.size()));
  for (size_t i = 0; i < ids.size(); ++i) {
    enc->PutI64(ids[i]);
    for (const data::Value v : tuples[i]) enc->PutI64(v);
  }
}

Status GetTuplePool(net::Decoder* dec, uint32_t width, const char* what,
                    std::vector<data::TupleId>* ids,
                    std::vector<data::Tuple>* tuples) {
  uint64_t count = 0;
  if (!dec->GetU64(&count) ||
      count > dec->remaining() / (8 * (static_cast<uint64_t>(width) + 1))) {
    return Status::IOError(std::string("federation state: implausible ") +
                           what + " tuple count");
  }
  ids->reserve(count);
  tuples->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    data::TupleId id = 0;
    dec->GetI64(&id);
    data::Tuple t(width);
    for (uint32_t j = 0; j < width; ++j) dec->GetI64(&t[j]);
    if (!dec->ok()) {
      return Status::IOError(std::string("federation state: truncated ") +
                             what + " tuple pool");
    }
    ids->push_back(id);
    tuples->push_back(std::move(t));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFederationState(const FederationSessionState& state) {
  std::string out;
  net::Encoder enc(&out);
  enc.PutString(kFederationStateMagic);
  enc.PutString(state.mode);
  enc.PutString(state.algorithm);
  enc.PutI64(state.rounds);
  enc.PutI64(state.total_remaining);
  enc.PutU64(static_cast<uint64_t>(state.backends.size()));
  for (const FederatedBackendState& b : state.backends) {
    enc.PutString(b.name);
    enc.PutString(b.algorithm);
    enc.PutU8(b.has_resume ? 1 : 0);
    enc.PutString(b.run_state);
    enc.PutString(b.frontier);
    // Tuples of one backend all share the full schema width; encode it
    // once so the decoder can validate every tuple against it.
    const uint32_t width =
        b.cand_tuples.empty()
            ? (b.observed_tuples.empty()
                   ? 0
                   : static_cast<uint32_t>(b.observed_tuples[0].size()))
            : static_cast<uint32_t>(b.cand_tuples[0].size());
    enc.PutU32(width);
    PutTuplePool(b.cand_ids, b.cand_tuples, &enc);
    enc.PutI64(b.prev_confirmed);
    enc.PutI64(b.prev_paid);
    enc.PutI64(b.last_round_paid);
    enc.PutI64(b.last_round_new);
    enc.PutI64(b.rounds);
    enc.PutI64(b.paid);
    enc.PutI64(b.pruned);
    enc.PutU8(b.health);
    enc.PutI64(b.probe_attempts);
    enc.PutI64(b.next_probe_round);
    enc.PutI64(b.recoveries);
    enc.PutU8(b.complete ? 1 : 0);
    enc.PutU8(b.failed ? 1 : 0);
    enc.PutU8(b.backend_exhausted ? 1 : 0);
    enc.PutString(b.error);
    PutTuplePool(b.observed_ids, b.observed_tuples, &enc);
  }
  return out;
}

Result<FederationSessionState> DecodeFederationState(std::string_view blob) {
  net::Decoder dec(blob);
  std::string magic;
  uint64_t backend_count = 0;
  FederationSessionState state;
  dec.GetString(&magic);
  dec.GetString(&state.mode);
  dec.GetString(&state.algorithm);
  dec.GetI64(&state.rounds);
  dec.GetI64(&state.total_remaining);
  if (!dec.GetU64(&backend_count) || magic != kFederationStateMagic) {
    return Status::IOError("malformed federation state header");
  }
  if (backend_count > dec.remaining()) {
    return Status::IOError("federation state: implausible backend count");
  }
  state.backends.reserve(backend_count);
  for (uint64_t i = 0; i < backend_count; ++i) {
    FederatedBackendState b;
    uint8_t has_resume = 0, health = 0, complete = 0, failed = 0,
            exhausted = 0;
    uint32_t width = 0;
    dec.GetString(&b.name);
    dec.GetString(&b.algorithm);
    dec.GetU8(&has_resume);
    dec.GetString(&b.run_state);
    dec.GetString(&b.frontier);
    if (!dec.GetU32(&width) || width > 65535) {
      return Status::IOError("federation state: malformed backend entry");
    }
    HDSKY_RETURN_IF_ERROR(
        GetTuplePool(&dec, width, "candidate", &b.cand_ids, &b.cand_tuples));
    dec.GetI64(&b.prev_confirmed);
    dec.GetI64(&b.prev_paid);
    dec.GetI64(&b.last_round_paid);
    dec.GetI64(&b.last_round_new);
    dec.GetI64(&b.rounds);
    dec.GetI64(&b.paid);
    dec.GetI64(&b.pruned);
    dec.GetU8(&health);
    dec.GetI64(&b.probe_attempts);
    dec.GetI64(&b.next_probe_round);
    dec.GetI64(&b.recoveries);
    dec.GetU8(&complete);
    dec.GetU8(&failed);
    if (!dec.GetU8(&exhausted) || !dec.GetString(&b.error)) {
      return Status::IOError("federation state: truncated backend entry");
    }
    HDSKY_RETURN_IF_ERROR(GetTuplePool(&dec, width, "observed",
                                       &b.observed_ids, &b.observed_tuples));
    b.has_resume = has_resume != 0;
    b.health = health;
    b.complete = complete != 0;
    b.failed = failed != 0;
    b.backend_exhausted = exhausted != 0;
    if (b.health > 2) {
      return Status::IOError("federation state: unknown health value " +
                             std::to_string(b.health));
    }
    state.backends.push_back(std::move(b));
  }
  if (!dec.exhausted()) {
    return Status::IOError("federation state carries trailing bytes");
  }
  return state;
}

Status SaveFederationState(const std::string& dir,
                           const FederationSessionState& state) {
  std::string framed;
  AppendFrame(EncodeFederationState(state), &framed);
  const std::string path = dir + "/" + kFederationStateFileName;
  CrashPointHit("federation.checkpoint.pre_state");
  HDSKY_RETURN_IF_ERROR(common::AtomicWriteFile(path, framed));
  CrashPointHit("federation.checkpoint.post_state");
  return Status::OK();
}

Result<FederationSessionState> LoadFederationState(const std::string& dir) {
  const std::string path = dir + "/" + kFederationStateFileName;
  std::string data;
  HDSKY_ASSIGN_OR_RETURN(data, common::ReadFileToString(path));
  JournalContents frame;
  {
    // Reuse the journal frame parser on the single-record STATE file; it
    // was written atomically, so a torn or trailing byte is damage, not
    // an interrupted append.
    auto parsed = ReadJournalFile(path);
    HDSKY_RETURN_IF_ERROR(parsed.status());
    frame = std::move(parsed).value();
  }
  if (frame.torn || frame.payloads.size() != 1 ||
      frame.valid_bytes != static_cast<int64_t>(data.size())) {
    return Status::IOError(path + ": federation state framing damaged");
  }
  auto state = DecodeFederationState(frame.payloads[0]);
  if (!state.ok()) {
    return Status::IOError(path + ": " + state.status().message());
  }
  return state;
}

}  // namespace recovery
}  // namespace hdsky
