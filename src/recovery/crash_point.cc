#include "recovery/crash_point.h"

#include <cstdlib>

#include <unistd.h>

namespace hdsky {
namespace recovery {

namespace {

// Single armed point per process (tests arm exactly one boundary per
// run). Plain statics: the persistence code that hits crash points is
// single-threaded by design (journal/checkpoint writes happen on the
// discovery thread).
std::string g_armed_name;
long g_remaining_hits = 0;

}  // namespace

void ArmCrashPoint(const std::string& spec) {
  g_armed_name.clear();
  g_remaining_hits = 0;
  if (spec.empty()) return;
  std::string name = spec;
  long count = 1;
  const size_t colon = spec.find_last_of(':');
  if (colon != std::string::npos) {
    char* end = nullptr;
    const long parsed = std::strtol(spec.c_str() + colon + 1, &end, 10);
    if (end != spec.c_str() + colon + 1 && *end == '\0' && parsed >= 1) {
      name = spec.substr(0, colon);
      count = parsed;
    }
  }
  g_armed_name = name;
  g_remaining_hits = count;
}

void ArmCrashPointFromEnv() {
  const char* spec = std::getenv("HDSKY_CRASH_POINT");
  if (spec != nullptr && *spec != '\0') ArmCrashPoint(spec);
}

bool CrashPointArmed(const char* name) {
  return !g_armed_name.empty() && g_armed_name == name;
}

void CrashPointHit(const char* name) {
  if (!CrashPointArmed(name)) return;
  if (--g_remaining_hits > 0) return;
  // Die like kill -9: no destructors, no atexit, no stdio flush. Any
  // bytes not yet write(2)ten are lost, exactly as in a real crash.
  ::_exit(kCrashExitCode);
}

}  // namespace recovery
}  // namespace hdsky
