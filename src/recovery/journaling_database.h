// Durable-session decorator: a HiddenDatabase whose paid answers survive
// process death.
//
// JournalingDatabase wraps any backend and keeps a journal directory (see
// journal.h / checkpoint.h) recording every answer the session paid for.
// On open it rebuilds the replay map from the live snapshot + journal
// suffix; an Execute whose query is already journaled is served locally at
// zero backend cost. Because the discovery algorithms are deterministic, a
// crashed run restarted over the same journal replays its paid prefix for
// free and continues paying only for genuinely new queries — the backbone
// of crash-consistent resume (docs/robustness.md).
//
// Exactly-once accounting. Before paying for a query the decorator
// journals an *intent* record carrying the wire sequence number the query
// will be sent under (Options::seq_provider wires this to
// service::RemoteHiddenDatabase). With sync_every=1 the intent is durable
// before the backend sees the query, so a crash in the pay window leaves a
// dangling final intent; the resumed session detects it, re-issues that
// exact query under that exact sequence number, and the server's replay
// cache answers without charging the budget a second time.
//
// Checkpoints. After Options::checkpoint_every paid queries the decorator
// marks a checkpoint due; the discovery driver calls Checkpoint() at a
// frontier-consistent boundary (or, with auto_checkpoint, the decorator
// checkpoints itself between queries), compacting the journal into the
// next epoch's snapshot.
//
// Thread safety: NONE — same single-threaded contract as CachingDatabase.

#ifndef HDSKY_RECOVERY_JOURNALING_DATABASE_H_
#define HDSKY_RECOVERY_JOURNALING_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "interface/hidden_database.h"
#include "recovery/checkpoint.h"
#include "recovery/journal.h"

namespace hdsky {
namespace recovery {

class JournalingDatabase : public interface::HiddenDatabase {
 public:
  struct Options {
    /// Journal group-fsync interval. 1 (the default) makes every intent
    /// and answer durable before Execute proceeds — required for strict
    /// exactly-once accounting against a remote server; raise it to trade
    /// a bounded replay window for fewer fsyncs.
    int sync_every = 1;
    /// Paid queries between checkpoints.
    int64_t checkpoint_every = 256;
    /// When true the decorator checkpoints itself at the next Execute once
    /// due (every point between queries is consistent for pure replay).
    /// Drivers that capture frontier state set this false and call
    /// Checkpoint() from their own consistent boundaries.
    bool auto_checkpoint = true;
    /// State blob written by automatic checkpoints (typically just the
    /// algorithm name, EncodeSessionState'd).
    std::string auto_checkpoint_state;
    /// Supplies the wire sequence number the NEXT backend query will be
    /// sent under (RemoteHiddenDatabase::next_seq). Unset: an internal
    /// counter numbers paid queries.
    std::function<uint64_t()> seq_provider;
  };

  struct Stats {
    /// Queries answered from the journal at zero backend cost.
    int64_t replayed = 0;
    /// Queries that reached the backend and were journaled.
    int64_t paid = 0;
    /// Backend failures (journaled as intents only; nothing cached).
    int64_t errors = 0;
  };

  /// Opens (or creates) the journal directory and rebuilds the replay map.
  /// `backend` must outlive the returned object. Fails on interior journal
  /// corruption, a damaged snapshot/manifest, or a schema-width mismatch —
  /// never silently discards paid history.
  static common::Result<std::unique_ptr<JournalingDatabase>> Open(
      interface::HiddenDatabase* backend, const std::string& dir,
      const Options& options);

  ~JournalingDatabase() override;

  using interface::HiddenDatabase::Execute;
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override;

  const data::Schema& schema() const override { return backend_->schema(); }
  int k() const override { return backend_->k(); }
  common::Status ValidateQuery(const interface::Query& q) const override {
    return backend_->ValidateQuery(q);
  }

  /// True when the directory held a previous session's state.
  bool resumed() const { return resumed_; }
  /// Session-state blob from the live snapshot (empty for fresh sessions
  /// or cache-only checkpoints): the driver decodes it to fast-forward.
  const std::string& restored_state() const { return restored_state_; }

  /// True when checkpoint_every paid queries have accrued since the last
  /// checkpoint; drivers poll this at frontier-consistent boundaries.
  bool checkpoint_due() const { return checkpoint_due_; }

  /// Compacts journal history into the next epoch: snapshot + fresh
  /// journal, atomic manifest swing, old-epoch cleanup. `state_blob` is
  /// stored in the snapshot for the resume path. On failure the session
  /// keeps appending to the current epoch (a failed checkpoint loses
  /// nothing).
  common::Status Checkpoint(const std::string& state_blob);

  /// Final checkpoint at the end of a run (or on interrupt): everything
  /// journaled is compacted and `state_blob` becomes the resume state.
  common::Status Finish(const std::string& state_blob);

  /// Forces unsynced journal appends to disk.
  common::Status Sync();

  /// The wire sequence number the next backend query must use: the
  /// dangling intent's number when one exists (so the re-send replays
  /// server-side), else one past the highest journaled number. Wired into
  /// RemoteHiddenDatabase::set_next_seq before the first query.
  uint64_t next_wire_seq() const;

  /// Signature of the dangling final intent, if the previous process died
  /// between paying and journaling the answer.
  const std::optional<std::string>& pending_intent_signature() const {
    return pending_signature_;
  }

  /// Settles the dangling intent (if any) by re-executing its exact query
  /// under its original wire sequence number. The server either replays
  /// the answer it already charged for (free) or executes it fresh
  /// (charged exactly once); either way the intent resolves and the
  /// session's sequence numbers stay aligned with the server's. Used by
  /// federation re-probes: a backend that failed mid-round may resume
  /// against a *newer* dominance snapshot, so its next fresh query can
  /// legitimately differ from the dangling one — the intent must be
  /// settled before the run restarts, not treated as divergence. Simply
  /// dropping it instead would desynchronize the wire sequence (the
  /// server enforces strictly consecutive numbers and replays stale
  /// ones silently). No-op when nothing is pending.
  common::Status ResolvePending();

  const Stats& stats() const { return stats_; }
  int64_t entries() const { return static_cast<int64_t>(order_.size()); }
  int64_t epoch() const { return epoch_; }

 private:
  JournalingDatabase(interface::HiddenDatabase* backend, std::string dir,
                     const Options& options)
      : backend_(backend), dir_(std::move(dir)), options_(options) {}

  common::Status OpenImpl();
  common::Status AppendRecord(const std::string& payload);
  void Insert(const std::string& signature, interface::QueryResult result);

  interface::HiddenDatabase* backend_;
  std::string dir_;
  Options options_;

  std::unique_ptr<JournalWriter> writer_;
  int64_t epoch_ = 1;

  /// Replay map plus insertion order (snapshots preserve it so replayed
  /// sessions compact identically).
  std::unordered_map<std::string, interface::QueryResult> replay_;
  std::vector<std::string> order_;

  /// Highest wire seq accounted for (snapshot + journal + this process).
  uint64_t last_seq_ = 0;
  std::optional<std::string> pending_signature_;
  std::optional<uint64_t> pending_seq_;

  bool resumed_ = false;
  std::string restored_state_;

  Stats stats_;
  int64_t paid_since_checkpoint_ = 0;
  bool checkpoint_due_ = false;
};

}  // namespace recovery
}  // namespace hdsky

#endif  // HDSKY_RECOVERY_JOURNALING_DATABASE_H_
