// Deterministic crash injection for crash-recovery testing.
//
// A crash point is a named location in the persistence code (journal
// append, checkpoint rename, ...) where the process can be made to die
// abruptly — no stack unwinding, no atexit handlers, no stdio flush —
// exactly as if it had been SIGKILLed or lost power at that instant.
// Tests arm one point (by name, optionally with a hit count) through the
// HDSKY_CRASH_POINT environment variable or the hdsky_discover
// --crash-point flag, run to the crash, then restart the process and
// assert that recovery reproduces the uninterrupted outcome.
//
//   HDSKY_CRASH_POINT="journal.append.torn"      die on the 1st hit
//   HDSKY_CRASH_POINT="checkpoint.pre_manifest:3"  die on the 3rd hit
//
// Points defined by the recovery subsystem:
//   journal.append.pre_sync   record handed to the OS, fsync not yet run
//   journal.append.torn       record half-written: a torn tail on disk
//   checkpoint.pre_snapshot   checkpoint decided, nothing written yet
//   checkpoint.pre_manifest   snapshot+journal of the new epoch on disk,
//                             manifest still points at the old epoch
//   checkpoint.pre_cleanup    manifest renamed, old epoch files not yet
//                             deleted
//   federation.checkpoint.pre_state   a federation round fully executed,
//                             DIR/STATE still describing the previous one
//   federation.checkpoint.post_state  DIR/STATE atomically swung to the
//                             new round
//
// In production nothing is armed and every CrashPointHit() is a single
// predictable branch.

#ifndef HDSKY_RECOVERY_CRASH_POINT_H_
#define HDSKY_RECOVERY_CRASH_POINT_H_

#include <string>

namespace hdsky {
namespace recovery {

/// Exit code of an injected crash; chosen to match a SIGKILLed process
/// (128 + 9) so scripts can assert the run died the violent way.
inline constexpr int kCrashExitCode = 137;

/// Arms `spec` ("name" or "name:count"); overrides any previous arming.
/// An empty spec disarms. Invalid specs are ignored (never fatal).
void ArmCrashPoint(const std::string& spec);

/// Arms from $HDSKY_CRASH_POINT if set. Called by the tools at startup.
void ArmCrashPointFromEnv();

/// True when `name` is the armed point (regardless of remaining count).
/// Lets a caller stage a deliberately torn write before dying.
bool CrashPointArmed(const char* name);

/// Registers one hit of `name`; when it is the armed point and the hit
/// count is reached, the process dies immediately via _exit — no
/// unwinding, no flushes, simulating kill -9 at this exact boundary.
void CrashPointHit(const char* name);

}  // namespace recovery
}  // namespace hdsky

#endif  // HDSKY_RECOVERY_CRASH_POINT_H_
