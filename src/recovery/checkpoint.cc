#include "recovery/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <unistd.h>

#include "common/fs_util.h"
#include "net/wire.h"
#include "recovery/journal.h"

namespace hdsky {
namespace recovery {

using common::Result;
using common::Status;

namespace {

constexpr char kManifestMagic[] = "hdsky-manifest-v1";
constexpr char kSnapshotMagic[] = "hdsky-snap-v1";

std::string EpochFileName(const char* prefix, int64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%06" PRId64, epoch);
  return std::string(prefix) + buf;
}

/// Parses "journal-NNNNNN" / "snapshot-NNNNNN"; -1 for anything else.
int64_t EpochOfFileName(const std::string& name) {
  for (const char* prefix : {"journal-", "snapshot-"}) {
    const size_t plen = std::strlen(prefix);
    if (name.size() <= plen || name.compare(0, plen, prefix) != 0) continue;
    char* end = nullptr;
    const long long epoch = std::strtoll(name.c_str() + plen, &end, 10);
    if (end != name.c_str() + plen && *end == '\0' && epoch >= 1) {
      return static_cast<int64_t>(epoch);
    }
  }
  return -1;
}

}  // namespace

std::string JournalFileName(int64_t epoch) {
  return EpochFileName("journal", epoch);
}

std::string SnapshotFileName(int64_t epoch) {
  return EpochFileName("snapshot", epoch);
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  const std::string contents = std::string(kManifestMagic) + " " +
                               std::to_string(m.epoch) + " " +
                               (m.has_snapshot ? "1" : "0") + "\n";
  return common::AtomicWriteFile(dir + "/" + kManifestFileName, contents);
}

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  std::string contents;
  HDSKY_ASSIGN_OR_RETURN(contents, common::ReadFileToString(path));
  char magic[32] = {0};
  long long epoch = 0;
  int has_snapshot = -1;
  if (std::sscanf(contents.c_str(), "%31s %lld %d", magic, &epoch,
                  &has_snapshot) != 3 ||
      std::strcmp(magic, kManifestMagic) != 0 || epoch < 1 ||
      (has_snapshot != 0 && has_snapshot != 1)) {
    return Status::IOError(path + ": malformed manifest");
  }
  Manifest m;
  m.epoch = static_cast<int64_t>(epoch);
  m.has_snapshot = has_snapshot == 1;
  return m;
}

void RemoveOtherEpochFiles(const std::string& dir, int64_t keep_epoch) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const int64_t epoch = EpochOfFileName(name);
    if (epoch >= 1 && epoch != keep_epoch) {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

// ---------------------------------------------------------------------------
// Snapshot blob.

Status WriteSnapshot(const std::string& path, int width,
                     const Snapshot& snap) {
  std::string payload;
  net::Encoder enc(&payload);
  enc.PutString(kSnapshotMagic);
  enc.PutU32(static_cast<uint32_t>(width));
  enc.PutU64(snap.last_seq);
  enc.PutString(snap.state_blob);
  enc.PutU64(static_cast<uint64_t>(snap.entries.size()));
  for (const SnapshotEntry& e : snap.entries) {
    enc.PutString(e.signature);
    net::EncodeResult(0, e.result, &payload);
  }
  std::string framed;
  AppendFrame(payload, &framed);
  return common::AtomicWriteFile(path, framed);
}

Result<Snapshot> ReadSnapshot(const std::string& path, int width) {
  std::string data;
  HDSKY_ASSIGN_OR_RETURN(data, common::ReadFileToString(path));
  if (data.size() < kRecordHeaderBytes) {
    return Status::IOError(path + ": snapshot truncated");
  }
  JournalContents frame;
  {
    // Reuse the journal frame parser on the single-record snapshot file;
    // the snapshot was written atomically, so a torn or trailing byte is
    // damage, not an interrupted append.
    auto parsed = ReadJournalFile(path);
    HDSKY_RETURN_IF_ERROR(parsed.status());
    frame = std::move(parsed).value();
  }
  if (frame.torn || frame.payloads.size() != 1 ||
      frame.valid_bytes != static_cast<int64_t>(data.size())) {
    return Status::IOError(path + ": snapshot framing damaged");
  }
  net::Decoder dec(frame.payloads[0]);
  std::string magic;
  uint32_t snap_width = 0;
  uint64_t entry_count = 0;
  Snapshot snap;
  dec.GetString(&magic);
  dec.GetU32(&snap_width);
  dec.GetU64(&snap.last_seq);
  dec.GetString(&snap.state_blob);
  if (!dec.GetU64(&entry_count) || magic != kSnapshotMagic) {
    return Status::IOError(path + ": malformed snapshot header");
  }
  if (snap_width != static_cast<uint32_t>(width)) {
    return Status::IOError(path + ": snapshot width " +
                           std::to_string(snap_width) +
                           " does not match schema width " +
                           std::to_string(width));
  }
  for (uint64_t i = 0; i < entry_count; ++i) {
    SnapshotEntry e;
    if (!dec.GetString(&e.signature) ||
        e.signature.size() != static_cast<size_t>(width) * 16) {
      return Status::IOError(path + ": malformed snapshot entry");
    }
    uint64_t seq = 0;
    HDSKY_RETURN_IF_ERROR(
        net::DecodeResultBody(&dec, width, &seq, &e.result));
    snap.entries.push_back(std::move(e));
  }
  if (!dec.exhausted()) {
    return Status::IOError(path + ": snapshot carries trailing bytes");
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Session state.

std::string EncodeSessionState(const SessionState& state) {
  std::string out;
  net::Encoder enc(&out);
  enc.PutString(state.algorithm);
  enc.PutString(state.run_state);
  enc.PutString(state.frontier);
  return out;
}

Result<SessionState> DecodeSessionState(std::string_view blob) {
  SessionState state;
  if (blob.empty()) return state;
  net::Decoder dec(blob);
  dec.GetString(&state.algorithm);
  dec.GetString(&state.run_state);
  dec.GetString(&state.frontier);
  if (!dec.exhausted()) {
    return Status::IOError("malformed session state blob");
  }
  return state;
}

}  // namespace recovery
}  // namespace hdsky
