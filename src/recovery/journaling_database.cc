#include "recovery/journaling_database.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "common/fs_util.h"
#include "recovery/crash_point.h"

namespace hdsky {
namespace recovery {

using common::Result;
using common::Status;

namespace {

Status MkDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<JournalingDatabase>> JournalingDatabase::Open(
    interface::HiddenDatabase* backend, const std::string& dir,
    const Options& options) {
  std::unique_ptr<JournalingDatabase> db(
      new JournalingDatabase(backend, dir, options));
  HDSKY_RETURN_IF_ERROR(db->OpenImpl());
  return db;
}

JournalingDatabase::~JournalingDatabase() = default;

Status JournalingDatabase::OpenImpl() {
  HDSKY_RETURN_IF_ERROR(MkDir(dir_));
  common::RemoveStaleTempFiles(dir_);
  const int width = backend_->schema().num_attributes();
  const JournalWriter::Options wopts{options_.sync_every};

  auto manifest = ReadManifest(dir_);
  if (!manifest.ok()) {
    if (!manifest.status().IsNotFound()) return manifest.status();
    // Fresh directory. A journal file without a manifest is debris from a
    // crash before the very first manifest write — nothing was ever
    // recoverable from it, so clear the slate (epoch 0 keeps nothing).
    RemoveOtherEpochFiles(dir_, 0);
    HDSKY_ASSIGN_OR_RETURN(
        writer_,
        JournalWriter::Create(dir_ + "/" + JournalFileName(1), width, wopts));
    HDSKY_RETURN_IF_ERROR(WriteManifest(dir_, Manifest{1, false}));
    epoch_ = 1;
    return Status::OK();
  }

  // Resuming: the manifest names the one live epoch; files of any other
  // epoch are crash debris (half-built next epoch, or a previous epoch
  // whose cleanup never ran).
  resumed_ = true;
  epoch_ = manifest->epoch;
  RemoveOtherEpochFiles(dir_, epoch_);

  if (manifest->has_snapshot) {
    Snapshot snap;
    HDSKY_ASSIGN_OR_RETURN(
        snap,
        ReadSnapshot(dir_ + "/" + SnapshotFileName(epoch_), width));
    last_seq_ = snap.last_seq;
    restored_state_ = std::move(snap.state_blob);
    for (SnapshotEntry& e : snap.entries) {
      Insert(e.signature, std::move(e.result));
    }
  }

  const std::string journal_path = dir_ + "/" + JournalFileName(epoch_);
  auto contents = ReadJournalFile(journal_path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) {
      return Status::IOError(dir_ + ": manifest names epoch " +
                             std::to_string(epoch_) +
                             " but its journal file is missing");
    }
    return contents.status();
  }
  if (contents->payloads.empty()) {
    // Created but died before the header reached the disk: an empty file
    // holds nothing, so recreate it whole.
    ::unlink(journal_path.c_str());
    HDSKY_ASSIGN_OR_RETURN(writer_,
                           JournalWriter::Create(journal_path, width, wopts));
    return Status::OK();
  }
  int journal_width = 0;
  HDSKY_ASSIGN_OR_RETURN(journal_width,
                         DecodeHeaderRecord(contents->payloads[0]));
  if (journal_width != width) {
    return Status::IOError(journal_path + ": journal width " +
                           std::to_string(journal_width) +
                           " does not match schema width " +
                           std::to_string(width));
  }
  for (size_t i = 1; i < contents->payloads.size(); ++i) {
    JournalRecord rec;
    HDSKY_ASSIGN_OR_RETURN(rec, DecodeRecord(contents->payloads[i], width));
    last_seq_ = std::max(last_seq_, rec.seq);
    if (rec.type == RecordType::kIntent) {
      pending_signature_ = rec.signature;
      pending_seq_ = rec.seq;
    } else {
      Insert(rec.signature, std::move(rec.result));
      pending_signature_.reset();
      pending_seq_.reset();
    }
  }
  HDSKY_ASSIGN_OR_RETURN(
      writer_,
      JournalWriter::OpenForAppend(journal_path, contents->valid_bytes,
                                   wopts));
  return Status::OK();
}

void JournalingDatabase::Insert(const std::string& signature,
                                interface::QueryResult result) {
  const auto [it, inserted] = replay_.emplace(signature, std::move(result));
  (void)it;
  if (inserted) order_.push_back(signature);
}

Status JournalingDatabase::AppendRecord(const std::string& payload) {
  return writer_->Append(payload);
}

Result<interface::QueryResult> JournalingDatabase::Execute(
    const interface::Query& q) {
  HDSKY_RETURN_IF_ERROR(ValidateQuery(q));
  if (options_.auto_checkpoint && checkpoint_due_) {
    // Between queries every point is consistent for pure-replay resume.
    // A failed checkpoint loses nothing: the current epoch keeps growing
    // and the next Execute retries.
    (void)Checkpoint(options_.auto_checkpoint_state);
  }
  const std::string signature = q.Signature();
  const auto hit = replay_.find(signature);
  if (hit != replay_.end()) {
    ++stats_.replayed;
    return hit->second;
  }

  // Fresh query: journal the intent (with the wire seq it will be sent
  // under) before the backend can charge for it.
  const bool resend_of_pending =
      pending_signature_.has_value() && *pending_signature_ == signature;
  uint64_t seq = 0;
  if (resend_of_pending) {
    // The intent is already durable from a previous attempt (same process
    // retry after an error, or a resumed session finishing a query its
    // predecessor died inside). Re-use its sequence number so the server
    // replays instead of re-charging.
    seq = *pending_seq_;
  } else if (pending_signature_.has_value()) {
    return Status::Internal(
        "resumed run diverged from its journal: the journal ends in an "
        "unresolved intent for a different query (was the session restarted "
        "with different flags?)");
  } else {
    seq = options_.seq_provider ? options_.seq_provider() : last_seq_ + 1;
    HDSKY_RETURN_IF_ERROR(AppendRecord(EncodeIntentRecord(seq, signature)));
    pending_signature_ = signature;
    pending_seq_ = seq;
  }

  auto answer = backend_->Execute(q);
  last_seq_ = std::max(last_seq_, seq);
  if (!answer.ok()) {
    // The intent stays journaled: a retry (this process or the next one)
    // re-sends under the same seq, keeping accounting exact.
    ++stats_.errors;
    return answer.status();
  }
  ++stats_.paid;
  HDSKY_RETURN_IF_ERROR(
      AppendRecord(EncodeResultRecord(seq, signature, answer.value())));
  Insert(signature, answer.value());
  pending_signature_.reset();
  pending_seq_.reset();
  if (++paid_since_checkpoint_ >= options_.checkpoint_every) {
    checkpoint_due_ = true;
  }
  return answer;
}

Status JournalingDatabase::ResolvePending() {
  if (!pending_signature_.has_value()) return Status::OK();
  // Rebuild the query from its journaled signature (one {lower, upper}
  // Value pair per attribute — Query::Signature is injective over
  // intervals) and push it through Execute: the resend-of-pending path
  // re-sends it under the original wire seq, so the server replays or
  // charges exactly once and the intent clears.
  const std::string signature = *pending_signature_;
  const int width = backend_->schema().num_attributes();
  if (signature.size() !=
      static_cast<size_t>(width) * 2 * sizeof(data::Value)) {
    return Status::Internal(
        "journaled intent signature does not match the schema width");
  }
  interface::Query q(width);
  const char* p = signature.data();
  for (int attr = 0; attr < width; ++attr) {
    data::Value lo = 0;
    data::Value hi = 0;
    std::memcpy(&lo, p, sizeof(lo));
    p += sizeof(lo);
    std::memcpy(&hi, p, sizeof(hi));
    p += sizeof(hi);
    if (lo != interface::Interval::kMin) q.AddAtLeast(attr, lo);
    if (hi != interface::Interval::kMax) q.AddAtMost(attr, hi);
  }
  if (q.Signature() != signature) {
    return Status::Internal("journaled intent signature failed to roundtrip");
  }
  return Execute(q).status();
}

Status JournalingDatabase::Checkpoint(const std::string& state_blob) {
  CrashPointHit("checkpoint.pre_snapshot");
  HDSKY_RETURN_IF_ERROR(writer_->Sync());
  const int width = backend_->schema().num_attributes();
  const int64_t next_epoch = epoch_ + 1;
  const std::string snapshot_path =
      dir_ + "/" + SnapshotFileName(next_epoch);
  const std::string journal_path = dir_ + "/" + JournalFileName(next_epoch);

  Snapshot snap;
  snap.last_seq = last_seq_;
  snap.state_blob = state_blob;
  snap.entries.reserve(order_.size());
  for (const std::string& sig : order_) {
    snap.entries.push_back(SnapshotEntry{sig, replay_.at(sig)});
  }
  HDSKY_RETURN_IF_ERROR(WriteSnapshot(snapshot_path, width, snap));

  // A failed earlier checkpoint attempt may have left next-epoch debris.
  ::unlink(journal_path.c_str());
  std::unique_ptr<JournalWriter> next_writer;
  HDSKY_ASSIGN_OR_RETURN(
      next_writer,
      JournalWriter::Create(journal_path, width,
                            JournalWriter::Options{options_.sync_every}));
  if (pending_signature_.has_value()) {
    // Carry the unresolved intent across the rotation: compaction must not
    // forget that a query may already be charged server-side.
    HDSKY_RETURN_IF_ERROR(next_writer->Append(
        EncodeIntentRecord(*pending_seq_, *pending_signature_)));
    HDSKY_RETURN_IF_ERROR(next_writer->Sync());
  }

  CrashPointHit("checkpoint.pre_manifest");
  // The commit point: after this rename recovery reads epoch e+1; before
  // it, epoch e (the files written above are then deleted as debris).
  HDSKY_RETURN_IF_ERROR(WriteManifest(dir_, Manifest{next_epoch, true}));
  CrashPointHit("checkpoint.pre_cleanup");

  writer_ = std::move(next_writer);
  epoch_ = next_epoch;
  RemoveOtherEpochFiles(dir_, epoch_);
  paid_since_checkpoint_ = 0;
  checkpoint_due_ = false;
  return Status::OK();
}

Status JournalingDatabase::Finish(const std::string& state_blob) {
  return Checkpoint(state_blob);
}

Status JournalingDatabase::Sync() { return writer_->Sync(); }

uint64_t JournalingDatabase::next_wire_seq() const {
  return pending_seq_.has_value() ? *pending_seq_ : last_seq_ + 1;
}

}  // namespace recovery
}  // namespace hdsky
