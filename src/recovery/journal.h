// The write-ahead query journal: an append-only binary log of every
// answer a discovery session has paid for, durable across crashes.
//
// File layout. A journal is a sequence of CRC-framed records:
//
//   offset  size  field
//   0       4     payload length n (little-endian, <= kMaxRecordBytes)
//   4       4     CRC32C of the payload bytes
//   8       n     payload
//
// The first record is always a header record binding the journal to a
// schema width; every later record is an intent or a result record (see
// RecordType). Payloads are encoded with the net/wire.h Encoder, so a
// query answer has exactly one serialized form across the wire protocol,
// the journal, and checkpoint snapshots.
//
// Write discipline. Records are appended with write(2) and group-fsync'd
// every Options::sync_every records (1 = every record durable before
// Append returns — the strict exactly-once setting). A crash can
// therefore leave a *torn tail*: a final record whose bytes only
// partially reached the disk.
//
// Read discipline (the hdsky-cache-v1 hardening rules, binary edition):
//   * a record that extends past end-of-file, or whose CRC fails on the
//     final record, is a torn tail — the reader reports the valid prefix
//     and the writer truncates and continues from there;
//   * a CRC failure or implausible length *followed by more data* is
//     interior corruption — the whole journal is rejected atomically
//     (no partial state escapes), because silent mid-log damage means
//     the replay map would lie about what was paid for.

#ifndef HDSKY_RECOVERY_JOURNAL_H_
#define HDSKY_RECOVERY_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "interface/hidden_database.h"

namespace hdsky {
namespace recovery {

/// Upper bound on one record's payload; anything larger is corruption.
inline constexpr uint32_t kMaxRecordBytes = 1u << 26;  // 64 MiB
inline constexpr size_t kRecordHeaderBytes = 8;

/// CRC32C (Castagnoli), the checksum used by the record framing.
uint32_t Crc32c(std::string_view data);

/// Appends one framed record (length prefix + CRC + payload) to *out.
void AppendFrame(std::string_view payload, std::string* out);

// ---------------------------------------------------------------------------
// Record payloads.

enum class RecordType : uint8_t {
  /// First record of every journal: magic string + schema width.
  kHeader = 0,
  /// "About to pay for this query": written and (in strict mode) synced
  /// BEFORE the backend sees the query, so a crash between paying and
  /// recording the answer leaves a dangling final intent — the resume
  /// path re-sends exactly that query with exactly that wire sequence
  /// number and the server replays its cached answer without charging.
  kIntent = 1,
  /// The paid-for answer, keyed by the query's predicate signature.
  kResult = 2,
};

struct JournalRecord {
  RecordType type = RecordType::kResult;
  /// Wire sequence number (remote sessions) or the paid-query ordinal
  /// (local sessions); strictly increasing across intents.
  uint64_t seq = 0;
  /// interface::Query::Signature() of the journaled query.
  std::string signature;
  /// Result records only.
  interface::QueryResult result;
};

std::string EncodeHeaderRecord(int width);
std::string EncodeIntentRecord(uint64_t seq, std::string_view signature);
std::string EncodeResultRecord(uint64_t seq, std::string_view signature,
                               const interface::QueryResult& result);

/// Decodes a header record; fails on anything else.
common::Result<int> DecodeHeaderRecord(std::string_view payload);
/// Decodes an intent or result record. `width` is the schema arity the
/// journal header declared; signatures and tuples are validated against
/// it.
common::Result<JournalRecord> DecodeRecord(std::string_view payload,
                                           int width);

// ---------------------------------------------------------------------------
// File reader.

struct JournalContents {
  /// CRC-verified record payloads in append order (header included).
  std::vector<std::string> payloads;
  /// Bytes of the longest valid record prefix; everything past it is a
  /// torn tail to be truncated before appending resumes.
  int64_t valid_bytes = 0;
  /// True when a torn tail was dropped.
  bool torn = false;
};

/// Reads and CRC-verifies a journal file under the torn-tail/interior-
/// corruption rules in the file comment. An empty file yields zero
/// records (a journal created but never written survives that way).
common::Result<JournalContents> ReadJournalFile(const std::string& path);

// ---------------------------------------------------------------------------
// File writer.

class JournalWriter {
 public:
  struct Options {
    /// fsync after every N appended records; 1 = every record.
    int sync_every = 1;
  };

  /// Creates a fresh journal containing a synced header record. Fails if
  /// the file already exists (journals are never silently overwritten).
  static common::Result<std::unique_ptr<JournalWriter>> Create(
      const std::string& path, int width, const Options& options);

  /// Reopens an existing journal for appending, first truncating it to
  /// `valid_bytes` (the torn tail reported by ReadJournalFile).
  static common::Result<std::unique_ptr<JournalWriter>> OpenForAppend(
      const std::string& path, int64_t valid_bytes, const Options& options);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one framed record, honoring the group-sync interval. Crash
  /// points: "journal.append.torn" dies after writing only half the
  /// frame; "journal.append.pre_sync" dies after the write but before
  /// any fsync.
  common::Status Append(std::string_view payload);

  /// Forces any unsynced appends to disk.
  common::Status Sync();

  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, int fd, const Options& options)
      : path_(std::move(path)), fd_(fd), options_(options) {}

  common::Status WriteAll(const char* data, size_t size);

  std::string path_;
  int fd_;
  Options options_;
  int unsynced_records_ = 0;
};

}  // namespace recovery
}  // namespace hdsky

#endif  // HDSKY_RECOVERY_JOURNAL_H_
