#include "recovery/journal.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32c.h"
#include "common/fs_util.h"
#include "net/wire.h"
#include "recovery/crash_point.h"

namespace hdsky {
namespace recovery {

using common::Result;
using common::Status;

namespace {

constexpr char kJournalMagic[] = "hdsky-journal-v1";

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

void PutLE32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

uint32_t GetLE32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

uint32_t Crc32c(std::string_view data) { return common::Crc32c(data); }

void AppendFrame(std::string_view payload, std::string* out) {
  PutLE32(static_cast<uint32_t>(payload.size()), out);
  PutLE32(Crc32c(payload), out);
  out->append(payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Record payloads.

std::string EncodeHeaderRecord(int width) {
  std::string out;
  net::Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(RecordType::kHeader));
  enc.PutString(kJournalMagic);
  enc.PutU32(static_cast<uint32_t>(width));
  return out;
}

std::string EncodeIntentRecord(uint64_t seq, std::string_view signature) {
  std::string out;
  net::Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(RecordType::kIntent));
  enc.PutU64(seq);
  enc.PutString(signature);
  return out;
}

std::string EncodeResultRecord(uint64_t seq, std::string_view signature,
                               const interface::QueryResult& result) {
  std::string out;
  net::Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(RecordType::kResult));
  enc.PutString(signature);
  // The answer body reuses the wire kResult codec (seq + overflow + tuples)
  // so replayed answers are bit-identical to what crossed the network.
  net::EncodeResult(seq, result, &out);
  return out;
}

Result<int> DecodeHeaderRecord(std::string_view payload) {
  net::Decoder dec(payload);
  uint8_t tag = 0;
  std::string magic;
  uint32_t width = 0;
  dec.GetU8(&tag);
  dec.GetString(&magic);
  dec.GetU32(&width);
  if (!dec.exhausted() || tag != static_cast<uint8_t>(RecordType::kHeader) ||
      magic != kJournalMagic) {
    return Status::IOError("malformed journal header record");
  }
  if (width == 0 || width > 4096) {
    return Status::IOError("journal header declares implausible width " +
                           std::to_string(width));
  }
  return static_cast<int>(width);
}

Result<JournalRecord> DecodeRecord(std::string_view payload, int width) {
  net::Decoder dec(payload);
  uint8_t tag = 0;
  if (!dec.GetU8(&tag)) return Status::IOError("empty journal record");
  JournalRecord rec;
  switch (static_cast<RecordType>(tag)) {
    case RecordType::kIntent: {
      rec.type = RecordType::kIntent;
      dec.GetU64(&rec.seq);
      dec.GetString(&rec.signature);
      if (!dec.exhausted()) {
        return Status::IOError("malformed journal intent record");
      }
      break;
    }
    case RecordType::kResult: {
      rec.type = RecordType::kResult;
      if (!dec.GetString(&rec.signature)) {
        return Status::IOError("malformed journal result record");
      }
      HDSKY_RETURN_IF_ERROR(
          net::DecodeResultBody(&dec, width, &rec.seq, &rec.result));
      if (!dec.exhausted()) {
        return Status::IOError("journal result record has trailing bytes");
      }
      break;
    }
    default:
      return Status::IOError("unknown journal record tag " +
                             std::to_string(tag));
  }
  // A signature is the query's packed interval bounds: 16 bytes per
  // attribute. Anything else means the journal belongs to a different
  // database than the one being resumed.
  if (rec.signature.size() != static_cast<size_t>(width) * 16) {
    return Status::IOError("journal record signature width mismatch");
  }
  return rec;
}

// ---------------------------------------------------------------------------
// Reader.

Result<JournalContents> ReadJournalFile(const std::string& path) {
  std::string data;
  HDSKY_ASSIGN_OR_RETURN(data, common::ReadFileToString(path));
  JournalContents out;
  size_t pos = 0;
  while (pos < data.size()) {
    const size_t left = data.size() - pos;
    // Anything that fails from here on is either a torn tail (this frame
    // is the last bytes of the file) or interior corruption (valid-looking
    // data continues past it). A lying length prefix can make a corrupted
    // interior frame *look* like it extends to EOF — that ambiguity is
    // inherent to length-prefixed logs and resolves to the safe side:
    // the prefix before the damage is all that is trusted.
    if (left < kRecordHeaderBytes) {
      out.torn = true;
      break;
    }
    const uint32_t len = GetLE32(data.data() + pos);
    const uint32_t crc = GetLE32(data.data() + pos + 4);
    if (len > kMaxRecordBytes) {
      return Status::IOError(path + ": journal record at offset " +
                             std::to_string(pos) +
                             " declares implausible length " +
                             std::to_string(len));
    }
    if (left - kRecordHeaderBytes < len) {
      out.torn = true;
      break;
    }
    const std::string_view payload(data.data() + pos + kRecordHeaderBytes,
                                   len);
    if (Crc32c(payload) != crc) {
      if (pos + kRecordHeaderBytes + len == data.size()) {
        // Final record: its bytes were only partially persisted.
        out.torn = true;
        break;
      }
      return Status::IOError(path + ": journal record at offset " +
                             std::to_string(pos) + " fails its checksum " +
                             "with further data after it (interior " +
                             "corruption; refusing to resume)");
    }
    out.payloads.emplace_back(payload);
    pos += kRecordHeaderBytes + len;
  }
  out.valid_bytes = static_cast<int64_t>(pos);
  return out;
}

// ---------------------------------------------------------------------------
// Writer.

Result<std::unique_ptr<JournalWriter>> JournalWriter::Create(
    const std::string& path, int width, const Options& options) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) return Errno("create journal", path);
  std::unique_ptr<JournalWriter> writer(
      new JournalWriter(path, fd, options));
  std::string frame;
  AppendFrame(EncodeHeaderRecord(width), &frame);
  HDSKY_RETURN_IF_ERROR(writer->WriteAll(frame.data(), frame.size()));
  writer->unsynced_records_ = 1;
  HDSKY_RETURN_IF_ERROR(writer->Sync());
  return writer;
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::OpenForAppend(
    const std::string& path, int64_t valid_bytes, const Options& options) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return Errno("open journal", path);
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const Status s = Errno("truncate journal", path);
    ::close(fd);
    return s;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status s = Errno("seek journal", path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(path, fd, options));
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status JournalWriter::WriteAll(const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("append journal", path_);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status JournalWriter::Append(std::string_view payload) {
  std::string frame;
  AppendFrame(payload, &frame);
  if (CrashPointArmed("journal.append.torn")) {
    // Persist only half the frame, then die: the on-disk tail is torn the
    // way a power cut mid-write would leave it.
    const size_t half = frame.size() / 2;
    HDSKY_RETURN_IF_ERROR(WriteAll(frame.data(), half));
    ::fsync(fd_);
    CrashPointHit("journal.append.torn");
    // Hit count not yet reached: finish the frame and carry on.
    HDSKY_RETURN_IF_ERROR(WriteAll(frame.data() + half, frame.size() - half));
  } else {
    HDSKY_RETURN_IF_ERROR(WriteAll(frame.data(), frame.size()));
  }
  CrashPointHit("journal.append.pre_sync");
  ++unsynced_records_;
  if (unsynced_records_ >= options_.sync_every) return Sync();
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (unsynced_records_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) return Errno("fsync journal", path_);
  unsynced_records_ = 0;
  return Status::OK();
}

}  // namespace recovery
}  // namespace hdsky
