#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hdsky {
namespace dataset {

using common::Result;
using common::Rng;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;

Result<Table> GenerateSynthetic(const SyntheticOptions& opts) {
  if (opts.num_tuples < 0) {
    return Status::InvalidArgument("num_tuples must be >= 0");
  }
  if (opts.num_attributes < 1) {
    return Status::InvalidArgument("need at least one attribute");
  }
  if (opts.domain_size < 1) {
    return Status::InvalidArgument("domain_size must be >= 1");
  }
  if (opts.correlation < 0.0 || opts.correlation > 1.0) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }

  std::vector<AttributeSpec> attrs;
  attrs.reserve(static_cast<size_t>(opts.num_attributes));
  for (int i = 0; i < opts.num_attributes; ++i) {
    AttributeSpec a;
    a.name = "A" + std::to_string(i);
    a.kind = AttributeKind::kRanking;
    a.iface = opts.iface;
    a.domain_min = 0;
    a.domain_max = opts.domain_size - 1;
    attrs.push_back(std::move(a));
  }
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));

  Table table(std::move(schema));
  table.Reserve(opts.num_tuples);
  Rng rng(opts.seed);
  const double scale = static_cast<double>(opts.domain_size);
  const int m = opts.num_attributes;

  auto to_value = [&](double x01) -> Value {
    const double clamped = std::clamp(x01, 0.0, 1.0);
    Value v = static_cast<Value>(clamped * scale);
    if (v >= opts.domain_size) v = opts.domain_size - 1;
    return v;
  };

  Tuple t(static_cast<size_t>(m));
  for (int64_t row = 0; row < opts.num_tuples; ++row) {
    switch (opts.distribution) {
      case Distribution::kIndependent: {
        for (int i = 0; i < m; ++i) {
          t[static_cast<size_t>(i)] =
              rng.UniformInt(0, opts.domain_size - 1);
        }
        break;
      }
      case Distribution::kCorrelated: {
        // Convex mix of a shared latent uniform and per-attribute noise;
        // correlation 1 collapses to a single diagonal.
        const double latent = rng.UniformReal();
        for (int i = 0; i < m; ++i) {
          const double own = rng.UniformReal();
          t[static_cast<size_t>(i)] = to_value(
              opts.correlation * latent + (1.0 - opts.correlation) * own);
        }
        break;
      }
      case Distribution::kAntiCorrelated: {
        // Points scattered around the hyperplane sum(x) = m/2: each
        // tuple's coordinates are mean-centred raw normals shifted to a
        // per-tuple plane offset, so being good on one attribute forces
        // being bad on others.
        double raw[64];
        double mean = 0.0;
        const int mm = std::min(m, 64);
        for (int i = 0; i < mm; ++i) {
          raw[i] = rng.Gaussian(0.5, 0.25);
          mean += raw[i];
        }
        mean /= mm;
        const double plane = rng.Gaussian(0.5, 0.05);
        for (int i = 0; i < m; ++i) {
          const double base = i < 64 ? raw[i] : rng.Gaussian(0.5, 0.25);
          const double x =
              opts.correlation * (base - mean + plane) +
              (1.0 - opts.correlation) * rng.UniformReal();
          t[static_cast<size_t>(i)] = to_value(x);
        }
        break;
      }
    }
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
