#include "dataset/pack.h"

#include <vector>

namespace hdsky {
namespace dataset {

using common::Result;
using common::Status;
using data::TupleId;
using data::Value;

Result<int64_t> PackTable(
    const data::Table& table,
    std::shared_ptr<interface::RankingPolicy> ranking,
    const std::string& path, const data::BlockFileOptions& options,
    data::BlockFileWriteStats* stats) {
  if (ranking == nullptr) {
    return Status::InvalidArgument("ranking policy must not be null");
  }
  HDSKY_RETURN_IF_ERROR(
      ranking->Bind(&table, table.schema().ranking_attributes()));
  const std::vector<TupleId>* order = ranking->static_order();
  if (order == nullptr) {
    return Status::InvalidArgument(
        "ranking '" + ranking->name() +
        "' has no static order and cannot be packed");
  }
  HDSKY_ASSIGN_OR_RETURN(
      std::unique_ptr<data::BlockFileWriter> writer,
      data::BlockFileWriter::Create(path, table.schema(), ranking->name(),
                                    options));
  const int m = table.schema().num_attributes();
  std::vector<Value> row(static_cast<size_t>(m));
  for (const TupleId id : *order) {
    for (int a = 0; a < m; ++a) {
      row[static_cast<size_t>(a)] = table.value(id, a);
    }
    HDSKY_RETURN_IF_ERROR(writer->Append(id, row.data()));
  }
  HDSKY_ASSIGN_OR_RETURN(const int64_t rows, writer->Finish());
  if (stats != nullptr) *stats = writer->stats();
  return rows;
}

}  // namespace dataset
}  // namespace hdsky
