#include "dataset/worst_case.h"

#include "common/rng.h"

namespace hdsky {
namespace dataset {

using common::Result;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;

Result<Table> GenerateSqLowerBound(const WorstCaseOptions& opts) {
  const int m = opts.num_attributes;
  const int64_t s = opts.num_skyline;
  if (m < 2) {
    return Status::InvalidArgument(
        "the construction needs at least 2 attributes for a non-trivial "
        "anti-chain");
  }
  if (s < 1) {
    return Status::InvalidArgument("num_skyline must be >= 1");
  }
  // Payload values live in [1, h] with h = s; guards use h + 1.
  const Value h = s;

  std::vector<AttributeSpec> attrs;
  for (int i = 0; i < m; ++i) {
    AttributeSpec a;
    a.name = "W" + std::to_string(i);
    a.kind = AttributeKind::kRanking;
    a.iface = opts.iface;
    a.domain_min = 0;
    a.domain_max = h + 1;
    attrs.push_back(std::move(a));
  }
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Table table(std::move(schema));
  table.Reserve(m + s);

  // Guards: t0i[Aj] = 0 if i != j, h+1 if i == j (equation 1).
  Tuple t(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      t[static_cast<size_t>(j)] = (i == j) ? h + 1 : 0;
    }
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }

  // Payload anti-chain: attribute 0 increases while attribute 1 decreases,
  // guaranteeing mutual non-domination; the rest cycle through [1, h] to
  // give each tuple a distinct profile on every attribute.
  for (int64_t i = 0; i < s; ++i) {
    t[0] = 1 + i;
    t[1] = s - i;
    for (int j = 2; j < m; ++j) {
      t[static_cast<size_t>(j)] = 1 + ((i + j) % s);
    }
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
