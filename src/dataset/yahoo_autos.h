// Synthetic stand-in for the Yahoo! Autos used-car listings of Section
// 8.3 (125,149 cars within 30 miles of NYC; ranking attributes Price,
// Mileage, Year, all two-ended ranges; default ranking "price low to
// high"). Depreciation ties the three attributes together: newer cars
// carry lower mileage and higher prices, the anti-correlation that yields
// the paper's ~1,600-tuple skyline.

#ifndef HDSKY_DATASET_YAHOO_AUTOS_H_
#define HDSKY_DATASET_YAHOO_AUTOS_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

struct YahooAutosOptions {
  int64_t num_tuples = 125149;
  uint64_t seed = 30;
};

struct YahooAutosAttrs {
  static constexpr int kPrice = 0;    // RQ, dollars, [300, 299999]
  static constexpr int kMileage = 1;  // RQ, miles, [0, 399999]
  static constexpr int kYear = 2;     // RQ, inverted age, [0, 25]
  static constexpr int kMake = 3;     // filtering, 30 makes
};

common::Result<data::Table> GenerateYahooAutos(
    const YahooAutosOptions& opts);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_YAHOO_AUTOS_H_
