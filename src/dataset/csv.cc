#include "dataset/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace hdsky {
namespace dataset {

using common::Result;
using common::Status;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;

namespace {

std::vector<std::string> SplitOn(const std::string& line, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : line) {
    if (c == sep) {
      parts.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(std::move(cur));
  return parts;
}

Result<Value> ParseValue(const std::string& s) {
  if (s == "NULL") return data::kNullValue;
  Value v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::IOError("cannot parse value '" + s + "'");
  }
  return v;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const Schema& schema = table.schema();
  out << schema.Serialize() << '\n';
  const int64_t n = table.num_rows();
  for (int64_t r = 0; r < n; ++r) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (a) out << ',';
      const Value v = table.value(r, a);
      if (v == data::kNullValue) {
        out << "NULL";
      } else {
        out << v;
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError(path + " is empty (missing header)");
  }
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(line));
  const int width = schema.num_attributes();
  Table table(std::move(schema));
  int64_t line_no = 1;
  Tuple t(static_cast<size_t>(width));
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitOn(line, ',');
    if (static_cast<int>(cells.size()) != width) {
      return Status::IOError("row " + std::to_string(line_no) + " has " +
                             std::to_string(cells.size()) +
                             " cells, expected " + std::to_string(width));
    }
    for (int a = 0; a < width; ++a) {
      HDSKY_ASSIGN_OR_RETURN(t[static_cast<size_t>(a)],
                             ParseValue(cells[static_cast<size_t>(a)]));
    }
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
