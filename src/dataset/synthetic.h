// Classic synthetic skyline workloads (independent / correlated /
// anti-correlated, after Börzsönyi et al. [4]) used by unit tests,
// property sweeps, and ablation benches.

#ifndef HDSKY_DATASET_SYNTHETIC_H_
#define HDSKY_DATASET_SYNTHETIC_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

enum class Distribution : int8_t {
  /// Attributes i.i.d. uniform over the domain.
  kIndependent,
  /// Attributes positively correlated (few skyline tuples).
  kCorrelated,
  /// Attributes anti-correlated around a constant sum (many skyline
  /// tuples) — the hard case for skyline sizes.
  kAntiCorrelated,
};

struct SyntheticOptions {
  int64_t num_tuples = 1000;
  int num_attributes = 3;
  /// Each ranking attribute's domain is [0, domain_size - 1].
  int64_t domain_size = 10000;
  Distribution distribution = Distribution::kIndependent;
  /// Strength in [0, 1] for kCorrelated / kAntiCorrelated.
  double correlation = 0.8;
  /// Interface type applied to every attribute.
  data::InterfaceType iface = data::InterfaceType::kRQ;
  uint64_t seed = 42;
};

/// Generates a table of `num_attributes` ranking attributes named
/// "A0".."A{m-1}".
common::Result<data::Table> GenerateSynthetic(const SyntheticOptions& opts);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_SYNTHETIC_H_
