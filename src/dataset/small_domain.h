// Small-domain correlated data for the Figure 6 simulation: n tuples over
// m attributes with tiny domains, where a correlation knob controls the
// number of skyline tuples ("we control the percentage of skyline tuples
// by adjusting the correlation between the attributes", Section 4.2).

#ifndef HDSKY_DATASET_SMALL_DOMAIN_H_
#define HDSKY_DATASET_SMALL_DOMAIN_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

struct SmallDomainOptions {
  int64_t num_tuples = 2000;
  int num_attributes = 4;
  /// Each attribute takes values in [0, domain_size - 1].
  int64_t domain_size = 8;
  /// 1 = perfectly positively correlated (skyline collapses toward one
  /// tuple); 0 = independent (large skyline).
  double correlation = 0.5;
  data::InterfaceType iface = data::InterfaceType::kRQ;
  uint64_t seed = 7;
};

common::Result<data::Table> GenerateSmallDomain(
    const SmallDomainOptions& opts);

/// Searches the correlation knob so the generated table has a skyline of
/// (approximately) `target_skyline` tuples; returns the table. Used to
/// sweep |S| along Figure 6's x-axis. `tolerance` is the acceptable
/// absolute deviation.
common::Result<data::Table> GenerateWithSkylineSize(
    SmallDomainOptions opts, int64_t target_skyline, int64_t tolerance);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_SMALL_DOMAIN_H_
