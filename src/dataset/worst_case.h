// The Theorem 1 lower-bound construction for SQ interfaces.
//
// m "guard" tuples force any SQ discovery algorithm into fully-specified
// queries (each guard is 0 everywhere except one attribute at the domain
// maximum, so any query with fewer than m predicates returns a guard), and
// s mutually non-dominating "payload" tuples living strictly inside the
// domain supply the exponential query count. Used by tests (the guards'
// properties are checkable) and by the worst-case ablation bench.

#ifndef HDSKY_DATASET_WORST_CASE_H_
#define HDSKY_DATASET_WORST_CASE_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

struct WorstCaseOptions {
  int num_attributes = 3;
  /// Number of payload (skyline) tuples.
  int64_t num_skyline = 8;
  data::InterfaceType iface = data::InterfaceType::kSQ;
  uint64_t seed = 11;
};

/// Builds the guard + anti-chain construction. The table's first m rows
/// are the guards; the remaining rows are the intended skyline tuples
/// (all of which, plus the guards, are on the true skyline).
common::Result<data::Table> GenerateSqLowerBound(
    const WorstCaseOptions& opts);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_WORST_CASE_H_
