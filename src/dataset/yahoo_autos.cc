#include "dataset/yahoo_autos.h"

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"

namespace hdsky {
namespace dataset {

using common::Clamp;
using common::Result;
using common::Rng;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;

Result<Table> GenerateYahooAutos(const YahooAutosOptions& opts) {
  if (opts.num_tuples < 0) {
    return Status::InvalidArgument("num_tuples must be >= 0");
  }
  std::vector<AttributeSpec> attrs(4);
  attrs[YahooAutosAttrs::kPrice] = {"Price", AttributeKind::kRanking,
                                    InterfaceType::kRQ, 300, 299999};
  attrs[YahooAutosAttrs::kMileage] = {"Mileage", AttributeKind::kRanking,
                                      InterfaceType::kRQ, 0, 399999};
  attrs[YahooAutosAttrs::kYear] = {"Year", AttributeKind::kRanking,
                                   InterfaceType::kRQ, 0, 25};
  attrs[YahooAutosAttrs::kMake] = {"Make", AttributeKind::kFiltering,
                                   InterfaceType::kFilterEquality, 0, 29};
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Table table(std::move(schema));
  table.Reserve(opts.num_tuples);
  Rng rng(opts.seed);

  Tuple t(4);
  for (int64_t row = 0; row < opts.num_tuples; ++row) {
    // Age in years, 0..25; listings skew toward recent model years.
    const int64_t age = Clamp(
        static_cast<int64_t>(std::llround(rng.Exponential(1.0 / 6.0))), 0,
        25);
    // Mileage grows with age at ~12k/year with wide per-owner variance.
    const int64_t mileage = Clamp(
        static_cast<int64_t>(std::llround(
            static_cast<double>(age) * 12000.0 *
                std::exp(rng.Gaussian(0.0, 0.55)) +
            rng.Exponential(1.0 / 3000.0))),
        0, 399999);
    // Price: a depreciating base by segment, discounted by age and miles.
    const double msrp = std::exp(rng.Gaussian(std::log(32000.0), 0.12));
    // Mileage hits resale hard (~-55% by 100k miles on top of age).
    const double depreciation =
        std::pow(0.88, static_cast<double>(age)) *
        std::exp(-static_cast<double>(mileage) / 125000.0);
    const int64_t price = Clamp(
        static_cast<int64_t>(std::llround(
            msrp * depreciation * std::exp(rng.Gaussian(0.0, 0.02)))),
        300, 299999);

    t[YahooAutosAttrs::kPrice] = price;
    t[YahooAutosAttrs::kMileage] = mileage;
    t[YahooAutosAttrs::kYear] = age;  // newer (smaller age) is better
    t[YahooAutosAttrs::kMake] = rng.UniformInt(0, 29);
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
