// Streaming STR bulk load: packs an in-memory Table into an on-disk
// paged block file (data/block_file.h) in the static rank order of a
// ranking policy — the exact order TopKInterface would compute — so the
// paged interface's answers are bit-identical to the in-memory engine's
// over the same data. One bounded-memory pass: the writer holds one
// column block plus a few bytes of zone state per page written.
//
// Only static-order rankings (linear/sum, lexicographic) can be packed;
// dynamic policies (layered-random, adversarial) have no baked order
// and are rejected.

#ifndef HDSKY_DATASET_PACK_H_
#define HDSKY_DATASET_PACK_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "data/block_file.h"
#include "data/table.h"
#include "interface/ranking.h"

namespace hdsky {
namespace dataset {

/// Packs `table` into a block file at `path` (atomically: temp + fsync
/// + rename). `ranking` is bound to the table and its static order
/// baked into the file; the header records the policy's name.
/// `options.compression` selects the physical format (v1 raw slots or
/// v2 per-run encoded pages). When `stats` is non-null, the writer's
/// byte accounting (pages, levels, per-column raw vs encoded bytes) is
/// copied out on success — `hdsky_pack --stats` prints it. Returns the
/// number of rows written.
common::Result<int64_t> PackTable(
    const data::Table& table,
    std::shared_ptr<interface::RankingPolicy> ranking,
    const std::string& path, const data::BlockFileOptions& options,
    data::BlockFileWriteStats* stats = nullptr);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_PACK_H_
