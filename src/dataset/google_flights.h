// Synthetic stand-in for the Google Flights QPX inventory of Section 8.3.
//
// The live experiment fixes filtering attributes (DepartureCity,
// ArrivalCity, DepartureDate) and discovers the skyline over four ranking
// attributes: Stops, Price, ConnectionDuration (all SQ — QPX supports
// upper bounds only) and DepartureTime (RQ, later preferred). The paper
// repeats over 50 random airport pairs with 4–11 skyline flights each and
// k as small as 1, staying under QPX's 50-queries/day free limit.
//
// GenerateRoute produces one route's inventory; the figure bench averages
// over many routes, mirroring the paper's protocol.

#ifndef HDSKY_DATASET_GOOGLE_FLIGHTS_H_
#define HDSKY_DATASET_GOOGLE_FLIGHTS_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

struct GoogleFlightsOptions {
  /// Flights offered on the route/date; real answers run tens to a few
  /// hundred itineraries.
  int64_t num_flights = 180;
  uint64_t seed = 50;
};

struct GoogleFlightsAttrs {
  static constexpr int kStops = 0;          // SQ (PQ-sized domain), [0, 2]
  static constexpr int kPrice = 1;          // SQ, dollars, [49, 1999]
  static constexpr int kConnection = 2;     // SQ, minutes, [0, 719]
  static constexpr int kDepartureTime = 3;  // RQ, inverted minute-of-day
};

/// One route+date inventory. The traveller prefers fewer stops, lower
/// price, shorter connections and a LATER departure (inverted code).
common::Result<data::Table> GenerateRoute(const GoogleFlightsOptions& opts);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_GOOGLE_FLIGHTS_H_
