#include "dataset/small_domain.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "skyline/compute.h"

namespace hdsky {
namespace dataset {

using common::Result;
using common::Rng;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;

Result<Table> GenerateSmallDomain(const SmallDomainOptions& opts) {
  if (opts.num_tuples < 0) {
    return Status::InvalidArgument("num_tuples must be >= 0");
  }
  if (opts.num_attributes < 1) {
    return Status::InvalidArgument("need at least one attribute");
  }
  if (opts.domain_size < 2) {
    return Status::InvalidArgument("domain_size must be >= 2");
  }
  if (opts.correlation < 0.0 || opts.correlation > 1.0) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }

  std::vector<AttributeSpec> attrs;
  for (int i = 0; i < opts.num_attributes; ++i) {
    AttributeSpec a;
    a.name = "B" + std::to_string(i);
    a.kind = AttributeKind::kRanking;
    a.iface = opts.iface;
    a.domain_min = 0;
    a.domain_max = opts.domain_size - 1;
    attrs.push_back(std::move(a));
  }
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));

  Table table(std::move(schema));
  table.Reserve(opts.num_tuples);
  Rng rng(opts.seed);
  Tuple t(static_cast<size_t>(opts.num_attributes));
  for (int64_t row = 0; row < opts.num_tuples; ++row) {
    // Shared latent value; each attribute copies it with probability
    // `correlation`, otherwise draws independently.
    const Value latent = rng.UniformInt(0, opts.domain_size - 1);
    for (int i = 0; i < opts.num_attributes; ++i) {
      t[static_cast<size_t>(i)] = rng.Bernoulli(opts.correlation)
                                      ? latent
                                      : rng.UniformInt(
                                            0, opts.domain_size - 1);
    }
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

Result<Table> GenerateWithSkylineSize(SmallDomainOptions opts,
                                      int64_t target_skyline,
                                      int64_t tolerance) {
  if (target_skyline < 1) {
    return Status::InvalidArgument("target skyline size must be >= 1");
  }
  // The DISTINCT-value skyline count (what a top-k interface can reveal)
  // decreases monotonically in expectation with correlation, so a
  // bisection over the knob converges quickly; we accept the closest
  // draw if the tolerance is never met.
  double lo = 0.0, hi = 1.0;
  Result<Table> best = Status::NotFound("unreached");
  int64_t best_err = -1;
  for (int iter = 0; iter < 24; ++iter) {
    opts.correlation = 0.5 * (lo + hi);
    HDSKY_ASSIGN_OR_RETURN(Table table, GenerateSmallDomain(opts));
    const int64_t s = static_cast<int64_t>(
        skyline::DistinctSkylineValues(table).size());
    const int64_t err = std::llabs(s - target_skyline);
    if (best_err < 0 || err < best_err) {
      best_err = err;
      best = table;
    }
    if (err <= tolerance) return table;
    if (s > target_skyline) {
      lo = opts.correlation;  // need more correlation -> smaller skyline
    } else {
      hi = opts.correlation;
    }
  }
  return best;
}

}  // namespace dataset
}  // namespace hdsky
