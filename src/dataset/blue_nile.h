// Synthetic stand-in for the Blue Nile diamond catalog used in the live
// experiment of Section 8.3 (209,666 diamonds; ranking attributes Price,
// Carat, Cut, Color, Clarity, all exposed as two-ended ranges; filtering
// attribute Shape; default ranking "price low to high").
//
// Price follows a noisy hedonic model — roughly cubic in carat and
// multiplicative in the quality grades — so that price anti-correlates
// with the other preferences. That anti-correlation is what produces the
// paper's ~2,100-tuple skyline and its ~3.5 queries/skyline cost profile.

#ifndef HDSKY_DATASET_BLUE_NILE_H_
#define HDSKY_DATASET_BLUE_NILE_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

struct BlueNileOptions {
  int64_t num_tuples = 209666;
  uint64_t seed = 6060842;
};

/// Attribute order of the generated schema.
struct BlueNileAttrs {
  static constexpr int kPrice = 0;    // RQ, dollars, [200, 2999999]
  static constexpr int kCarat = 1;    // RQ, inverted 100ths, [0, 2177]
  static constexpr int kCut = 2;      // RQ, inverted grade, [0, 3]
  static constexpr int kColor = 3;    // RQ, D..K -> [0, 7]
  static constexpr int kClarity = 4;  // RQ, FL..SI2 -> [0, 7]
  static constexpr int kShape = 5;    // filtering, 10 shapes
};

common::Result<data::Table> GenerateBlueNile(const BlueNileOptions& opts);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_BLUE_NILE_H_
