#include "dataset/flights_on_time.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"

namespace hdsky {
namespace dataset {

using common::Clamp;
using common::Result;
using common::Rng;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;

namespace {

AttributeSpec Ranking(const char* name, InterfaceType iface, Value lo,
                      Value hi) {
  AttributeSpec a;
  a.name = name;
  a.kind = AttributeKind::kRanking;
  a.iface = iface;
  a.domain_min = lo;
  a.domain_max = hi;
  return a;
}

AttributeSpec Filtering(const char* name, Value lo, Value hi) {
  AttributeSpec a;
  a.name = name;
  a.kind = AttributeKind::kFiltering;
  a.iface = InterfaceType::kFilterEquality;
  a.domain_min = lo;
  a.domain_max = hi;
  return a;
}

}  // namespace

Result<Table> GenerateFlightsOnTime(const FlightsOptions& opts) {
  if (opts.num_tuples < 0) {
    return Status::InvalidArgument("num_tuples must be >= 0");
  }
  std::vector<AttributeSpec> attrs = {
      Ranking("DepDelay", InterfaceType::kRQ, 0, 1969),
      Ranking("TaxiOut", InterfaceType::kRQ, 0, 179),
      Ranking("TaxiIn", InterfaceType::kRQ, 0, 119),
      Ranking("ActualElapsedTime", InterfaceType::kRQ, 0, 899),
      Ranking("AirTime", InterfaceType::kRQ, 0, 799),
      Ranking("Distance", InterfaceType::kRQ, 0, 4952),
      Ranking("DelayGroupNormal", InterfaceType::kPQ, 0, 10),
      Ranking("DistanceGroup", InterfaceType::kPQ, 0, 10),
      Ranking("ArrivalDelay", InterfaceType::kRQ, 0, 1999),
  };
  if (opts.include_derived_groups) {
    attrs.push_back(Ranking("TaxiOutGroup", InterfaceType::kPQ, 0, 10));
    attrs.push_back(Ranking("TaxiInGroup", InterfaceType::kPQ, 0, 10));
    attrs.push_back(Ranking("ArrivalDelayGroup", InterfaceType::kPQ, 0, 10));
    attrs.push_back(Ranking("AirTimeGroup", InterfaceType::kPQ, 0, 10));
  }
  if (opts.include_filtering) {
    attrs.push_back(Filtering("Carrier", 0, 13));  // 14 US carriers
    attrs.push_back(Filtering("FlightNumber", 0, 9998));
  }
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  const int width = schema.num_attributes();
  Table table(std::move(schema));
  table.Reserve(opts.num_tuples);
  Rng rng(opts.seed);

  // Flights fly fixed routes, so distances cluster on a few hundred
  // distinct values with popularity skewed toward short haul — the
  // property that keeps the real DOT skyline small (many flights share
  // the longest distances, letting a few dominate the rest).
  constexpr int kNumRoutes = 220;
  std::vector<int64_t> route_distance(kNumRoutes);
  for (int r = 0; r < kNumRoutes; ++r) {
    const double haul = rng.UniformReal();
    if (haul < 0.55) {
      route_distance[static_cast<size_t>(r)] = rng.UniformInt(31, 800);
    } else if (haul < 0.87) {
      route_distance[static_cast<size_t>(r)] = rng.UniformInt(800, 2500);
    } else {
      route_distance[static_cast<size_t>(r)] = rng.UniformInt(2500, 4983);
    }
  }

  Tuple t(static_cast<size_t>(width));
  for (int64_t row = 0; row < opts.num_tuples; ++row) {
    // Pick a route with a popularity skew (squaring biases small ids).
    const double u = rng.UniformReal();
    const int route = static_cast<int>(u * u * kNumRoutes);
    const int64_t distance_miles =
        route_distance[static_cast<size_t>(
            common::Clamp(route, 0, kNumRoutes - 1))];
    const int64_t air_time = Clamp(
        static_cast<int64_t>(std::llround(
            static_cast<double>(distance_miles) / 8.0 +
            rng.Gaussian(0.0, 10.0))),
        10, 799);
    const int64_t taxi_out = Clamp(
        static_cast<int64_t>(std::llround(10.0 + rng.Exponential(1.0 / 8.0))),
        0, 179);
    const int64_t taxi_in = Clamp(
        static_cast<int64_t>(std::llround(5.0 + rng.Exponential(1.0 / 4.0))),
        0, 119);
    const int64_t elapsed = Clamp(
        air_time + taxi_out + taxi_in +
            static_cast<int64_t>(std::llround(rng.Gaussian(0.0, 5.0))),
        0, 899);
    // Departure delay: mostly small, occasionally a heavy tail.
    int64_t dep_delay;
    if (rng.Bernoulli(0.6)) {
      dep_delay = static_cast<int64_t>(
          std::llround(rng.Exponential(1.0 / 10.0)));
    } else {
      dep_delay = 15 + static_cast<int64_t>(
                           std::llround(rng.Exponential(1.0 / 40.0)));
    }
    dep_delay = Clamp(dep_delay, 0, 1969);
    const int64_t arr_delay = Clamp(
        dep_delay + static_cast<int64_t>(std::llround(
                        rng.Gaussian(0.0, 15.0))),
        0, 1999);

    t[FlightsAttrs::kDepDelay] = dep_delay;
    t[FlightsAttrs::kTaxiOut] = taxi_out;
    t[FlightsAttrs::kTaxiIn] = taxi_in;
    t[FlightsAttrs::kActualElapsed] = elapsed;
    t[FlightsAttrs::kAirTime] = air_time;
    // Longer distance is preferred (Section 8.1), so invert the code.
    t[FlightsAttrs::kDistance] = 4983 - distance_miles;
    t[FlightsAttrs::kDelayGroup] = std::min<int64_t>(dep_delay / 15, 10);
    t[FlightsAttrs::kDistanceGroup] =
        10 - std::min<int64_t>(distance_miles / 500, 10);
    t[FlightsAttrs::kArrivalDelay] = arr_delay;
    int next = FlightsAttrs::kArrivalDelay + 1;
    if (opts.include_derived_groups) {
      t[static_cast<size_t>(next++)] = std::min<int64_t>(taxi_out / 17, 10);
      t[static_cast<size_t>(next++)] = std::min<int64_t>(taxi_in / 11, 10);
      t[static_cast<size_t>(next++)] = std::min<int64_t>(arr_delay / 15, 10);
      t[static_cast<size_t>(next++)] = std::min<int64_t>(air_time / 73, 10);
    }
    if (opts.include_filtering) {
      t[static_cast<size_t>(next++)] = rng.UniformInt(0, 13);
      t[static_cast<size_t>(next++)] = rng.UniformInt(0, 9998);
    }
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
