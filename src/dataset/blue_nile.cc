#include "dataset/blue_nile.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"

namespace hdsky {
namespace dataset {

using common::Clamp;
using common::Result;
using common::Rng;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;

Result<Table> GenerateBlueNile(const BlueNileOptions& opts) {
  if (opts.num_tuples < 0) {
    return Status::InvalidArgument("num_tuples must be >= 0");
  }
  std::vector<AttributeSpec> attrs(6);
  attrs[BlueNileAttrs::kPrice] = {"Price", AttributeKind::kRanking,
                                  InterfaceType::kRQ, 200, 2999999};
  attrs[BlueNileAttrs::kCarat] = {"Carat", AttributeKind::kRanking,
                                  InterfaceType::kRQ, 0, 2177};
  attrs[BlueNileAttrs::kCut] = {"Cut", AttributeKind::kRanking,
                                InterfaceType::kRQ, 0, 3};
  attrs[BlueNileAttrs::kColor] = {"Color", AttributeKind::kRanking,
                                  InterfaceType::kRQ, 0, 7};
  attrs[BlueNileAttrs::kClarity] = {"Clarity", AttributeKind::kRanking,
                                    InterfaceType::kRQ, 0, 7};
  attrs[BlueNileAttrs::kShape] = {"Shape", AttributeKind::kFiltering,
                                  InterfaceType::kFilterEquality, 0, 9};
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Table table(std::move(schema));
  table.Reserve(opts.num_tuples);
  Rng rng(opts.seed);

  Tuple t(6);
  for (int64_t row = 0; row < opts.num_tuples; ++row) {
    // Carat: log-normal-ish, mostly 0.23..3ct with a rare large tail.
    const double carat = Clamp(
        static_cast<int64_t>(std::llround(
            std::exp(rng.Gaussian(std::log(0.7), 0.55)) * 100.0)),
        23, 2200) /
        100.0;
    const int64_t cut = rng.UniformInt(0, 3);      // 0 = Ideal (best)
    const int64_t color = rng.UniformInt(0, 7);    // 0 = D (best)
    const int64_t clarity = rng.UniformInt(0, 7);  // 0 = FL (best)

    // Hedonic price: base ~ carat^2.8, multiplicative grade discounts,
    // lognormal market noise.
    const double grade_factor = std::pow(0.93, static_cast<double>(cut)) *
                                std::pow(0.90, static_cast<double>(color)) *
                                std::pow(0.88,
                                         static_cast<double>(clarity));
    const double base = 5200.0 * std::pow(carat, 2.8) * grade_factor;
    const int64_t price = Clamp(
        static_cast<int64_t>(std::llround(
            base * std::exp(rng.Gaussian(0.0, 0.45)))),
        200, 2999999);

    t[BlueNileAttrs::kPrice] = price;
    // Higher carat preferred: invert so smaller is better.
    t[BlueNileAttrs::kCarat] =
        2200 - static_cast<int64_t>(std::llround(carat * 100.0));
    t[BlueNileAttrs::kCut] = cut;
    t[BlueNileAttrs::kColor] = color;
    t[BlueNileAttrs::kClarity] = clarity;
    t[BlueNileAttrs::kShape] = rng.UniformInt(0, 9);
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
