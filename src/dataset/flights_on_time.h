// Synthetic stand-in for the US DOT flight on-time database of Section 8.1
// (January 2015; 457,013 tuples; 9 ordinal ranking attributes with domains
// between 11 and 4,983, two of which — Delay-group-normal and
// Distance-group — are pre-discretized and used as PQ attributes; plus
// derived *-group PQ attributes for the tests that need more point
// predicates, and filtering attributes Carrier / FlightNumber).
//
// The real CSV is not redistributable inside this repository, so the
// generator synthesizes a table with the same schema, cardinality, domain
// sizes, and the load-bearing correlations (elapsed = air + taxi + noise;
// groups = coarse discretizations of their base attribute; distance is
// preferred LONGER per the paper, so its normalized code is inverted).
// Discovery algorithms only observe the top-k interface, so this preserves
// the experimental behaviour; a real DOT extract can be swapped in through
// dataset::ReadCsv.

#ifndef HDSKY_DATASET_FLIGHTS_ON_TIME_H_
#define HDSKY_DATASET_FLIGHTS_ON_TIME_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

struct FlightsOptions {
  int64_t num_tuples = 457013;
  /// Adds TaxiOutGroup / TaxiInGroup / ArrivalDelayGroup / AirTimeGroup,
  /// the four derived PQ attributes the paper introduces "for a few tests
  /// which call for more PQ attributes".
  bool include_derived_groups = true;
  /// Adds the filtering attributes Carrier and FlightNumber.
  bool include_filtering = true;
  uint64_t seed = 201501;
};

/// Index constants for the generated schema, in order. The 9 base ranking
/// attributes come first (matching the paper's list), then the derived
/// groups, then filtering attributes.
struct FlightsAttrs {
  static constexpr int kDepDelay = 0;        // RQ, [0, 1969]
  static constexpr int kTaxiOut = 1;         // RQ, [0, 179]
  static constexpr int kTaxiIn = 2;          // RQ, [0, 119]
  static constexpr int kActualElapsed = 3;   // RQ, [0, 899]
  static constexpr int kAirTime = 4;         // RQ, [0, 799]
  static constexpr int kDistance = 5;        // RQ, [0, 4952] (inverted)
  static constexpr int kDelayGroup = 6;      // PQ, [0, 10]
  static constexpr int kDistanceGroup = 7;   // PQ, [0, 10] (inverted)
  static constexpr int kArrivalDelay = 8;    // RQ, [0, 1999]
  static constexpr int kTaxiOutGroup = 9;    // PQ, [0, 10] (derived)
  static constexpr int kTaxiInGroup = 10;    // PQ, [0, 10] (derived)
  static constexpr int kArrDelayGroup = 11;  // PQ, [0, 10] (derived)
  static constexpr int kAirTimeGroup = 12;   // PQ, [0, 10] (derived)
};

common::Result<data::Table> GenerateFlightsOnTime(
    const FlightsOptions& opts);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_FLIGHTS_ON_TIME_H_
