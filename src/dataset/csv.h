// Self-describing CSV persistence, the bridge for plugging real datasets
// (e.g. an actual DOT on-time extract) into the simulators' place.
//
// Format: the header row carries the full attribute spec per column as
// `name:kind:iface:domain_min:domain_max` (kind in {R, F}; iface in
// {SQ, RQ, PQ, EQ}); data rows are int64 rank codes with `NULL` for
// missing values.

#ifndef HDSKY_DATASET_CSV_H_
#define HDSKY_DATASET_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace dataset {

/// Writes the table (schema + rows) to `path`.
common::Status WriteCsv(const data::Table& table, const std::string& path);

/// Reads a table previously written by WriteCsv (or hand-authored in the
/// same format).
common::Result<data::Table> ReadCsv(const std::string& path);

}  // namespace dataset
}  // namespace hdsky

#endif  // HDSKY_DATASET_CSV_H_
