#include "dataset/google_flights.h"

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"

namespace hdsky {
namespace dataset {

using common::Clamp;
using common::Result;
using common::Rng;
using common::Status;
using data::AttributeKind;
using data::AttributeSpec;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;

Result<Table> GenerateRoute(const GoogleFlightsOptions& opts) {
  if (opts.num_flights < 0) {
    return Status::InvalidArgument("num_flights must be >= 0");
  }
  std::vector<AttributeSpec> attrs(4);
  attrs[GoogleFlightsAttrs::kStops] = {"Stops", AttributeKind::kRanking,
                                       InterfaceType::kSQ, 0, 2};
  attrs[GoogleFlightsAttrs::kPrice] = {"Price", AttributeKind::kRanking,
                                       InterfaceType::kSQ, 49, 1999};
  attrs[GoogleFlightsAttrs::kConnection] = {
      "ConnectionDuration", AttributeKind::kRanking, InterfaceType::kSQ, 0,
      719};
  attrs[GoogleFlightsAttrs::kDepartureTime] = {
      "DepartureTime", AttributeKind::kRanking, InterfaceType::kRQ, 0,
      1439};
  HDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Table table(std::move(schema));
  table.Reserve(opts.num_flights);
  Rng rng(opts.seed);

  // Airline inventories are highly discrete: flights leave on a couple
  // dozen schedule slots, layovers come in standard bank durations, and
  // fares sit on a handful of $10-rounded fare-class levels. That
  // structure is what keeps real per-route skylines at the paper's 4-11
  // tuples (and discovery under the 50-query limit): most predicates hit
  // shared values, so query-tree branches die out quickly.
  constexpr int kSlots = 14;
  int64_t slot_minute[kSlots];
  for (int s = 0; s < kSlots; ++s) {
    // Roughly hourly departures from 06:00 to 23:00, with jitter per
    // route.
    slot_minute[s] = Clamp(390 + s * 74 + rng.UniformInt(-8, 8), 0,
                           1439);
  }
  const int64_t layovers[] = {40, 55, 75, 110, 170};
  // Per-route fare ladder: a base economy fare and multiplicative steps.
  const double base_fare = 140.0 * std::exp(rng.Gaussian(0.0, 0.25));

  Tuple t(4);
  for (int64_t row = 0; row < opts.num_flights; ++row) {
    // Stops: nonstops are a minority on most pairs.
    const double r = rng.UniformReal();
    const int64_t stops = r < 0.30 ? 0 : (r < 0.80 ? 1 : 2);
    int64_t connection = 0;
    for (int64_t s = 0; s < stops; ++s) {
      connection += layovers[rng.UniformInt(0, 4)];
    }
    connection = Clamp(connection, 0, 719);
    const int64_t depart_minute =
        slot_minute[rng.UniformInt(0, kSlots - 1)];
    // Fare class ladder: nonstops a step or two up, evening flights one
    // more; rounded to $10 so fares repeat across flights.
    const int64_t fare_step =
        (stops == 0 ? 2 : (stops == 1 ? 1 : 0)) +
        (depart_minute > 1020 ? 1 : 0) + rng.UniformInt(0, 2);
    const double fare = base_fare * std::pow(1.35, fare_step);
    const int64_t price =
        Clamp(static_cast<int64_t>(std::llround(fare / 10.0)) * 10, 49,
              1999);

    t[GoogleFlightsAttrs::kStops] = stops;
    t[GoogleFlightsAttrs::kPrice] = price;
    t[GoogleFlightsAttrs::kConnection] = connection;
    // Later departure preferred ("getting away after a full day of
    // work"): invert the minute-of-day.
    t[GoogleFlightsAttrs::kDepartureTime] = 1439 - depart_minute;
    HDSKY_RETURN_IF_ERROR(table.Append(t));
  }
  return table;
}

}  // namespace dataset
}  // namespace hdsky
