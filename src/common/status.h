// Status / Result error model for hdsky.
//
// The library does not throw exceptions across its public API. Fallible
// operations return a `common::Status`, or a `common::Result<T>` when they
// also produce a value (the Arrow / RocksDB idiom). Helper macros
// HDSKY_RETURN_IF_ERROR and HDSKY_ASSIGN_OR_RETURN propagate failures.

#ifndef HDSKY_COMMON_STATUS_H_
#define HDSKY_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace hdsky {
namespace common {

/// Machine-readable category of a failure.
enum class StatusCode : int8_t {
  kOk = 0,
  /// A caller-supplied argument is malformed (bad schema index, empty
  /// table, inverted range, ...).
  kInvalidArgument = 1,
  /// The operation is not supported by the target, e.g. a two-ended range
  /// predicate sent to an SQ-only attribute of a hidden-database interface.
  kUnsupported = 2,
  /// A referenced entity does not exist.
  kNotFound = 3,
  /// A budget was exhausted, e.g. the per-day query rate limit of a hidden
  /// web database (Section 2.3 of the paper). Discovery algorithms translate
  /// this into an anytime partial result.
  kResourceExhausted = 4,
  /// A value fell outside its attribute domain.
  kOutOfRange = 5,
  /// File / parse errors from the CSV layer.
  kIOError = 6,
  /// An internal invariant was violated; indicates a bug in hdsky itself.
  kInternal = 7,
  kAlreadyExists = 8,
  /// A backend is (for now) refusing service: the remote server kept
  /// shedding load past the client's retry budget. Distinct from
  /// kResourceExhausted — the *query budget* is intact, the *site* is
  /// busy — so callers can tell shed-load from budget exhaustion and
  /// from protocol failure (kIOError).
  kUnavailable = 9,
};

/// Human-readable name of a status code, e.g. "Unsupported".
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// A default-constructed Status is OK. Failure states carry a code and a
/// message. Status is cheap to copy (codes dominate; messages are rare on
/// hot paths because OK carries no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// The result of an operation that produces a T or fails with a Status.
///
/// Accessing the value of a failed Result aborts in debug builds and is
/// undefined in release builds; callers must check ok() first (or use
/// HDSKY_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : repr_(std::move(value)) {}
  /*implicit*/ Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this result failed.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace common
}  // namespace hdsky

/// Propagates a non-OK Status out of the enclosing function.
#define HDSKY_RETURN_IF_ERROR(expr)                       \
  do {                                                    \
    ::hdsky::common::Status _hdsky_status = (expr);       \
    if (!_hdsky_status.ok()) return _hdsky_status;        \
  } while (false)

#define HDSKY_CONCAT_IMPL(a, b) a##b
#define HDSKY_CONCAT(a, b) HDSKY_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on failure returns the Status, on
/// success assigns the value to `lhs` (which may be a declaration).
#define HDSKY_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  HDSKY_ASSIGN_OR_RETURN_IMPL(HDSKY_CONCAT(_hdsky_result_, __LINE__),   \
                              lhs, rexpr)

#define HDSKY_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value();

#endif  // HDSKY_COMMON_STATUS_H_
