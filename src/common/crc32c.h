// CRC32C (Castagnoli), the checksum shared by the persistence layers:
// journal record framing (src/recovery) and paged block-file pages
// (src/data/block_file). One implementation so a checksum computed by
// any writer verifies under any reader.

#ifndef HDSKY_COMMON_CRC32C_H_
#define HDSKY_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace hdsky {
namespace common {

/// CRC32C over `data` (Castagnoli polynomial, reflected form
/// 0x82F63B78). Software byte-at-a-time — plenty for journal records of
/// a few KiB and block pages of a few hundred KiB verified once per
/// buffer-pool load.
uint32_t Crc32c(std::string_view data);

}  // namespace common
}  // namespace hdsky

#endif  // HDSKY_COMMON_CRC32C_H_
