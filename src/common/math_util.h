// Small numeric helpers shared by the analysis module and tests.
//
// Cost bounds in the paper (e.g. m * |S|^{m+1}) overflow 64-bit integers
// almost immediately, so everything here works in log-space or long double.

#ifndef HDSKY_COMMON_MATH_UTIL_H_
#define HDSKY_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace hdsky {
namespace common {

/// ln(n!) via lgamma.
inline double LogFactorial(int64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

/// ln(C(n, k)); returns -inf when k < 0 or k > n.
inline double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -INFINITY;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

/// base^exp in double space; safe for the huge worst-case bounds.
inline double PowD(double base, double exp) { return std::pow(base, exp); }

/// Ceil division for non-negative integers.
inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Clamps v to [lo, hi].
inline int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace common
}  // namespace hdsky

#endif  // HDSKY_COMMON_MATH_UTIL_H_
