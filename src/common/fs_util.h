// Durable filesystem primitives shared by the persistence layers (the
// client answer caches and the src/recovery journal/checkpoint stack).
//
// The core discipline is write-temp + fsync + rename + fsync-directory:
// POSIX rename(2) is atomic within a filesystem, so a reader (or a
// process restarted after a crash) observes either the complete previous
// file or the complete new one — never a torn mixture, and never a
// destroyed previous version. The directory fsync makes the rename itself
// durable across power loss.

#ifndef HDSKY_COMMON_FS_UTIL_H_
#define HDSKY_COMMON_FS_UTIL_H_

#include <string>

#include "common/status.h"

namespace hdsky {
namespace common {

/// Replaces the file at `path` with `contents` atomically: the bytes are
/// written to a sibling temporary file, fsync'd, renamed over `path`, and
/// the parent directory is fsync'd. A crash at any point leaves either
/// the old complete file or the new complete file (plus, at worst, an
/// orphaned "<path>.tmp.<pid>" that RemoveStaleTempFiles cleans up).
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Reads a whole file into a string. NotFound when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// fsync(2) on a directory, making completed renames/creates in it
/// durable. A no-op error-wise on filesystems that reject directory
/// fsync.
Status SyncDir(const std::string& dir);

/// Deletes "*.tmp.*" siblings left behind by interrupted AtomicWriteFile
/// calls in `dir`. Best-effort; never fails on individual unlink errors.
void RemoveStaleTempFiles(const std::string& dir);

}  // namespace common
}  // namespace hdsky

#endif  // HDSKY_COMMON_FS_UTIL_H_
