// Durable filesystem primitives shared by the persistence layers (the
// client answer caches and the src/recovery journal/checkpoint stack).
//
// The core discipline is write-temp + fsync + rename + fsync-directory:
// POSIX rename(2) is atomic within a filesystem, so a reader (or a
// process restarted after a crash) observes either the complete previous
// file or the complete new one — never a torn mixture, and never a
// destroyed previous version. The directory fsync makes the rename itself
// durable across power loss.

#ifndef HDSKY_COMMON_FS_UTIL_H_
#define HDSKY_COMMON_FS_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace hdsky {
namespace common {

/// Replaces the file at `path` with `contents` atomically: the bytes are
/// written to a sibling temporary file, fsync'd, renamed over `path`, and
/// the parent directory is fsync'd. A crash at any point leaves either
/// the old complete file or the new complete file (plus, at worst, an
/// orphaned "<path>.tmp.<pid>" that RemoveStaleTempFiles cleans up).
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Reads a whole file into a string. NotFound when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// fsync(2) on a directory, making completed renames/creates in it
/// durable. A no-op error-wise on filesystems that reject directory
/// fsync.
Status SyncDir(const std::string& dir);

/// Deletes "*.tmp.*" siblings left behind by interrupted AtomicWriteFile
/// calls in `dir`. Best-effort; never fails on individual unlink errors.
void RemoveStaleTempFiles(const std::string& dir);

/// Streaming variant of AtomicWriteFile for files too large to hold in
/// one string (the paged block files). Bytes accumulate in a sibling
/// "<path>.tmp.<pid>" via Append (sequential) and WriteAt (back-patching
/// an already-reserved region, e.g. a header written last); Commit then
/// runs the same fsync + rename + fsync-directory dance. Destroying an
/// uncommitted writer unlinks the temporary, so a failed bulk load never
/// leaves a torn file under the target name.
class AtomicFileWriter {
 public:
  /// Opens the temporary. Fails if the sibling cannot be created.
  static Result<std::unique_ptr<AtomicFileWriter>> Create(
      const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends `len` bytes at the current end of the temporary.
  Status Append(const void* data, size_t len);

  /// Overwrites `len` bytes at absolute `offset` (pwrite; does not move
  /// the append position). The region must already have been appended.
  Status WriteAt(uint64_t offset, const void* data, size_t len);

  /// Bytes appended so far (== the next Append offset).
  uint64_t bytes_appended() const { return appended_; }

  /// fsync + close + rename over the target + fsync parent directory.
  /// After Commit (success or failure) the writer is inert.
  Status Commit();

 private:
  AtomicFileWriter(std::string path, std::string tmp, int fd)
      : path_(std::move(path)), tmp_(std::move(tmp)), fd_(fd) {}

  std::string path_;
  std::string tmp_;
  int fd_;
  uint64_t appended_ = 0;
  bool done_ = false;
};

}  // namespace common
}  // namespace hdsky

#endif  // HDSKY_COMMON_FS_UTIL_H_
