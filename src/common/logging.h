// Lightweight assertion and logging macros.
//
// HDSKY_CHECK(cond) aborts with a message in all build types; it guards
// internal invariants whose violation means a bug in hdsky, mirroring the
// DCHECK/CHECK split used by Arrow and RocksDB. HDSKY_DCHECK compiles out
// in NDEBUG builds and is safe on hot paths.

#ifndef HDSKY_COMMON_LOGGING_H_
#define HDSKY_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define HDSKY_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "HDSKY_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define HDSKY_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define HDSKY_DCHECK(cond) HDSKY_CHECK(cond)
#endif

#endif  // HDSKY_COMMON_LOGGING_H_
