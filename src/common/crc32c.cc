#include "common/crc32c.h"

namespace hdsky {
namespace common {

namespace {

const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  const uint32_t* table = Crc32cTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace common
}  // namespace hdsky
