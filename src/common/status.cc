#include "common/status.h"

namespace hdsky {
namespace common {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace common
}  // namespace hdsky
