// Deterministic pseudo-random number generation for dataset synthesis and
// randomized ranking functions.
//
// All randomness in hdsky flows through common::Rng so that every
// experiment, test, and benchmark is reproducible from a single seed.
// The engine is xoshiro256** seeded through splitmix64, which has no
// pathological seeds and is much faster than std::mt19937_64.

#ifndef HDSKY_COMMON_RNG_H_
#define HDSKY_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace hdsky {
namespace common {

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator deterministically; identical seeds produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    // Lemire's nearly-divisionless bounded generation.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < span) {
      const uint64_t threshold = -span % span;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<uint64_t>(m);
      }
    }
    return lo + static_cast<int64_t>(m >> 64);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return lo + (hi - lo) * UniformReal();
  }

  /// Standard normal via Marsaglia polar method.
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = UniformReal(-1.0, 1.0);
      v = UniformReal(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Exponential with the given rate parameter lambda (> 0).
  double Exponential(double lambda) {
    double u;
    do {
      u = UniformReal();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A uniformly random permutation of 0..n-1.
  std::vector<int64_t> Permutation(int64_t n) {
    std::vector<int64_t> p(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) p[static_cast<size_t>(i)] = i;
    Shuffle(&p);
    return p;
  }

  /// Samples `count` distinct indices uniformly from [0, n) (count <= n),
  /// in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t count);

  /// Derives an independent generator; useful for handing sub-streams to
  /// parallel-ish components without correlating them.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

inline std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n,
                                                          int64_t count) {
  // Partial Fisher-Yates over an index vector.
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  if (count > n) count = n;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t j = UniformInt(i, n - 1);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(count));
  return idx;
}

}  // namespace common
}  // namespace hdsky

#endif  // HDSKY_COMMON_RNG_H_
