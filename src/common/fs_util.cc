#include "common/fs_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace hdsky {
namespace common {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + written,
                              contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status s = Errno("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    const Status s = Errno("close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status s = Errno("rename", tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return s;
  }
  return SyncDir(ParentDir(path));
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  // Some filesystems refuse fsync on directories (EINVAL); the rename is
  // still atomic there, only its durability timing is weaker.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    const Status s = Errno("fsync dir", dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

Result<std::unique_ptr<AtomicFileWriter>> AtomicFileWriter::Create(
    const std::string& path) {
  std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  return std::unique_ptr<AtomicFileWriter>(
      new AtomicFileWriter(path, std::move(tmp), fd));
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) {
    ::close(fd_);
    ::unlink(tmp_.c_str());
  }
}

Status AtomicFileWriter::Append(const void* data, size_t len) {
  if (done_) return Status::IOError("append after commit: " + tmp_);
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd_, p + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", tmp_);
    }
    written += static_cast<size_t>(n);
  }
  appended_ += len;
  return Status::OK();
}

Status AtomicFileWriter::WriteAt(uint64_t offset, const void* data,
                                 size_t len) {
  if (done_) return Status::IOError("pwrite after commit: " + tmp_);
  if (offset + len > appended_) {
    return Status::IOError("pwrite past appended end: " + tmp_);
  }
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < len) {
    const ssize_t n =
        ::pwrite(fd_, p + written, len - written,
                 static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", tmp_);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (done_) return Status::IOError("double commit: " + tmp_);
  done_ = true;
  if (::fsync(fd_) != 0) {
    const Status s = Errno("fsync", tmp_);
    ::close(fd_);
    ::unlink(tmp_.c_str());
    return s;
  }
  if (::close(fd_) != 0) {
    const Status s = Errno("close", tmp_);
    ::unlink(tmp_.c_str());
    return s;
  }
  if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
    const Status s = Errno("rename", tmp_ + " -> " + path_);
    ::unlink(tmp_.c_str());
    return s;
  }
  return SyncDir(ParentDir(path_));
}

void RemoveStaleTempFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find(".tmp.") != std::string::npos) {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

}  // namespace common
}  // namespace hdsky
