// BudgetScheduler: deterministic per-round query-budget allocation
// across federation backends.
//
// Each round the coordinator asks: given `round_budget` paid queries,
// which backend should spend them? A backend's *price per new skyline
// tuple* is estimated two ways and blended:
//
//  * Model: the marginal SQ-DB-SKY cost ExpectedSqCost(m, s+1) -
//    ExpectedSqCost(m, s) from src/analysis/cost_model — the expected
//    number of queries the (s+1)-th skyline tuple costs under the
//    random-ranking model (the per-source crawl-cost reasoning of Sheng
//    et al. applied to discovery). A backend deep into its skyline gets
//    expensive and yields budget to fresher ones.
//  * Observation: paid / new-confirmed from the backend's previous round
//    — the ground truth the model cannot know (selectivity skew, how
//    much of the backend the shared index already prunes).
//
// Budget is split proportionally to 1/price with largest-remainder
// rounding (every unit is assigned; no float drift), after each active
// backend is guaranteed `min_share` so a mispredicted backend can still
// prove the model wrong. Pure integer outputs from pure inputs: the
// same yields always produce the same allocation, which keeps federated
// runs deterministic at any thread count.

#ifndef HDSKY_FEDERATION_BUDGET_SCHEDULER_H_
#define HDSKY_FEDERATION_BUDGET_SCHEDULER_H_

#include <cstdint>
#include <vector>

namespace hdsky {
namespace federation {

/// What the coordinator knows about one backend when allocating.
struct BackendYield {
  /// Still has frontier to explore (not done, not failed).
  bool active = false;
  /// Ranking attributes of the backend (m of the cost model).
  int ranking_attrs = 1;
  /// Skyline tuples confirmed on this backend so far (s of the model).
  int64_t confirmed = 0;
  /// Paid queries / newly confirmed tuples in the previous round
  /// (both 0 before the first round: the model alone decides).
  int64_t last_round_paid = 0;
  int64_t last_round_new = 0;
};

/// Estimated paid queries the next new skyline tuple will cost; >= 1,
/// finite even where the closed-form model overflows.
double MarginalCostEstimate(const BackendYield& y);

/// Splits `round_budget` across backends (see file comment). Inactive
/// backends get 0; every unit of a positive budget is assigned as long
/// as any backend is active.
std::vector<int64_t> AllocateBudget(const std::vector<BackendYield>& yields,
                                    int64_t round_budget, int64_t min_share);

}  // namespace federation
}  // namespace hdsky

#endif  // HDSKY_FEDERATION_BUDGET_SCHEDULER_H_
