// PruningDatabase: the cross-backend pruning decorator of the federation
// layer. Wraps one backend (local TopKInterface or RemoteHiddenDatabase)
// and consults a frozen snapshot of the federation's shared dominance
// index before letting a query touch the backend:
//
//  * If the query region's best corner — the tuple assembled from each
//    ranking attribute's lower bound, clamped to the attribute domain —
//    is dominated-or-equaled by a confirmed tuple of ANY backend, every
//    tuple the query could return is dominated by (or a value duplicate
//    of) that tuple, so the region cannot contribute to the union
//    skyline. The decorator answers an empty, non-overflowing result
//    without paying the backend: both SQ-DB-SKY (no overflow => no
//    children) and RQ-DB-SKY (empty R(q) => prune) treat that answer as
//    "this subtree is done". A point one backend's results dominate is
//    never paid for on another. (Confirmed tuples are the strongest
//    witnesses available: they are the dominance closure of everything
//    observed, so indexing raw observed tuples too prunes nothing more.)
//
//    Soundness: suppressing a region this way can make a *local*
//    confirmation wrong (a would-be dominator hid in the pruned region),
//    but any such dominator is itself dominated by the pruning witness,
//    which is always a candidate of the final cross-backend merge — the
//    global dominance filter removes the wrong confirmation, so the
//    merged union skyline stays exact (see docs/federation.md).
//
//  * Each scheduling round grants the backend a query allowance. A
//    forwarded (paid) query spends one unit; pruned queries are free.
//    When the allowance is spent, Execute fails with ResourceExhausted —
//    the discovery run unwinds through its anytime path and the
//    coordinator resumes it from its checkpointed frontier next round.
//
// Thread safety: NOT thread-safe; the coordinator touches each backend
// from one task per round. The frozen index is shared read-only across
// backends (DominanceIndex const queries are safe concurrently).

#ifndef HDSKY_FEDERATION_PRUNING_DATABASE_H_
#define HDSKY_FEDERATION_PRUNING_DATABASE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "interface/hidden_database.h"
#include "skyline/dominance_index.h"

namespace hdsky {
namespace federation {

class PruningDatabase : public interface::HiddenDatabase {
 public:
  explicit PruningDatabase(interface::HiddenDatabase* backend);

  /// Arms a scheduling round: `allowance` paid queries may be forwarded
  /// (< 0 = unlimited); `frozen` is the round's shared dominance snapshot
  /// (nullptr disables cross-backend pruning). Clears the round flags.
  void StartRound(int64_t allowance, const skyline::DominanceIndex* frozen);

  /// Coordinator resume (recovery/federation_state.h): restores the
  /// cumulative accounting a previous process checkpointed at a round
  /// barrier. Only legal before the first StartRound.
  void RestoreAccounting(int64_t paid, int64_t pruned, bool backend_exhausted);
  /// Restores the observed-tuple pool (ids and tuples parallel, already
  /// deduplicated by the run that saved them).
  void RestoreObserved(const std::vector<data::TupleId>& ids,
                       const std::vector<data::Tuple>& tuples);

  /// Paid queries remaining in this round; -1 = unlimited.
  int64_t remaining() const { return remaining_; }
  /// True once an Execute was refused because the round allowance ran
  /// dry — the run paused; resume it next round.
  bool round_paused() const { return round_paused_; }
  /// True once the backend itself reported ResourceExhausted (its budget
  /// is spent for good, not just this round's slice).
  bool backend_exhausted() const { return backend_exhausted_; }

  /// Cumulative counters across all rounds.
  int64_t paid() const { return paid_; }
  int64_t pruned() const { return pruned_; }

  /// Every distinct tuple the backend has returned, in first-seen order
  /// (deduplicated by listing id). Real dataset tuples even when never
  /// locally confirmed; join mode mines them for entity coverage so
  /// fewer cross-backend probes are needed.
  const std::vector<data::TupleId>& observed_ids() const {
    return observed_ids_;
  }
  const std::vector<data::Tuple>& observed_tuples() const {
    return observed_tuples_;
  }

  using interface::HiddenDatabase::Execute;
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override;

  const data::Schema& schema() const override { return backend_->schema(); }
  int k() const override { return backend_->k(); }

 private:
  /// True iff the frozen index proves q's region sterile (see above).
  bool RegionPruned(const interface::Query& q) const;

  interface::HiddenDatabase* backend_;
  const skyline::DominanceIndex* frozen_ = nullptr;
  int64_t remaining_ = -1;
  bool round_paused_ = false;
  bool backend_exhausted_ = false;
  int64_t paid_ = 0;
  int64_t pruned_ = 0;
  std::vector<data::TupleId> observed_ids_;
  std::vector<data::Tuple> observed_tuples_;
  std::unordered_set<data::TupleId> observed_id_set_;
  /// Scratch for the region corner; reused so pruning allocates nothing.
  mutable data::Tuple corner_;
};

}  // namespace federation
}  // namespace hdsky

#endif  // HDSKY_FEDERATION_PRUNING_DATABASE_H_
