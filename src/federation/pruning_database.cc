#include "federation/pruning_database.h"

#include "interface/predicate.h"

namespace hdsky {
namespace federation {

using common::Result;
using common::Status;
using interface::Query;
using interface::QueryResult;

PruningDatabase::PruningDatabase(interface::HiddenDatabase* backend)
    : backend_(backend),
      corner_(static_cast<size_t>(backend->schema().num_attributes()),
              data::Value{0}) {}

void PruningDatabase::StartRound(int64_t allowance,
                                 const skyline::DominanceIndex* frozen) {
  remaining_ = allowance;
  frozen_ = frozen;
  round_paused_ = false;
  // backend_exhausted_ is terminal: a spent backend budget does not come
  // back next round.
}

void PruningDatabase::RestoreAccounting(int64_t paid, int64_t pruned,
                                        bool backend_exhausted) {
  paid_ = paid;
  pruned_ = pruned;
  backend_exhausted_ = backend_exhausted;
}

void PruningDatabase::RestoreObserved(const std::vector<data::TupleId>& ids,
                                      const std::vector<data::Tuple>& tuples) {
  observed_ids_ = ids;
  observed_tuples_ = tuples;
  observed_id_set_.clear();
  for (const data::TupleId id : ids) observed_id_set_.insert(id);
}

bool PruningDatabase::RegionPruned(const interface::Query& q) const {
  if (frozen_ == nullptr || frozen_->size() == 0) return false;
  const data::Schema& schema = backend_->schema();
  // The best tuple the region could hold: every ranking attribute at its
  // interval's lower bound (values are normalized smaller-is-better),
  // clamped into the attribute domain. Non-ranking attributes are not
  // read by the index.
  for (const int attr : schema.ranking_attributes()) {
    const interface::Interval& iv = q.interval(attr);
    data::Value lo = iv.lower;
    const data::Value dmin = schema.attribute(attr).domain_min;
    if (lo < dmin) lo = dmin;
    corner_[static_cast<size_t>(attr)] = lo;
  }
  return frozen_->DominatedOrEqual(corner_);
}

Result<QueryResult> PruningDatabase::Execute(const Query& q) {
  if (RegionPruned(q)) {
    pruned_ += 1;
    // Empty and non-overflowing: exactly what the backend would answer
    // if the region held nothing — which, for the union skyline's
    // purposes, it does.
    return QueryResult{};
  }
  if (remaining_ == 0) {
    round_paused_ = true;
    return Status::ResourceExhausted(
        "federation round allowance spent; backend pauses until the "
        "scheduler grants more budget");
  }
  Result<QueryResult> r = backend_->Execute(q);
  if (r.ok()) {
    paid_ += 1;
    if (remaining_ > 0) remaining_ -= 1;
    for (size_t i = 0; i < r->ids.size(); ++i) {
      if (observed_id_set_.insert(r->ids[i]).second) {
        observed_ids_.push_back(r->ids[i]);
        observed_tuples_.push_back(r->tuples[i]);
      }
    }
  } else if (r.status().IsResourceExhausted()) {
    backend_exhausted_ = true;
  }
  return r;
}

}  // namespace federation
}  // namespace hdsky
