#include "federation/budget_scheduler.h"

#include <algorithm>
#include <cmath>

#include "analysis/cost_model.h"

namespace hdsky {
namespace federation {

namespace {

/// Price-per-tuple ceiling: beyond this the distinction "very expensive"
/// vs "astronomically expensive" no longer changes allocations, and the
/// combinatorial model overflows to inf/nan anyway.
constexpr double kMaxPrice = 1e12;

double Clamp(double price) {
  if (!std::isfinite(price) || price > kMaxPrice) return kMaxPrice;
  return std::max(price, 1.0);
}

}  // namespace

double MarginalCostEstimate(const BackendYield& y) {
  const int m = std::max(y.ranking_attrs, 1);
  const int64_t s = std::max<int64_t>(y.confirmed, 0);
  const double model = Clamp(analysis::ExpectedSqCost(m, s + 1) -
                             analysis::ExpectedSqCost(m, s));
  if (y.last_round_paid <= 0) return model;
  // A round that paid but confirmed nothing is charged as if its next
  // tuple costs twice what it just burned — expensive, but not written
  // off: min_share keeps it probing.
  const double observed =
      y.last_round_new > 0
          ? static_cast<double>(y.last_round_paid) /
                static_cast<double>(y.last_round_new)
          : 2.0 * static_cast<double>(y.last_round_paid);
  return Clamp(0.5 * model + 0.5 * Clamp(observed));
}

std::vector<int64_t> AllocateBudget(const std::vector<BackendYield>& yields,
                                    int64_t round_budget, int64_t min_share) {
  std::vector<int64_t> alloc(yields.size(), 0);
  std::vector<size_t> active;
  for (size_t i = 0; i < yields.size(); ++i) {
    if (yields[i].active) active.push_back(i);
  }
  if (active.empty() || round_budget <= 0) return alloc;

  // Guaranteed floor first; what the floor cannot cover is split evenly
  // (earlier backends get the odd units — deterministic).
  int64_t budget = round_budget;
  const int64_t floor_share =
      std::min(std::max<int64_t>(min_share, 0),
               round_budget / static_cast<int64_t>(active.size()));
  for (const size_t i : active) {
    alloc[i] = floor_share;
    budget -= floor_share;
  }

  // Remainder goes to the cheap backends: weight = 1/price, floored
  // proportional shares, leftovers by largest fractional part (ties to
  // the lower index).
  std::vector<double> weight(active.size());
  double total_weight = 0.0;
  for (size_t j = 0; j < active.size(); ++j) {
    weight[j] = 1.0 / MarginalCostEstimate(yields[active[j]]);
    total_weight += weight[j];
  }
  std::vector<double> fraction(active.size());
  int64_t assigned = 0;
  for (size_t j = 0; j < active.size(); ++j) {
    const double exact =
        static_cast<double>(budget) * (weight[j] / total_weight);
    const int64_t whole = static_cast<int64_t>(exact);
    alloc[active[j]] += whole;
    assigned += whole;
    fraction[j] = exact - static_cast<double>(whole);
  }
  std::vector<size_t> order(active.size());
  for (size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return fraction[a] > fraction[b];
  });
  for (size_t j = 0; assigned < budget; ++j) {
    alloc[active[order[j % order.size()]]] += 1;
    assigned += 1;
  }
  return alloc;
}

}  // namespace federation
}  // namespace hdsky
