#include "federation/entity_merge.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "skyline/dominance.h"

namespace hdsky {
namespace federation {

namespace {

std::vector<int> AllAttrs(size_t m) {
  std::vector<int> attrs(m);
  std::iota(attrs.begin(), attrs.end(), 0);
  return attrs;
}

}  // namespace

std::vector<UnionGroup> MergeUnionSkyline(std::vector<Candidate> candidates) {
  std::vector<UnionGroup> out;
  if (candidates.empty()) return out;
  const std::vector<int> attrs = AllAttrs(candidates[0].rank_values.size());

  // Entity-keyed grouping: one bucket per distinct ranking-value
  // combination, sources ordered (backend, id). std::map keeps buckets in
  // rank_values order, which is also the output order.
  std::map<data::Tuple, std::vector<const Candidate*>> groups;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.backend != b.backend) return a.backend < b.backend;
              return a.id < b.id;
            });
  for (const Candidate& c : candidates) {
    groups[c.rank_values].push_back(&c);
  }

  // Global dominance filter over the distinct vectors. Candidate counts
  // are skyline-sized, so the quadratic filter is cheap; sharing the
  // Compare kernel with skyline/compute keeps the semantics identical to
  // the single-site ground truth.
  std::vector<const data::Tuple*> distinct;
  distinct.reserve(groups.size());
  for (const auto& kv : groups) distinct.push_back(&kv.first);
  for (const auto& [values, members] : groups) {
    bool dominated = false;
    for (const data::Tuple* other : distinct) {
      if (skyline::Compare(*other, values, attrs) ==
          skyline::DomRelation::kDominates) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    UnionGroup g;
    g.rank_values = values;
    g.representative = members.front()->tuple;
    g.sources.reserve(members.size());
    for (const Candidate* c : members) g.sources.emplace_back(c->backend, c->id);
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<JoinedEntity> JoinSkyline(
    const std::vector<std::vector<EntityObservation>>& per_backend,
    int num_backends) {
  std::vector<JoinedEntity> out;
  if (num_backends <= 0) return out;

  struct Acc {
    data::Tuple mins;
    std::vector<char> present;
  };
  std::map<data::Value, Acc> by_key;
  for (size_t b = 0; b < per_backend.size(); ++b) {
    for (const EntityObservation& obs : per_backend[b]) {
      Acc& acc = by_key[obs.key];
      if (acc.mins.empty()) {
        acc.mins = obs.rank_values;
        acc.present.assign(static_cast<size_t>(num_backends), 0);
      } else {
        for (size_t a = 0; a < acc.mins.size(); ++a) {
          acc.mins[a] = std::min(acc.mins[a], obs.rank_values[a]);
        }
      }
      if (b < acc.present.size()) acc.present[b] = 1;
    }
  }

  // Inner join: an entity must be listed on every backend.
  std::vector<JoinedEntity> joined;
  for (const auto& [key, acc] : by_key) {
    bool everywhere = true;
    for (const char p : acc.present) everywhere &= (p != 0);
    if (everywhere) joined.push_back({key, acc.mins});
  }
  if (joined.empty()) return out;

  // Skyline of the joined vectors. Entities with equal vectors both stay
  // — distinct real-world listings, same best offer.
  const std::vector<int> attrs = AllAttrs(joined[0].rank_values.size());
  for (const JoinedEntity& e : joined) {
    bool dominated = false;
    for (const JoinedEntity& other : joined) {
      if (skyline::Compare(other.rank_values, e.rank_values, attrs) ==
          skyline::DomRelation::kDominates) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(e);
  }
  return out;
}

}  // namespace federation
}  // namespace hdsky
