#include "federation/federated_discovery.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "core/discovery.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "federation/budget_scheduler.h"
#include "federation/pruning_database.h"
#include "runtime/thread_pool.h"
#include "skyline/dominance_index.h"

namespace hdsky {
namespace federation {

using common::Result;
using common::Status;

namespace {

/// Coordinator-side state of one backend, touched by at most one worker
/// task per round (the round barrier is the synchronization point).
struct BackendState {
  interface::HiddenDatabase* backend = nullptr;
  std::unique_ptr<PruningDatabase> pruner;
  std::string name;
  std::string algorithm;  // "sq" or "rq", fixed for the whole run
  /// Backend-local ranking attribute indices in canonical order.
  std::vector<int> ranking_attrs;

  /// Frontier + run state of the last pause; resumed from next round.
  std::string run_state;
  std::string frontier;
  bool has_resume = false;

  /// Cumulative confirmed tuples (the run's collector is cumulative
  /// across rounds through resume, so each round's result replaces).
  std::vector<data::TupleId> cand_ids;
  std::vector<data::Tuple> cand_tuples;

  int64_t prev_confirmed = 0;
  int64_t prev_paid = 0;
  int64_t last_round_paid = 0;
  int64_t last_round_new = 0;
  int64_t rounds = 0;
  bool active = true;
  bool complete = false;
  bool failed = false;
  std::string error;

  /// Health state machine (HEALTHY -> DEGRADED -> DEAD, with DEGRADED ->
  /// HEALTHY on a successful re-probe). A degraded backend keeps its
  /// paused frontier and waits out a deterministic round-count backoff.
  BackendHealth health = BackendHealth::kHealthy;
  int64_t probe_attempts = 0;
  int64_t next_probe_round = 0;
  int64_t recoveries = 0;
  /// Scheduled into the current round (set per round on the coordinator
  /// thread before any task is submitted).
  bool participates = false;

  /// Written by the round's worker task, read after the barrier.
  bool ran_this_round = false;
  bool round_ok = false;
  Status round_status;
  core::DiscoveryResult round_result;
  std::string pending_run_state;
  std::string pending_frontier;
  bool pending_saved = false;
};

/// Picks the discovery driver a backend's interface taxonomy supports.
Status PickAlgorithm(const data::Schema& schema, const std::string& requested,
                     std::string* out) {
  bool all_two_ended = true;
  bool all_upper = true;
  for (const int attr : schema.ranking_attributes()) {
    const data::AttributeSpec& spec = schema.attribute(attr);
    all_two_ended &= spec.supports_lower_bound() && spec.supports_upper_bound();
    all_upper &= spec.supports_upper_bound();
  }
  if (requested == "rq" || (requested == "auto" && all_two_ended)) {
    if (!all_two_ended) {
      return Status::Unsupported(
          "rq federation needs two-ended ranges on every ranking "
          "attribute");
    }
    *out = "rq";
    return Status::OK();
  }
  if (requested == "sq" || requested == "auto") {
    if (!all_upper) {
      return Status::Unsupported(
          "sq federation needs an upper-bound predicate on every ranking "
          "attribute (point-query-only backends are not federable)");
    }
    *out = "sq";
    return Status::OK();
  }
  return Status::InvalidArgument("unknown federation algorithm '" +
                                 requested + "' (auto | sq | rq)");
}

/// One backend's slice of a scheduling round: arm the pruner, run the
/// discovery driver from the resumed frontier, capture the pause state.
void RunBackendRound(BackendState* st, const skyline::DominanceIndex* frozen,
                     int64_t allowance, const FederationOptions& options) {
  st->pruner->StartRound(allowance, options.cross_prune ? frozen : nullptr);
  st->pending_saved = false;
  st->round_ok = false;

  core::DiscoveryOptions opts;
  opts.interrupt = options.interrupt;
  if (st->has_resume) {
    opts.resume_run_state = st->run_state;
    opts.resume_frontier = st->frontier;
  }
  PruningDatabase* pruner = st->pruner.get();
  opts.on_checkpoint = [st, pruner](core::DiscoveryRun& run,
                                    const core::FrontierSaver& save) {
    // Both drivers issue at most one paid query per loop iteration, so a
    // snapshot at every starved iteration top means the last one before
    // the pausing query reflects every paid query — resuming re-pays
    // nothing.
    if (pruner->remaining() != 0) return;
    st->pending_run_state.clear();
    st->pending_frontier.clear();
    run.SaveState(&st->pending_run_state);
    save(&st->pending_frontier);
    st->pending_saved = true;
  };

  Result<core::DiscoveryResult> r = Status::Internal("not run");
  if (st->algorithm == "rq") {
    core::RqDbSkyOptions o;
    o.common = opts;
    r = core::RqDbSky(pruner, o);
  } else {
    core::SqDbSkyOptions o;
    o.common = opts;
    r = core::SqDbSky(pruner, o);
  }
  st->round_ok = r.ok();
  if (r.ok()) {
    st->round_result = std::move(r).value();
  } else {
    st->round_status = r.status();
  }
}

data::Tuple Project(const data::Tuple& t, const std::vector<int>& attrs) {
  data::Tuple out;
  out.reserve(attrs.size());
  for (const int a : attrs) out.push_back(t[static_cast<size_t>(a)]);
  return out;
}

const char* ModeName(FederationOptions::Mode mode) {
  return mode == FederationOptions::Mode::kJoin ? "join" : "union";
}

/// Rounds to wait before re-probing `backend` after its `attempt`-th
/// consecutive failure: exponential in the attempt (capped), plus a
/// deterministic per-(backend, attempt) jitter so simultaneous failures
/// do not re-probe in lockstep. No wall clock, no shared RNG — the
/// schedule replays identically on resume.
int64_t ProbeDelayRounds(const FederationOptions& options, size_t backend,
                         int64_t attempt) {
  int64_t base = std::max<int64_t>(1, options.probe_backoff_rounds);
  for (int64_t i = 1; i < attempt && base < 16; ++i) base *= 2;
  base = std::min<int64_t>(base, 16);
  const uint64_t h = (static_cast<uint64_t>(backend) * 1000003ull +
                      static_cast<uint64_t>(attempt)) *
                     2654435761ull;
  return base + static_cast<int64_t>(h % static_cast<uint64_t>(base));
}

/// The coordinator's barrier state, exactly as the resume path consumes
/// it. Called only between rounds, where every persisted value is
/// consistent with every backend journal.
recovery::FederationSessionState BuildCheckpoint(
    const FederationOptions& options, const std::vector<BackendState>& states,
    int64_t rounds, int64_t total_remaining) {
  recovery::FederationSessionState s;
  s.mode = ModeName(options.mode);
  s.algorithm = options.algorithm;
  s.rounds = rounds;
  s.total_remaining = total_remaining;
  s.backends.reserve(states.size());
  for (const BackendState& st : states) {
    recovery::FederatedBackendState b;
    b.name = st.name;
    b.algorithm = st.algorithm;
    b.has_resume = st.has_resume;
    b.run_state = st.run_state;
    b.frontier = st.frontier;
    b.cand_ids = st.cand_ids;
    b.cand_tuples = st.cand_tuples;
    b.prev_confirmed = st.prev_confirmed;
    b.prev_paid = st.prev_paid;
    b.last_round_paid = st.last_round_paid;
    b.last_round_new = st.last_round_new;
    b.rounds = st.rounds;
    b.paid = st.pruner->paid();
    b.pruned = st.pruner->pruned();
    b.health = static_cast<uint8_t>(st.health);
    b.probe_attempts = st.probe_attempts;
    b.next_probe_round = st.next_probe_round;
    b.recoveries = st.recoveries;
    b.complete = st.complete;
    b.failed = st.failed;
    b.backend_exhausted = st.pruner->backend_exhausted();
    b.error = st.error;
    b.observed_ids = st.pruner->observed_ids();
    b.observed_tuples = st.pruner->observed_tuples();
    s.backends.push_back(std::move(b));
  }
  return s;
}

/// Rehydrates the coordinator from a round checkpoint, validating that
/// the live federation matches the one that saved it.
Status RestoreFederation(const recovery::FederationSessionState& rs,
                         const FederationOptions& options,
                         std::vector<BackendState>* states, int64_t* rounds,
                         int64_t* total_remaining) {
  if (rs.mode != ModeName(options.mode)) {
    return Status::InvalidArgument(
        "resumed federation was started as --federate " + rs.mode +
        "; restart with the original mode or a fresh --journal directory");
  }
  if (rs.backends.size() != states->size()) {
    return Status::InvalidArgument(
        "resumed federation had " + std::to_string(rs.backends.size()) +
        " backends, this run connects " + std::to_string(states->size()));
  }
  for (size_t i = 0; i < states->size(); ++i) {
    BackendState& st = (*states)[i];
    const recovery::FederatedBackendState& b = rs.backends[i];
    if (b.name != st.name) {
      return Status::InvalidArgument(
          "resumed federation backend " + std::to_string(i) + " was '" +
          b.name + "', this run connects '" + st.name +
          "' (the --connect list must not change across a resume)");
    }
    if (b.algorithm != st.algorithm) {
      return Status::InvalidArgument(
          st.name + ": journaled session ran algorithm '" + b.algorithm +
          "' but this run resolved '" + st.algorithm +
          "'; resuming would diverge from the journal");
    }
    const size_t width =
        static_cast<size_t>(st.backend->schema().num_attributes());
    for (const auto* pool : {&b.cand_tuples, &b.observed_tuples}) {
      for (const data::Tuple& t : *pool) {
        if (t.size() != width) {
          return Status::IOError(st.name +
                                 ": federation state tuple width does not "
                                 "match the backend schema");
        }
      }
    }
    st.has_resume = b.has_resume;
    st.run_state = b.run_state;
    st.frontier = b.frontier;
    st.cand_ids = b.cand_ids;
    st.cand_tuples = b.cand_tuples;
    st.prev_confirmed = b.prev_confirmed;
    st.prev_paid = b.prev_paid;
    st.last_round_paid = b.last_round_paid;
    st.last_round_new = b.last_round_new;
    st.rounds = b.rounds;
    st.health = static_cast<BackendHealth>(b.health);
    st.probe_attempts = b.probe_attempts;
    st.next_probe_round = b.next_probe_round;
    st.recoveries = b.recoveries;
    st.complete = b.complete;
    st.failed = b.failed;
    st.error = b.error;
    // Active is derived, not stored: anything not terminally finished
    // (including a degraded backend mid-backoff) picks up where the
    // previous process stopped.
    st.active = !b.complete && !b.failed && !b.backend_exhausted;
    st.pruner->RestoreAccounting(b.paid, b.pruned, b.backend_exhausted);
    st.pruner->RestoreObserved(b.observed_ids, b.observed_tuples);
  }
  *rounds = rs.rounds;
  if (options.total_budget > 0) *total_remaining = rs.total_remaining;
  return Status::OK();
}

/// Join mode: collapse observed tuples to per-backend entity observations,
/// probe backends that never surfaced a key other backends did (one
/// equality query each), inner-join, and return the joined skyline.
Status JoinPhase(std::vector<BackendState>& states,
                 const std::vector<int>& join_attr_idx,
                 FederatedResult* out) {
  const int num_backends = static_cast<int>(states.size());
  std::vector<std::vector<EntityObservation>> obs(states.size());
  std::map<data::Value, std::vector<char>> seen_by;  // key -> backend bitmap
  for (size_t i = 0; i < states.size(); ++i) {
    const int jidx = join_attr_idx[i];
    // The full observed pool, not just confirmed tuples: every returned
    // tuple carries a real (key, ranking-vector) observation, so using
    // all of them widens entity coverage and saves probes.
    for (const data::Tuple& t : states[i].pruner->observed_tuples()) {
      const data::Value key = t[static_cast<size_t>(jidx)];
      obs[i].push_back({key, Project(t, states[i].ranking_attrs)});
      auto& bitmap = seen_by[key];
      if (bitmap.empty()) bitmap.assign(states.size(), 0);
      bitmap[i] = 1;
    }
  }
  // Probes run in key order on the coordinator thread: deterministic,
  // and each failed backend is simply not probed (its entities cannot
  // join anyway — inner-join semantics).
  for (const auto& [key, bitmap] : seen_by) {
    for (size_t i = 0; i < states.size(); ++i) {
      if (bitmap[i] || states[i].failed) continue;
      interface::Query probe(states[i].backend->schema().num_attributes());
      probe.AddEquals(join_attr_idx[i], key);
      auto r = states[i].backend->Execute(probe);
      if (!r.ok()) {
        // A probe the backend refuses (budget, network) leaves that
        // entity unjoined rather than failing the whole merge.
        out->join_exact = false;
        continue;
      }
      out->probe_queries += 1;
      if (r->overflow) out->join_exact = false;
      for (const data::Tuple& t : r->tuples) {
        obs[i].push_back({key, Project(t, states[i].ranking_attrs)});
      }
    }
  }
  for (const BackendState& st : states) {
    // A failed backend can contribute no observations; every entity
    // would be dropped by the inner join, so flag instead of returning
    // an empty join for a reason the caller cannot see.
    if (st.failed) out->join_exact = false;
  }
  out->joined = JoinSkyline(obs, num_backends);
  return Status::OK();
}

}  // namespace

const char* BackendHealthName(BackendHealth h) {
  switch (h) {
    case BackendHealth::kHealthy:
      return "healthy";
    case BackendHealth::kDegraded:
      return "degraded";
    case BackendHealth::kDead:
      return "dead";
  }
  return "unknown";
}

Result<FederatedResult> RunFederatedDiscovery(
    const std::vector<interface::HiddenDatabase*>& backends,
    const FederationOptions& options, const std::vector<std::string>& names) {
  if (backends.empty()) {
    return Status::InvalidArgument("federation needs at least one backend");
  }
  if (options.mode == FederationOptions::Mode::kJoin &&
      options.join_attr.empty()) {
    return Status::InvalidArgument("join federation needs join_attr");
  }
  const bool cross_prune =
      options.cross_prune && options.mode == FederationOptions::Mode::kUnion;

  // Canonical ranking space: backend 0's ranking attribute names, in
  // order. Every backend must rank the same names the same way — that
  // is what makes values comparable across sites.
  const data::Schema& schema0 = backends[0]->schema();
  std::vector<std::string> rank_names;
  for (const int a : schema0.ranking_attributes()) {
    rank_names.push_back(schema0.attribute(a).name);
  }
  const int m = static_cast<int>(rank_names.size());
  if (m == 0) {
    return Status::InvalidArgument("backend 0 has no ranking attributes");
  }

  std::vector<BackendState> states(backends.size());
  std::vector<int> join_attr_idx(backends.size(), -1);
  for (size_t i = 0; i < backends.size(); ++i) {
    BackendState& st = states[i];
    st.backend = backends[i];
    st.name = i < names.size() ? names[i]
                               : "backend-" + std::to_string(i);
    const data::Schema& schema = backends[i]->schema();
    st.ranking_attrs = schema.ranking_attributes();
    if (static_cast<int>(st.ranking_attrs.size()) != m) {
      return Status::InvalidArgument(
          st.name + ": ranks " + std::to_string(st.ranking_attrs.size()) +
          " attributes, federation expects " + std::to_string(m));
    }
    for (int j = 0; j < m; ++j) {
      const std::string& got =
          schema.attribute(st.ranking_attrs[static_cast<size_t>(j)]).name;
      if (got != rank_names[static_cast<size_t>(j)]) {
        return Status::InvalidArgument(
            st.name + ": ranking attribute " + std::to_string(j) + " is '" +
            got + "', federation expects '" +
            rank_names[static_cast<size_t>(j)] + "'");
      }
    }
    HDSKY_RETURN_IF_ERROR(
        PickAlgorithm(schema, options.algorithm, &st.algorithm));
    if (options.mode == FederationOptions::Mode::kJoin) {
      HDSKY_ASSIGN_OR_RETURN(join_attr_idx[i],
                             schema.IndexOf(options.join_attr));
    }
    st.pruner = std::make_unique<PruningDatabase>(backends[i]);
  }

  const int64_t k = static_cast<int64_t>(backends.size());
  const int64_t round_budget =
      options.round_budget > 0 ? options.round_budget
                               : std::max<int64_t>(64, 16 * k);
  int64_t total_remaining = options.total_budget;  // 0 = unlimited

  int pool_threads = options.num_threads > 0
                         ? options.num_threads
                         : std::min<int>(static_cast<int>(k),
                                         runtime::HardwareThreadCount());
  runtime::ThreadPool pool(std::min<int>(pool_threads, static_cast<int>(k)));

  std::vector<int> canonical_attrs(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) canonical_attrs[static_cast<size_t>(j)] = j;

  FederatedResult out;
  out.ranking_attr_names = rank_names;

  if (options.resume_state != nullptr) {
    HDSKY_RETURN_IF_ERROR(RestoreFederation(*options.resume_state, options,
                                            &states, &out.rounds,
                                            &total_remaining));
  }

  const auto interrupted = [&] {
    return options.interrupt && options.interrupt();
  };
  const auto checkpoint = [&]() -> Status {
    if (!options.on_round_checkpoint) return Status::OK();
    return options.on_round_checkpoint(
        BuildCheckpoint(options, states, out.rounds, total_remaining));
  };

  while (!interrupted()) {
    bool any_active = false;
    for (const BackendState& st : states) any_active |= st.active;
    if (!any_active) break;
    if (options.max_rounds > 0 && out.rounds >= options.max_rounds) break;

    int64_t budget = round_budget;
    if (options.total_budget > 0) {
      budget = std::min(budget, total_remaining);
      if (budget <= 0) break;
    }

    // Round participants: healthy actives always run; a degraded backend
    // sits out its backoff and then runs one re-probe round.
    bool any_participant = false;
    for (BackendState& st : states) {
      st.participates = st.active && (st.health == BackendHealth::kHealthy ||
                                      out.rounds >= st.next_probe_round);
      any_participant |= st.participates;
    }
    if (!any_participant) {
      // Every active backend is waiting out a probe backoff: tick the
      // round clock so the nearest probe comes due. The tick is
      // checkpointed — a resumed session must replay the same schedule.
      out.rounds += 1;
      HDSKY_RETURN_IF_ERROR(checkpoint());
      continue;
    }

    std::vector<BackendYield> yields(states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      yields[i] = {states[i].participates, m, states[i].prev_confirmed,
                   states[i].last_round_paid, states[i].last_round_new};
    }
    const std::vector<int64_t> alloc =
        AllocateBudget(yields, budget, options.min_share);

    // Freeze the round's shared dominance snapshot: every candidate any
    // backend has confirmed, in canonical ranking space. Read-only for
    // the whole round, shared by every worker. Confirmed tuples suffice
    // as witnesses: each backend's confirmed set is the local skyline —
    // the dominance closure — of everything it has observed, so a raw
    // observed tuple can never dominate a region corner that a confirmed
    // tuple does not already dominate (verified empirically: indexing
    // the full observed pool changes no prune decision).
    skyline::DominanceIndex frozen(canonical_attrs);
    if (cross_prune) {
      for (const BackendState& st : states) {
        for (const data::Tuple& t : st.cand_tuples) {
          frozen.Insert(Project(t, st.ranking_attrs));
        }
      }
    }

    for (BackendState& st : states) st.ran_this_round = false;
    for (size_t i = 0; i < states.size(); ++i) {
      if (!states[i].participates || alloc[i] <= 0) continue;
      BackendState* st = &states[i];
      if (st->health == BackendHealth::kDegraded &&
          options.on_backend_reprobe) {
        // Settle any dangling journal intent from the failed attempt
        // before the driver restarts against a newer frozen snapshot.
        // A failure here IS the probe result: the backend is still
        // unreachable, so record a failed probe round and let the
        // health machine back off again.
        const common::Status ps = options.on_backend_reprobe(i);
        if (!ps.ok()) {
          st->ran_this_round = true;
          st->round_ok = false;
          st->round_status = ps;
          continue;
        }
      }
      const int64_t allowance = alloc[i];
      st->ran_this_round = true;
      pool.Submit([st, &frozen, allowance, &options] {
        RunBackendRound(st, &frozen, allowance, options);
      });
    }
    pool.WaitIdle();  // the round barrier

    // A round some backend left mid-flight (the cooperative interrupt
    // fired inside a driver) is torn: the backend's frontier snapshot
    // does not cover its payments, so adopting or persisting it would
    // desynchronize the coordinator from the backend journals. Discard
    // the whole round — the journals keep every paid answer, and a
    // resumed session re-executes the round from the previous barrier,
    // replaying those payments for free.
    bool torn = false;
    for (const BackendState& st : states) {
      if (!st.ran_this_round || !st.round_ok) continue;
      if (!st.round_result.complete && !st.pruner->round_paused() &&
          !st.pruner->backend_exhausted()) {
        torn = true;
        break;
      }
    }
    if (torn) break;

    out.rounds += 1;
    int64_t paid_this_round = 0;
    for (size_t i = 0; i < states.size(); ++i) {
      BackendState& st = states[i];
      if (!st.ran_this_round) continue;
      st.rounds += 1;
      st.last_round_paid = st.pruner->paid() - st.prev_paid;
      st.prev_paid = st.pruner->paid();
      paid_this_round += st.last_round_paid;
      if (!st.round_ok) {
        // Health machine: a transient failure keeps the frontier (it
        // was not touched this round) and schedules a re-probe; a
        // permanent error or a spent probe budget drops the backend.
        st.error = st.round_status.ToString();
        st.probe_attempts += 1;
        const bool transient = st.round_status.IsIOError() ||
                               st.round_status.IsUnavailable();
        if (!transient || st.probe_attempts > options.max_probe_attempts) {
          st.health = BackendHealth::kDead;
          st.failed = true;
          st.active = false;
        } else {
          st.health = BackendHealth::kDegraded;
          st.next_probe_round =
              out.rounds + ProbeDelayRounds(options, i, st.probe_attempts);
        }
        continue;
      }
      if (st.health == BackendHealth::kDegraded) {
        // The re-probe succeeded: reintegrate. Coverage is judged at
        // the end of the run, so a recovered backend upgrades a
        // would-be PARTIAL result back to FULL.
        st.health = BackendHealth::kHealthy;
        st.probe_attempts = 0;
        st.recoveries += 1;
        st.error.clear();
      }
      st.last_round_new =
          static_cast<int64_t>(st.round_result.skyline.size()) -
          st.prev_confirmed;
      st.prev_confirmed =
          static_cast<int64_t>(st.round_result.skyline.size());
      st.cand_ids = std::move(st.round_result.skyline_ids);
      st.cand_tuples = std::move(st.round_result.skyline);
      if (st.round_result.complete) {
        st.complete = true;
        st.active = false;
      } else if (st.pruner->backend_exhausted()) {
        // The backend's own budget is gone for good — its unexplored
        // region may hide union-skyline tuples. Coverage is flagged at
        // the end of the run.
        st.active = false;
      } else if (st.pruner->round_paused()) {
        if (st.pending_saved) {
          st.run_state = std::move(st.pending_run_state);
          st.frontier = std::move(st.pending_frontier);
          st.has_resume = true;
        }
        // else: paused before any starved checkpoint fired (cannot
        // happen with the one-query-per-iteration drivers; if it ever
        // does, the stale resume state re-explores, never corrupts).
      }
      // (complete / backend-exhausted / paused is exhaustive here: torn
      // rounds were discarded above.)
    }
    if (options.total_budget > 0) total_remaining -= paid_this_round;
    HDSKY_RETURN_IF_ERROR(checkpoint());
  }

  for (const BackendState& st : states) {
    out.complete &= st.complete;
    // Coverage is judged here, at the end: a backend that failed and was
    // later reintegrated by a re-probe does not taint the result, while
    // one still degraded (or dead, or budget-exhausted) does.
    if (st.failed || st.health == BackendHealth::kDegraded ||
        st.pruner->backend_exhausted()) {
      out.partial_coverage = true;
    }
    BackendReport report;
    report.name = st.name;
    report.paid_queries = st.pruner->paid();
    report.pruned_queries = st.pruner->pruned();
    report.confirmed = static_cast<int64_t>(st.cand_tuples.size());
    report.rounds = st.rounds;
    report.complete = st.complete;
    report.failed = st.failed;
    report.error = st.error;
    report.health = st.health;
    report.recoveries = st.recoveries;
    out.total_paid += report.paid_queries;
    out.total_pruned += report.pruned_queries;
    out.backends.push_back(std::move(report));
  }

  if (options.mode == FederationOptions::Mode::kJoin) {
    HDSKY_RETURN_IF_ERROR(JoinPhase(states, join_attr_idx, &out));
    // Probes are backend queries too.
    out.total_paid += out.probe_queries;
    return out;
  }

  // Union merge: global dominance filter + entity-keyed grouping. This
  // is also what makes cross-backend pruning exact (docs/federation.md).
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < states.size(); ++i) {
    const BackendState& st = states[i];
    for (size_t j = 0; j < st.cand_tuples.size(); ++j) {
      Candidate c;
      c.backend = static_cast<int>(i);
      c.id = st.cand_ids[j];
      c.tuple = st.cand_tuples[j];
      c.rank_values = Project(st.cand_tuples[j], st.ranking_attrs);
      candidates.push_back(std::move(c));
    }
  }
  out.skyline = MergeUnionSkyline(std::move(candidates));
  return out;
}

}  // namespace federation
}  // namespace hdsky
