#include "federation/federated_discovery.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "core/discovery.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "federation/budget_scheduler.h"
#include "federation/pruning_database.h"
#include "runtime/thread_pool.h"
#include "skyline/dominance_index.h"

namespace hdsky {
namespace federation {

using common::Result;
using common::Status;

namespace {

/// Coordinator-side state of one backend, touched by at most one worker
/// task per round (the round barrier is the synchronization point).
struct BackendState {
  interface::HiddenDatabase* backend = nullptr;
  std::unique_ptr<PruningDatabase> pruner;
  std::string name;
  std::string algorithm;  // "sq" or "rq", fixed for the whole run
  /// Backend-local ranking attribute indices in canonical order.
  std::vector<int> ranking_attrs;

  /// Frontier + run state of the last pause; resumed from next round.
  std::string run_state;
  std::string frontier;
  bool has_resume = false;

  /// Cumulative confirmed tuples (the run's collector is cumulative
  /// across rounds through resume, so each round's result replaces).
  std::vector<data::TupleId> cand_ids;
  std::vector<data::Tuple> cand_tuples;

  int64_t prev_confirmed = 0;
  int64_t prev_paid = 0;
  int64_t last_round_paid = 0;
  int64_t last_round_new = 0;
  int64_t rounds = 0;
  bool active = true;
  bool complete = false;
  bool failed = false;
  std::string error;

  /// Written by the round's worker task, read after the barrier.
  bool ran_this_round = false;
  bool round_ok = false;
  Status round_status;
  core::DiscoveryResult round_result;
  std::string pending_run_state;
  std::string pending_frontier;
  bool pending_saved = false;
};

/// Picks the discovery driver a backend's interface taxonomy supports.
Status PickAlgorithm(const data::Schema& schema, const std::string& requested,
                     std::string* out) {
  bool all_two_ended = true;
  bool all_upper = true;
  for (const int attr : schema.ranking_attributes()) {
    const data::AttributeSpec& spec = schema.attribute(attr);
    all_two_ended &= spec.supports_lower_bound() && spec.supports_upper_bound();
    all_upper &= spec.supports_upper_bound();
  }
  if (requested == "rq" || (requested == "auto" && all_two_ended)) {
    if (!all_two_ended) {
      return Status::Unsupported(
          "rq federation needs two-ended ranges on every ranking "
          "attribute");
    }
    *out = "rq";
    return Status::OK();
  }
  if (requested == "sq" || requested == "auto") {
    if (!all_upper) {
      return Status::Unsupported(
          "sq federation needs an upper-bound predicate on every ranking "
          "attribute (point-query-only backends are not federable)");
    }
    *out = "sq";
    return Status::OK();
  }
  return Status::InvalidArgument("unknown federation algorithm '" +
                                 requested + "' (auto | sq | rq)");
}

/// One backend's slice of a scheduling round: arm the pruner, run the
/// discovery driver from the resumed frontier, capture the pause state.
void RunBackendRound(BackendState* st, const skyline::DominanceIndex* frozen,
                     int64_t allowance, const FederationOptions& options) {
  st->pruner->StartRound(allowance, options.cross_prune ? frozen : nullptr);
  st->pending_saved = false;
  st->round_ok = false;

  core::DiscoveryOptions opts;
  opts.interrupt = options.interrupt;
  if (st->has_resume) {
    opts.resume_run_state = st->run_state;
    opts.resume_frontier = st->frontier;
  }
  PruningDatabase* pruner = st->pruner.get();
  opts.on_checkpoint = [st, pruner](core::DiscoveryRun& run,
                                    const core::FrontierSaver& save) {
    // Both drivers issue at most one paid query per loop iteration, so a
    // snapshot at every starved iteration top means the last one before
    // the pausing query reflects every paid query — resuming re-pays
    // nothing.
    if (pruner->remaining() != 0) return;
    st->pending_run_state.clear();
    st->pending_frontier.clear();
    run.SaveState(&st->pending_run_state);
    save(&st->pending_frontier);
    st->pending_saved = true;
  };

  Result<core::DiscoveryResult> r = Status::Internal("not run");
  if (st->algorithm == "rq") {
    core::RqDbSkyOptions o;
    o.common = opts;
    r = core::RqDbSky(pruner, o);
  } else {
    core::SqDbSkyOptions o;
    o.common = opts;
    r = core::SqDbSky(pruner, o);
  }
  st->round_ok = r.ok();
  if (r.ok()) {
    st->round_result = std::move(r).value();
  } else {
    st->round_status = r.status();
  }
}

data::Tuple Project(const data::Tuple& t, const std::vector<int>& attrs) {
  data::Tuple out;
  out.reserve(attrs.size());
  for (const int a : attrs) out.push_back(t[static_cast<size_t>(a)]);
  return out;
}

/// Join mode: collapse observed tuples to per-backend entity observations,
/// probe backends that never surfaced a key other backends did (one
/// equality query each), inner-join, and return the joined skyline.
Status JoinPhase(std::vector<BackendState>& states,
                 const std::vector<int>& join_attr_idx,
                 FederatedResult* out) {
  const int num_backends = static_cast<int>(states.size());
  std::vector<std::vector<EntityObservation>> obs(states.size());
  std::map<data::Value, std::vector<char>> seen_by;  // key -> backend bitmap
  for (size_t i = 0; i < states.size(); ++i) {
    const int jidx = join_attr_idx[i];
    // The full observed pool, not just confirmed tuples: every returned
    // tuple carries a real (key, ranking-vector) observation, so using
    // all of them widens entity coverage and saves probes.
    for (const data::Tuple& t : states[i].pruner->observed_tuples()) {
      const data::Value key = t[static_cast<size_t>(jidx)];
      obs[i].push_back({key, Project(t, states[i].ranking_attrs)});
      auto& bitmap = seen_by[key];
      if (bitmap.empty()) bitmap.assign(states.size(), 0);
      bitmap[i] = 1;
    }
  }
  // Probes run in key order on the coordinator thread: deterministic,
  // and each failed backend is simply not probed (its entities cannot
  // join anyway — inner-join semantics).
  for (const auto& [key, bitmap] : seen_by) {
    for (size_t i = 0; i < states.size(); ++i) {
      if (bitmap[i] || states[i].failed) continue;
      interface::Query probe(states[i].backend->schema().num_attributes());
      probe.AddEquals(join_attr_idx[i], key);
      auto r = states[i].backend->Execute(probe);
      if (!r.ok()) {
        // A probe the backend refuses (budget, network) leaves that
        // entity unjoined rather than failing the whole merge.
        out->join_exact = false;
        continue;
      }
      out->probe_queries += 1;
      if (r->overflow) out->join_exact = false;
      for (const data::Tuple& t : r->tuples) {
        obs[i].push_back({key, Project(t, states[i].ranking_attrs)});
      }
    }
  }
  for (const BackendState& st : states) {
    // A failed backend can contribute no observations; every entity
    // would be dropped by the inner join, so flag instead of returning
    // an empty join for a reason the caller cannot see.
    if (st.failed) out->join_exact = false;
  }
  out->joined = JoinSkyline(obs, num_backends);
  return Status::OK();
}

}  // namespace

Result<FederatedResult> RunFederatedDiscovery(
    const std::vector<interface::HiddenDatabase*>& backends,
    const FederationOptions& options, const std::vector<std::string>& names) {
  if (backends.empty()) {
    return Status::InvalidArgument("federation needs at least one backend");
  }
  if (options.mode == FederationOptions::Mode::kJoin &&
      options.join_attr.empty()) {
    return Status::InvalidArgument("join federation needs join_attr");
  }
  const bool cross_prune =
      options.cross_prune && options.mode == FederationOptions::Mode::kUnion;

  // Canonical ranking space: backend 0's ranking attribute names, in
  // order. Every backend must rank the same names the same way — that
  // is what makes values comparable across sites.
  const data::Schema& schema0 = backends[0]->schema();
  std::vector<std::string> rank_names;
  for (const int a : schema0.ranking_attributes()) {
    rank_names.push_back(schema0.attribute(a).name);
  }
  const int m = static_cast<int>(rank_names.size());
  if (m == 0) {
    return Status::InvalidArgument("backend 0 has no ranking attributes");
  }

  std::vector<BackendState> states(backends.size());
  std::vector<int> join_attr_idx(backends.size(), -1);
  for (size_t i = 0; i < backends.size(); ++i) {
    BackendState& st = states[i];
    st.backend = backends[i];
    st.name = i < names.size() ? names[i]
                               : "backend-" + std::to_string(i);
    const data::Schema& schema = backends[i]->schema();
    st.ranking_attrs = schema.ranking_attributes();
    if (static_cast<int>(st.ranking_attrs.size()) != m) {
      return Status::InvalidArgument(
          st.name + ": ranks " + std::to_string(st.ranking_attrs.size()) +
          " attributes, federation expects " + std::to_string(m));
    }
    for (int j = 0; j < m; ++j) {
      const std::string& got =
          schema.attribute(st.ranking_attrs[static_cast<size_t>(j)]).name;
      if (got != rank_names[static_cast<size_t>(j)]) {
        return Status::InvalidArgument(
            st.name + ": ranking attribute " + std::to_string(j) + " is '" +
            got + "', federation expects '" +
            rank_names[static_cast<size_t>(j)] + "'");
      }
    }
    HDSKY_RETURN_IF_ERROR(
        PickAlgorithm(schema, options.algorithm, &st.algorithm));
    if (options.mode == FederationOptions::Mode::kJoin) {
      HDSKY_ASSIGN_OR_RETURN(join_attr_idx[i],
                             schema.IndexOf(options.join_attr));
    }
    st.pruner = std::make_unique<PruningDatabase>(backends[i]);
  }

  const int64_t k = static_cast<int64_t>(backends.size());
  const int64_t round_budget =
      options.round_budget > 0 ? options.round_budget
                               : std::max<int64_t>(64, 16 * k);
  int64_t total_remaining = options.total_budget;  // 0 = unlimited

  int pool_threads = options.num_threads > 0
                         ? options.num_threads
                         : std::min<int>(static_cast<int>(k),
                                         runtime::HardwareThreadCount());
  runtime::ThreadPool pool(std::min<int>(pool_threads, static_cast<int>(k)));

  std::vector<int> canonical_attrs(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) canonical_attrs[static_cast<size_t>(j)] = j;

  FederatedResult out;
  out.ranking_attr_names = rank_names;

  const auto interrupted = [&] {
    return options.interrupt && options.interrupt();
  };

  while (!interrupted()) {
    bool any_active = false;
    for (const BackendState& st : states) any_active |= st.active;
    if (!any_active) break;
    if (options.max_rounds > 0 && out.rounds >= options.max_rounds) break;

    int64_t budget = round_budget;
    if (options.total_budget > 0) {
      budget = std::min(budget, total_remaining);
      if (budget <= 0) break;
    }

    std::vector<BackendYield> yields(states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      yields[i] = {states[i].active, m, states[i].prev_confirmed,
                   states[i].last_round_paid, states[i].last_round_new};
    }
    const std::vector<int64_t> alloc =
        AllocateBudget(yields, budget, options.min_share);

    // Freeze the round's shared dominance snapshot: every candidate any
    // backend has confirmed, in canonical ranking space. Read-only for
    // the whole round, shared by every worker. Confirmed tuples suffice
    // as witnesses: each backend's confirmed set is the local skyline —
    // the dominance closure — of everything it has observed, so a raw
    // observed tuple can never dominate a region corner that a confirmed
    // tuple does not already dominate (verified empirically: indexing
    // the full observed pool changes no prune decision).
    skyline::DominanceIndex frozen(canonical_attrs);
    if (cross_prune) {
      for (const BackendState& st : states) {
        for (const data::Tuple& t : st.cand_tuples) {
          frozen.Insert(Project(t, st.ranking_attrs));
        }
      }
    }

    for (BackendState& st : states) st.ran_this_round = false;
    for (size_t i = 0; i < states.size(); ++i) {
      if (!states[i].active || alloc[i] <= 0) continue;
      BackendState* st = &states[i];
      const int64_t allowance = alloc[i];
      st->ran_this_round = true;
      pool.Submit([st, &frozen, allowance, &options] {
        RunBackendRound(st, &frozen, allowance, options);
      });
    }
    pool.WaitIdle();  // the round barrier
    out.rounds += 1;

    int64_t paid_this_round = 0;
    for (BackendState& st : states) {
      if (!st.ran_this_round) continue;
      st.rounds += 1;
      st.last_round_paid = st.pruner->paid() - st.prev_paid;
      st.prev_paid = st.pruner->paid();
      paid_this_round += st.last_round_paid;
      if (!st.round_ok) {
        // Graceful degradation: drop the backend, keep the federation.
        st.failed = true;
        st.active = false;
        st.error = st.round_status.ToString();
        out.partial_coverage = true;
        continue;
      }
      st.last_round_new =
          static_cast<int64_t>(st.round_result.skyline.size()) -
          st.prev_confirmed;
      st.prev_confirmed =
          static_cast<int64_t>(st.round_result.skyline.size());
      st.cand_ids = std::move(st.round_result.skyline_ids);
      st.cand_tuples = std::move(st.round_result.skyline);
      if (st.round_result.complete) {
        st.complete = true;
        st.active = false;
      } else if (st.pruner->backend_exhausted()) {
        // The backend's own budget is gone for good — its unexplored
        // region may hide union-skyline tuples.
        st.active = false;
        out.partial_coverage = true;
      } else if (st.pruner->round_paused()) {
        if (st.pending_saved) {
          st.run_state = std::move(st.pending_run_state);
          st.frontier = std::move(st.pending_frontier);
          st.has_resume = true;
        }
        // else: paused before any starved checkpoint fired (cannot
        // happen with the one-query-per-iteration drivers; if it ever
        // does, the stale resume state re-explores, never corrupts).
      } else {
        // Exhausted without pause or backend exhaustion: the interrupt
        // fired inside the run.
        st.active = false;
      }
    }
    if (options.total_budget > 0) total_remaining -= paid_this_round;
  }

  for (const BackendState& st : states) {
    out.complete &= st.complete;
    BackendReport report;
    report.name = st.name;
    report.paid_queries = st.pruner->paid();
    report.pruned_queries = st.pruner->pruned();
    report.confirmed = static_cast<int64_t>(st.cand_tuples.size());
    report.rounds = st.rounds;
    report.complete = st.complete;
    report.failed = st.failed;
    report.error = st.error;
    out.total_paid += report.paid_queries;
    out.total_pruned += report.pruned_queries;
    out.backends.push_back(std::move(report));
  }

  if (options.mode == FederationOptions::Mode::kJoin) {
    HDSKY_RETURN_IF_ERROR(JoinPhase(states, join_attr_idx, &out));
    // Probes are backend queries too.
    out.total_paid += out.probe_queries;
    return out;
  }

  // Union merge: global dominance filter + entity-keyed grouping. This
  // is also what makes cross-backend pruning exact (docs/federation.md).
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < states.size(); ++i) {
    const BackendState& st = states[i];
    for (size_t j = 0; j < st.cand_tuples.size(); ++j) {
      Candidate c;
      c.backend = static_cast<int>(i);
      c.id = st.cand_ids[j];
      c.tuple = st.cand_tuples[j];
      c.rank_values = Project(st.cand_tuples[j], st.ranking_attrs);
      candidates.push_back(std::move(c));
    }
  }
  out.skyline = MergeUnionSkyline(std::move(candidates));
  return out;
}

}  // namespace federation
}  // namespace hdsky
