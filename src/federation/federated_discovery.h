// FederatedDiscovery: skyline discovery over the union (or entity-join)
// of K hidden databases, coordinated in deterministic scheduling rounds.
//
// Each round:
//   1. The budget scheduler splits the round's query budget across the
//      backends still exploring (cost-model marginal cost blended with
//      each backend's observed yield; src/federation/budget_scheduler).
//   2. The shared dominance index is frozen: a read-only snapshot built
//      from every tuple any backend has confirmed so far. (Confirmed
//      tuples are the dominance closure of everything observed, so a
//      richer witness pool would not prune a single extra query.)
//   3. Every active backend runs its own DiscoveryRun (SQ- or RQ-DB-SKY
//      picked per backend interface) on the runtime ThreadPool, behind a
//      PruningDatabase that (a) answers queries whose region the frozen
//      index dominates with a free empty result — a point one backend's
//      results dominate is never paid for on another — and (b) pauses
//      the run via the anytime ResourceExhausted path once the round
//      allowance is spent. Paused runs checkpoint their frontier (the
//      PR 4 SaveState/frontier codecs) and resume exactly there next
//      round, so the round slicing costs zero repeated queries.
//   4. A barrier merge folds each backend's confirmed tuples into the
//      global candidate set and the per-backend yield statistics.
//
// Rounds are barriers, the scheduler is deterministic, and the frozen
// index only changes between rounds, so the result is independent of
// thread interleaving: any --threads value produces the same skyline and
// the same per-backend costs.
//
// A backend that fails mid-run (connection lost, server shedding load
// past the retry budget, crash) is NOT dropped outright: the coordinator
// runs a health state machine per backend — HEALTHY, DEGRADED, DEAD. A
// transient failure (IOError / Unavailable) moves the backend to
// DEGRADED: its paused frontier and candidates are kept, and the
// coordinator re-probes it after a deterministic jittered backoff
// (rounds, not wall clock — determinism survives). A successful probe
// reintegrates the backend: it resumes its frontier against the CURRENT
// frozen dominance snapshot, and if every backend eventually finishes
// the result is FULL coverage, not partial. Only a permanent error or an
// exhausted probe budget moves a backend to DEAD (dropped, coverage
// flagged partial) — graceful degradation, never a stall.
//
// Durable sessions (on_round_checkpoint / resume_state): the coordinator
// hands a recovery::FederationSessionState snapshot of every round
// barrier to the caller, and can be restarted from one. Snapshots are
// taken ONLY at consistent barriers; a round some backend left mid-
// flight (the cooperative interrupt fired inside a driver) is discarded
// whole, so a resumed coordinator re-executes the torn round from
// identical inputs and per-backend journals replay its payments for
// free (docs/federation.md, "Durable federation").
//
// The final union skyline is the global dominance filter + entity merge
// of every candidate (src/federation/entity_merge); docs/federation.md
// proves this is exactly the skyline of the merged datasets even with
// cross-backend pruning on. Join mode additionally mines the pruners'
// observed-tuple pools (every tuple a paid query returned) for entity
// coverage, which saves probe queries. Join mode inner-joins entities on a shared
// key attribute, probing backends that did not surface an entity with
// one equality query each, and reports the skyline of the joined
// componentwise-best vectors (approximate when a probe overflows).

#ifndef HDSKY_FEDERATION_FEDERATED_DISCOVERY_H_
#define HDSKY_FEDERATION_FEDERATED_DISCOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "federation/entity_merge.h"
#include "interface/hidden_database.h"
#include "recovery/federation_state.h"

namespace hdsky {
namespace federation {

/// Health state machine of one backend (see the file comment).
enum class BackendHealth : uint8_t {
  kHealthy = 0,
  /// Failed transiently; frontier kept, re-probe scheduled.
  kDegraded = 1,
  /// Permanently dropped (permanent error or probe budget exhausted).
  kDead = 2,
};

const char* BackendHealthName(BackendHealth h);

struct FederationOptions {
  enum class Mode { kUnion, kJoin };
  Mode mode = Mode::kUnion;

  /// Total paid backend queries across the whole federation
  /// (0 = unlimited; backends' own budgets still apply).
  int64_t total_budget = 0;
  /// Paid queries granted per scheduling round (0 = auto: enough for
  /// every backend to make progress, small enough that yield feedback
  /// and fresh prune snapshots matter).
  int64_t round_budget = 0;
  /// Minimum round allowance of every active backend, so a backend the
  /// model mispredicts can still prove it (default 4).
  int64_t min_share = 4;
  /// Worker threads for the per-round backend fan-out (0 = one per
  /// backend, capped by hardware).
  int num_threads = 0;
  /// Hard cap on scheduling rounds (0 = none): a safety net for
  /// misconfigured budgets, not a tuning knob.
  int64_t max_rounds = 0;
  /// Cross-backend pruning through the shared dominance index. On for
  /// union (where it is provably exact); forced off for join, whose
  /// entities need per-backend values even when globally dominated.
  bool cross_prune = true;
  /// Discovery driver: "auto" (rq where every ranking attribute is
  /// two-ended, else sq), "sq", or "rq". Applied per backend.
  std::string algorithm = "auto";
  /// Join mode: attribute (by name, present in every backend's schema)
  /// whose value identifies the same real-world entity across sites.
  std::string join_attr;
  /// Cooperative cancellation, polled between queries and rounds.
  std::function<bool()> interrupt;

  /// Re-probes a DEGRADED backend may fail before it is declared DEAD
  /// (0 restores the pre-health-machine instant-drop behavior: the
  /// first failure is final).
  int64_t max_probe_attempts = 3;
  /// Base backoff, in scheduling rounds, before the first re-probe of a
  /// degraded backend; doubles per failed probe (capped) with a
  /// deterministic per-backend jitter so simultaneous failures do not
  /// re-probe in lockstep.
  int64_t probe_backoff_rounds = 2;
  /// Fired on the coordinator thread just before a DEGRADED backend runs
  /// a re-probe round. hdsky_discover wires this to
  /// JournalingDatabase::ResolvePending: a dangling intent from the
  /// failed attempt is settled under its original wire sequence number
  /// (the server replays or charges exactly once) before the driver
  /// restarts against a newer dominance snapshot, so the re-probe's
  /// first fresh query is never misread as journal divergence. A
  /// returned error counts as a failed probe (the backend stays
  /// DEGRADED and backs off again) rather than aborting the run.
  std::function<common::Status(size_t backend_index)> on_backend_reprobe;

  /// Durable sessions: invoked at the end of every consistent scheduling
  /// round with the coordinator's barrier state. A returned error aborts
  /// the run (a session that cannot persist must not pretend to be
  /// durable). hdsky_discover wires this to SaveFederationState.
  std::function<common::Status(const recovery::FederationSessionState&)>
      on_round_checkpoint;
  /// Resume from a prior round checkpoint. Validated against the live
  /// backends (mode, count, names, resolved algorithms); a mismatch is
  /// rejected rather than silently diverging. Not owned; must outlive
  /// the call.
  const recovery::FederationSessionState* resume_state = nullptr;
};

/// Per-backend accounting of a federated run.
struct BackendReport {
  std::string name;
  /// Queries the backend actually answered (and charged for).
  int64_t paid_queries = 0;
  /// Queries answered for free from the shared dominance snapshot.
  int64_t pruned_queries = 0;
  /// Tuples this backend's discovery confirmed (before the global merge).
  int64_t confirmed = 0;
  /// Scheduling rounds in which this backend ran.
  int64_t rounds = 0;
  /// The backend finished its traversal (nothing left to explore).
  bool complete = false;
  /// The backend failed and was dropped (error says why).
  bool failed = false;
  std::string error;
  /// Final health-machine position (kDegraded: still in backoff when the
  /// run ended — coverage is partial but the backend was never dropped).
  BackendHealth health = BackendHealth::kHealthy;
  /// Times the backend failed transiently and a later re-probe
  /// reintegrated it.
  int64_t recoveries = 0;
};

struct FederatedResult {
  /// Union mode: the exact skyline of the union of the backends'
  /// datasets, one group per distinct ranking-value combination with
  /// full (backend, id) provenance. Sorted by ranking values.
  std::vector<UnionGroup> skyline;
  /// Join mode: skyline over the joined entities instead.
  std::vector<JoinedEntity> joined;
  /// False when a probe overflowed, so `joined` may miss duplicates of
  /// an entity hidden behind its top-k page (join mode only).
  bool join_exact = true;
  /// Equality probes paid by join mode on top of discovery queries.
  int64_t probe_queries = 0;

  int64_t total_paid = 0;
  int64_t total_pruned = 0;
  int64_t rounds = 0;
  /// Every backend finished its full traversal.
  bool complete = true;
  /// Some backend failed or ran out of its own budget: the skyline is a
  /// correct skyline of everything that WAS explored (anytime), but
  /// tuples only that backend holds may be missing.
  bool partial_coverage = false;
  std::vector<BackendReport> backends;
  /// Canonical ranking attribute names (from backend 0).
  std::vector<std::string> ranking_attr_names;
};

/// Runs federated discovery over `backends` (non-owning; each must stay
/// valid for the duration). `names` labels backends in reports (defaults
/// to "backend-<i>"). Fails fast on incompatible schemas: every backend
/// must rank the same attribute names in the same order.
common::Result<FederatedResult> RunFederatedDiscovery(
    const std::vector<interface::HiddenDatabase*>& backends,
    const FederationOptions& options,
    const std::vector<std::string>& names = {});

}  // namespace federation
}  // namespace hdsky

#endif  // HDSKY_FEDERATION_FEDERATED_DISCOVERY_H_
