// Cross-backend merge layer of the federation subsystem.
//
// Union mode: candidates — every tuple any backend's discovery confirmed
// — are dominance-filtered globally over their ranking values and merged
// entity-style: tuples equal on ALL ranking attributes collapse into one
// group listing every (backend, id) source, the cross-site analogue of
// core/expand_duplicates' DuplicateGroup (same listing on several sites,
// one skyline entry). The global filter is also what makes cross-backend
// pruning sound: a locally confirmed tuple whose dominator hid in a
// pruned region is dominated by the pruning witness, which is always a
// candidate here (see docs/federation.md).
//
// Join mode: entities are keyed by a shared attribute (e.g. a normalized
// listing id); each backend contributes its componentwise-best ranking
// vector for the entity, an entity present on every backend joins with
// the componentwise min across backends (the best any site offers on
// each attribute), and the skyline of the joined vectors is returned.

#ifndef HDSKY_FEDERATION_ENTITY_MERGE_H_
#define HDSKY_FEDERATION_ENTITY_MERGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace hdsky {
namespace federation {

/// One tuple a backend's discovery confirmed.
struct Candidate {
  int backend = 0;
  data::TupleId id = data::kInvalidTupleId;
  /// The backend's full tuple (its own schema's arity).
  data::Tuple tuple;
  /// Ranking values projected into the federation's canonical attribute
  /// order — the only values the merge compares.
  data::Tuple rank_values;
};

/// One entry of the merged union skyline: a distinct ranking-value
/// combination plus every source listing it.
struct UnionGroup {
  data::Tuple rank_values;
  /// Full tuple of the first source (lowest backend, then lowest id).
  data::Tuple representative;
  /// Every (backend, id) carrying these exact ranking values, sorted.
  std::vector<std::pair<int, data::TupleId>> sources;
};

/// Global dominance filter + entity-keyed grouping (see file comment).
/// Deterministic: groups are sorted by rank_values lexicographically.
std::vector<UnionGroup> MergeUnionSkyline(std::vector<Candidate> candidates);

/// One joined entity (join mode).
struct JoinedEntity {
  data::Value key = 0;
  /// Componentwise min over every backend's best vector for this key.
  data::Tuple rank_values;
};

/// Per-backend best-known ranking vectors keyed by join-attribute value.
struct EntityObservation {
  data::Value key = 0;
  data::Tuple rank_values;
};

/// Inner-joins entities over `num_backends` backends: a key must appear
/// in every backend's observations to join. Returns the skyline of the
/// joined vectors, sorted by key. Deterministic.
std::vector<JoinedEntity> JoinSkyline(
    const std::vector<std::vector<EntityObservation>>& per_backend,
    int num_backends);

}  // namespace federation
}  // namespace hdsky

#endif  // HDSKY_FEDERATION_ENTITY_MERGE_H_
