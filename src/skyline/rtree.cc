#include "skyline/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hdsky {
namespace skyline {

using common::Result;
using common::Status;
using data::Table;
using data::TupleId;
using data::Value;

Result<RTree> RTree::Build(const Table* table, int fanout) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  std::vector<TupleId> rows(static_cast<size_t>(table->num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  return Build(table, std::move(rows), fanout);
}

Result<RTree> RTree::Build(const Table* table, std::vector<TupleId> rows,
                           int fanout) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  if (fanout < 2) {
    return Status::InvalidArgument("fanout must be >= 2");
  }
  if (table->schema().ranking_attributes().empty()) {
    return Status::InvalidArgument("need at least one ranking attribute");
  }
  RTree tree(table, table->schema().ranking_attributes());
  if (rows.empty()) return tree;

  // STR packing of the leaves: recursively sort by one dimension and cut
  // into vertical slabs, cycling through the dimensions.
  const int m = static_cast<int>(tree.ranking_attrs_.size());
  std::vector<int32_t> leaves;
  // Simple STR: sort rows lexicographically by interleaved dimensions
  // via repeated slab partitioning.
  struct Slab {
    size_t begin, end;
    int dim;
  };
  std::vector<Slab> stack{{0, rows.size(), 0}};
  std::vector<std::pair<size_t, size_t>> leaf_ranges;
  while (!stack.empty()) {
    const Slab s = stack.back();
    stack.pop_back();
    const size_t count = s.end - s.begin;
    if (count <= static_cast<size_t>(fanout)) {
      leaf_ranges.push_back({s.begin, s.end});
      continue;
    }
    const int attr = tree.ranking_attrs_[static_cast<size_t>(s.dim % m)];
    std::sort(rows.begin() + static_cast<int64_t>(s.begin),
              rows.begin() + static_cast<int64_t>(s.end),
              [&](TupleId a, TupleId b) {
                return table->value(a, attr) < table->value(b, attr);
              });
    // Cut into ~sqrt(count/fanout) slabs (at least 2).
    const size_t slabs = std::max<size_t>(
        2, static_cast<size_t>(std::sqrt(
               static_cast<double>(count) / fanout)));
    const size_t per_slab = (count + slabs - 1) / slabs;
    for (size_t b = s.begin; b < s.end; b += per_slab) {
      stack.push_back({b, std::min(b + per_slab, s.end), s.dim + 1});
    }
  }
  for (const auto& [begin, end] : leaf_ranges) {
    Node leaf;
    leaf.rows.assign(rows.begin() + static_cast<int64_t>(begin),
                     rows.begin() + static_cast<int64_t>(end));
    leaf.mbr = tree.MbrOfRows(leaf.rows);
    leaves.push_back(static_cast<int32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(std::move(leaf));
  }
  tree.root_ = tree.PackLevel(std::move(leaves), fanout);
  return tree;
}

int32_t RTree::PackLevel(std::vector<int32_t> level, int fanout) {
  while (level.size() > 1) {
    // Group consecutive nodes (they are already spatially clustered by
    // construction) into parents of `fanout` children.
    std::vector<int32_t> parents;
    for (size_t i = 0; i < level.size();
         i += static_cast<size_t>(fanout)) {
      Node parent;
      const size_t end =
          std::min(level.size(), i + static_cast<size_t>(fanout));
      parent.children.assign(level.begin() + static_cast<int64_t>(i),
                             level.begin() + static_cast<int64_t>(end));
      // Union of child MBRs.
      const Mbr& first =
          nodes_[static_cast<size_t>(parent.children[0])].mbr;
      parent.mbr = first;
      for (size_t c = 1; c < parent.children.size(); ++c) {
        const Mbr& child =
            nodes_[static_cast<size_t>(parent.children[c])].mbr;
        for (size_t d = 0; d < parent.mbr.min.size(); ++d) {
          parent.mbr.min[d] = std::min(parent.mbr.min[d], child.min[d]);
          parent.mbr.max[d] = std::max(parent.mbr.max[d], child.max[d]);
        }
      }
      parents.push_back(static_cast<int32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  return level[0];
}

Mbr RTree::MbrOfRows(const std::vector<TupleId>& rows) const {
  Mbr mbr;
  mbr.min.resize(ranking_attrs_.size());
  mbr.max.resize(ranking_attrs_.size());
  for (size_t d = 0; d < ranking_attrs_.size(); ++d) {
    Value lo = table_->value(rows[0], ranking_attrs_[d]);
    Value hi = lo;
    for (size_t i = 1; i < rows.size(); ++i) {
      const Value v = table_->value(rows[i], ranking_attrs_[d]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    mbr.min[d] = lo;
    mbr.max[d] = hi;
  }
  return mbr;
}

}  // namespace skyline
}  // namespace hdsky
