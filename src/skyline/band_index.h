// The paper's headline application (Sections 1 and 9): a discovered
// K-sky band is a universal top-k index. For ANY monotone scoring
// function over the ranking attributes (smaller score better under our
// normalization), the top-k answer of the WHOLE database is contained in
// the K-band whenever k <= K [11] — so a third party that discovered the
// band once can serve arbitrary user-defined rankings locally, with zero
// further web queries.

#ifndef HDSKY_SKYLINE_BAND_INDEX_H_
#define HDSKY_SKYLINE_BAND_INDEX_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace hdsky {
namespace skyline {

/// A scoring function over full tuples; must be monotone non-decreasing
/// in every ranking attribute's (smaller-is-better) value for the top-k
/// guarantee to hold.
using ScoreFn = std::function<double(const data::Tuple&)>;

class BandIndex {
 public:
  /// Builds the index over the tuples of a discovered K-band (e.g. from
  /// core::RqDbSkyband). `band` is the K the band was discovered with;
  /// TopK answers are guaranteed exact only for k <= band.
  static common::Result<BandIndex> Create(
      std::vector<data::TupleId> ids, std::vector<data::Tuple> tuples,
      std::vector<int> ranking_attrs, int band);

  /// The top-k tuples under `score`, best (lowest) first. Fails with
  /// InvalidArgument when k exceeds the band depth (the guarantee would
  /// be silently void).
  common::Result<std::vector<std::pair<data::TupleId, data::Tuple>>> TopK(
      const ScoreFn& score, int k) const;

  /// Convenience: linear scoring with positive per-ranking-attribute
  /// weights (a monotone function by construction).
  common::Result<std::vector<std::pair<data::TupleId, data::Tuple>>>
  TopKLinear(const std::vector<double>& weights, int k) const;

  int band() const { return band_; }
  int64_t size() const { return static_cast<int64_t>(ids_.size()); }

 private:
  BandIndex(std::vector<data::TupleId> ids,
            std::vector<data::Tuple> tuples,
            std::vector<int> ranking_attrs, int band)
      : ids_(std::move(ids)),
        tuples_(std::move(tuples)),
        ranking_attrs_(std::move(ranking_attrs)),
        band_(band) {}

  std::vector<data::TupleId> ids_;
  std::vector<data::Tuple> tuples_;
  std::vector<int> ranking_attrs_;
  int band_;
};

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_BAND_INDEX_H_
