// Local (full-access) skyline computation.
//
// These operators run over data we own: ground truth in tests, the
// post-processing step of the crawling BASELINE (Section 8.1), and the
// layered-random ranking function. Three classic algorithms are provided —
// block-nested-loop [4], sort-filter-skyline [6], and divide & conquer [4]
// — which must agree; the test suite cross-checks them on random inputs.

#ifndef HDSKY_SKYLINE_COMPUTE_H_
#define HDSKY_SKYLINE_COMPUTE_H_

#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace skyline {

/// Skyline of the whole table over its ranking attributes, as sorted row
/// ids. Block-nested-loop with an in-memory window.
std::vector<data::TupleId> SkylineBNL(const data::Table& table);

/// Skyline of the given subset of rows, over `ranking_attrs`.
std::vector<data::TupleId> SkylineBNL(
    const data::Table& table, const std::vector<data::TupleId>& rows,
    const std::vector<int>& ranking_attrs);

/// Sort-filter-skyline: presorts by the sum of ranking values (a monotone
/// "entropy" score), so every tuple can only be dominated by an earlier
/// one and the window only ever contains skyline tuples.
std::vector<data::TupleId> SkylineSFS(const data::Table& table);

std::vector<data::TupleId> SkylineSFS(
    const data::Table& table, const std::vector<data::TupleId>& rows,
    const std::vector<int>& ranking_attrs);

/// Divide & conquer over the first ranking attribute: the better half's
/// skyline survives unchanged; the worse half's skyline is filtered
/// against it.
std::vector<data::TupleId> SkylineDnC(const data::Table& table);

std::vector<data::TupleId> SkylineDnC(
    const data::Table& table, const std::vector<data::TupleId>& rows,
    const std::vector<int>& ranking_attrs);

/// The skyline's distinct ranking-value combinations, sorted. Under the
/// paper's general positioning assumption this is the skyline itself;
/// with value duplicates it is what a top-k interface can reveal (equal
/// tuples hide behind each other), so discovery tests and workload
/// calibration compare at this granularity.
std::vector<data::Tuple> DistinctSkylineValues(const data::Table& table);

/// Splits `rows` into dominance layers: layer 0 is the skyline, layer i is
/// the skyline after removing layers 0..i-1. Used by the layered uniform-
/// random ranking function (the average-case model of Section 3.2). At
/// most `max_layers` layers are produced (0 = all); remaining rows are
/// dropped.
std::vector<std::vector<data::TupleId>> DominanceLayers(
    const data::Table& table, const std::vector<data::TupleId>& rows,
    const std::vector<int>& ranking_attrs, int max_layers = 0);

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_COMPUTE_H_
