#include "skyline/skyband.h"

#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"

namespace hdsky {
namespace skyline {

using data::Table;
using data::TupleId;

namespace {

__int128 Entropy(const Table& table, TupleId row,
                 const std::vector<int>& ranking_attrs) {
  __int128 sum = 0;
  for (int attr : ranking_attrs) sum += table.value(row, attr);
  return sum;
}

}  // namespace

std::vector<TupleId> KSkyband(const Table& table, int k) {
  std::vector<TupleId> rows(static_cast<size_t>(table.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  return KSkyband(table, rows, table.schema().ranking_attributes(), k);
}

std::vector<TupleId> KSkyband(const Table& table,
                              const std::vector<TupleId>& rows,
                              const std::vector<int>& ranking_attrs, int k) {
  if (k < 1) return {};
  std::vector<TupleId> sorted = rows;
  std::sort(sorted.begin(), sorted.end(), [&](TupleId a, TupleId b) {
    const __int128 ea = Entropy(table, a, ranking_attrs);
    const __int128 eb = Entropy(table, b, ranking_attrs);
    if (ea != eb) return ea < eb;
    return a < b;
  });
  std::vector<TupleId> band;
  for (size_t i = 0; i < sorted.size(); ++i) {
    int64_t dominators = 0;
    for (size_t j = 0; j < i && dominators < k; ++j) {
      if (CompareRows(table, sorted[j], sorted[i], ranking_attrs) ==
          DomRelation::kDominates) {
        ++dominators;
      }
    }
    if (dominators < k) band.push_back(sorted[i]);
  }
  std::sort(band.begin(), band.end());
  return band;
}

std::vector<int64_t> DominatorCounts(const Table& table,
                                     const std::vector<TupleId>& rows,
                                     const std::vector<int>& ranking_attrs,
                                     int64_t cap) {
  std::vector<int64_t> counts;
  counts.reserve(rows.size());
  const int64_t n = table.num_rows();
  for (TupleId r : rows) {
    int64_t c = 0;
    for (TupleId other = 0; other < n; ++other) {
      if (other == r) continue;
      if (RowDominates(table, other, r, ranking_attrs)) {
        ++c;
        if (cap > 0 && c >= cap) break;
      }
    }
    counts.push_back(c);
  }
  return counts;
}

}  // namespace skyline
}  // namespace hdsky
