#include "skyline/compute.h"

#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"

namespace hdsky {
namespace skyline {

using data::Table;
using data::TupleId;
using data::Value;

namespace {

std::vector<TupleId> AllRows(const Table& table) {
  std::vector<TupleId> rows(static_cast<size_t>(table.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

// Monotone score: if a dominates b then Entropy(a) < Entropy(b). 128-bit
// because NULL's sentinel is INT64_MAX.
__int128 Entropy(const Table& table, TupleId row,
                 const std::vector<int>& ranking_attrs) {
  __int128 sum = 0;
  for (int attr : ranking_attrs) sum += table.value(row, attr);
  return sum;
}

}  // namespace

std::vector<TupleId> SkylineBNL(const Table& table) {
  return SkylineBNL(table, AllRows(table),
                    table.schema().ranking_attributes());
}

std::vector<TupleId> SkylineBNL(const Table& table,
                                const std::vector<TupleId>& rows,
                                const std::vector<int>& ranking_attrs) {
  // Window entries are mutually non-dominating, so a candidate dominated
  // by one entry can never itself dominate another; the two passes below
  // are disjoint cases.
  std::vector<TupleId> window;
  for (TupleId candidate : rows) {
    bool dominated = false;
    for (TupleId s : window) {
      if (CompareRows(table, s, candidate, ranking_attrs) ==
          DomRelation::kDominates) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    std::erase_if(window, [&](TupleId s) {
      return CompareRows(table, candidate, s, ranking_attrs) ==
             DomRelation::kDominates;
    });
    window.push_back(candidate);
  }
  std::sort(window.begin(), window.end());
  return window;
}

std::vector<TupleId> SkylineSFS(const Table& table) {
  return SkylineSFS(table, AllRows(table),
                    table.schema().ranking_attributes());
}

std::vector<TupleId> SkylineSFS(const Table& table,
                                const std::vector<TupleId>& rows,
                                const std::vector<int>& ranking_attrs) {
  std::vector<TupleId> sorted = rows;
  std::sort(sorted.begin(), sorted.end(), [&](TupleId a, TupleId b) {
    const __int128 ea = Entropy(table, a, ranking_attrs);
    const __int128 eb = Entropy(table, b, ranking_attrs);
    if (ea != eb) return ea < eb;
    return a < b;
  });
  // A tuple can only be dominated by one with a strictly smaller entropy,
  // so every window entry is final skyline.
  std::vector<TupleId> window;
  for (TupleId candidate : sorted) {
    bool dominated = false;
    for (TupleId s : window) {
      if (CompareRows(table, s, candidate, ranking_attrs) ==
          DomRelation::kDominates) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(candidate);
  }
  std::sort(window.begin(), window.end());
  return window;
}

namespace {

// Recursive helper for SkylineDnC. `rows` is mutated freely.
std::vector<TupleId> DnCRec(const Table& table, std::vector<TupleId> rows,
                            const std::vector<int>& ranking_attrs) {
  constexpr size_t kBnlCutoff = 64;
  if (rows.size() <= kBnlCutoff) {
    return SkylineBNL(table, rows, ranking_attrs);
  }
  const int split_attr = ranking_attrs[0];
  // Median split on split_attr's value.
  std::vector<TupleId> sorted = rows;
  std::nth_element(
      sorted.begin(), sorted.begin() + static_cast<int64_t>(sorted.size()) / 2,
      sorted.end(), [&](TupleId a, TupleId b) {
        return table.value(a, split_attr) < table.value(b, split_attr);
      });
  const Value pivot =
      table.value(sorted[sorted.size() / 2], split_attr);
  std::vector<TupleId> better, worse;
  for (TupleId r : rows) {
    (table.value(r, split_attr) < pivot ? better : worse).push_back(r);
  }
  if (better.empty() || worse.empty()) {
    // All values tie on the split attribute; no progress possible here.
    return SkylineBNL(table, rows, ranking_attrs);
  }
  std::vector<TupleId> s_better =
      DnCRec(table, std::move(better), ranking_attrs);
  std::vector<TupleId> s_worse =
      DnCRec(table, std::move(worse), ranking_attrs);
  // Nothing in `worse` (split_attr >= pivot) can dominate anything in
  // `better` (split_attr < pivot); filter s_worse against s_better only.
  std::vector<TupleId> result = s_better;
  for (TupleId w : s_worse) {
    bool dominated = false;
    for (TupleId b : s_better) {
      if (CompareRows(table, b, w, ranking_attrs) ==
          DomRelation::kDominates) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(w);
  }
  return result;
}

}  // namespace

std::vector<TupleId> SkylineDnC(const Table& table) {
  return SkylineDnC(table, AllRows(table),
                    table.schema().ranking_attributes());
}

std::vector<TupleId> SkylineDnC(const Table& table,
                                const std::vector<TupleId>& rows,
                                const std::vector<int>& ranking_attrs) {
  if (ranking_attrs.empty()) return {};
  std::vector<TupleId> result = DnCRec(table, rows, ranking_attrs);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<data::Tuple> DistinctSkylineValues(const Table& table) {
  const std::vector<int>& ranking = table.schema().ranking_attributes();
  std::vector<data::Tuple> values;
  for (TupleId row : SkylineSFS(table)) {
    data::Tuple v;
    v.reserve(ranking.size());
    for (int attr : ranking) v.push_back(table.value(row, attr));
    values.push_back(std::move(v));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::vector<std::vector<TupleId>> DominanceLayers(
    const Table& table, const std::vector<TupleId>& rows,
    const std::vector<int>& ranking_attrs, int max_layers) {
  std::vector<std::vector<TupleId>> layers;
  std::vector<TupleId> remaining = rows;
  std::sort(remaining.begin(), remaining.end());
  while (!remaining.empty()) {
    if (max_layers > 0 && static_cast<int>(layers.size()) >= max_layers) {
      break;
    }
    std::vector<TupleId> layer =
        SkylineSFS(table, remaining, ranking_attrs);
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    size_t li = 0;
    for (TupleId r : remaining) {
      // Both lists are sorted; advance the layer cursor.
      while (li < layer.size() && layer[li] < r) ++li;
      if (li < layer.size() && layer[li] == r) continue;
      next.push_back(r);
    }
    layers.push_back(std::move(layer));
    remaining = std::move(next);
  }
  return layers;
}

}  // namespace skyline
}  // namespace hdsky
