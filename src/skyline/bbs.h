// BBS — branch-and-bound skyline over an R-tree (Papadias et al. [19],
// cited by the paper as the optimal progressive local algorithm).
//
// Entries (nodes and points) are processed in ascending "mindist" (the
// sum of the MBR's minimum corner): when a point surfaces it is
// guaranteed undominated by anything unseen, so skyline tuples are
// emitted PROGRESSIVELY in monotone score order, and whole subtrees whose
// minimum corner is dominated are pruned without expansion. Accesses an
// optimal number of R-tree nodes among all correct algorithms.
//
// The K-skyband generalization keeps an entry alive until K tuples of
// the current band dominate its minimum corner.

#ifndef HDSKY_SKYLINE_BBS_H_
#define HDSKY_SKYLINE_BBS_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "skyline/rtree.h"

namespace hdsky {
namespace skyline {

/// Computes the skyline via BBS; returns sorted row ids (the same result
/// as SkylineBNL/SFS/DnC). `on_emit`, when given, observes each skyline
/// tuple as it is confirmed — in ascending sum-of-values order, the
/// progressive property.
common::Result<std::vector<data::TupleId>> SkylineBBS(
    const RTree& tree,
    const std::function<void(data::TupleId)>& on_emit = nullptr);

/// Convenience: builds a temporary R-tree over the whole table.
common::Result<std::vector<data::TupleId>> SkylineBBS(
    const data::Table& table);

/// The K-skyband via branch-and-bound; equals skyline::KSkyband.
common::Result<std::vector<data::TupleId>> SkybandBBS(const RTree& tree,
                                                      int band);

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_BBS_H_
