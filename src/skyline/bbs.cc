#include "skyline/bbs.h"

#include <algorithm>
#include <queue>

#include "skyline/dominance.h"

namespace hdsky {
namespace skyline {

using common::Result;
using common::Status;
using data::Table;
using data::TupleId;
using data::Value;

namespace {

// Heap entry: an R-tree node or a concrete row, keyed by mindist (the
// sum of the minimum corner; 128-bit because NULL's sentinel is large).
struct Entry {
  __int128 mindist;
  int32_t node = -1;     // >= 0: an R-tree node
  TupleId row = data::kInvalidTupleId;  // >= 0: a point entry

  bool operator>(const Entry& other) const {
    return mindist > other.mindist;
  }
};

__int128 RowDist(const Table& table, TupleId row,
                 const std::vector<int>& attrs) {
  __int128 d = 0;
  for (int a : attrs) d += table.value(row, a);
  return d;
}

__int128 MbrDist(const Mbr& mbr) {
  __int128 d = 0;
  for (Value v : mbr.min) d += v;
  return d;
}

// True iff the point `corner` (the entry's best case) is dominated by
// fewer than `cap` of the rows in `band`; returns the capped count.
int CountDominators(const Table& table, const std::vector<int>& attrs,
                    const std::vector<TupleId>& band,
                    const std::function<Value(int dim)>& corner, int cap) {
  int count = 0;
  for (TupleId s : band) {
    bool s_not_worse = true;
    bool s_strictly_better = false;
    for (size_t d = 0; d < attrs.size(); ++d) {
      const Value sv = table.value(s, attrs[d]);
      const Value cv = corner(static_cast<int>(d));
      if (sv > cv) {
        s_not_worse = false;
        break;
      }
      if (sv < cv) s_strictly_better = true;
    }
    if (s_not_worse && s_strictly_better) {
      if (++count >= cap) return count;
    }
  }
  return count;
}

Result<std::vector<TupleId>> Run(
    const RTree& tree, int band,
    const std::function<void(TupleId)>& on_emit) {
  if (band < 1) return Status::InvalidArgument("band must be >= 1");
  std::vector<TupleId> result;
  if (tree.empty()) return result;
  const Table& table = tree.table();
  const std::vector<int>& attrs = tree.ranking_attrs();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({MbrDist(tree.node(tree.root()).mbr), tree.root(),
             data::kInvalidTupleId});
  while (!heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    if (e.row >= 0) {
      // A concrete point surfaced: every possible dominator has a
      // smaller mindist and was already resolved into `result` (or was
      // itself dominated by `band` result members that transitively
      // dominate this point).
      const int dominators = CountDominators(
          table, attrs, result,
          [&](int d) { return table.value(e.row, attrs[static_cast<size_t>(d)]); },
          band);
      if (dominators < band) {
        result.push_back(e.row);
        if (on_emit) on_emit(e.row);
      }
      continue;
    }
    const RTree::Node& node = tree.node(e.node);
    // Prune the whole subtree if its best corner is already dominated
    // band-many times.
    const int dominators = CountDominators(
        table, attrs, result,
        [&](int d) { return node.mbr.min[static_cast<size_t>(d)]; },
        band);
    if (dominators >= band) continue;
    if (node.is_leaf()) {
      for (TupleId row : node.rows) {
        heap.push({RowDist(table, row, attrs), -1, row});
      }
    } else {
      for (int32_t child : node.children) {
        heap.push({MbrDist(tree.node(child).mbr), child,
                   data::kInvalidTupleId});
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

Result<std::vector<TupleId>> SkylineBBS(
    const RTree& tree, const std::function<void(TupleId)>& on_emit) {
  return Run(tree, 1, on_emit);
}

Result<std::vector<TupleId>> SkylineBBS(const Table& table) {
  HDSKY_ASSIGN_OR_RETURN(const RTree tree, RTree::Build(&table));
  return Run(tree, 1, nullptr);
}

Result<std::vector<TupleId>> SkybandBBS(const RTree& tree, int band) {
  return Run(tree, band, nullptr);
}

}  // namespace skyline
}  // namespace hdsky
