#include "skyline/band_index.h"

#include <algorithm>
#include <numeric>

namespace hdsky {
namespace skyline {

using common::Result;
using common::Status;
using data::Tuple;
using data::TupleId;

Result<BandIndex> BandIndex::Create(std::vector<TupleId> ids,
                                    std::vector<Tuple> tuples,
                                    std::vector<int> ranking_attrs,
                                    int band) {
  if (ids.size() != tuples.size()) {
    return Status::InvalidArgument("ids and tuples must align");
  }
  if (band < 1) {
    return Status::InvalidArgument("band must be >= 1");
  }
  if (ranking_attrs.empty()) {
    return Status::InvalidArgument("need at least one ranking attribute");
  }
  for (const Tuple& t : tuples) {
    for (int attr : ranking_attrs) {
      if (attr < 0 || static_cast<size_t>(attr) >= t.size()) {
        return Status::InvalidArgument(
            "ranking attribute index out of tuple range");
      }
    }
  }
  return BandIndex(std::move(ids), std::move(tuples),
                   std::move(ranking_attrs), band);
}

Result<std::vector<std::pair<TupleId, Tuple>>> BandIndex::TopK(
    const ScoreFn& score, int k) const {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (k > band_) {
    return Status::InvalidArgument(
        "k = " + std::to_string(k) + " exceeds the band depth K = " +
        std::to_string(band_) +
        "; the top-k guarantee only holds for k <= K");
  }
  std::vector<size_t> order(ids_.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t take = std::min<size_t>(static_cast<size_t>(k),
                                       order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<int64_t>(take),
                    order.end(), [&](size_t a, size_t b) {
                      const double sa = score(tuples_[a]);
                      const double sb = score(tuples_[b]);
                      if (sa != sb) return sa < sb;
                      return ids_[a] < ids_[b];
                    });
  std::vector<std::pair<TupleId, Tuple>> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back({ids_[order[i]], tuples_[order[i]]});
  }
  return out;
}

Result<std::vector<std::pair<TupleId, Tuple>>> BandIndex::TopKLinear(
    const std::vector<double>& weights, int k) const {
  if (weights.size() != ranking_attrs_.size()) {
    return Status::InvalidArgument(
        "need one weight per ranking attribute");
  }
  for (double w : weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument(
          "weights must be positive for monotonicity");
    }
  }
  return TopK(
      [this, &weights](const Tuple& t) {
        double s = 0.0;
        for (size_t i = 0; i < ranking_attrs_.size(); ++i) {
          s += weights[i] *
               static_cast<double>(
                   t[static_cast<size_t>(ranking_attrs_[i])]);
        }
        return s;
      },
      k);
}

}  // namespace skyline
}  // namespace hdsky
