// Incremental dominance index: answers "does any inserted tuple dominate
// (or equal) t on the ranking attributes?" in sublinear time as points
// stream in — the data structure behind SkylineCollector, whose Observe
// used to linearly scan every confirmed tuple per observation.
//
// Dimension-specialized:
//  * 1 attribute  — the running minimum decides everything.
//  * 2 attributes — a staircase (std::map) of the *minimal* inserted
//    points, x ascending / y strictly descending. Dominance by any
//    inserted point implies dominance by a minimal one (if s <= t with a
//    strict coordinate and s' is minimal under s, then s' <= s <= t
//    inherits the strict coordinate), so keeping only the staircase is
//    lossless for both queries. O(log |S|) per query, amortized
//    O(log |S|) per insert.
//  * >= 3 attributes — a BBS-style bulk kd-tree over all inserted points
//    with per-subtree minimum corners (prune a subtree when some corner
//    coordinate exceeds t's), plus a small pending buffer scanned
//    linearly and folded into the tree by amortized (logarithmic-method)
//    rebuilds.
//
// Values compare numerically; NULL (kNullValue = +inf) ranks worst,
// matching skyline::Compare. Copyable value type, like the collector
// that embeds it.

#ifndef HDSKY_SKYLINE_DOMINANCE_INDEX_H_
#define HDSKY_SKYLINE_DOMINANCE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "data/value.h"

namespace hdsky {
namespace skyline {

class DominanceIndex {
 public:
  /// `ranking_attrs` are the tuple positions the dominance relation is
  /// defined over (the schema's ranking attributes).
  explicit DominanceIndex(std::vector<int> ranking_attrs);

  /// Inserts tuple t (only its ranking attributes are read).
  void Insert(const data::Tuple& t);

  /// True iff some inserted tuple strictly dominates t (<= on every
  /// ranking attribute, < on at least one).
  bool Dominated(const data::Tuple& t) const;

  /// True iff some inserted tuple dominates t or equals it on all
  /// ranking attributes.
  bool DominatedOrEqual(const data::Tuple& t) const;

  /// Number of Insert calls (not the retained-point count).
  int64_t size() const { return count_; }

 private:
  data::Value Key(const data::Tuple& t, int i) const {
    return t[static_cast<size_t>(ranking_attrs_[static_cast<size_t>(i)])];
  }

  void RebuildTree();
  int32_t BuildNode(int64_t begin, int64_t end, int depth);
  bool QueryTree(int32_t node_id, const data::Tuple& t,
                 bool or_equal) const;
  bool PointBeats(const data::Value* p, const data::Tuple& t,
                  bool or_equal) const;

  std::vector<int> ranking_attrs_;
  int dims_ = 0;
  int64_t count_ = 0;

  // dims_ == 1.
  data::Value min1_ = data::kNullValue;

  // dims_ == 2: minimal points, x -> y, x ascending, y strictly
  // descending.
  std::map<data::Value, data::Value> stair_;

  // dims_ >= 3.
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    int32_t begin = 0;  // leaf range into tree_items_
    int32_t end = 0;
    std::vector<data::Value> min_corner;

    bool is_leaf() const { return left < 0; }
  };
  std::vector<data::Value> points_;     // flat, stride dims_
  std::vector<int32_t> pending_;        // point indices not yet in tree
  std::vector<int32_t> tree_items_;     // point indices, permuted
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_DOMINANCE_INDEX_H_
