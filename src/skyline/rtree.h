// A bulk-loaded R-tree over the ranking attributes of a table, the index
// behind the progressive branch-and-bound skyline (BBS [19], see bbs.h).
//
// Built once with sort-tile-recursive (STR) packing: leaves hold row ids;
// every node carries the minimum bounding rectangle (MBR) of its subtree
// in rank space. Nothing here is exposed to the discovery algorithms —
// this is local machinery for data we own (ground truth, BASELINE
// post-processing, applications on crawled copies).

#ifndef HDSKY_SKYLINE_RTREE_H_
#define HDSKY_SKYLINE_RTREE_H_

#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace skyline {

/// Axis-aligned bounding box in rank space, one (min, max) per ranking
/// attribute.
struct Mbr {
  std::vector<data::Value> min;
  std::vector<data::Value> max;
};

class RTree {
 public:
  struct Node {
    Mbr mbr;
    /// Child node indices (internal) — empty for leaves.
    std::vector<int32_t> children;
    /// Row ids (leaves) — empty for internal nodes.
    std::vector<data::TupleId> rows;

    bool is_leaf() const { return children.empty(); }
  };

  /// Bulk-loads over `rows` of `table` using the ranking attributes.
  /// `fanout` bounds both leaf size and internal-node degree.
  static common::Result<RTree> Build(const data::Table* table,
                                     std::vector<data::TupleId> rows,
                                     int fanout = 16);

  /// Convenience: over all rows.
  static common::Result<RTree> Build(const data::Table* table,
                                     int fanout = 16);

  bool empty() const { return nodes_.empty(); }
  int32_t root() const { return root_; }
  const Node& node(int32_t id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  const std::vector<int>& ranking_attrs() const { return ranking_attrs_; }
  const data::Table& table() const { return *table_; }

 private:
  RTree(const data::Table* table, std::vector<int> ranking_attrs)
      : table_(table), ranking_attrs_(std::move(ranking_attrs)) {}

  int32_t PackLevel(std::vector<int32_t> level, int fanout);
  Mbr MbrOfRows(const std::vector<data::TupleId>& rows) const;

  const data::Table* table_;
  std::vector<int> ranking_attrs_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_RTREE_H_
