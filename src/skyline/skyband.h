// K-skyband computation over local data (Section 2.1 / Section 7.2).
//
// A tuple is in the K-skyband iff it is dominated by fewer than K other
// tuples; the 1-skyband is exactly the skyline. Used as ground truth for
// the sky-band discovery algorithms and by the top-k interface's layered
// ranking.

#ifndef HDSKY_SKYLINE_SKYBAND_H_
#define HDSKY_SKYLINE_SKYBAND_H_

#include <vector>

#include "data/table.h"

namespace hdsky {
namespace skyline {

/// K-skyband of the whole table over its ranking attributes, as sorted row
/// ids. Requires K >= 1.
std::vector<data::TupleId> KSkyband(const data::Table& table, int k);

/// K-skyband of a subset of rows over `ranking_attrs`. Entropy-sorted scan:
/// a tuple's dominators all precede it in monotone-score order, so each row
/// is compared only against earlier rows, with early exit at K dominators.
std::vector<data::TupleId> KSkyband(const data::Table& table,
                                    const std::vector<data::TupleId>& rows,
                                    const std::vector<int>& ranking_attrs,
                                    int k);

/// Dominator count per row of `rows` (capped at `cap` when cap > 0), in
/// the same order as `rows`; used by tests and the skyband interface.
std::vector<int64_t> DominatorCounts(const data::Table& table,
                                     const std::vector<data::TupleId>& rows,
                                     const std::vector<int>& ranking_attrs,
                                     int64_t cap = 0);

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_SKYBAND_H_
