#include "skyline/dominance_index.h"

#include <algorithm>

namespace hdsky {
namespace skyline {

using data::Tuple;
using data::Value;

namespace {
constexpr int64_t kLeafSize = 8;
/// Pending buffer folded into the tree once it outgrows both this floor
/// and half the tree — the logarithmic method's amortized O(log n)
/// rebuild schedule.
constexpr int64_t kPendingFloor = 64;
}  // namespace

DominanceIndex::DominanceIndex(std::vector<int> ranking_attrs)
    : ranking_attrs_(std::move(ranking_attrs)),
      dims_(static_cast<int>(ranking_attrs_.size())) {}

void DominanceIndex::Insert(const Tuple& t) {
  ++count_;
  if (dims_ == 0) return;
  if (dims_ == 1) {
    min1_ = std::min(min1_, Key(t, 0));
    return;
  }
  if (dims_ == 2) {
    const Value x = Key(t, 0);
    const Value y = Key(t, 1);
    if (DominatedOrEqual(t)) return;  // not minimal; queries unaffected
    auto it = stair_.lower_bound(x);
    // Points at x or to its right with y >= this y are no longer
    // minimal.
    while (it != stair_.end() && it->second >= y) {
      it = stair_.erase(it);
    }
    stair_.emplace(x, y);
    return;
  }
  const int32_t idx =
      static_cast<int32_t>(points_.size() / static_cast<size_t>(dims_));
  for (int i = 0; i < dims_; ++i) points_.push_back(Key(t, i));
  pending_.push_back(idx);
  const int64_t in_tree = static_cast<int64_t>(tree_items_.size());
  if (static_cast<int64_t>(pending_.size()) >
      std::max(kPendingFloor, in_tree / 2)) {
    RebuildTree();
  }
}

bool DominanceIndex::PointBeats(const Value* p, const Tuple& t,
                                bool or_equal) const {
  bool strict = false;
  for (int i = 0; i < dims_; ++i) {
    const Value tv = Key(t, i);
    if (p[i] > tv) return false;
    if (p[i] < tv) strict = true;
  }
  return or_equal || strict;
}

bool DominanceIndex::Dominated(const Tuple& t) const {
  if (count_ == 0 || dims_ == 0) return false;
  if (dims_ == 1) return min1_ < Key(t, 0);
  if (dims_ == 2) {
    const Value x = Key(t, 0);
    const Value y = Key(t, 1);
    auto it = stair_.upper_bound(x);
    if (it == stair_.begin()) return false;
    --it;  // the minimal point with the largest x' <= x
    return it->second < y || (it->second == y && it->first < x);
  }
  if (root_ >= 0 && QueryTree(root_, t, /*or_equal=*/false)) return true;
  for (int32_t idx : pending_) {
    if (PointBeats(points_.data() + static_cast<int64_t>(idx) * dims_, t,
                   /*or_equal=*/false)) {
      return true;
    }
  }
  return false;
}

bool DominanceIndex::DominatedOrEqual(const Tuple& t) const {
  if (count_ == 0) return false;
  if (dims_ == 0) return true;  // every tuple is equal over zero attrs
  if (dims_ == 1) return min1_ <= Key(t, 0);
  if (dims_ == 2) {
    const Value x = Key(t, 0);
    auto it = stair_.upper_bound(x);
    if (it == stair_.begin()) return false;
    --it;
    return it->second <= Key(t, 1);
  }
  if (root_ >= 0 && QueryTree(root_, t, /*or_equal=*/true)) return true;
  for (int32_t idx : pending_) {
    if (PointBeats(points_.data() + static_cast<int64_t>(idx) * dims_, t,
                   /*or_equal=*/true)) {
      return true;
    }
  }
  return false;
}

void DominanceIndex::RebuildTree() {
  tree_items_.insert(tree_items_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  nodes_.clear();
  nodes_.reserve(tree_items_.size() / (kLeafSize / 2) + 8);
  root_ = tree_items_.empty()
              ? -1
              : BuildNode(0, static_cast<int64_t>(tree_items_.size()), 0);
}

int32_t DominanceIndex::BuildNode(int64_t begin, int64_t end, int depth) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[static_cast<size_t>(id)];
    node.min_corner.assign(static_cast<size_t>(dims_), data::kNullValue);
    for (int64_t i = begin; i < end; ++i) {
      const Value* p =
          points_.data() +
          static_cast<int64_t>(tree_items_[static_cast<size_t>(i)]) *
              dims_;
      for (int d = 0; d < dims_; ++d) {
        node.min_corner[static_cast<size_t>(d)] =
            std::min(node.min_corner[static_cast<size_t>(d)], p[d]);
      }
    }
  }
  if (end - begin <= kLeafSize) {
    nodes_[static_cast<size_t>(id)].begin = static_cast<int32_t>(begin);
    nodes_[static_cast<size_t>(id)].end = static_cast<int32_t>(end);
    return id;
  }
  const int dim = depth % dims_;
  const int64_t mid = begin + (end - begin) / 2;
  std::nth_element(
      tree_items_.begin() + begin, tree_items_.begin() + mid,
      tree_items_.begin() + end, [&](int32_t a, int32_t b) {
        return points_[static_cast<size_t>(
                   static_cast<int64_t>(a) * dims_ + dim)] <
               points_[static_cast<size_t>(
                   static_cast<int64_t>(b) * dims_ + dim)];
      });
  const int32_t left = BuildNode(begin, mid, depth + 1);
  const int32_t right = BuildNode(mid, end, depth + 1);
  Node& node = nodes_[static_cast<size_t>(id)];
  node.left = left;
  node.right = right;
  return id;
}

bool DominanceIndex::QueryTree(int32_t node_id, const Tuple& t,
                               bool or_equal) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  // If the subtree's minimum corner already exceeds t somewhere, no
  // point inside can be <= t on that attribute.
  for (int d = 0; d < dims_; ++d) {
    if (node.min_corner[static_cast<size_t>(d)] > Key(t, d)) return false;
  }
  if (node.is_leaf()) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      const Value* p =
          points_.data() +
          static_cast<int64_t>(tree_items_[static_cast<size_t>(i)]) *
              dims_;
      if (PointBeats(p, t, or_equal)) return true;
    }
    return false;
  }
  return QueryTree(node.left, t, or_equal) ||
         QueryTree(node.right, t, or_equal);
}

}  // namespace skyline
}  // namespace hdsky
