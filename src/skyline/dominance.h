// Domination test over ranking attributes (Section 2.1).
//
// With values normalized so that smaller is better, tuple a dominates b iff
// a[Ai] <= b[Ai] on every ranking attribute and a[Ai] < b[Ai] on at least
// one. Tuples with identical ranking values are *equal* and do not
// dominate each other (both stay on the skyline); the paper's general
// positioning assumption makes this case immaterial for skyline tuples, but
// real datasets contain such duplicates and this convention keeps the
// skyline well defined for them. NULL (kNullValue) ranks worst, which the
// numeric comparison already realizes.

#ifndef HDSKY_SKYLINE_DOMINANCE_H_
#define HDSKY_SKYLINE_DOMINANCE_H_

#include <vector>

#include "data/table.h"
#include "data/value.h"

namespace hdsky {
namespace skyline {

/// Relation of tuple a to tuple b over the given ranking attributes.
enum class DomRelation : int8_t {
  kDominates,    // a dominates b
  kDominatedBy,  // b dominates a
  kEqual,        // identical on every ranking attribute
  kIncomparable,
};

/// Compares materialized tuples a and b on `ranking_attrs` (indices into
/// the tuples).
DomRelation Compare(const data::Tuple& a, const data::Tuple& b,
                    const std::vector<int>& ranking_attrs);

/// True iff a dominates b (strictly better on >= 1 ranking attribute, not
/// worse on any).
bool Dominates(const data::Tuple& a, const data::Tuple& b,
               const std::vector<int>& ranking_attrs);

/// Dominance test between rows of a table without materializing tuples.
DomRelation CompareRows(const data::Table& table, data::TupleId a,
                        data::TupleId b,
                        const std::vector<int>& ranking_attrs);

bool RowDominates(const data::Table& table, data::TupleId a, data::TupleId b,
                  const std::vector<int>& ranking_attrs);

/// Number of tuples in `table` that dominate row `t`; used by K-skyband
/// ground truth and tests.
int64_t CountDominators(const data::Table& table, data::TupleId t,
                        const std::vector<int>& ranking_attrs);

}  // namespace skyline
}  // namespace hdsky

#endif  // HDSKY_SKYLINE_DOMINANCE_H_
