#include "skyline/dominance.h"

namespace hdsky {
namespace skyline {

using data::Table;
using data::Tuple;
using data::TupleId;
using data::Value;

DomRelation Compare(const Tuple& a, const Tuple& b,
                    const std::vector<int>& ranking_attrs) {
  bool a_better = false;
  bool b_better = false;
  for (int attr : ranking_attrs) {
    const Value va = a[static_cast<size_t>(attr)];
    const Value vb = b[static_cast<size_t>(attr)];
    if (va < vb) {
      a_better = true;
    } else if (vb < va) {
      b_better = true;
    }
    if (a_better && b_better) return DomRelation::kIncomparable;
  }
  if (a_better) return DomRelation::kDominates;
  if (b_better) return DomRelation::kDominatedBy;
  return DomRelation::kEqual;
}

bool Dominates(const Tuple& a, const Tuple& b,
               const std::vector<int>& ranking_attrs) {
  return Compare(a, b, ranking_attrs) == DomRelation::kDominates;
}

DomRelation CompareRows(const Table& table, TupleId a, TupleId b,
                        const std::vector<int>& ranking_attrs) {
  bool a_better = false;
  bool b_better = false;
  for (int attr : ranking_attrs) {
    const Value va = table.value(a, attr);
    const Value vb = table.value(b, attr);
    if (va < vb) {
      a_better = true;
    } else if (vb < va) {
      b_better = true;
    }
    if (a_better && b_better) return DomRelation::kIncomparable;
  }
  if (a_better) return DomRelation::kDominates;
  if (b_better) return DomRelation::kDominatedBy;
  return DomRelation::kEqual;
}

bool RowDominates(const Table& table, TupleId a, TupleId b,
                  const std::vector<int>& ranking_attrs) {
  return CompareRows(table, a, b, ranking_attrs) == DomRelation::kDominates;
}

int64_t CountDominators(const Table& table, TupleId t,
                        const std::vector<int>& ranking_attrs) {
  int64_t count = 0;
  const int64_t n = table.num_rows();
  for (TupleId other = 0; other < n; ++other) {
    if (other == t) continue;
    if (RowDominates(table, other, t, ranking_attrs)) ++count;
  }
  return count;
}

}  // namespace skyline
}  // namespace hdsky
