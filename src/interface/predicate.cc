#include "interface/predicate.h"

#include <sstream>

namespace hdsky {
namespace interface {

std::string Interval::ToString() const {
  if (!constrained()) return "*";
  if (is_point()) return "=" + std::to_string(lower);
  std::ostringstream os;
  os << "[";
  if (has_lower()) {
    os << lower;
  } else {
    os << "-inf";
  }
  os << ",";
  if (has_upper()) {
    os << upper;
  } else {
    os << "+inf";
  }
  os << "]";
  return os.str();
}

}  // namespace interface
}  // namespace hdsky
