#include "interface/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "skyline/compute.h"

namespace hdsky {
namespace interface {

using common::Status;
using data::Table;
using data::TupleId;
using data::Value;

// --------------------------------------------------------------------
// StaticOrderRanking

Status StaticOrderRanking::Bind(const Table* table,
                                std::vector<int> ranking_attrs) {
  HDSKY_RETURN_IF_ERROR(
      RankingPolicy::Bind(table, std::move(ranking_attrs)));
  order_.resize(static_cast<size_t>(table->num_rows()));
  std::iota(order_.begin(), order_.end(), 0);
  SortStaticOrder(order_);
  rank_of_row_.resize(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    rank_of_row_[static_cast<size_t>(order_[i])] =
        static_cast<int64_t>(i);
  }
  return Status::OK();
}

void StaticOrderRanking::SortStaticOrder(
    std::vector<TupleId>& order) const {
  // Less is a strict total order (every policy tie-breaks down to the
  // row id), so a stable sort adds nothing over plain sort here; it is
  // kept for symmetry with the documented contract.
  std::stable_sort(order.begin(), order.end(),
                   [this](TupleId a, TupleId b) { return Less(a, b); });
}

std::vector<TupleId> StaticOrderRanking::SelectTopK(
    const std::vector<TupleId>& matches, int k) {
  std::vector<TupleId> sorted = matches;
  std::sort(sorted.begin(), sorted.end(), [this](TupleId a, TupleId b) {
    return rank_of_row_[static_cast<size_t>(a)] <
           rank_of_row_[static_cast<size_t>(b)];
  });
  if (static_cast<int>(sorted.size()) > k) {
    sorted.resize(static_cast<size_t>(k));
  }
  return sorted;
}

// --------------------------------------------------------------------
// LinearRanking

Status LinearRanking::Bind(const Table* table,
                           std::vector<int> ranking_attrs) {
  if (weights_.empty()) {
    weights_.assign(ranking_attrs.size(), 1.0);
  }
  if (weights_.size() != ranking_attrs.size()) {
    return Status::InvalidArgument(
        "LinearRanking weight count does not match ranking attributes");
  }
  for (double w : weights_) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument(
          "LinearRanking weights must be positive for "
          "domination-consistency");
    }
  }
  return StaticOrderRanking::Bind(table, std::move(ranking_attrs));
}

void LinearRanking::SortStaticOrder(std::vector<TupleId>& order) const {
  // Binding a 100k-row table through the generic Less path recomputes
  // both scores — m column gathers plus the weighted sum each — inside
  // every one of the ~n log n comparisons, and dominates interface
  // construction. Instead: one weighted column sweep precomputes every
  // score, a contiguous (score, id) sort orders by score alone, and a
  // final pass re-sorts each equal-score run by the documented
  // tie-break (lexicographic by ranking value, then id). The result is
  // the exact total order Less defines.
  const size_t n = order.size();
  std::vector<std::pair<double, TupleId>> keys(n);
  for (size_t r = 0; r < n; ++r) keys[r] = {0.0, order[r]};
  for (size_t i = 0; i < ranking_attrs_.size(); ++i) {
    const double w = weights_[i];
    const std::vector<Value>& col = table_->column(ranking_attrs_[i]);
    for (size_t r = 0; r < n; ++r) {
      keys[r].first +=
          w * static_cast<double>(col[static_cast<size_t>(keys[r].second)]);
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const std::pair<double, TupleId>& a,
               const std::pair<double, TupleId>& b) {
              return a.first < b.first;
            });
  const auto tie_less = [this](TupleId a, TupleId b) {
    for (int attr : ranking_attrs_) {
      const Value va = table_->value(a, attr);
      const Value vb = table_->value(b, attr);
      if (va != vb) return va < vb;
    }
    return a < b;
  };
  for (size_t r = 0; r < n; ++r) order[r] = keys[r].second;
  size_t run = 0;
  while (run < n) {
    size_t end = run + 1;
    while (end < n && keys[end].first == keys[run].first) ++end;
    if (end - run > 1) {
      std::sort(order.begin() + static_cast<int64_t>(run),
                order.begin() + static_cast<int64_t>(end), tie_less);
    }
    run = end;
  }
}

double LinearRanking::Score(TupleId row) const {
  double s = 0.0;
  for (size_t i = 0; i < ranking_attrs_.size(); ++i) {
    s += weights_[i] *
         static_cast<double>(table_->value(row, ranking_attrs_[i]));
  }
  return s;
}

bool LinearRanking::Less(TupleId a, TupleId b) const {
  const double sa = Score(a);
  const double sb = Score(b);
  if (sa != sb) return sa < sb;
  // Tie-break lexicographically by value so that equal scores with a
  // dominance relation (possible only through floating rounding) still
  // order consistently, then by id for determinism.
  for (int attr : ranking_attrs_) {
    const Value va = table_->value(a, attr);
    const Value vb = table_->value(b, attr);
    if (va != vb) return va < vb;
  }
  return a < b;
}

// --------------------------------------------------------------------
// LexicographicRanking

Status LexicographicRanking::Bind(const Table* table,
                                  std::vector<int> ranking_attrs) {
  order_attrs_ = priority_;
  for (int attr : ranking_attrs) {
    if (std::find(order_attrs_.begin(), order_attrs_.end(), attr) ==
        order_attrs_.end()) {
      order_attrs_.push_back(attr);
    }
  }
  for (int attr : priority_) {
    if (std::find(ranking_attrs.begin(), ranking_attrs.end(), attr) ==
        ranking_attrs.end()) {
      return Status::InvalidArgument(
          "LexicographicRanking priority attribute is not a ranking "
          "attribute");
    }
  }
  return StaticOrderRanking::Bind(table, std::move(ranking_attrs));
}

bool LexicographicRanking::Less(TupleId a, TupleId b) const {
  for (int attr : order_attrs_) {
    const Value va = table_->value(a, attr);
    const Value vb = table_->value(b, attr);
    if (va != vb) return va < vb;
  }
  return a < b;
}

// --------------------------------------------------------------------
// LayeredRandomRanking

Status LayeredRandomRanking::Bind(const Table* table,
                                  std::vector<int> ranking_attrs) {
  HDSKY_RETURN_IF_ERROR(
      RankingPolicy::Bind(table, std::move(ranking_attrs)));
  common::Rng rng(seed_);
  priority_.resize(static_cast<size_t>(table->num_rows()));
  for (auto& p : priority_) p = rng.Next();
  return Status::OK();
}

std::vector<TupleId> LayeredRandomRanking::SelectTopK(
    const std::vector<TupleId>& matches, int k) {
  // Peel only as many dominance layers as needed to fill k slots.
  std::vector<TupleId> result;
  std::vector<TupleId> remaining = matches;
  while (!remaining.empty() && static_cast<int>(result.size()) < k) {
    std::vector<TupleId> layer =
        skyline::SkylineSFS(*table_, remaining, ranking_attrs_);
    std::sort(layer.begin(), layer.end(), [this](TupleId a, TupleId b) {
      const uint64_t pa = priority_[static_cast<size_t>(a)];
      const uint64_t pb = priority_[static_cast<size_t>(b)];
      if (pa != pb) return pa > pb;  // higher priority first
      return a < b;
    });
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    std::vector<TupleId> layer_sorted = layer;
    std::sort(layer_sorted.begin(), layer_sorted.end());
    for (TupleId r : remaining) {
      if (!std::binary_search(layer_sorted.begin(), layer_sorted.end(),
                              r)) {
        next.push_back(r);
      }
    }
    for (TupleId t : layer) {
      if (static_cast<int>(result.size()) >= k) break;
      result.push_back(t);
    }
    remaining = std::move(next);
  }
  return result;
}

// --------------------------------------------------------------------
// AdversarialRanking

Status AdversarialRanking::Bind(const Table* table,
                                std::vector<int> ranking_attrs) {
  HDSKY_RETURN_IF_ERROR(
      RankingPolicy::Bind(table, std::move(ranking_attrs)));
  common::Rng rng(seed_);
  priority_.resize(static_cast<size_t>(table->num_rows()));
  for (auto& p : priority_) p = rng.Next();
  times_returned_.clear();
  return Status::OK();
}

std::vector<TupleId> AdversarialRanking::SelectTopK(
    const std::vector<TupleId>& matches, int k) {
  std::vector<TupleId> result;
  std::vector<TupleId> remaining = matches;
  while (!remaining.empty() && static_cast<int>(result.size()) < k) {
    std::vector<TupleId> layer =
        skyline::SkylineSFS(*table_, remaining, ranking_attrs_);
    std::sort(layer.begin(), layer.end(), [this](TupleId a, TupleId b) {
      // Most-returned first: maximizes repeat answers across the query
      // tree, which is what drives the worst-case bound of Section 3.2.
      const int64_t ca = times_returned_.count(a)
                             ? times_returned_.at(a)
                             : 0;
      const int64_t cb = times_returned_.count(b)
                             ? times_returned_.at(b)
                             : 0;
      if (ca != cb) return ca > cb;
      const uint64_t pa = priority_[static_cast<size_t>(a)];
      const uint64_t pb = priority_[static_cast<size_t>(b)];
      if (pa != pb) return pa > pb;
      return a < b;
    });
    std::vector<TupleId> layer_sorted = layer;
    std::sort(layer_sorted.begin(), layer_sorted.end());
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    for (TupleId r : remaining) {
      if (!std::binary_search(layer_sorted.begin(), layer_sorted.end(),
                              r)) {
        next.push_back(r);
      }
    }
    for (TupleId t : layer) {
      if (static_cast<int>(result.size()) >= k) break;
      result.push_back(t);
    }
    remaining = std::move(next);
  }
  for (TupleId t : result) ++times_returned_[t];
  return result;
}

// --------------------------------------------------------------------
// Factories

std::shared_ptr<RankingPolicy> MakeSumRanking() {
  return std::make_shared<LinearRanking>();
}

std::shared_ptr<RankingPolicy> MakeLinearRanking(std::vector<double> w) {
  return std::make_shared<LinearRanking>(std::move(w));
}

std::shared_ptr<RankingPolicy> MakeLexicographicRanking(
    std::vector<int> priority) {
  return std::make_shared<LexicographicRanking>(std::move(priority));
}

std::shared_ptr<RankingPolicy> MakeLayeredRandomRanking(uint64_t seed) {
  return std::make_shared<LayeredRandomRanking>(seed);
}

std::shared_ptr<RankingPolicy> MakeAdversarialRanking(uint64_t seed) {
  return std::make_shared<AdversarialRanking>(seed);
}

}  // namespace interface
}  // namespace hdsky
