#include "interface/cache_io.h"

#include <istream>
#include <ostream>

namespace hdsky {
namespace interface {
namespace cache_io {

using common::Result;
using common::Status;

namespace {

// Hex codec for the binary query signature.
std::string ToHex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

Result<std::string> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::IOError("odd-length hex signature");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::IOError("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

constexpr char kMagic[] = "hdsky-cache-v1";

}  // namespace

void WriteHeader(std::ostream& out, size_t count) {
  out << kMagic << " " << count << "\n";
}

void WriteEntry(std::ostream& out, const std::string& key,
                const QueryResult& result) {
  out << ToHex(key) << " " << (result.overflow ? 1 : 0) << " "
      << result.ids.size();
  for (size_t i = 0; i < result.ids.size(); ++i) {
    out << " " << result.ids[i];
    for (data::Value v : result.tuples[i]) out << " " << v;
  }
  out << "\n";
}

Status FinishWrite(std::ostream& out) {
  out.flush();
  if (!out) return Status::IOError("cache write failed");
  return Status::OK();
}

Result<std::unordered_map<std::string, QueryResult>> ReadAll(
    std::istream& in, int width) {
  std::string magic;
  size_t count = 0;
  if (!(in >> magic >> count) || magic != kMagic) {
    return Status::IOError("not an hdsky cache stream");
  }
  std::unordered_map<std::string, QueryResult> loaded;
  for (size_t e = 0; e < count; ++e) {
    std::string hex;
    int overflow = 0;
    size_t num_ids = 0;
    if (!(in >> hex >> overflow >> num_ids)) {
      return Status::IOError("truncated cache entry");
    }
    HDSKY_ASSIGN_OR_RETURN(std::string key, FromHex(hex));
    QueryResult result;
    result.overflow = overflow != 0;
    result.ids.reserve(num_ids);
    result.tuples.reserve(num_ids);
    for (size_t i = 0; i < num_ids; ++i) {
      data::TupleId id;
      if (!(in >> id)) return Status::IOError("truncated cache tuple");
      data::Tuple t(static_cast<size_t>(width));
      for (int a = 0; a < width; ++a) {
        if (!(in >> t[static_cast<size_t>(a)])) {
          return Status::IOError("truncated cache tuple values");
        }
      }
      result.ids.push_back(id);
      result.tuples.push_back(std::move(t));
    }
    loaded.emplace(std::move(key), std::move(result));
  }
  return loaded;
}

}  // namespace cache_io
}  // namespace interface
}  // namespace hdsky
