#include "interface/cache_io.h"

#include <algorithm>
#include <istream>
#include <ostream>

namespace hdsky {
namespace interface {
namespace cache_io {

using common::Result;
using common::Status;

namespace {

// Hex codec for the binary query signature.
std::string ToHex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

Result<std::string> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::IOError("odd-length hex signature");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::IOError("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

constexpr char kMagic[] = "hdsky-cache-v1";

}  // namespace

void WriteHeader(std::ostream& out, size_t count) {
  out << kMagic << " " << count << "\n";
}

void WriteEntry(std::ostream& out, const std::string& key,
                const QueryResult& result) {
  out << ToHex(key) << " " << (result.overflow ? 1 : 0) << " "
      << result.ids.size();
  for (size_t i = 0; i < result.ids.size(); ++i) {
    out << " " << result.ids[i];
    for (data::Value v : result.tuples[i]) out << " " << v;
  }
  out << "\n";
}

Status FinishWrite(std::ostream& out) {
  out.flush();
  if (!out) return Status::IOError("cache write failed");
  return Status::OK();
}

Result<std::unordered_map<std::string, QueryResult>> ReadAll(
    std::istream& in, int width) {
  if (width <= 0) return Status::InvalidArgument("width must be positive");
  std::string magic;
  size_t count = 0;
  if (!(in >> magic) || magic != kMagic) {
    return Status::IOError("not an hdsky cache stream");
  }
  if (!(in >> count)) {
    return Status::IOError("cache header missing entry count");
  }
  // A signature is the query's packed interval bounds: two Values per
  // attribute (see Query::Signature), so its decoded size is fixed by the
  // schema width.
  const size_t key_bytes =
      static_cast<size_t>(width) * 2 * sizeof(data::Value);
  std::unordered_map<std::string, QueryResult> loaded;
  for (size_t e = 0; e < count; ++e) {
    std::string hex;
    int overflow = 0;
    size_t num_ids = 0;
    if (!(in >> hex >> overflow >> num_ids)) {
      return Status::IOError("truncated cache entry");
    }
    HDSKY_ASSIGN_OR_RETURN(std::string key, FromHex(hex));
    if (key.size() != key_bytes) {
      return Status::IOError("signature does not match schema width");
    }
    if (overflow != 0 && overflow != 1) {
      return Status::IOError("overflow flag must be 0 or 1");
    }
    QueryResult result;
    result.overflow = overflow != 0;
    // The declared tuple count is untrusted: reserve only what the stream
    // could plausibly hold, and let push_back grow past it if a hostile
    // count lies low (it can't lie high — reads fail first).
    const size_t plausible = std::min<size_t>(num_ids, 4096);
    result.ids.reserve(plausible);
    result.tuples.reserve(plausible);
    for (size_t i = 0; i < num_ids; ++i) {
      data::TupleId id;
      if (!(in >> id)) return Status::IOError("truncated cache tuple");
      if (id < 0) return Status::IOError("negative tuple id");
      data::Tuple t(static_cast<size_t>(width));
      for (int a = 0; a < width; ++a) {
        if (!(in >> t[static_cast<size_t>(a)])) {
          return Status::IOError("truncated cache tuple values");
        }
      }
      result.ids.push_back(id);
      result.tuples.push_back(std::move(t));
    }
    if (!loaded.emplace(std::move(key), std::move(result)).second) {
      return Status::IOError("duplicate cache key");
    }
  }
  // Anything but trailing whitespace after the declared entries means the
  // count lied or the stream was corrupted mid-write.
  char trailing = 0;
  if (in >> trailing) {
    return Status::IOError("trailing bytes after cache entries");
  }
  return loaded;
}

}  // namespace cache_io
}  // namespace interface
}  // namespace hdsky
