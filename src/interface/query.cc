#include "interface/query.h"

#include <sstream>

namespace hdsky {
namespace interface {

std::string Query::ToString(const data::Schema& schema) const {
  std::ostringstream os;
  os << "SELECT * WHERE";
  bool any = false;
  for (size_t a = 0; a < intervals_.size(); ++a) {
    const Interval& iv = intervals_[a];
    if (!iv.constrained()) continue;
    if (any) os << " AND";
    any = true;
    os << " " << schema.attribute(static_cast<int>(a)).name << " "
       << iv.ToString();
  }
  if (!any) os << " *";
  return os.str();
}

}  // namespace interface
}  // namespace hdsky
