#include "interface/kd_index.h"

#include <algorithm>
#include <numeric>

namespace hdsky {
namespace interface {

using data::TupleId;
using data::Value;

namespace {
constexpr int64_t kLeafSize = 32;
}  // namespace

KdIndex::KdIndex(const data::Table* table,
                 const std::vector<int64_t>& rank_of_row)
    : table_(table) {
  rows_.resize(static_cast<size_t>(table->num_rows()));
  std::iota(rows_.begin(), rows_.end(), 0);
  if (!rows_.empty()) {
    nodes_.reserve(rows_.size() / (kLeafSize / 4) + 16);
    Build(0, static_cast<int64_t>(rows_.size()), 0);
  }
  // Sort each leaf's rows by global rank so leaf hits stream best-first.
  for (const Node& node : nodes_) {
    if (!node.is_leaf()) continue;
    std::sort(rows_.begin() + node.row_begin, rows_.begin() + node.row_end,
              [&](TupleId a, TupleId b) {
                return rank_of_row[static_cast<size_t>(a)] <
                       rank_of_row[static_cast<size_t>(b)];
              });
  }
}

int32_t KdIndex::Build(int64_t begin, int64_t end, int depth) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    nodes_[static_cast<size_t>(id)].row_begin = static_cast<int32_t>(begin);
    nodes_[static_cast<size_t>(id)].row_end = static_cast<int32_t>(end);
    return id;
  }
  const int num_attrs = table_->schema().num_attributes();
  // Round-robin dimension, skipping dimensions where every value in the
  // range ties (no split progress possible there).
  int dim = depth % num_attrs;
  Value pivot = 0;
  bool found = false;
  for (int tries = 0; tries < num_attrs; ++tries, dim = (dim + 1) % num_attrs) {
    const int64_t mid = begin + (end - begin) / 2;
    std::nth_element(rows_.begin() + begin, rows_.begin() + mid,
                     rows_.begin() + end, [&](TupleId a, TupleId b) {
                       return table_->value(a, dim) < table_->value(b, dim);
                     });
    pivot = table_->value(rows_[static_cast<size_t>(mid)], dim);
    // Partition strictly-less to the left; if that side is empty the
    // dimension cannot split this range.
    const auto split_it = std::partition(
        rows_.begin() + begin, rows_.begin() + end,
        [&](TupleId r) { return table_->value(r, dim) < pivot; });
    const int64_t split = split_it - rows_.begin();
    if (split > begin && split < end) {
      found = true;
      const int32_t left = Build(begin, split, depth + 1);
      const int32_t right = Build(split, end, depth + 1);
      Node& node = nodes_[static_cast<size_t>(id)];
      node.left = left;
      node.right = right;
      node.split_dim = dim;
      node.split_value = pivot;
      return id;
    }
  }
  (void)found;
  // Every attribute ties across the whole range: degenerate leaf.
  nodes_[static_cast<size_t>(id)].row_begin = static_cast<int32_t>(begin);
  nodes_[static_cast<size_t>(id)].row_end = static_cast<int32_t>(end);
  return id;
}

bool KdIndex::RetrieveMatches(const Query& q, int64_t abort_above,
                              std::vector<TupleId>* out) const {
  if (nodes_.empty()) return true;
  return Visit(0, q, abort_above, out);
}

bool KdIndex::Visit(int32_t node_id, const Query& q, int64_t abort_above,
                    std::vector<TupleId>* out) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.is_leaf()) {
    for (int32_t i = node.row_begin; i < node.row_end; ++i) {
      const TupleId row = rows_[static_cast<size_t>(i)];
      if (!q.MatchesRow(*table_, row)) continue;
      out->push_back(row);
      if (static_cast<int64_t>(out->size()) > abort_above) return false;
    }
    return true;
  }
  const Interval& iv = q.interval(node.split_dim);
  // Left subtree holds values < split_value, right subtree >= split_value.
  // NULL rows sit on the right (NULL sorts as +inf); a constrained
  // interval never admits NULL, which the leaf recheck enforces.
  if (iv.lower < node.split_value) {
    if (!Visit(node.left, q, abort_above, out)) return false;
  }
  if (iv.upper >= node.split_value) {
    if (!Visit(node.right, q, abort_above, out)) return false;
  }
  return true;
}

}  // namespace interface
}  // namespace hdsky
