#include "interface/kd_index.h"

#include <algorithm>
#include <numeric>

namespace hdsky {
namespace interface {

using data::TupleId;
using data::Value;
using exec::AttrBound;

namespace {
constexpr int64_t kLeafSize = 64;

/// Per-thread dense bound arrays for tree traversal (lo/hi per
/// dimension), rebuilt from the sparse bounds at each retrieval.
struct TraversalScratch {
  std::vector<Value> lo;
  std::vector<Value> hi;
  std::vector<int32_t> stack;     // pending node ids of the DFS walk
  std::vector<int32_t> big_sel;   // selection vector for oversized leaves
  std::vector<AttrBound> bounds;  // for the Query-taking overload
};

TraversalScratch& LocalScratch() {
  thread_local TraversalScratch scratch;
  return scratch;
}

}  // namespace

KdIndex::KdIndex(const data::Table* table,
                 const std::vector<int64_t>& rank_of_row)
    : table_(table), num_attrs_(table->schema().num_attributes()) {
  const size_t n = static_cast<size_t>(table->num_rows());
  rows_.resize(n);
  std::iota(rows_.begin(), rows_.end(), 0);
  // Row-major value mirror, permuted in lockstep with rows_. Build and
  // leaf packing touch every attribute of a row together, so keeping a
  // row's values on one cache line beats gathering them column by
  // column from the table.
  std::vector<Value> row_vals(n * static_cast<size_t>(num_attrs_));
  for (int a = 0; a < num_attrs_; ++a) {
    const std::vector<Value>& col = table->column(a);
    for (size_t r = 0; r < n; ++r) {
      row_vals[r * static_cast<size_t>(num_attrs_) +
               static_cast<size_t>(a)] = col[r];
    }
  }
  if (!rows_.empty()) {
    nodes_.reserve(rows_.size() / (kLeafSize / 4) + 16);
    Build(0, static_cast<int64_t>(rows_.size()), 0, row_vals);
  }
  // Sort each leaf's rows by global rank so leaf hits stream best-first,
  // then pack the leaf's values into contiguous per-attribute runs for
  // the kernel recheck.
  leaf_values_.resize(n * static_cast<size_t>(num_attrs_));
  ranks_.resize(n);
  leaf_zones_.assign(nodes_.size() * static_cast<size_t>(num_attrs_) * 2,
                     0);
  std::vector<std::pair<int64_t, int32_t>> by_rank(kLeafSize);
  std::vector<TupleId> leaf_rows;
  for (size_t node_id = 0; node_id < nodes_.size(); ++node_id) {
    const Node& node = nodes_[node_id];
    if (!node.is_leaf()) continue;
    const int64_t len = node.row_end - node.row_begin;
    if (len == 0) continue;
    // Sort leaf positions by rank through a contiguous key array, then
    // apply the permutation to rows_ and the value mirror together.
    by_rank.resize(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      by_rank[static_cast<size_t>(i)] = {
          rank_of_row[static_cast<size_t>(
              rows_[static_cast<size_t>(node.row_begin + i)])],
          static_cast<int32_t>(i)};
    }
    std::sort(by_rank.begin(), by_rank.end());
    Value* base =
        leaf_values_.data() +
        static_cast<int64_t>(node.row_begin) * num_attrs_;
    leaf_rows.resize(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      const int64_t src =
          node.row_begin + by_rank[static_cast<size_t>(i)].second;
      leaf_rows[static_cast<size_t>(i)] = rows_[static_cast<size_t>(src)];
      ranks_[static_cast<size_t>(node.row_begin + i)] =
          by_rank[static_cast<size_t>(i)].first;
      const Value* rv =
          row_vals.data() + static_cast<int64_t>(src) * num_attrs_;
      for (int a = 0; a < num_attrs_; ++a) {
        base[static_cast<int64_t>(a) * len + i] = rv[a];
      }
    }
    std::copy(leaf_rows.begin(), leaf_rows.end(),
              rows_.begin() + node.row_begin);
    Value* zone =
        leaf_zones_.data() +
        node_id * static_cast<size_t>(num_attrs_) * 2;
    for (int a = 0; a < num_attrs_; ++a) {
      const Value* run = base + static_cast<int64_t>(a) * len;
      Value zmin = run[0];
      Value zmax = run[0];
      for (int64_t i = 1; i < len; ++i) {
        zmin = std::min(zmin, run[i]);
        zmax = std::max(zmax, run[i]);
      }
      zone[2 * a] = zmin;
      zone[2 * a + 1] = zmax;
    }
  }
}

int64_t KdIndex::PartitionRange(int64_t begin, int64_t end, int dim,
                                Value pivot, std::vector<Value>& row_vals) {
  // Hoare-style two-pointer pass over rows_ and the row-major mirror
  // together: rows with value < pivot end up in [begin, split).
  const size_t m = static_cast<size_t>(num_attrs_);
  int64_t i = begin;
  int64_t j = end - 1;
  while (true) {
    while (i <= j && row_vals[static_cast<size_t>(i) * m +
                              static_cast<size_t>(dim)] < pivot) {
      ++i;
    }
    while (i <= j && row_vals[static_cast<size_t>(j) * m +
                              static_cast<size_t>(dim)] >= pivot) {
      --j;
    }
    if (i >= j) break;
    std::swap(rows_[static_cast<size_t>(i)], rows_[static_cast<size_t>(j)]);
    Value* a = row_vals.data() + static_cast<size_t>(i) * m;
    Value* b = row_vals.data() + static_cast<size_t>(j) * m;
    for (size_t k = 0; k < m; ++k) std::swap(a[k], b[k]);
    ++i;
    --j;
  }
  return i;
}

int32_t KdIndex::Build(int64_t begin, int64_t end, int depth,
                       std::vector<Value>& row_vals) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (depth > max_depth_) max_depth_ = depth;
  if (end - begin <= kLeafSize) {
    nodes_[static_cast<size_t>(id)].row_begin = static_cast<int32_t>(begin);
    nodes_[static_cast<size_t>(id)].row_end = static_cast<int32_t>(end);
    return id;
  }
  const int64_t len = end - begin;
  const size_t m = static_cast<size_t>(num_attrs_);
  // Round-robin dimension, skipping dimensions where every value in the
  // range ties (no split progress possible there). The pivot is the
  // exact median: a sampled-pivot variant builds ~40% faster but drifts
  // the tree a few levels deeper, and the walk pays for that on every
  // query — across a discovery run the per-query savings dwarf the
  // one-time selection cost. The median feeds a single in-place Hoare
  // partition of rows_ and the value mirror together.
  int dim = depth % num_attrs_;
  for (int tries = 0; tries < num_attrs_;
       ++tries, dim = (dim + 1) % num_attrs_) {
    thread_local std::vector<Value> vals;
    vals.resize(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      vals[static_cast<size_t>(i)] =
          row_vals[static_cast<size_t>(begin + i) * m +
                   static_cast<size_t>(dim)];
    }
    std::nth_element(vals.begin(), vals.begin() + len / 2, vals.end());
    const Value pivot = vals[static_cast<size_t>(len / 2)];
    const int64_t split = PartitionRange(begin, end, dim, pivot, row_vals);
    if (split > begin && split < end) {
      const int32_t left = Build(begin, split, depth + 1, row_vals);
      const int32_t right = Build(split, end, depth + 1, row_vals);
      Node& node = nodes_[static_cast<size_t>(id)];
      node.left = left;
      node.right = right;
      node.split_dim = dim;
      node.split_value = pivot;
      return id;
    }
  }
  // Every attribute ties across the whole range: degenerate leaf.
  nodes_[static_cast<size_t>(id)].row_begin = static_cast<int32_t>(begin);
  nodes_[static_cast<size_t>(id)].row_end = static_cast<int32_t>(end);
  return id;
}

bool KdIndex::RetrieveMatches(const Query& q, int64_t abort_above,
                              std::vector<TupleId>* out) const {
  TraversalScratch& scratch = LocalScratch();
  if (!exec::CollectBounds(q, &scratch.bounds)) return true;  // empty set
  return RetrieveMatches(scratch.bounds, abort_above, out);
}

bool KdIndex::RetrieveMatches(const std::vector<AttrBound>& bounds,
                              int64_t abort_above,
                              std::vector<TupleId>* out,
                              std::vector<Value>* out_vals,
                              std::vector<int64_t>* out_ranks) const {
  if (nodes_.empty()) return true;
  const exec::LeafMatchFn leaf_match = exec::LeafMatchKernel();
  TraversalScratch& scratch = LocalScratch();
  scratch.lo.assign(static_cast<size_t>(num_attrs_), Interval::kMin);
  scratch.hi.assign(static_cast<size_t>(num_attrs_), Interval::kMax);
  for (const AttrBound& b : bounds) {
    scratch.lo[static_cast<size_t>(b.attr)] = b.lo;
    scratch.hi[static_cast<size_t>(b.attr)] = b.hi;
  }
  const Value* lo = scratch.lo.data();
  const Value* hi = scratch.hi.data();
  // Iterative DFS with an explicit stack. The two descend-or-prune
  // decisions per internal node compile to conditional stack-pointer
  // bumps instead of data-dependent branches — the walk wanders through
  // value space, so those branches are inherently unpredictable and
  // mispredicts would dominate an otherwise cache-resident descent. A
  // pop of one internal node pushes at most a net +1 entry, so the
  // stack never exceeds tree depth + 1.
  scratch.stack.resize(static_cast<size_t>(max_depth_) + 2);
  int32_t* stack = scratch.stack.data();
  int32_t sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const int32_t node_id = stack[--sp];
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (!node.is_leaf()) {
      // Left subtree holds values < split_value, right subtree
      // >= split_value. NULL rows sit on the right (NULL sorts as
      // +inf); the clamped upper bound (hi < kNullValue on constrained
      // dims) skips all-NULL subtrees, and the leaf kernel recheck
      // stays authoritative. Right is pushed below left so matches
      // still stream out in the recursive left-then-right order.
      stack[sp] = node.right;
      sp += static_cast<int32_t>(hi[node.split_dim] >= node.split_value);
      stack[sp] = node.left;
      sp += static_cast<int32_t>(lo[node.split_dim] < node.split_value);
      continue;
    }
    const int64_t len = node.row_end - node.row_begin;
    if (len == 0) continue;
    // Split planes above this leaf constrain only the dimensions the
    // walk branched on; the leaf's zone map closes the rest, usually
    // rejecting the whole leaf before any kernel runs.
    const Value* zone = leaf_zones_.data() +
                        static_cast<size_t>(node_id) *
                            static_cast<size_t>(num_attrs_) * 2;
    bool zone_reject = false;
    for (const AttrBound& b : bounds) {
      if (b.lo > zone[2 * b.attr + 1] || b.hi < zone[2 * b.attr]) {
        zone_reject = true;
        break;
      }
    }
    if (zone_reject) continue;
    const Value* base =
        leaf_values_.data() +
        static_cast<int64_t>(node.row_begin) * num_attrs_;
    // Degenerate leaves (every attribute ties across the range) may
    // exceed kLeafSize; spill their selection vector to the scratch.
    int32_t sel_local[kLeafSize];
    int32_t* sel = sel_local;
    if (len > kLeafSize) {
      scratch.big_sel.resize(static_cast<size_t>(len));
      sel = scratch.big_sel.data();
    }
    int32_t count;
    if (bounds.empty()) {
      count = static_cast<int32_t>(len);
      for (int32_t i = 0; i < count; ++i) sel[i] = i;
    } else {
      count = leaf_match(base, len, bounds.data(),
                         static_cast<int>(bounds.size()), sel);
    }
    for (int32_t i = 0; i < count; ++i) {
      out->push_back(rows_[static_cast<size_t>(node.row_begin + sel[i])]);
    }
    if (out_vals != nullptr) {
      for (int32_t i = 0; i < count; ++i) {
        for (int a = 0; a < num_attrs_; ++a) {
          out_vals->push_back(base[static_cast<int64_t>(a) * len + sel[i]]);
        }
      }
    }
    if (out_ranks != nullptr) {
      for (int32_t i = 0; i < count; ++i) {
        out_ranks->push_back(
            ranks_[static_cast<size_t>(node.row_begin + sel[i])]);
      }
    }
    if (static_cast<int64_t>(out->size()) > abort_above) return false;
  }
  return true;
}

}  // namespace interface
}  // namespace hdsky
