// Per-attribute conjunctive constraint: a closed interval in rank space.
//
// Every predicate form the paper's taxonomy allows (Ai < v, Ai <= v,
// Ai = v, Ai > v, Ai >= v) is an interval with one or both ends set;
// strict bounds are normalized to inclusive ones because rank codes are
// integers (Section 2.2's footnote on the <-vs-<= reduction).

#ifndef HDSKY_INTERFACE_PREDICATE_H_
#define HDSKY_INTERFACE_PREDICATE_H_

#include <limits>
#include <string>

#include "data/value.h"

namespace hdsky {
namespace interface {

/// Closed interval [lower, upper] over one attribute. Default-constructed
/// constraints are unconstrained.
struct Interval {
  static constexpr data::Value kMin =
      std::numeric_limits<data::Value>::min();
  // NOTE: data::kNullValue is INT64_MAX; the largest constrainable value is
  // one below it, so an unconstrained upper bound still excludes nothing.
  static constexpr data::Value kMax =
      std::numeric_limits<data::Value>::max();

  data::Value lower = kMin;
  data::Value upper = kMax;

  bool has_lower() const { return lower != kMin; }
  bool has_upper() const { return upper != kMax; }
  bool constrained() const { return has_lower() || has_upper(); }
  bool is_point() const { return lower == upper; }
  /// True when no value can satisfy the interval.
  bool empty() const { return lower > upper; }

  /// Intersects with [lo, hi]; conjunctive semantics.
  void Intersect(data::Value lo, data::Value hi) {
    if (lo > lower) lower = lo;
    if (hi < upper) upper = hi;
  }

  /// True iff v satisfies the constraint. NULL matches only an
  /// unconstrained interval: a real search form excludes listings whose
  /// value is unknown once the user filters on that attribute.
  bool Contains(data::Value v) const {
    if (v == data::kNullValue) return !constrained();
    return lower <= v && v <= upper;
  }

  bool operator==(const Interval& other) const {
    return lower == other.lower && upper == other.upper;
  }

  std::string ToString() const;
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_PREDICATE_H_
