// The abstract hidden-database channel.
//
// Discovery algorithms program against this interface, not against the
// simulator: a HiddenDatabase is anything that can answer conjunctive
// top-k queries — the in-memory TopKInterface used by tests and
// benchmarks, a CallbackDatabase wrapping a real website's HTTP client,
// or any custom adapter. The contract mirrors Section 2.1:
//
//  * Execute returns at most k() tuples, best-ranked first, under a
//    DOMINATION-CONSISTENT proprietary ranking; `overflow` reports
//    whether the answer was truncated.
//  * schema() is public knowledge: attribute names, the SQ/RQ/PQ
//    interface taxonomy, and domains (all visible on a real search form).
//  * Predicates beyond an attribute's taxonomy fail with Unsupported;
//    exhausted rate limits fail with ResourceExhausted (algorithms turn
//    that into an anytime partial result).
//  * Returned tuple ids are opaque listing identifiers, stable across
//    queries; algorithms use them only for deduplication.

#ifndef HDSKY_INTERFACE_HIDDEN_DATABASE_H_
#define HDSKY_INTERFACE_HIDDEN_DATABASE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"
#include "interface/query.h"

namespace hdsky {
namespace interface {

/// Answer to one query.
struct QueryResult {
  /// Listing ids, best-ranked first; at most k. Opaque identifiers a real
  /// site would show; legitimate for deduplication only.
  std::vector<data::TupleId> ids;
  /// Materialized tuples aligned with `ids`.
  std::vector<data::Tuple> tuples;
  /// True when more than k tuples matched, i.e. the answer was truncated
  /// by the top-k constraint ("the query overflows", Section 2.1).
  bool overflow = false;

  bool empty() const { return ids.empty(); }
  int size() const { return static_cast<int>(ids.size()); }
};

/// Checks `q` against the per-attribute predicate taxonomy of `schema`
/// (SQ: upper bound or equality; RQ: anything; PQ/filter: equality only).
common::Status ValidateAgainstSchema(const data::Schema& schema,
                                     const Query& q);

/// Abstract top-k search channel.
class HiddenDatabase {
 public:
  virtual ~HiddenDatabase() = default;

  /// Executes a conjunctive query. Unsupported predicates and exhausted
  /// budgets surface as the corresponding Status codes.
  virtual common::Result<QueryResult> Execute(const Query& q) = 0;

  /// Buffer-reuse variant: answers into `*out`, recycling its existing
  /// heap allocations (the id array, the tuple array, and each tuple's
  /// value buffer), so a caller that keeps one QueryResult across a
  /// query loop issues queries without allocating in steady state. On a
  /// non-OK status the contents of *out are unspecified. The default
  /// adapts the by-value Execute; engines with allocation-free answer
  /// paths override it.
  virtual common::Status Execute(const Query& q, QueryResult* out) {
    common::Result<QueryResult> r = Execute(q);
    if (!r.ok()) return r.status();
    *out = std::move(r).value();
    return common::Status::OK();
  }

  /// The public search-form description.
  virtual const data::Schema& schema() const = 0;

  /// Page size of the interface.
  virtual int k() const = 0;

  /// Checks interface legality without issuing a query. The default
  /// consults the schema's taxonomy.
  virtual common::Status ValidateQuery(const Query& q) const {
    return ValidateAgainstSchema(schema(), q);
  }
};

/// Adapter for external backends (e.g. a scraper or HTTP API client):
/// the callback receives each query and returns the site's answer.
class CallbackDatabase : public HiddenDatabase {
 public:
  using ExecuteFn =
      std::function<common::Result<QueryResult>(const Query&)>;

  CallbackDatabase(data::Schema schema, int k, ExecuteFn execute)
      : schema_(std::move(schema)), k_(k), execute_(std::move(execute)) {}

  using HiddenDatabase::Execute;
  common::Result<QueryResult> Execute(const Query& q) override {
    HDSKY_RETURN_IF_ERROR(ValidateQuery(q));
    return execute_(q);
  }

  const data::Schema& schema() const override { return schema_; }
  int k() const override { return k_; }

 private:
  data::Schema schema_;
  int k_;
  ExecuteFn execute_;
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_HIDDEN_DATABASE_H_
