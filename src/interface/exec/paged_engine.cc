#include "interface/exec/paged_engine.h"

#include <algorithm>

#include "data/block_file.h"
#include "data/buffer_pool.h"

namespace hdsky {
namespace interface {
namespace exec {

using data::BlockFile;
using data::BufferPool;
using data::TupleId;
using data::Value;
using common::Result;
using common::Status;

namespace {

/// Per-thread reusable buffers, mirroring VectorEngine's discipline:
/// steady-state execution allocates only the QueryResult handed back.
struct Scratch {
  std::vector<int32_t> sel;
  std::vector<TupleId> ids;     // matched row ids, rank order
  std::vector<Value> values;    // matched rows' values, m per match
  struct Node {
    int level;
    int64_t entry;
  };
  std::vector<Node> stack;
};

Scratch& LocalScratch() {
  thread_local Scratch scratch;
  return scratch;
}

/// True when the zone entry (min/max per attribute) cannot intersect
/// some bound — same test as the in-memory BlockedColumns prune.
bool Prunable(const Value* zone, const std::vector<AttrBound>& bounds) {
  for (const AttrBound& bd : bounds) {
    const Value zmin = zone[2 * bd.attr];
    const Value zmax = zone[2 * bd.attr + 1];
    if (bd.lo > zmax || bd.hi < zmin) return true;
  }
  return false;
}

/// Scans one pinned data page, appending matches (id + values) to the
/// scratch until `want` total matches are held.
void ScanPage(const BlockFile& file, const uint8_t* page,
              const std::vector<AttrBound>& bounds, int64_t want,
              Scratch* scr) {
  const BlockFile::DataPageView view = file.data_page(page);
  const int64_t rows = view.rows;
  const int num_attrs = file.num_attributes();
  scr->sel.resize(static_cast<size_t>(rows));
  int32_t* sel = scr->sel.data();
  int32_t count = 0;

  const int64_t have = static_cast<int64_t>(scr->ids.size());
  if (bounds.empty()) {
    count = static_cast<int32_t>(std::min(rows, want - have));
    for (int32_t i = 0; i < count; ++i) sel[i] = i;
  } else if (4 * want >= rows) {
    // Broad query: the early-exit target is within reach of the first
    // chunks — run the same adaptive chunk loop as VectorEngine so we
    // never pay for the rest of the page.
    int64_t chunk = std::max<int64_t>(32, 4 * want);
    int64_t taken = have;
    for (int64_t cb = 0; cb < rows && taken < want;
         cb += chunk, chunk = std::min<int64_t>(chunk * 2, 1024)) {
      const int32_t n =
          static_cast<int32_t>(std::min<int64_t>(chunk, rows - cb));
      int32_t c = SelectInterval(
          view.values + static_cast<int64_t>(bounds[0].attr) * rows + cb,
          n, bounds[0], sel + count);
      for (size_t j = 1; j < bounds.size() && c > 0; ++j) {
        c = RefineInterval(
            view.values + static_cast<int64_t>(bounds[j].attr) * rows +
                cb,
            bounds[j], sel + count, c);
      }
      // Chunk positions are chunk-relative; rebase and clip to want.
      c = static_cast<int32_t>(
          std::min<int64_t>(c, want - taken));
      for (int32_t i = 0; i < c; ++i) {
        sel[count + i] += static_cast<int32_t>(cb);
      }
      count += c;
      taken += c;
    }
  } else {
    // Selective query: one fused pass over the whole page.
    count = LeafMatchKernel()(view.values, rows, bounds.data(),
                              static_cast<int>(bounds.size()), sel);
    count = static_cast<int32_t>(
        std::min<int64_t>(count, want - have));
  }

  for (int32_t i = 0; i < count; ++i) {
    const int64_t pos = sel[i];
    scr->ids.push_back(view.ids[pos]);
    for (int a = 0; a < num_attrs; ++a) {
      scr->values.push_back(
          view.values[static_cast<int64_t>(a) * rows + pos]);
    }
  }
}

/// How many upcoming data pages a scan hints to the pool before each
/// pin. Matches the pool's default readahead queue depth; hints past
/// the queue or the budget's free headroom are dropped by the pool.
constexpr int kPrefetchDepth = 8;

}  // namespace

PagedEngine::PagedEngine(const data::PagedTable* table) : table_(table) {}

data::BufferPool::Stats PagedEngine::pool_stats() const {
  return table_->pool_stats();
}

Status PagedEngine::ExecuteTopK(const std::vector<AttrBound>& bounds,
                                int k, QueryResult* out) const {
  const BlockFile& file = table_->file();
  BufferPool* pool = table_->pool();
  Scratch& scr = LocalScratch();
  scr.ids.clear();
  scr.values.clear();
  const int64_t want = static_cast<int64_t>(k) + 1;
  const int num_attrs = file.num_attributes();

  if (file.num_data_pages() > 0) {
    if (bounds.empty()) {
      // Unconstrained: the first pages in rank order are the answer —
      // no zone consultation needed.
      for (int64_t b = 0;
           b < file.num_data_pages() &&
           static_cast<int64_t>(scr.ids.size()) < want;
           ++b) {
        HDSKY_ASSIGN_OR_RETURN(BufferPool::PageRef ref,
                               pool->Pin(file.data_page_id(b)));
        // Readahead triggers on a proven multi-page scan, not on the
        // first page: broad queries fill k from page one, and a hint
        // issued for their benefit would fetch pages the query never
        // reads. Hinting after the pin (not before) keeps the pool's
        // headroom guard honest — it sees this page resident and only
        // accepts readahead the budget can hold — and the worker's
        // fetch+decode of the next pages overlaps this page's scan.
        if (b > 0) {
          int64_t ahead[kPrefetchDepth];
          int n_ahead = 0;
          for (int64_t nb = b + 1;
               nb < file.num_data_pages() && n_ahead < kPrefetchDepth;
               ++nb) {
            ahead[n_ahead++] = file.data_page_id(nb);
          }
          pool->Prefetch(ahead, n_ahead);
        }
        ScanPage(file, ref.data(), bounds, want, &scr);
      }
    } else {
      // DFS over the zone-map levels, children pushed in reverse so
      // data pages are visited in ascending — i.e. rank — order. One
      // index PageRef is cached per level: consecutive entries of a
      // level share pages, so the common case re-pins nothing.
      const int levels = file.num_index_levels();
      BufferPool::PageRef level_ref[data::kMaxIndexLevels];
      int64_t level_page[data::kMaxIndexLevels];
      std::fill(level_page, level_page + data::kMaxIndexLevels,
                int64_t{-1});
      auto zone_of = [&](int level,
                         int64_t entry) -> Result<const Value*> {
        const int64_t pid = file.index_page_id(level, entry);
        if (level_page[level] != pid) {
          HDSKY_ASSIGN_OR_RETURN(level_ref[level], pool->Pin(pid));
          level_page[level] = pid;
        }
        return file.index_entry(level_ref[level].data(),
                                entry % file.index_entries_per_page());
      };

      scr.stack.clear();
      int64_t data_pages_scanned = 0;
      const int top = levels - 1;
      for (int64_t e = file.level_entries(top) - 1; e >= 0; --e) {
        scr.stack.push_back(Scratch::Node{top, e});
      }
      while (!scr.stack.empty() &&
             static_cast<int64_t>(scr.ids.size()) < want) {
        const Scratch::Node node = scr.stack.back();
        scr.stack.pop_back();
        HDSKY_ASSIGN_OR_RETURN(const Value* zone,
                               zone_of(node.level, node.entry));
        if (Prunable(zone, bounds)) continue;
        if (node.level == 0) {
          HDSKY_ASSIGN_OR_RETURN(
              BufferPool::PageRef ref,
              pool->Pin(file.data_page_id(node.entry)));
          // The next leaves the DFS will visit sit on top of the
          // stack; hint their data pages so the pread worker overlaps
          // their fetch+decode with this page's scan. (Some may yet be
          // pruned — a readahead hint, not a promise.) Readahead only
          // starts once the scan has proven multi-page: a broad query
          // fills k from its first page, and prefetching on its behalf
          // fetches pages the query never reads. Hinting after the pin
          // keeps the pool's headroom guard honest: readahead is only
          // accepted when the budget can hold it alongside the page
          // being scanned.
          if (data_pages_scanned > 0) {
            int64_t ahead[kPrefetchDepth];
            int n_ahead = 0;
            for (auto it = scr.stack.rbegin();
                 it != scr.stack.rend() && n_ahead < kPrefetchDepth;
                 ++it) {
              if (it->level != 0) break;
              ahead[n_ahead++] = file.data_page_id(it->entry);
            }
            pool->Prefetch(ahead, n_ahead);
          }
          ++data_pages_scanned;
          ScanPage(file, ref.data(), bounds, want, &scr);
          continue;
        }
        const int64_t first =
            node.entry * file.index_fanout();
        const int64_t last = std::min(
            file.level_entries(node.level - 1),
            first + file.index_fanout());
        for (int64_t c = last - 1; c >= first; --c) {
          scr.stack.push_back(Scratch::Node{node.level - 1, c});
        }
      }
    }
  }

  out->overflow = static_cast<int64_t>(scr.ids.size()) > k;
  const size_t n =
      out->overflow ? static_cast<size_t>(k) : scr.ids.size();
  out->ids.resize(n);
  out->tuples.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out->ids[i] = scr.ids[i];
    data::Tuple& t = out->tuples[i];
    t.resize(static_cast<size_t>(num_attrs));
    for (int a = 0; a < num_attrs; ++a) {
      t[static_cast<size_t>(a)] =
          scr.values[i * static_cast<size_t>(num_attrs) +
                     static_cast<size_t>(a)];
    }
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace interface
}  // namespace hdsky
