// Out-of-core top-k query execution over a paged block file.
//
// The paged counterpart of exec::VectorEngine: data pages hold column
// blocks in baked static-rank order, so scanning page 0, 1, ... and
// positions within each page in order visits rows best-rank-first, and
// the engine stops the moment k+1 matches are known. Instead of the
// in-memory per-block zone array, pruning walks the file's zone-map
// index levels (an STR-packed tree over consecutive page ranges) — a
// pruned level-l entry skips fanout^l data pages without faulting a
// single one of them in. Every page touched, index and data alike, is
// pinned through the BufferPool, so the query working set stays inside
// the pool budget and every byte read has passed its CRC.
//
// The kernels are the PR 3 ones, unchanged: a page's PAX payload is
// exactly the attribute-major layout the fused AVX-512/scalar
// LeafMatchKernel consumes (selective queries, one pass over the whole
// page), while broad queries run the same chunked SelectInterval/
// RefineInterval loop as VectorEngine so the early exit still skips
// most of the first page. Matched rows are copied out while the page
// is pinned; results are bit-identical to the in-memory engine over
// the same data and ranking.

#ifndef HDSKY_INTERFACE_EXEC_PAGED_ENGINE_H_
#define HDSKY_INTERFACE_EXEC_PAGED_ENGINE_H_

#include <vector>

#include "common/status.h"
#include "data/paged_table.h"
#include "interface/exec/kernels.h"
#include "interface/hidden_database.h"

namespace hdsky {
namespace interface {
namespace exec {

class PagedEngine {
 public:
  /// `table` must outlive the engine. Thread-safe: concurrent
  /// ExecuteTopK calls share the buffer pool and nothing else.
  explicit PagedEngine(const data::PagedTable* table);

  /// Answers the conjunctive top-k query compiled into `bounds`: fills
  /// out->ids with the first k matching row ids in rank order,
  /// materializes out->tuples, and sets out->overflow when a (k+1)-th
  /// match exists. Fails (leaving *out* unspecified) only on storage
  /// errors — a page that no longer passes its CRC.
  common::Status ExecuteTopK(const std::vector<AttrBound>& bounds, int k,
                             QueryResult* out) const;

  /// The engine's I/O counters: a snapshot of the underlying pool's
  /// hit/miss/eviction/prefetch/bytes-read stats (the engine performs
  /// no I/O outside the pool, so these are exactly its costs).
  data::BufferPool::Stats pool_stats() const;

 private:
  const data::PagedTable* table_;
};

}  // namespace exec
}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_EXEC_PAGED_ENGINE_H_
