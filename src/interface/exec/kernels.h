// Branch-reduced predicate kernels over contiguous value runs.
//
// A conjunctive query compiles into one AttrBound per constrained
// attribute: a closed [lo, hi] with hi clamped below kNullValue, so the
// single unsigned range comparison `(v - lo) <= (hi - lo)` simultaneously
// enforces the interval AND rejects NULL (Interval::Contains semantics —
// NULL matches only unconstrained attributes). The kernels produce and
// refine selection vectors of block-relative positions with data-
// independent control flow, letting the compiler vectorize the comparison
// and keeping the branch predictor out of selectivity-dependent loops
// (MonetDB/X100-style column-at-a-time execution).

#ifndef HDSKY_INTERFACE_EXEC_KERNELS_H_
#define HDSKY_INTERFACE_EXEC_KERNELS_H_

#include <cstdint>
#include <vector>

#include "data/value.h"
#include "interface/query.h"

namespace hdsky {
namespace interface {
namespace exec {

/// One compiled conjunct: attribute index plus effective closed bounds.
/// Invariant: lo <= hi and hi < data::kNullValue.
struct AttrBound {
  int attr = 0;
  data::Value lo = 0;
  data::Value hi = 0;
};

/// Compiles q's constrained intervals into clamped bounds (out is
/// cleared first). Returns false when some constrained attribute is
/// unsatisfiable by any stored value — e.g. a point predicate at
/// kNullValue — in which case the query's match set is empty and out is
/// left in an unspecified state.
inline bool CollectBounds(const Query& q, std::vector<AttrBound>* out) {
  out->clear();
  const int m = q.num_attributes();
  for (int a = 0; a < m; ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const data::Value hi =
        iv.upper < data::kNullValue ? iv.upper : data::kNullValue - 1;
    if (iv.lower > hi) return false;
    out->push_back(AttrBound{a, iv.lower, hi});
  }
  return true;
}

/// True iff v lies in [b.lo, b.hi]. The unsigned-subtraction trick folds
/// both comparisons into one; it requires b.lo <= b.hi, which AttrBound
/// guarantees.
inline bool InBound(data::Value v, const AttrBound& b) {
  return static_cast<uint64_t>(v) - static_cast<uint64_t>(b.lo) <=
         static_cast<uint64_t>(b.hi) - static_cast<uint64_t>(b.lo);
}

/// Fills `sel` with the positions i in [0, n) where vals[i] satisfies
/// `b`; returns the match count. `sel` must have room for n entries.
inline int32_t SelectInterval(const data::Value* vals, int32_t n,
                              const AttrBound& b, int32_t* sel) {
  int32_t count = 0;
  for (int32_t i = 0; i < n; ++i) {
    sel[count] = i;
    count += static_cast<int32_t>(InBound(vals[i], b));
  }
  return count;
}

/// Keeps only the selected positions whose value also satisfies `b`,
/// compacting `sel` in place; returns the surviving count.
inline int32_t RefineInterval(const data::Value* vals, const AttrBound& b,
                              int32_t* sel, int32_t n) {
  int32_t count = 0;
  for (int32_t i = 0; i < n; ++i) {
    const int32_t pos = sel[i];
    sel[count] = pos;
    count += static_cast<int32_t>(InBound(vals[pos], b));
  }
  return count;
}

/// Fused conjunction kernel over an attribute-major value block: for a
/// block of `len` rows whose attribute-a run starts at base[a * len],
/// fills `sel` with the positions (ascending) satisfying every bound
/// and returns the match count. `num_bounds` must be >= 1 and `sel`
/// must have room for `len` entries.
using LeafMatchFn = int32_t (*)(const data::Value* base, int64_t len,
                                const AttrBound* bounds, int num_bounds,
                                int32_t* sel);

/// Resolves the best LeafMatchFn for this CPU, once per process: an
/// AVX-512 masked-compare/compress-store implementation where the ISA
/// is available, else the scalar SelectInterval + RefineInterval chain.
/// Both orderings are exact; they differ only in how the conjunction is
/// evaluated (all bounds fused per 8-row group vs. one pass per bound).
LeafMatchFn LeafMatchKernel();

}  // namespace exec
}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_EXEC_KERNELS_H_
