// Vectorized top-k query execution over a rank-ordered blocked column
// view (the tentpole of the columnar execution engine; see
// docs/performance.md).
//
// Blocks are laid out in static-rank order, so scanning block 0, 1, ...
// and positions within each block in order visits rows best-rank-first —
// the engine can stop the moment k+1 matches are known (the extra match
// only feeds the overflow flag), exactly like the naive rank-order scan
// it replaces, and returns bit-identical QueryResults. Per block it
// first consults the zone maps (skip the block when some constrained
// interval cannot intersect the block's [min, max]), then runs one
// branch-reduced kernel per constrained attribute, narrowing a selection
// vector. All scratch state is thread_local, so steady-state execution
// allocates only the returned QueryResult's own vectors.

#ifndef HDSKY_INTERFACE_EXEC_VECTOR_ENGINE_H_
#define HDSKY_INTERFACE_EXEC_VECTOR_ENGINE_H_

#include <vector>

#include "data/column_block.h"
#include "data/table.h"
#include "interface/exec/kernels.h"
#include "interface/hidden_database.h"
#include "interface/query.h"

namespace hdsky {
namespace interface {
namespace exec {

class VectorEngine {
 public:
  /// Snapshots `table` in `rank_order` (best rank first; a permutation
  /// of [0, num_rows)).
  VectorEngine(const data::Table& table,
               const std::vector<data::TupleId>& rank_order);

  /// Answers the conjunctive top-k query: fills out->ids with the first
  /// k matching row ids in rank order, materializes out->tuples from the
  /// columnar view, and sets out->overflow when a (k+1)-th match exists.
  /// `out` must be empty. The caller is responsible for rejecting
  /// queries with empty intervals (the engine still answers them
  /// correctly, just less cheaply than Query::HasEmptyInterval).
  void ExecuteTopK(const Query& q, int k, QueryResult* out) const;

  /// Same, over bounds already compiled by exec::CollectBounds — the
  /// hot-path entry used by TopKInterface.
  void ExecuteTopK(const std::vector<AttrBound>& bounds, int k,
                   QueryResult* out) const;

  const data::BlockedColumns& blocks() const { return blocks_; }

 private:
  data::BlockedColumns blocks_;
};

}  // namespace exec
}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_EXEC_VECTOR_ENGINE_H_
