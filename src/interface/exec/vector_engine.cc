#include "interface/exec/vector_engine.h"

#include <algorithm>

namespace hdsky {
namespace interface {
namespace exec {

using data::BlockedColumns;
using data::TupleId;
using data::Value;
using data::ZoneMap;

namespace {

/// Per-thread reusable buffers: query execution allocates nothing beyond
/// the QueryResult it hands back.
struct Scratch {
  std::vector<AttrBound> bounds;
  std::vector<int32_t> sel;
  std::vector<int64_t> matches;  // global positions, rank order
};

Scratch& LocalScratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace

VectorEngine::VectorEngine(const data::Table& table,
                           const std::vector<TupleId>& rank_order)
    : blocks_(table, rank_order) {}

void VectorEngine::ExecuteTopK(const Query& q, int k,
                               QueryResult* out) const {
  Scratch& scr = LocalScratch();
  if (!CollectBounds(q, &scr.bounds)) {
    // Empty match set; leave *out as a well-formed empty answer even
    // when the caller passed a previously-used result.
    out->ids.clear();
    out->tuples.clear();
    out->overflow = false;
    return;
  }
  ExecuteTopK(scr.bounds, k, out);
}

void VectorEngine::ExecuteTopK(const std::vector<AttrBound>& bounds,
                               int k, QueryResult* out) const {
  Scratch& scr = LocalScratch();
  scr.matches.clear();

  const int64_t want = static_cast<int64_t>(k) + 1;
  const int64_t num_blocks = blocks_.num_blocks();
  const int num_attrs = blocks_.num_attributes();
  scr.sel.resize(static_cast<size_t>(BlockedColumns::kBlockSize));
  int32_t* sel = scr.sel.data();

  for (int64_t b = 0;
       b < num_blocks &&
       static_cast<int64_t>(scr.matches.size()) < want;
       ++b) {
    const int64_t begin = blocks_.block_begin(b);
    const int64_t end = blocks_.block_end(b);
    if (bounds.empty()) {
      for (int64_t pos = begin;
           pos < end && static_cast<int64_t>(scr.matches.size()) < want;
           ++pos) {
        scr.matches.push_back(pos);
      }
      continue;
    }
    bool prunable = false;
    for (const AttrBound& bd : bounds) {
      const ZoneMap& z = blocks_.zone(b, bd.attr);
      if (bd.lo > z.max || bd.hi < z.min) {
        prunable = true;
        break;
      }
    }
    if (prunable) continue;
    // Kernels run over sub-block chunks so a broad query stops after
    // ~k matching rows instead of paying for the whole first block:
    // the chunked loop costs nothing extra when every chunk is needed,
    // and keeps the early exit competitive with a row-at-a-time scan
    // when the first few rows already satisfy k+1. The first chunk is
    // sized to the early-exit target (a broad query usually finishes
    // inside it), then chunks grow to amortize loop overhead when
    // selectivity turns out lower.
    int64_t chunk = std::max<int64_t>(32, 4 * want);
    for (int64_t cb = begin;
         cb < end && static_cast<int64_t>(scr.matches.size()) < want;
         cb += chunk, chunk = std::min<int64_t>(chunk * 2, 1024)) {
      const int32_t n =
          static_cast<int32_t>(std::min<int64_t>(chunk, end - cb));
      int32_t count =
          SelectInterval(blocks_.column(bounds[0].attr) + cb, n,
                         bounds[0], sel);
      for (size_t j = 1; j < bounds.size() && count > 0; ++j) {
        count = RefineInterval(blocks_.column(bounds[j].attr) + cb,
                               bounds[j], sel, count);
      }
      for (int32_t j = 0;
           j < count && static_cast<int64_t>(scr.matches.size()) < want;
           ++j) {
        scr.matches.push_back(cb + sel[j]);
      }
    }
  }

  out->overflow = static_cast<int64_t>(scr.matches.size()) > k;
  if (out->overflow) scr.matches.resize(static_cast<size_t>(k));
  // Resize-and-fill instead of clear-and-append: when the caller reuses
  // one QueryResult across queries, the id array, the tuple array, and
  // each tuple's value buffer keep their allocations.
  out->ids.resize(scr.matches.size());
  out->tuples.resize(scr.matches.size());
  for (size_t i = 0; i < scr.matches.size(); ++i) {
    const int64_t pos = scr.matches[i];
    out->ids[i] = blocks_.row_id(pos);
    data::Tuple& t = out->tuples[i];
    t.resize(static_cast<size_t>(num_attrs));
    for (int a = 0; a < num_attrs; ++a) {
      t[static_cast<size_t>(a)] = blocks_.column(a)[pos];
    }
  }
}

}  // namespace exec
}  // namespace interface
}  // namespace hdsky
