// Runtime-dispatched fused leaf-match kernel.
//
// The scalar selection-vector chain (SelectInterval + RefineInterval)
// makes one pass per bound and re-touches survivors; on small leaf
// blocks most of its cost is loop overhead and the dependent re-gather.
// The AVX-512 variant instead evaluates the whole conjunction for 8
// rows at a time in mask registers and emits surviving positions with a
// single compress-store — no selection-vector intermediate at all. The
// ISA is probed once per process via __builtin_cpu_supports, so the
// same binary runs on pre-AVX-512 hardware through the scalar path.

#include "interface/exec/kernels.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define HDSKY_EXEC_X86_DISPATCH 1
#endif

namespace hdsky {
namespace interface {
namespace exec {

namespace {

int32_t LeafMatchScalar(const data::Value* base, int64_t len,
                        const AttrBound* bounds, int num_bounds,
                        int32_t* sel) {
  int32_t count =
      SelectInterval(base + static_cast<int64_t>(bounds[0].attr) * len,
                     static_cast<int32_t>(len), bounds[0], sel);
  for (int j = 1; j < num_bounds && count > 0; ++j) {
    count = RefineInterval(
        base + static_cast<int64_t>(bounds[j].attr) * len, bounds[j], sel,
        count);
  }
  return count;
}

#ifdef HDSKY_EXEC_X86_DISPATCH
// Signed 64-bit compares are exact here: AttrBound clamps hi below
// kNullValue, and NULL (the largest value in sort order) therefore
// fails v <= hi on every constrained attribute, matching InBound.
__attribute__((target("avx512f,avx512vl"))) int32_t LeafMatchAvx512(
    const data::Value* base, int64_t len, const AttrBound* bounds,
    int num_bounds, int32_t* sel) {
  int32_t count = 0;
  int64_t i = 0;
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (; i + 8 <= len; i += 8) {
    __mmask8 ok = 0xFF;
    for (int j = 0; j < num_bounds; ++j) {
      const data::Value* run =
          base + static_cast<int64_t>(bounds[j].attr) * len;
      const __m512i v =
          _mm512_loadu_si512(static_cast<const void*>(run + i));
      ok &= _mm512_cmpge_epi64_mask(v, _mm512_set1_epi64(bounds[j].lo));
      ok &= _mm512_cmple_epi64_mask(v, _mm512_set1_epi64(bounds[j].hi));
      if (ok == 0) break;
    }
    if (ok == 0) continue;
    const __m256i pos =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i)), lane);
    _mm256_mask_compressstoreu_epi32(sel + count, ok, pos);
    count += __builtin_popcount(static_cast<unsigned>(ok));
  }
  for (; i < len; ++i) {
    uint32_t ok = 1;
    for (int j = 0; j < num_bounds; ++j) {
      ok &= static_cast<uint32_t>(InBound(
          base[static_cast<int64_t>(bounds[j].attr) * len + i], bounds[j]));
    }
    sel[count] = static_cast<int32_t>(i);
    count += static_cast<int32_t>(ok);
  }
  return count;
}
#endif  // HDSKY_EXEC_X86_DISPATCH

}  // namespace

LeafMatchFn LeafMatchKernel() {
  static const LeafMatchFn fn = [] {
#ifdef HDSKY_EXEC_X86_DISPATCH
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vl")) {
      return static_cast<LeafMatchFn>(&LeafMatchAvx512);
    }
#endif
    return static_cast<LeafMatchFn>(&LeafMatchScalar);
  }();
  return fn;
}

}  // namespace exec
}  // namespace interface
}  // namespace hdsky
