#include "interface/caching_database.h"

#include <fstream>
#include <sstream>

#include "common/fs_util.h"
#include "interface/cache_io.h"

namespace hdsky {
namespace interface {

using common::Result;
using common::Status;

Result<QueryResult> CachingDatabase::Execute(const Query& q) {
  // Only legal queries are cacheable (and the legality check is free).
  HDSKY_RETURN_IF_ERROR(ValidateQuery(q));
  std::string key = q.Signature();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  // Count the miss only once the backend actually produced an answer: a
  // failed fetch (rate limit, transport error) caches nothing and must
  // not skew the hit ratio — it is tallied separately so that
  // hits + misses + errors always equals the accepted Execute calls.
  auto fetched = backend_->Execute(q);
  if (!fetched.ok()) {
    ++errors_;
    return fetched.status();
  }
  ++misses_;
  QueryResult result = std::move(fetched).value();
  cache_.emplace(std::move(key), result);
  return result;
}

Status CachingDatabase::Save(std::ostream& out) const {
  cache_io::WriteHeader(out, cache_.size());
  for (const auto& [key, result] : cache_) {
    cache_io::WriteEntry(out, key, result);
  }
  return cache_io::FinishWrite(out);
}

Status CachingDatabase::SaveToFile(const std::string& path) const {
  // Serialize in memory, then replace the file atomically: a crash (or a
  // failed Save) must never destroy the previous cache — it holds paid
  // answers.
  std::ostringstream out;
  HDSKY_RETURN_IF_ERROR(Save(out));
  return common::AtomicWriteFile(path, out.str());
}

Status CachingDatabase::Load(std::istream& in) {
  HDSKY_ASSIGN_OR_RETURN(auto loaded,
                         cache_io::ReadAll(in, schema().num_attributes()));
  for (auto& [key, result] : loaded) {
    cache_[key] = std::move(result);
  }
  return Status::OK();
}

Status CachingDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

}  // namespace interface
}  // namespace hdsky
