// The hidden database's web search interface (Section 2.1).
//
// TopKInterface is the ONLY channel between discovery algorithms and the
// data. It
//  * validates each query against the per-attribute predicate capability
//    (SQ / RQ / PQ / filter equality) and rejects unsupported predicates,
//  * evaluates the conjunctive match set,
//  * applies the proprietary (domination-consistent) ranking function and
//    returns at most k tuples,
//  * counts every accepted query — the paper's sole efficiency measure —
//    and can enforce a per-client query budget like the rate limits real
//    sites impose (e.g. Google QPX's 50 free queries/day).
//
// What an algorithm may legitimately know: the schema (attribute names,
// interface types, domains), k, and query answers. The ranking function
// and n stay hidden.
//
// Execution engine (static-order rankings): queries compile into clamped
// per-attribute bounds once, then route by estimated selectivity — small
// match sets through the k-d index, everything else through the
// column-at-a-time scan of exec::VectorEngine (blocked columns in rank
// order, zone maps, selection-vector kernels, k+1 early exit). Every
// path returns bit-identical QueryResults; see docs/performance.md.

#ifndef HDSKY_INTERFACE_TOP_K_INTERFACE_H_
#define HDSKY_INTERFACE_TOP_K_INTERFACE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/paged_table.h"
#include "data/table.h"
#include "interface/exec/paged_engine.h"
#include "interface/exec/vector_engine.h"
#include "interface/hidden_database.h"
#include "interface/kd_index.h"
#include "interface/query.h"
#include "interface/ranking.h"

namespace hdsky {
namespace interface {

/// Counters over the life of an interface (or since ResetStats).
struct AccessStats {
  int64_t queries_issued = 0;
  int64_t tuples_returned = 0;
  /// Queries whose match set exceeded k.
  int64_t overflowed_queries = 0;
  /// Queries with an empty answer.
  int64_t empty_queries = 0;
  /// Queries rejected for unsupported predicates (not counted as issued).
  int64_t rejected_queries = 0;
};

struct TopKOptions {
  /// Maximum tuples per answer.
  int k = 1;
  /// Total queries allowed; 0 = unlimited. When exhausted, Execute
  /// returns ResourceExhausted — discovery algorithms turn that into an
  /// anytime partial result (Section 7.1).
  int64_t query_budget = 0;
  /// Build the selective-query k-d index when the table has at least
  /// this many rows; < 0 disables the index. The default keeps the
  /// historical behaviour (index pays off only when selective queries
  /// would otherwise scan a large table).
  int64_t kd_index_threshold = 4096;
  /// Floor of the k-d retrieval abort threshold: retrieval gives up —
  /// and the rank-order scan takes over — once more than
  /// max(2k + 2, kd_abort_floor) matches are enumerated. Must be >= 0.
  int64_t kd_abort_floor = 256;
  /// Column-at-a-time scan engine (blocked columns + zone maps +
  /// selection vectors) for static-order rankings; false falls back to
  /// the naive row-at-a-time rank-order scan. Answers are bit-identical
  /// either way (tests/exec_test.cc proves it); the switch exists for
  /// differential testing and perf baselines.
  bool vectorized_scan = true;
};

/// The simulated hidden web database: table + ranking policy + top-k
/// constraint. One concrete HiddenDatabase; real deployments adapt their
/// HTTP client through CallbackDatabase instead.
///
/// Thread safety: concurrent Execute calls are safe when the ranking
/// policy is stateless after Bind (static_order() != nullptr — true for
/// sum, lexicographic, and layered-random). Accounting and budget
/// enforcement are lock-free and exact under concurrency; execution
/// scratch is thread_local. Stateful rankings (adversarial) need
/// external synchronization; see docs/concurrency.md.
class TopKInterface : public HiddenDatabase {
 public:
  /// Binds `ranking` to the table. The table must outlive the interface.
  static common::Result<std::unique_ptr<TopKInterface>> Create(
      const data::Table* table, std::shared_ptr<RankingPolicy> ranking,
      TopKOptions options);

  /// Out-of-core variant over a paged block file: the rank order is the
  /// one baked into the file at pack time (no ranking policy is bound),
  /// and every query runs through exec::PagedEngine, pinning its working
  /// set through the table's buffer pool. Budget enforcement, per-thread
  /// accounting, and validation behave exactly as in the in-memory
  /// interface. kd_index_threshold / vectorized_scan are ignored. The
  /// paged table must outlive the interface.
  static common::Result<std::unique_ptr<TopKInterface>> CreatePaged(
      const data::PagedTable* paged, TopKOptions options);

  /// Executes a conjunctive query. Fails with Unsupported if a predicate
  /// exceeds the attribute's interface capability, ResourceExhausted when
  /// the query budget is spent.
  common::Result<QueryResult> Execute(const Query& q) override;

  /// Allocation-free answer path: after the first few queries on a
  /// thread, answering reuses *out's buffers and the per-thread scratch
  /// end to end, so steady-state execution performs no heap allocation.
  common::Status Execute(const Query& q, QueryResult* out) override;

  /// Checks interface legality without issuing (free of charge; mirrors a
  /// user inspecting the search form).
  common::Status ValidateQuery(const Query& q) const override;

  const data::Schema& schema() const override {
    return paged_ != nullptr ? paged_->schema() : table_->schema();
  }
  int k() const override { return options_.k; }

  /// Snapshot of the counters, merged over the internal per-thread
  /// tally shards. Cheap (a handful of relaxed loads) and safe to call
  /// concurrently with Execute.
  AccessStats stats() const;
  /// Zeroes all tally shards. Requires external synchronization with
  /// concurrent Execute calls (quiesce first).
  void ResetStats();

  /// Remaining query budget; -1 when unlimited. Safe concurrently with
  /// Execute (the value is naturally a momentary snapshot).
  int64_t RemainingBudget() const;
  /// Replaces the budget counting from now (0 = unlimited). Requires
  /// external synchronization with concurrent Execute calls.
  void SetBudget(int64_t budget);

 private:
  TopKInterface(const data::Table* table,
                std::shared_ptr<RankingPolicy> ranking, TopKOptions options)
      : table_(table), ranking_(std::move(ranking)), options_(options) {}
  TopKInterface(const data::PagedTable* paged, TopKOptions options)
      : table_(nullptr), paged_(paged), options_(options) {}

  /// True when some constrained interval lies wholly outside its
  /// attribute's domain — the answer is empty without evaluation.
  bool OutsideDomain(const Query& q) const;

  /// Expected match count of the compiled bounds under per-attribute
  /// uniformity over the schema domains. Only steers the index-vs-scan
  /// choice (both paths are exact), so a rough estimate is fine.
  double EstimateMatches(const std::vector<exec::AttrBound>& bounds) const;

  /// Query accounting is sharded to keep concurrent Execute calls from
  /// bouncing one cache line: each thread lands (by a thread_local-cached
  /// thread-id hash) on one of kStatShards cache-line-aligned tallies,
  /// and stats() merges them on demand. The budget check stays a single
  /// atomic because it must be globally exact.
  static constexpr size_t kStatShards = 8;
  struct alignas(64) StatShard {
    std::atomic<int64_t> queries_issued{0};
    std::atomic<int64_t> tuples_returned{0};
    std::atomic<int64_t> overflowed_queries{0};
    std::atomic<int64_t> empty_queries{0};
    std::atomic<int64_t> rejected_queries{0};
  };
  StatShard& LocalShard();

  const data::Table* table_;
  /// Out-of-core mode (CreatePaged): table_ and ranking_ are null, and
  /// every answer comes from paged_engine_ over the baked rank order.
  const data::PagedTable* paged_ = nullptr;
  std::shared_ptr<RankingPolicy> ranking_;
  TopKOptions options_;
  StatShard stat_shards_[kStatShards];
  std::atomic<int64_t> budget_used_{0};
  /// Fast paths for static-order rankings: inverse rank permutation, a
  /// k-d index for selective queries (large tables), and the vectorized
  /// rank-order scan engine for everything else.
  std::vector<int64_t> rank_of_row_;
  std::unique_ptr<KdIndex> index_;
  std::unique_ptr<exec::VectorEngine> engine_;
  std::unique_ptr<exec::PagedEngine> paged_engine_;
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_TOP_K_INTERFACE_H_
