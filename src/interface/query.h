// Conjunctive search query against a hidden database.
//
// A Query is one Interval per attribute, built through the predicate forms
// of Section 2.2. Interface legality (whether the constrained attribute
// actually supports the predicate) is checked by TopKInterface, not here,
// so algorithms can assemble queries freely and the interface remains the
// single enforcement point.

#ifndef HDSKY_INTERFACE_QUERY_H_
#define HDSKY_INTERFACE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/table.h"
#include "interface/predicate.h"

namespace hdsky {
namespace interface {

/// A conjunctive query: SELECT * FROM D WHERE /\ (Ai in [lo_i, hi_i]),
/// answered through the top-k interface.
class Query {
 public:
  Query() = default;
  /// An unconstrained SELECT * over `num_attributes` attributes.
  explicit Query(int num_attributes)
      : intervals_(static_cast<size_t>(num_attributes)) {}

  int num_attributes() const { return static_cast<int>(intervals_.size()); }

  const Interval& interval(int attr) const {
    return intervals_[static_cast<size_t>(attr)];
  }

  /// Ai < v (conjunctive with any existing constraint on Ai).
  Query& AddLessThan(int attr, data::Value v) {
    intervals_[static_cast<size_t>(attr)].Intersect(Interval::kMin, v - 1);
    return *this;
  }
  /// Ai <= v.
  Query& AddAtMost(int attr, data::Value v) {
    intervals_[static_cast<size_t>(attr)].Intersect(Interval::kMin, v);
    return *this;
  }
  /// Ai = v.
  Query& AddEquals(int attr, data::Value v) {
    intervals_[static_cast<size_t>(attr)].Intersect(v, v);
    return *this;
  }
  /// Ai > v.
  Query& AddGreaterThan(int attr, data::Value v) {
    intervals_[static_cast<size_t>(attr)].Intersect(v + 1, Interval::kMax);
    return *this;
  }
  /// Ai >= v.
  Query& AddAtLeast(int attr, data::Value v) {
    intervals_[static_cast<size_t>(attr)].Intersect(v, Interval::kMax);
    return *this;
  }

  bool IsConstrained(int attr) const {
    return intervals_[static_cast<size_t>(attr)].constrained();
  }

  /// True when some interval is inverted, i.e. nothing can match.
  bool HasEmptyInterval() const {
    for (const Interval& iv : intervals_) {
      if (iv.empty()) return true;
    }
    return false;
  }

  /// True iff row `row` of `table` satisfies every predicate.
  bool MatchesRow(const data::Table& table, data::TupleId row) const {
    for (size_t a = 0; a < intervals_.size(); ++a) {
      const Interval& iv = intervals_[a];
      if (!iv.constrained()) continue;
      if (!iv.Contains(table.value(row, static_cast<int>(a)))) return false;
    }
    return true;
  }

  /// True iff the materialized tuple satisfies every predicate.
  bool MatchesTuple(const data::Tuple& t) const {
    for (size_t a = 0; a < intervals_.size(); ++a) {
      const Interval& iv = intervals_[a];
      if (!iv.constrained()) continue;
      if (!iv.Contains(t[a])) return false;
    }
    return true;
  }

  std::string ToString(const data::Schema& schema) const;

  /// Compact byte string identifying the query region; equal signatures
  /// iff equal predicate sets. Used for duplicate-node detection.
  std::string Signature() const {
    std::string s;
    s.reserve(intervals_.size() * 2 * sizeof(data::Value));
    for (const Interval& iv : intervals_) {
      s.append(reinterpret_cast<const char*>(&iv.lower),
               sizeof(iv.lower));
      s.append(reinterpret_cast<const char*>(&iv.upper),
               sizeof(iv.upper));
    }
    return s;
  }

  bool operator==(const Query& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  std::vector<Interval> intervals_;
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_QUERY_H_
