// Proprietary ranking functions of the hidden database.
//
// The paper requires only domination-consistency (Section 2.1): if tuple t
// dominates t' and both match query q, t must be ranked above t'. This
// module ships four families:
//
//  * LinearRanking / SumRanking  — a monotone weighted score, the family
//    the paper uses to build its offline DOT interface ("SUM of attributes
//    for which smaller values are preferred ...").
//  * LexicographicRanking        — a priority order such as Blue Nile's /
//    Yahoo Autos' default "price low to high".
//  * LayeredRandomRanking        — for each query, the top-1 is uniform
//    over the matching skyline tuples: exactly the average-case model the
//    analysis of Section 3.2 assumes.
//  * AdversarialRanking          — a stateful heuristic that prefers
//    re-returning already-returned tuples, approximating the ill-behaved
//    ranking of the worst-case analysis.
//
// Policies with a query-independent total order (linear, lexicographic)
// expose it via static_order(), letting the interface answer queries with
// a single early-exit scan in rank order.

#ifndef HDSKY_INTERFACE_RANKING_H_
#define HDSKY_INTERFACE_RANKING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"

namespace hdsky {
namespace interface {

/// Abstract ranking function. Implementations must be domination-
/// consistent; tests/interface_test.cc property-checks every shipped
/// policy.
class RankingPolicy {
 public:
  virtual ~RankingPolicy() = default;

  virtual std::string name() const = 0;

  /// Binds the policy to the table it ranks. Called once by
  /// TopKInterface before any selection; may precompute state.
  virtual common::Status Bind(const data::Table* table,
                              std::vector<int> ranking_attrs) {
    table_ = table;
    ranking_attrs_ = std::move(ranking_attrs);
    return common::Status::OK();
  }

  /// Selects up to k ids from `matches` (the full match set of a query),
  /// best first. May mutate internal state (AdversarialRanking does).
  virtual std::vector<data::TupleId> SelectTopK(
      const std::vector<data::TupleId>& matches, int k) = 0;

  /// Query-independent total order (best first) if the policy has one;
  /// nullptr for dynamic policies. Enables the interface's fast path.
  virtual const std::vector<data::TupleId>* static_order() const {
    return nullptr;
  }

 protected:
  const data::Table* table_ = nullptr;
  std::vector<int> ranking_attrs_;
};

/// Base for policies defined by a fixed total order over rows.
class StaticOrderRanking : public RankingPolicy {
 public:
  common::Status Bind(const data::Table* table,
                      std::vector<int> ranking_attrs) override;

  std::vector<data::TupleId> SelectTopK(
      const std::vector<data::TupleId>& matches, int k) override;

  const std::vector<data::TupleId>* static_order() const override {
    return &order_;
  }

 protected:
  /// Strict weak order, best first. Must rank t above u whenever t
  /// dominates u.
  virtual bool Less(data::TupleId a, data::TupleId b) const = 0;

  /// Sorts `order` (prefilled with all row ids) into the policy's total
  /// order. Defaults to a comparison sort through Less; policies whose
  /// key is cheap to precompute override this to avoid recomputing it
  /// inside every comparison.
  virtual void SortStaticOrder(std::vector<data::TupleId>& order) const;

 private:
  std::vector<data::TupleId> order_;   // row ids, best first
  std::vector<int64_t> rank_of_row_;   // inverse permutation
};

/// score(t) = sum_i weight_i * t[Ai] over ranking attributes; all weights
/// must be positive (that is what makes it domination-consistent).
class LinearRanking : public StaticOrderRanking {
 public:
  /// Equal weights: the paper's SUM interface.
  LinearRanking() = default;
  /// Per-ranking-attribute weights, aligned with the bound
  /// ranking_attrs order.
  explicit LinearRanking(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  std::string name() const override { return "linear"; }
  common::Status Bind(const data::Table* table,
                      std::vector<int> ranking_attrs) override;

  double Score(data::TupleId row) const;

 protected:
  bool Less(data::TupleId a, data::TupleId b) const override;
  void SortStaticOrder(std::vector<data::TupleId>& order) const override;

 private:
  std::vector<double> weights_;
};

/// Ranks by the given attribute priority list (e.g. {price} = "price low
/// to high"); remaining ranking attributes break ties in schema order so
/// the order stays domination-consistent.
class LexicographicRanking : public StaticOrderRanking {
 public:
  /// `priority` holds schema attribute indices, highest priority first.
  explicit LexicographicRanking(std::vector<int> priority)
      : priority_(std::move(priority)) {}

  std::string name() const override { return "lexicographic"; }
  common::Status Bind(const data::Table* table,
                      std::vector<int> ranking_attrs) override;

 protected:
  bool Less(data::TupleId a, data::TupleId b) const override;

 private:
  std::vector<int> priority_;  // user-given priorities
  std::vector<int> order_attrs_;  // priorities + remaining ranking attrs
};

/// For every query, orders the matching tuples by dominance layer and,
/// within a layer, by a fixed per-tuple random priority. The top-1 is
/// therefore uniform over the matching skyline — the Section 3.2
/// average-case model — while the full order remains domination-
/// consistent. Deterministic given the seed.
class LayeredRandomRanking : public RankingPolicy {
 public:
  explicit LayeredRandomRanking(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "layered-random"; }
  common::Status Bind(const data::Table* table,
                      std::vector<int> ranking_attrs) override;

  std::vector<data::TupleId> SelectTopK(
      const std::vector<data::TupleId>& matches, int k) override;

 private:
  uint64_t seed_;
  std::vector<uint64_t> priority_;  // one per row
};

/// Stateful heuristic for worst-case-style behaviour: among the matching
/// skyline, prefers the tuple it has returned most often before (then a
/// fixed random priority), maximizing revisits in SQ-DB-SKY's tree.
/// Still domination-consistent per query.
class AdversarialRanking : public RankingPolicy {
 public:
  explicit AdversarialRanking(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "adversarial"; }
  common::Status Bind(const data::Table* table,
                      std::vector<int> ranking_attrs) override;

  std::vector<data::TupleId> SelectTopK(
      const std::vector<data::TupleId>& matches, int k) override;

 private:
  uint64_t seed_;
  std::vector<uint64_t> priority_;
  std::unordered_map<data::TupleId, int64_t> times_returned_;
};

/// Convenience factories.
std::shared_ptr<RankingPolicy> MakeSumRanking();
std::shared_ptr<RankingPolicy> MakeLinearRanking(std::vector<double> w);
std::shared_ptr<RankingPolicy> MakeLexicographicRanking(
    std::vector<int> priority);
std::shared_ptr<RankingPolicy> MakeLayeredRandomRanking(uint64_t seed);
std::shared_ptr<RankingPolicy> MakeAdversarialRanking(uint64_t seed);

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_RANKING_H_
