#include "interface/top_k_interface.h"

#include <algorithm>

namespace hdsky {
namespace interface {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::InterfaceType;
using data::Table;
using data::TupleId;

Result<std::unique_ptr<TopKInterface>> TopKInterface::Create(
    const Table* table, std::shared_ptr<RankingPolicy> ranking,
    TopKOptions options) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  if (ranking == nullptr) {
    return Status::InvalidArgument("ranking policy must not be null");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.query_budget < 0) {
    return Status::InvalidArgument("query budget must be >= 0");
  }
  HDSKY_RETURN_IF_ERROR(
      ranking->Bind(table, table->schema().ranking_attributes()));
  auto iface = std::unique_ptr<TopKInterface>(
      new TopKInterface(table, std::move(ranking), options));
  const std::vector<data::TupleId>* order =
      iface->ranking_->static_order();
  if (order != nullptr) {
    iface->rank_of_row_.resize(order->size());
    for (size_t i = 0; i < order->size(); ++i) {
      iface->rank_of_row_[static_cast<size_t>((*order)[i])] =
          static_cast<int64_t>(i);
    }
    // The index pays off only when selective queries would otherwise
    // full-scan a large table.
    constexpr int64_t kIndexThreshold = 4096;
    if (table->num_rows() >= kIndexThreshold) {
      iface->index_ =
          std::make_unique<KdIndex>(table, iface->rank_of_row_);
    }
  }
  return iface;
}

Status ValidateAgainstSchema(const data::Schema& schema, const Query& q) {
  if (q.num_attributes() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "query arity does not match the interface schema");
  }
  for (int a = 0; a < q.num_attributes(); ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const AttributeSpec& spec = schema.attribute(a);
    switch (spec.iface) {
      case InterfaceType::kRQ:
        break;  // both ends supported
      case InterfaceType::kSQ:
        // Only "better than v" (an upper bound, since smaller is better)
        // or equality.
        if (iv.has_lower() && !iv.is_point()) {
          return Status::Unsupported(
              "attribute " + spec.name +
              " supports single-ended ranges only (no lower bound)");
        }
        break;
      case InterfaceType::kPQ:
      case InterfaceType::kFilterEquality:
        if (!iv.is_point()) {
          return Status::Unsupported("attribute " + spec.name +
                                     " supports point predicates only");
        }
        break;
    }
  }
  return Status::OK();
}

Status TopKInterface::ValidateQuery(const Query& q) const {
  return ValidateAgainstSchema(table_->schema(), q);
}

bool TopKInterface::OutsideDomain(const Query& q) const {
  const data::Schema& schema = table_->schema();
  for (int a = 0; a < q.num_attributes(); ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const AttributeSpec& spec = schema.attribute(a);
    if (iv.upper < spec.domain_min || iv.lower > spec.domain_max) {
      return true;
    }
  }
  return false;
}

int64_t TopKInterface::RemainingBudget() const {
  if (options_.query_budget == 0) return -1;
  return options_.query_budget - budget_used_;
}

void TopKInterface::SetBudget(int64_t budget) {
  options_.query_budget = budget;
  budget_used_ = 0;
}

Result<QueryResult> TopKInterface::Execute(const Query& q) {
  const Status legal = ValidateQuery(q);
  if (!legal.ok()) {
    ++stats_.rejected_queries;
    return legal;
  }
  if (options_.query_budget > 0 &&
      budget_used_ >= options_.query_budget) {
    return Status::ResourceExhausted("query budget exhausted");
  }
  ++budget_used_;
  ++stats_.queries_issued;

  QueryResult result;
  const int k = options_.k;
  if (q.HasEmptyInterval() || OutsideDomain(q)) {
    ++stats_.empty_queries;
    return result;
  }

  const std::vector<TupleId>* order = ranking_->static_order();
  bool answered = false;
  if (order != nullptr && index_ != nullptr) {
    // Selective-query path: enumerate matches through the k-d index; if
    // the match set stays small, rank-sort it locally. Otherwise fall
    // through to the rank-order scan, which is fast for broad queries.
    const int64_t threshold =
        std::max<int64_t>(2 * static_cast<int64_t>(k) + 2, 256);
    std::vector<TupleId> matches;
    if (index_->RetrieveMatches(q, threshold, &matches)) {
      std::sort(matches.begin(), matches.end(),
                [this](TupleId a, TupleId b) {
                  return rank_of_row_[static_cast<size_t>(a)] <
                         rank_of_row_[static_cast<size_t>(b)];
                });
      result.overflow = static_cast<int>(matches.size()) > k;
      if (static_cast<int>(matches.size()) > k) {
        matches.resize(static_cast<size_t>(k));
      }
      result.ids = std::move(matches);
      answered = true;
    }
  }
  if (!answered && order != nullptr) {
    // Scan in global rank order, stop at the (k+1)-th match — the extra
    // match only feeds the overflow flag.
    for (TupleId row : *order) {
      if (!q.MatchesRow(*table_, row)) continue;
      if (result.size() == k) {
        result.overflow = true;
        break;
      }
      result.ids.push_back(row);
    }
    answered = true;
  }
  if (!answered) {
    std::vector<TupleId> matches;
    const int64_t n = table_->num_rows();
    for (TupleId row = 0; row < n; ++row) {
      if (q.MatchesRow(*table_, row)) matches.push_back(row);
    }
    result.overflow = static_cast<int>(matches.size()) > k;
    result.ids = ranking_->SelectTopK(matches, k);
  }

  result.tuples.reserve(result.ids.size());
  for (TupleId id : result.ids) {
    result.tuples.push_back(table_->GetTuple(id));
  }
  stats_.tuples_returned += result.size();
  if (result.overflow) ++stats_.overflowed_queries;
  if (result.empty()) ++stats_.empty_queries;
  return result;
}

}  // namespace interface
}  // namespace hdsky
