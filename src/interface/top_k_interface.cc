#include "interface/top_k_interface.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace hdsky {
namespace interface {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::InterfaceType;
using data::Table;
using data::TupleId;

Result<std::unique_ptr<TopKInterface>> TopKInterface::Create(
    const Table* table, std::shared_ptr<RankingPolicy> ranking,
    TopKOptions options) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  if (ranking == nullptr) {
    return Status::InvalidArgument("ranking policy must not be null");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.query_budget < 0) {
    return Status::InvalidArgument("query budget must be >= 0");
  }
  if (options.kd_abort_floor < 0) {
    return Status::InvalidArgument("kd_abort_floor must be >= 0");
  }
  HDSKY_RETURN_IF_ERROR(
      ranking->Bind(table, table->schema().ranking_attributes()));
  auto iface = std::unique_ptr<TopKInterface>(
      new TopKInterface(table, std::move(ranking), options));
  const std::vector<data::TupleId>* order =
      iface->ranking_->static_order();
  if (order != nullptr) {
    iface->rank_of_row_.resize(order->size());
    for (size_t i = 0; i < order->size(); ++i) {
      iface->rank_of_row_[static_cast<size_t>((*order)[i])] =
          static_cast<int64_t>(i);
    }
    // The index pays off only when selective queries would otherwise
    // full-scan a large table.
    if (options.kd_index_threshold >= 0 &&
        table->num_rows() >= options.kd_index_threshold) {
      iface->index_ =
          std::make_unique<KdIndex>(table, iface->rank_of_row_);
    }
    if (options.vectorized_scan) {
      iface->engine_ = std::make_unique<exec::VectorEngine>(*table, *order);
    }
  }
  return iface;
}

Result<std::unique_ptr<TopKInterface>> TopKInterface::CreatePaged(
    const data::PagedTable* paged, TopKOptions options) {
  if (paged == nullptr) {
    return Status::InvalidArgument("paged table must not be null");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.query_budget < 0) {
    return Status::InvalidArgument("query budget must be >= 0");
  }
  auto iface = std::unique_ptr<TopKInterface>(
      new TopKInterface(paged, options));
  iface->paged_engine_ = std::make_unique<exec::PagedEngine>(paged);
  return iface;
}

Status ValidateAgainstSchema(const data::Schema& schema, const Query& q) {
  if (q.num_attributes() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "query arity does not match the interface schema");
  }
  for (int a = 0; a < q.num_attributes(); ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const AttributeSpec& spec = schema.attribute(a);
    switch (spec.iface) {
      case InterfaceType::kRQ:
        break;  // both ends supported
      case InterfaceType::kSQ:
        // Only "better than v" (an upper bound, since smaller is better)
        // or equality.
        if (iv.has_lower() && !iv.is_point()) {
          return Status::Unsupported(
              "attribute " + spec.name +
              " supports single-ended ranges only (no lower bound)");
        }
        break;
      case InterfaceType::kPQ:
      case InterfaceType::kFilterEquality:
        if (!iv.is_point()) {
          return Status::Unsupported("attribute " + spec.name +
                                     " supports point predicates only");
        }
        break;
    }
  }
  return Status::OK();
}

Status TopKInterface::ValidateQuery(const Query& q) const {
  return ValidateAgainstSchema(schema(), q);
}

bool TopKInterface::OutsideDomain(const Query& q) const {
  const data::Schema& schema = this->schema();
  for (int a = 0; a < q.num_attributes(); ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const AttributeSpec& spec = schema.attribute(a);
    if (iv.upper < spec.domain_min || iv.lower > spec.domain_max) {
      return true;
    }
  }
  return false;
}

double TopKInterface::EstimateMatches(
    const std::vector<exec::AttrBound>& bounds) const {
  double est = static_cast<double>(table_->num_rows());
  const data::Schema& schema = table_->schema();
  for (const exec::AttrBound& b : bounds) {
    const AttributeSpec& spec = schema.attribute(b.attr);
    const double width = static_cast<double>(spec.domain_max) -
                         static_cast<double>(spec.domain_min) + 1.0;
    const double lo =
        std::max(static_cast<double>(b.lo),
                 static_cast<double>(spec.domain_min));
    const double hi =
        std::min(static_cast<double>(b.hi),
                 static_cast<double>(spec.domain_max));
    const double covered = hi - lo + 1.0;
    if (covered <= 0.0) return 0.0;
    est *= covered / width;
  }
  return est;
}

TopKInterface::StatShard& TopKInterface::LocalShard() {
  // The modulus is a class constant, so the slot survives across
  // interface instances; hashing std::thread::id once per thread keeps
  // it off the per-query hot path.
  thread_local const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kStatShards;
  return stat_shards_[slot];
}

AccessStats TopKInterface::stats() const {
  AccessStats merged;
  for (const StatShard& s : stat_shards_) {
    merged.queries_issued +=
        s.queries_issued.load(std::memory_order_relaxed);
    merged.tuples_returned +=
        s.tuples_returned.load(std::memory_order_relaxed);
    merged.overflowed_queries +=
        s.overflowed_queries.load(std::memory_order_relaxed);
    merged.empty_queries +=
        s.empty_queries.load(std::memory_order_relaxed);
    merged.rejected_queries +=
        s.rejected_queries.load(std::memory_order_relaxed);
  }
  return merged;
}

void TopKInterface::ResetStats() {
  for (StatShard& s : stat_shards_) {
    s.queries_issued.store(0, std::memory_order_relaxed);
    s.tuples_returned.store(0, std::memory_order_relaxed);
    s.overflowed_queries.store(0, std::memory_order_relaxed);
    s.empty_queries.store(0, std::memory_order_relaxed);
    s.rejected_queries.store(0, std::memory_order_relaxed);
  }
}

int64_t TopKInterface::RemainingBudget() const {
  if (options_.query_budget == 0) return -1;
  return options_.query_budget -
         budget_used_.load(std::memory_order_relaxed);
}

void TopKInterface::SetBudget(int64_t budget) {
  options_.query_budget = budget;
  budget_used_.store(0, std::memory_order_relaxed);
}

Result<QueryResult> TopKInterface::Execute(const Query& q) {
  QueryResult result;
  HDSKY_RETURN_IF_ERROR(Execute(q, &result));
  return result;
}

Status TopKInterface::Execute(const Query& q, QueryResult* out) {
  StatShard& tally = LocalShard();
  const Status legal = ValidateQuery(q);
  if (!legal.ok()) {
    tally.rejected_queries.fetch_add(1, std::memory_order_relaxed);
    return legal;
  }
  // Exact admission under concurrency: optimistically claim a slot, and
  // return it if the budget was already spent (the claim-then-undo pair
  // can transiently overshoot budget_used_ but never admits more than
  // query_budget queries).
  if (options_.query_budget > 0) {
    const int64_t used =
        budget_used_.fetch_add(1, std::memory_order_relaxed);
    if (used >= options_.query_budget) {
      budget_used_.fetch_sub(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("query budget exhausted");
    }
  }
  // Unlimited budgets skip the counter entirely: nothing reads
  // budget_used_ until SetBudget installs a limit, and SetBudget zeroes
  // it then.
  tally.queries_issued.fetch_add(1, std::memory_order_relaxed);

  out->ids.clear();
  out->overflow = false;
  // out->tuples is NOT cleared here: the answer paths below resize it to
  // the exact answer size, which preserves already-allocated tuple
  // buffers for reuse. `tuples_filled` tracks whether a path materialized
  // tuples itself; the tail materializes from the column store otherwise.
  bool tuples_filled = false;
  const int k = options_.k;
  if (q.HasEmptyInterval() || OutsideDomain(q)) {
    tally.empty_queries.fetch_add(1, std::memory_order_relaxed);
    out->tuples.clear();
    return Status::OK();
  }

  if (paged_engine_ != nullptr) {
    // Out-of-core path: compile bounds and walk the paged zone tree in
    // the file's baked rank order. A storage failure (CRC on a page)
    // undoes this query's accounting — it was never answered.
    thread_local std::vector<exec::AttrBound> paged_bounds;
    if (!exec::CollectBounds(q, &paged_bounds)) {
      tally.empty_queries.fetch_add(1, std::memory_order_relaxed);
      out->tuples.clear();
      return Status::OK();
    }
    const Status stored = paged_engine_->ExecuteTopK(paged_bounds, k, out);
    if (!stored.ok()) {
      tally.queries_issued.fetch_sub(1, std::memory_order_relaxed);
      if (options_.query_budget > 0) {
        budget_used_.fetch_sub(1, std::memory_order_relaxed);
      }
      return stored;
    }
    tally.tuples_returned.fetch_add(out->size(),
                                    std::memory_order_relaxed);
    if (out->overflow) {
      tally.overflowed_queries.fetch_add(1, std::memory_order_relaxed);
    }
    if (out->empty()) {
      tally.empty_queries.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }

  const std::vector<TupleId>* order = ranking_->static_order();
  bool answered = false;
  if (order != nullptr) {
    // Compile the conjunction once; the bounds feed the index walk, the
    // vectorized scan, and the selectivity estimate alike.
    thread_local std::vector<exec::AttrBound> bounds;
    thread_local std::vector<TupleId> kd_matches;
    if (!exec::CollectBounds(q, &bounds)) {
      // Some constrained attribute admits no stored value (e.g. a point
      // predicate at the NULL sentinel): the answer is empty.
      answered = true;
    }
    if (!answered && index_ != nullptr) {
      // Selective-query path: enumerate matches through the k-d index; if
      // the match set stays small, rank-sort it locally. Broad queries —
      // where the walk would only abort at the threshold — skip straight
      // to the rank-order scan, which is fast exactly for them. The
      // domain-uniformity estimate only picks the path; both paths are
      // exact, so a wrong guess costs time, never correctness.
      const int64_t threshold = std::max<int64_t>(
          2 * static_cast<int64_t>(k) + 2, options_.kd_abort_floor);
      const bool likely_selective =
          engine_ == nullptr ||
          EstimateMatches(bounds) <=
              4.0 * static_cast<double>(threshold);
      if (likely_selective) {
        thread_local std::vector<data::Value> kd_vals;
        thread_local std::vector<int64_t> kd_ranks;
        thread_local std::vector<int32_t> kd_idx;
        kd_matches.clear();
        kd_vals.clear();
        kd_ranks.clear();
        if (index_->RetrieveMatches(bounds, threshold, &kd_matches,
                                    &kd_vals, &kd_ranks)) {
          // Sort a permutation rather than the matches so the leaf-local
          // value copies stay aligned; the sort keys off the small
          // contiguous rank copy-out, and tuples materialize from the
          // leaf-local value copies — neither step gathers from an
          // n-sized table.
          const int m = table_->schema().num_attributes();
          kd_idx.resize(kd_matches.size());
          for (size_t i = 0; i < kd_idx.size(); ++i) {
            kd_idx[i] = static_cast<int32_t>(i);
          }
          std::sort(kd_idx.begin(), kd_idx.end(),
                    [](int32_t a, int32_t b) {
                      return kd_ranks[static_cast<size_t>(a)] <
                             kd_ranks[static_cast<size_t>(b)];
                    });
          out->overflow = static_cast<int>(kd_matches.size()) > k;
          const size_t take =
              std::min(kd_matches.size(), static_cast<size_t>(k));
          out->ids.resize(take);
          out->tuples.resize(take);
          for (size_t i = 0; i < take; ++i) {
            const size_t s = static_cast<size_t>(kd_idx[i]);
            out->ids[i] = kd_matches[s];
            data::Tuple& t = out->tuples[i];
            t.resize(static_cast<size_t>(m));
            const data::Value* src =
                kd_vals.data() + s * static_cast<size_t>(m);
            for (int a = 0; a < m; ++a) t[static_cast<size_t>(a)] = src[a];
          }
          tuples_filled = true;
          answered = true;
        }
      }
    }
    if (!answered && engine_ != nullptr) {
      // Column-at-a-time rank-order scan: zone-map block skipping,
      // selection-vector kernels, early exit at the (k+1)-th match.
      engine_->ExecuteTopK(bounds, k, out);
      tuples_filled = true;
      answered = true;
    }
    if (!answered) {
      // Naive fallback: scan in global rank order, stop at the (k+1)-th
      // match — the extra match only feeds the overflow flag.
      for (TupleId row : *order) {
        if (!q.MatchesRow(*table_, row)) continue;
        if (out->size() == k) {
          out->overflow = true;
          break;
        }
        out->ids.push_back(row);
      }
      answered = true;
    }
  }
  if (!answered) {
    std::vector<TupleId> matches;
    const int64_t n = table_->num_rows();
    for (TupleId row = 0; row < n; ++row) {
      if (q.MatchesRow(*table_, row)) matches.push_back(row);
    }
    out->overflow = static_cast<int>(matches.size()) > k;
    out->ids = ranking_->SelectTopK(matches, k);
  }

  if (!tuples_filled) {
    // Materialize straight from the columns (the index and engine paths
    // already filled tuples from their own columnar views).
    const int m = table_->schema().num_attributes();
    out->tuples.resize(out->ids.size());
    for (size_t i = 0; i < out->ids.size(); ++i) {
      data::Tuple& t = out->tuples[i];
      t.resize(static_cast<size_t>(m));
      for (int a = 0; a < m; ++a) {
        t[static_cast<size_t>(a)] = table_->value(out->ids[i], a);
      }
    }
  }
  tally.tuples_returned.fetch_add(out->size(),
                                  std::memory_order_relaxed);
  if (out->overflow) {
    tally.overflowed_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (out->empty()) {
    tally.empty_queries.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace interface
}  // namespace hdsky
