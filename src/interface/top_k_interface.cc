#include "interface/top_k_interface.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace hdsky {
namespace interface {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::InterfaceType;
using data::Table;
using data::TupleId;

Result<std::unique_ptr<TopKInterface>> TopKInterface::Create(
    const Table* table, std::shared_ptr<RankingPolicy> ranking,
    TopKOptions options) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  if (ranking == nullptr) {
    return Status::InvalidArgument("ranking policy must not be null");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.query_budget < 0) {
    return Status::InvalidArgument("query budget must be >= 0");
  }
  HDSKY_RETURN_IF_ERROR(
      ranking->Bind(table, table->schema().ranking_attributes()));
  auto iface = std::unique_ptr<TopKInterface>(
      new TopKInterface(table, std::move(ranking), options));
  const std::vector<data::TupleId>* order =
      iface->ranking_->static_order();
  if (order != nullptr) {
    iface->rank_of_row_.resize(order->size());
    for (size_t i = 0; i < order->size(); ++i) {
      iface->rank_of_row_[static_cast<size_t>((*order)[i])] =
          static_cast<int64_t>(i);
    }
    // The index pays off only when selective queries would otherwise
    // full-scan a large table.
    constexpr int64_t kIndexThreshold = 4096;
    if (table->num_rows() >= kIndexThreshold) {
      iface->index_ =
          std::make_unique<KdIndex>(table, iface->rank_of_row_);
    }
  }
  return iface;
}

Status ValidateAgainstSchema(const data::Schema& schema, const Query& q) {
  if (q.num_attributes() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "query arity does not match the interface schema");
  }
  for (int a = 0; a < q.num_attributes(); ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const AttributeSpec& spec = schema.attribute(a);
    switch (spec.iface) {
      case InterfaceType::kRQ:
        break;  // both ends supported
      case InterfaceType::kSQ:
        // Only "better than v" (an upper bound, since smaller is better)
        // or equality.
        if (iv.has_lower() && !iv.is_point()) {
          return Status::Unsupported(
              "attribute " + spec.name +
              " supports single-ended ranges only (no lower bound)");
        }
        break;
      case InterfaceType::kPQ:
      case InterfaceType::kFilterEquality:
        if (!iv.is_point()) {
          return Status::Unsupported("attribute " + spec.name +
                                     " supports point predicates only");
        }
        break;
    }
  }
  return Status::OK();
}

Status TopKInterface::ValidateQuery(const Query& q) const {
  return ValidateAgainstSchema(table_->schema(), q);
}

bool TopKInterface::OutsideDomain(const Query& q) const {
  const data::Schema& schema = table_->schema();
  for (int a = 0; a < q.num_attributes(); ++a) {
    const Interval& iv = q.interval(a);
    if (!iv.constrained()) continue;
    const AttributeSpec& spec = schema.attribute(a);
    if (iv.upper < spec.domain_min || iv.lower > spec.domain_max) {
      return true;
    }
  }
  return false;
}

TopKInterface::StatShard& TopKInterface::LocalShard() {
  const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kStatShards;
  return stat_shards_[slot];
}

AccessStats TopKInterface::stats() const {
  AccessStats merged;
  for (const StatShard& s : stat_shards_) {
    merged.queries_issued +=
        s.queries_issued.load(std::memory_order_relaxed);
    merged.tuples_returned +=
        s.tuples_returned.load(std::memory_order_relaxed);
    merged.overflowed_queries +=
        s.overflowed_queries.load(std::memory_order_relaxed);
    merged.empty_queries +=
        s.empty_queries.load(std::memory_order_relaxed);
    merged.rejected_queries +=
        s.rejected_queries.load(std::memory_order_relaxed);
  }
  return merged;
}

void TopKInterface::ResetStats() {
  for (StatShard& s : stat_shards_) {
    s.queries_issued.store(0, std::memory_order_relaxed);
    s.tuples_returned.store(0, std::memory_order_relaxed);
    s.overflowed_queries.store(0, std::memory_order_relaxed);
    s.empty_queries.store(0, std::memory_order_relaxed);
    s.rejected_queries.store(0, std::memory_order_relaxed);
  }
}

int64_t TopKInterface::RemainingBudget() const {
  if (options_.query_budget == 0) return -1;
  return options_.query_budget -
         budget_used_.load(std::memory_order_relaxed);
}

void TopKInterface::SetBudget(int64_t budget) {
  options_.query_budget = budget;
  budget_used_.store(0, std::memory_order_relaxed);
}

Result<QueryResult> TopKInterface::Execute(const Query& q) {
  StatShard& tally = LocalShard();
  const Status legal = ValidateQuery(q);
  if (!legal.ok()) {
    tally.rejected_queries.fetch_add(1, std::memory_order_relaxed);
    return legal;
  }
  // Exact admission under concurrency: optimistically claim a slot, and
  // return it if the budget was already spent (the claim-then-undo pair
  // can transiently overshoot budget_used_ but never admits more than
  // query_budget queries).
  if (options_.query_budget > 0) {
    const int64_t used =
        budget_used_.fetch_add(1, std::memory_order_relaxed);
    if (used >= options_.query_budget) {
      budget_used_.fetch_sub(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("query budget exhausted");
    }
  } else {
    budget_used_.fetch_add(1, std::memory_order_relaxed);
  }
  tally.queries_issued.fetch_add(1, std::memory_order_relaxed);

  QueryResult result;
  const int k = options_.k;
  if (q.HasEmptyInterval() || OutsideDomain(q)) {
    tally.empty_queries.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  const std::vector<TupleId>* order = ranking_->static_order();
  bool answered = false;
  if (order != nullptr && index_ != nullptr) {
    // Selective-query path: enumerate matches through the k-d index; if
    // the match set stays small, rank-sort it locally. Otherwise fall
    // through to the rank-order scan, which is fast for broad queries.
    const int64_t threshold =
        std::max<int64_t>(2 * static_cast<int64_t>(k) + 2, 256);
    std::vector<TupleId> matches;
    if (index_->RetrieveMatches(q, threshold, &matches)) {
      std::sort(matches.begin(), matches.end(),
                [this](TupleId a, TupleId b) {
                  return rank_of_row_[static_cast<size_t>(a)] <
                         rank_of_row_[static_cast<size_t>(b)];
                });
      result.overflow = static_cast<int>(matches.size()) > k;
      if (static_cast<int>(matches.size()) > k) {
        matches.resize(static_cast<size_t>(k));
      }
      result.ids = std::move(matches);
      answered = true;
    }
  }
  if (!answered && order != nullptr) {
    // Scan in global rank order, stop at the (k+1)-th match — the extra
    // match only feeds the overflow flag.
    for (TupleId row : *order) {
      if (!q.MatchesRow(*table_, row)) continue;
      if (result.size() == k) {
        result.overflow = true;
        break;
      }
      result.ids.push_back(row);
    }
    answered = true;
  }
  if (!answered) {
    std::vector<TupleId> matches;
    const int64_t n = table_->num_rows();
    for (TupleId row = 0; row < n; ++row) {
      if (q.MatchesRow(*table_, row)) matches.push_back(row);
    }
    result.overflow = static_cast<int>(matches.size()) > k;
    result.ids = ranking_->SelectTopK(matches, k);
  }

  result.tuples.reserve(result.ids.size());
  for (TupleId id : result.ids) {
    result.tuples.push_back(table_->GetTuple(id));
  }
  tally.tuples_returned.fetch_add(result.size(),
                                  std::memory_order_relaxed);
  if (result.overflow) {
    tally.overflowed_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.empty()) {
    tally.empty_queries.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace interface
}  // namespace hdsky
