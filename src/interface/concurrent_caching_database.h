// Thread-safe client-side answer cache, shareable across discovery
// threads.
//
// The parallel trial harness (bench::RunTrialsParallel) and any
// multi-threaded client fan independent top-k probes across cores; this
// decorator lets them share one paid-for answer pool. The map is sharded
// — kNumShards independent {mutex, unordered_map} pairs keyed by a hash
// of the query signature — so concurrent hits on different queries never
// contend on one lock.
//
// Backend discipline: by default every cache miss fetches under one
// backend mutex, because a HiddenDatabase backend is not required to be
// thread-safe (CachingDatabase is not; TopKInterface is only for
// static-order rankings — see docs/concurrency.md). The double-checked
// re-probe under that mutex also guarantees each distinct query hits the
// backend at most once, keeping query accounting identical to a serial
// run. Clients that wrap a thread-safe backend can opt out via
// Options::serialize_backend = false and accept duplicate fetches under
// races (harmless: backends are deterministic, so both fetches agree).
//
// Persistence: Save/Load speak the same "hdsky-cache-v1" format as
// CachingDatabase (cache_io.h); the two decorators' files are
// interchangeable.

#ifndef HDSKY_INTERFACE_CONCURRENT_CACHING_DATABASE_H_
#define HDSKY_INTERFACE_CONCURRENT_CACHING_DATABASE_H_

#include <atomic>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>

#include "interface/hidden_database.h"

namespace hdsky {
namespace interface {

class ConcurrentCachingDatabase : public HiddenDatabase {
 public:
  struct Options {
    /// Serialize backend fetches under one mutex (safe for any backend,
    /// and makes backend query accounting match a serial run exactly).
    /// Set false only when the backend itself is thread-safe.
    bool serialize_backend = true;
  };

  /// Wraps `backend`, which must outlive this object.
  explicit ConcurrentCachingDatabase(HiddenDatabase* backend);
  ConcurrentCachingDatabase(HiddenDatabase* backend, Options options);

  /// Thread-safe; callable concurrently from any number of threads.
  using HiddenDatabase::Execute;
  common::Result<QueryResult> Execute(const Query& q) override;

  const data::Schema& schema() const override {
    return backend_->schema();
  }
  int k() const override { return backend_->k(); }
  common::Status ValidateQuery(const Query& q) const override {
    return backend_->ValidateQuery(q);
  }

  /// Same accounting invariant as CachingDatabase: hits + misses +
  /// errors == accepted Execute calls; errors cache nothing.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  int64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  /// Total cached entries (locks each shard briefly).
  int64_t size() const;

  /// Persists the cache in the shared hdsky-cache-v1 format. Takes all
  /// shard locks, so concurrent Execute calls briefly stall.
  common::Status Save(std::ostream& out) const;
  common::Status SaveToFile(const std::string& path) const;

  /// Merges previously saved entries (from this class or
  /// CachingDatabase). Fails, loading nothing, on a malformed stream.
  common::Status Load(std::istream& in);
  common::Status LoadFromFile(const std::string& path);

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, QueryResult> map;
  };

  Shard& ShardFor(const std::string& key);

  HiddenDatabase* backend_;
  Options options_;
  std::mutex backend_mu_;
  Shard shards_[kNumShards];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> errors_{0};
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_CONCURRENT_CACHING_DATABASE_H_
