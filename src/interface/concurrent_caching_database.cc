#include "interface/concurrent_caching_database.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "common/fs_util.h"
#include "interface/cache_io.h"

namespace hdsky {
namespace interface {

using common::Result;
using common::Status;

ConcurrentCachingDatabase::ConcurrentCachingDatabase(
    HiddenDatabase* backend)
    : ConcurrentCachingDatabase(backend, Options()) {}

ConcurrentCachingDatabase::ConcurrentCachingDatabase(
    HiddenDatabase* backend, Options options)
    : backend_(backend), options_(options) {}

ConcurrentCachingDatabase::Shard& ConcurrentCachingDatabase::ShardFor(
    const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

Result<QueryResult> ConcurrentCachingDatabase::Execute(const Query& q) {
  HDSKY_RETURN_IF_ERROR(ValidateQuery(q));
  std::string key = q.Signature();
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;  // copy while holding the shard lock
    }
  }

  auto fetch = [&]() -> Result<QueryResult> {
    auto fetched = backend_->Execute(q);
    if (!fetched.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return fetched.status();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    QueryResult result = std::move(fetched).value();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.emplace(std::move(key), result);
    }
    return result;
  };

  if (!options_.serialize_backend) return fetch();

  std::lock_guard<std::mutex> backend_lock(backend_mu_);
  {
    // Double-checked re-probe: a racing thread may have fetched this key
    // while we waited for the backend mutex. Re-probing here keeps each
    // distinct query's backend cost at exactly one.
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  return fetch();
}

int64_t ConcurrentCachingDatabase::size() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.map.size());
  }
  return total;
}

Status ConcurrentCachingDatabase::Save(std::ostream& out) const {
  // Lock every shard (in index order) for a consistent snapshot.
  std::unique_lock<std::mutex> locks[kNumShards];
  for (size_t s = 0; s < kNumShards; ++s) {
    locks[s] = std::unique_lock<std::mutex>(shards_[s].mu);
  }
  size_t count = 0;
  for (const Shard& shard : shards_) count += shard.map.size();
  cache_io::WriteHeader(out, count);
  for (const Shard& shard : shards_) {
    for (const auto& [key, result] : shard.map) {
      cache_io::WriteEntry(out, key, result);
    }
  }
  return cache_io::FinishWrite(out);
}

Status ConcurrentCachingDatabase::SaveToFile(const std::string& path) const {
  // Serialize in memory, then replace the file atomically: a crash (or a
  // failed Save) must never destroy the previous cache — it holds paid
  // answers.
  std::ostringstream out;
  HDSKY_RETURN_IF_ERROR(Save(out));
  return common::AtomicWriteFile(path, out.str());
}

Status ConcurrentCachingDatabase::Load(std::istream& in) {
  HDSKY_ASSIGN_OR_RETURN(auto loaded,
                         cache_io::ReadAll(in, schema().num_attributes()));
  for (auto& [key, result] : loaded) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[key] = std::move(result);
  }
  return Status::OK();
}

Status ConcurrentCachingDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

}  // namespace interface
}  // namespace hdsky
