// Shared serialization for the client-side answer caches.
//
// CachingDatabase and ConcurrentCachingDatabase persist the same
// versioned text format ("hdsky-cache-v1"), so a cache saved by one can
// be loaded by the other — a serial discovery session's cache warms a
// parallel one and vice versa. This header is the single owner of that
// format.
//
// Layout: a header line `hdsky-cache-v1 <count>`, then one line per
// entry: hex-encoded query signature, overflow flag, tuple count, and for
// each tuple its id followed by its attribute values.

#ifndef HDSKY_INTERFACE_CACHE_IO_H_
#define HDSKY_INTERFACE_CACHE_IO_H_

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "interface/hidden_database.h"

namespace hdsky {
namespace interface {
namespace cache_io {

/// Writes the format header for `count` entries.
void WriteHeader(std::ostream& out, size_t count);

/// Writes one cache entry (key is the binary query signature).
void WriteEntry(std::ostream& out, const std::string& key,
                const QueryResult& result);

/// Flushes and reports stream failure.
common::Status FinishWrite(std::ostream& out);

/// Parses a full cache stream previously produced by the writers above.
/// `width` is the schema's attribute count (tuple arity). Fails — and
/// returns nothing — on a malformed stream.
common::Result<std::unordered_map<std::string, QueryResult>> ReadAll(
    std::istream& in, int width);

}  // namespace cache_io
}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_CACHE_IO_H_
