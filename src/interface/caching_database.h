// Client-side answer cache as a HiddenDatabase decorator.
//
// A real discovery client caches the web responses it has paid for:
// re-issuing an identical query costs no API quota. CachingDatabase
// wraps ANY backend (the simulator, a CallbackDatabase over a real HTTP
// client, ...) and serves repeated queries from a local map keyed by the
// query's predicate signature.
//
// Combined with the algorithms' determinism this yields RESUMABLE
// discovery across rate-limit windows and even across processes: persist
// the cache with Save, reload it with Load in the next session, re-run
// the algorithm — the cached prefix replays for free and only new
// queries reach the backend. examples/flight_search.cpp demonstrates the
// daily-quota workflow.
//
// Thread safety: NONE — this decorator is single-threaded by design (no
// locking on the hot path). Share ConcurrentCachingDatabase across
// threads instead; both persist the same cache format (cache_io.h), so
// their Save/Load files are interchangeable. See docs/concurrency.md.

#ifndef HDSKY_INTERFACE_CACHING_DATABASE_H_
#define HDSKY_INTERFACE_CACHING_DATABASE_H_

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "interface/hidden_database.h"

namespace hdsky {
namespace interface {

class CachingDatabase : public HiddenDatabase {
 public:
  /// Wraps `backend`, which must outlive this object.
  explicit CachingDatabase(HiddenDatabase* backend) : backend_(backend) {}

  using HiddenDatabase::Execute;
  common::Result<QueryResult> Execute(const Query& q) override;

  const data::Schema& schema() const override {
    return backend_->schema();
  }
  int k() const override { return backend_->k(); }
  common::Status ValidateQuery(const Query& q) const override {
    return backend_->ValidateQuery(q);
  }

  /// Accounting invariant: hits() + misses() + errors() equals the number
  /// of Execute calls that passed validation. A miss is counted only when
  /// the backend produced an answer; failed fetches (rate limits,
  /// transport errors) count as errors and cache nothing, so a later
  /// retry of the same query still reaches the backend.
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t errors() const { return errors_; }
  int64_t size() const { return static_cast<int64_t>(cache_.size()); }

  /// Persists the cache as a versioned text format.
  common::Status Save(std::ostream& out) const;
  common::Status SaveToFile(const std::string& path) const;

  /// Merges previously saved entries into the cache. Fails (and loads
  /// nothing) on a malformed stream.
  common::Status Load(std::istream& in);
  common::Status LoadFromFile(const std::string& path);

 private:
  HiddenDatabase* backend_;
  std::unordered_map<std::string, QueryResult> cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t errors_ = 0;
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_CACHING_DATABASE_H_
