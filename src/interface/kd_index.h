// K-d tree accelerator for conjunctive top-k query evaluation.
//
// The simulated hidden database answers orthogonal-range top-k queries.
// Broad queries are cheap with a scan in global rank order (the (k+1)-th
// match arrives quickly), but crawling baselines issue millions of highly
// selective queries where such scans degrade to O(n). This index serves
// those: a median-split k-d tree over all attributes whose leaves hold row
// ids, with a per-subtree minimum static-rank enabling rank-ordered
// retrieval.
//
// RetrieveMatches walks only subtrees whose region can intersect the
// query and aborts once more than `abort_above` matches are found —
// callers then fall back to the rank-order scan, which is fast exactly
// when the match set is large. NULL values sort as +inf, consistent with
// Interval::Contains rejecting NULL on any constrained attribute (the
// leaf-level recheck is authoritative; subtree pruning only ever
// over-approximates).

#ifndef HDSKY_INTERFACE_KD_INDEX_H_
#define HDSKY_INTERFACE_KD_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "interface/query.h"

namespace hdsky {
namespace interface {

class KdIndex {
 public:
  /// Builds the tree. `rank_of_row[r]` is row r's position in the global
  /// static ranking (0 = best); leaf row lists are sorted by it.
  KdIndex(const data::Table* table,
          const std::vector<int64_t>& rank_of_row);

  /// Appends to `out` every row matching `q`, stopping early (returning
  /// false) once out->size() exceeds `abort_above`. Returns true when the
  /// match set was fully enumerated. Matches arrive in no particular
  /// order.
  bool RetrieveMatches(const Query& q, int64_t abort_above,
                       std::vector<data::TupleId>* out) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    // Internal nodes: children indices and the split plane
    // (rows with value < split_value go left).
    int32_t left = -1;
    int32_t right = -1;
    int split_dim = -1;
    data::Value split_value = 0;
    // Leaves: [row_begin, row_end) into rows_.
    int32_t row_begin = 0;
    int32_t row_end = 0;

    bool is_leaf() const { return left < 0; }
  };

  int32_t Build(int64_t begin, int64_t end, int depth);
  bool Visit(int32_t node_id, const Query& q, int64_t abort_above,
             std::vector<data::TupleId>* out) const;

  const data::Table* table_;
  std::vector<Node> nodes_;
  std::vector<data::TupleId> rows_;  // permuted row ids; leaves index here
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_KD_INDEX_H_
