// K-d tree accelerator for conjunctive top-k query evaluation.
//
// The simulated hidden database answers orthogonal-range top-k queries.
// Broad queries are cheap with a scan in global rank order (the (k+1)-th
// match arrives quickly), but crawling baselines issue millions of highly
// selective queries where such scans degrade to O(n). This index serves
// those: a median-split k-d tree over all attributes whose leaves hold row
// ids, with the leaf rows' attribute values packed into contiguous
// per-leaf columnar runs so the leaf-level recheck is a streaming
// selection-vector kernel (interface/exec/kernels.h) instead of one
// random column gather per row per attribute.
//
// RetrieveMatches walks only subtrees whose region can intersect the
// query and aborts once more than `abort_above` matches are found —
// callers then fall back to the rank-order scan (vectorized by
// exec::VectorEngine), which is fast exactly when the match set is
// large. NULL values sort as +inf, consistent with Interval::Contains
// rejecting NULL on any constrained attribute (the leaf-level recheck is
// authoritative; subtree pruning only ever over-approximates).

#ifndef HDSKY_INTERFACE_KD_INDEX_H_
#define HDSKY_INTERFACE_KD_INDEX_H_

#include <cstdint>
#include <vector>
#include <utility>

#include "data/table.h"
#include "interface/exec/kernels.h"
#include "interface/query.h"

namespace hdsky {
namespace interface {

class KdIndex {
 public:
  /// Builds the tree. `rank_of_row[r]` is row r's position in the global
  /// static ranking (0 = best); leaf row lists are sorted by it.
  KdIndex(const data::Table* table,
          const std::vector<int64_t>& rank_of_row);

  /// Appends to `out` every row matching `q`, stopping early (returning
  /// false) once out->size() exceeds `abort_above`. Returns true when the
  /// match set was fully enumerated. Matches arrive in no particular
  /// order.
  bool RetrieveMatches(const Query& q, int64_t abort_above,
                       std::vector<data::TupleId>* out) const;

  /// Same, over bounds already compiled by exec::CollectBounds — the
  /// hot-path entry used by TopKInterface, which compiles the query once
  /// and reuses the bounds across the index walk and the fallback scan.
  /// When `out_vals` is non-null, the matching rows' attribute values
  /// (num_attributes per match, schema order, aligned with `out`) are
  /// appended to it from the leaf-local runs — they are already hot in
  /// cache there, whereas materializing later from the column store
  /// costs one random gather per attribute per match. When `out_ranks`
  /// is non-null, each match's global rank is appended likewise, so the
  /// caller's top-k sort keys off a small contiguous array instead of
  /// gathering from an n-sized rank table.
  bool RetrieveMatches(const std::vector<exec::AttrBound>& bounds,
                       int64_t abort_above,
                       std::vector<data::TupleId>* out,
                       std::vector<data::Value>* out_vals = nullptr,
                       std::vector<int64_t>* out_ranks = nullptr) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    // Internal nodes: children indices and the split plane
    // (rows with value < split_value go left).
    int32_t left = -1;
    int32_t right = -1;
    int split_dim = -1;
    data::Value split_value = 0;
    // Leaves: [row_begin, row_end) into rows_.
    int32_t row_begin = 0;
    int32_t row_end = 0;

    bool is_leaf() const { return left < 0; }
  };

  int32_t Build(int64_t begin, int64_t end, int depth,
                std::vector<data::Value>& row_vals);
  int64_t PartitionRange(int64_t begin, int64_t end, int dim,
                         data::Value pivot,
                         std::vector<data::Value>& row_vals);

  const data::Table* table_;
  int num_attrs_ = 0;
  /// Deepest node, tracked at build time; bounds the traversal stack.
  int max_depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<data::TupleId> rows_;  // permuted row ids; leaves index here
  /// Global rank of rows_[i], aligned with rows_; filled at leaf packing
  /// time so retrieval can report ranks without touching rank_of_row.
  std::vector<int64_t> ranks_;
  /// Leaf-local columnar values: for a leaf covering rows_[b, e), the run
  /// for attribute a is leaf_values_[b * m + a * (e - b)], length e - b,
  /// aligned with rows_[b, e).
  std::vector<data::Value> leaf_values_;
  /// Per-leaf zone maps, indexed by node id: leaf_zones_[id * 2m + 2a]
  /// and [.. + 2a + 1] hold the min/max of attribute a over the leaf.
  /// The split planes above a leaf constrain only a few dimensions, so
  /// most visited leaves fail this check on some tightly-bounded
  /// attribute and skip their kernel recheck entirely.
  std::vector<data::Value> leaf_zones_;
};

}  // namespace interface
}  // namespace hdsky

#endif  // HDSKY_INTERFACE_KD_INDEX_H_
