// On-disk paged column-block file ("block file", extension .hdb): the
// out-of-core backing store for a hidden database whose rows exceed RAM.
//
// Logical layout (identical in both format versions). The file is a
// sequence of pages:
//
//   page 0                  header (magic, geometry, ranking name,
//                           serialized schema, CRC32C)
//   pages 1..D              data pages, one column block each, in the
//                           baked rank order (see below)
//   pages D+1..             zone-map index pages, level 0 first
//
// A *decoded* data page is an 8-byte header {u32 payload CRC32C, u32
// row count}, then the PAX payload — the block's TupleIds followed by
// the attribute-major value runs (values[a * rows + i]), which is
// exactly the layout the fused leaf-match kernel
// (interface/exec/kernels.h) consumes, so scans run unchanged on a
// pinned frame.
//
// Physical layout differs by version:
//
//   v1 (--compress=off)  every page occupies a fixed page_bytes slot
//                        (a multiple of 4 KiB); page id * page_bytes is
//                        the page's offset, and the stored bytes ARE
//                        the decoded bytes.
//   v2 (--compress=auto) each page stores its column runs independently
//                        encoded (data/encoding.h: FOR / delta /
//                        dictionary, per-run raw fallback), starts at a
//                        4 KiB-aligned offset, and is followed by a
//                        trailing page directory {offset, encoded
//                        bytes} per page (CRC32C'd, its offset
//                        back-patched into the header). The page CRC
//                        covers the *encoded* payload, so corruption is
//                        caught before the decoder runs.
//
// Zone-map index: level 0 holds one entry per data page — per-attribute
// (min, max) over the page, NULL included (NULL sorts worst, so a page
// containing NULLs has max == kNullValue, mirroring the in-memory
// BlockedColumns zone maps). Level l+1 aggregates `index_fanout`
// consecutive level-l entries. The levels form an implicit STR-packed
// tree over the rank-ordered page sequence: an in-order traversal
// visits data pages in rank order, so a top-k scan can prune whole
// subtrees on bounds and stop after k+1 matches — the paged equivalent
// of the VectorEngine early exit. Index pages carry the same
// {CRC, entry count} header (v2: a single encoded run of the zone
// values) and go through the same buffer pool.
//
// Rank order is baked at write time: rows MUST be appended
// best-rank-first (dataset/pack.h does this via the ranking policy's
// static order), and the header records the ranking's name. Readers
// trust the stored order; that is what makes paged top-k exact without
// materializing a rank permutation in memory.
//
// All integers are host-endian (the file is a local cache format, not
// an interchange format). Writes go through common::AtomicFileWriter,
// so a crashed bulk load never leaves a torn file under the target
// name; torn or bit-flipped pages are caught by the per-page CRC at
// buffer-pool load time. Reading goes through a pluggable
// data::ReadPath (mmap or pread; see read_path.h) owned by the buffer
// pool — BlockFile itself only parses the header, keeps the fd, and
// decodes fetched bytes.

#ifndef HDSKY_DATA_BLOCK_FILE_H_
#define HDSKY_DATA_BLOCK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace hdsky {
namespace data {

inline constexpr uint32_t kBlockFileVersion = 1;
inline constexpr uint32_t kBlockFileVersionCompressed = 2;
inline constexpr size_t kBlockFileAlign = 4096;
inline constexpr size_t kPageHeaderBytes = 8;  // u32 CRC + u32 count
inline constexpr int kMaxIndexLevels = 8;

enum class Compression : uint8_t {
  /// Format v1: raw fixed-slot pages. Bit-compatible with files written
  /// before compression existed.
  kOff = 0,
  /// Format v2: per-run encoding chosen by the writer (smallest of
  /// FOR / delta / dictionary / raw).
  kAuto = 1,
};

struct BlockFileOptions {
  /// Rows per data page. Larger blocks amortize pin/CRC overhead;
  /// smaller blocks give finer zone-map pruning and a finer-grained
  /// buffer pool.
  int64_t rows_per_block = 4096;
  /// Children per zone-map index node.
  int index_fanout = 64;
  /// Physical page encoding (see Compression).
  Compression compression = Compression::kAuto;
};

/// Byte accounting filled by BlockFileWriter::Finish, surfaced by
/// `hdsky_pack --stats`. Column 0 is the TupleId run; columns 1..m are
/// the schema attributes in order.
struct BlockFileWriteStats {
  int64_t rows = 0;
  int64_t data_pages = 0;
  int64_t index_pages = 0;
  int num_index_levels = 0;
  uint64_t file_bytes = 0;
  struct Column {
    uint64_t raw_bytes = 0;      // 8 * values
    uint64_t encoded_bytes = 0;  // run headers + encoded bodies
  };
  std::vector<Column> columns;
  uint64_t raw_payload_bytes() const {
    uint64_t t = 0;
    for (const Column& c : columns) t += c.raw_bytes;
    return t;
  }
  uint64_t encoded_payload_bytes() const {
    uint64_t t = 0;
    for (const Column& c : columns) t += c.encoded_bytes;
    return t;
  }
};

/// Streaming bounded-memory writer: holds one block buffer plus one
/// 2m-value zone entry per data page written (a few bytes per page), so
/// packing a dataset ≫ RAM never materializes it.
class BlockFileWriter {
 public:
  /// Opens "<path>.tmp.<pid>" and reserves the header page. `ranking`
  /// names the order rows will arrive in (recorded in the header).
  static common::Result<std::unique_ptr<BlockFileWriter>> Create(
      const std::string& path, const Schema& schema,
      const std::string& ranking, const BlockFileOptions& options);

  /// Appends one row (`num_attributes` values) with its original
  /// TupleId. Rows must arrive best-rank-first.
  common::Status Append(TupleId id, const Value* row);

  /// Flushes the tail block, writes the index levels, directory (v2),
  /// and header, and atomically renames the file into place. Returns
  /// rows written.
  common::Result<int64_t> Finish();

  int64_t rows_written() const { return rows_written_; }

  /// Valid after Finish().
  const BlockFileWriteStats& stats() const { return stats_; }

 private:
  BlockFileWriter() = default;

  common::Status FlushBlock();
  /// Encodes + appends one page (v2) or writes the fixed slot (v1).
  /// `runs[r]` points at `counts[r]` values; the decoded payload is the
  /// runs concatenated. `col_stat` indexes stats_.columns for data
  /// pages, or -1 for index pages.
  common::Status AppendPage(const Value* const* runs,
                            const size_t* counts, size_t num_runs,
                            uint32_t entry_count, int first_col_stat);

  std::unique_ptr<common::AtomicFileWriter> out_;
  Schema schema_;
  std::string ranking_;
  int64_t rows_per_block_ = 0;
  int index_fanout_ = 0;
  size_t page_bytes_ = 0;
  int num_attrs_ = 0;
  Compression compression_ = Compression::kAuto;

  // Current partially-filled block.
  std::vector<TupleId> ids_;
  std::vector<std::vector<Value>> cols_;
  // Per-data-page zone entries: 2 * num_attrs values each (min, max).
  std::vector<Value> level0_zones_;
  int64_t rows_written_ = 0;
  int64_t data_pages_ = 0;
  std::vector<uint8_t> page_buf_;
  // v2 page directory under construction: offset + encoded size per
  // page (entry 0 covers the header page).
  std::vector<uint64_t> page_offsets_;
  std::vector<uint32_t> page_enc_bytes_;
  BlockFileWriteStats stats_;
  bool finished_ = false;
};

/// Read-side view of a block file: Open parses and validates the header
/// (and, for v2, the page directory) via pread(2), then keeps only the
/// fd. Fetching page bytes is the ReadPath's job and residency /
/// decoding / eviction are the BufferPool's — everything here is
/// immutable after Open and safe to share across threads.
class BlockFile {
 public:
  static common::Result<std::unique_ptr<BlockFile>> Open(
      const std::string& path);
  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& ranking_name() const { return ranking_; }
  const std::string& path() const { return path_; }
  uint32_t version() const { return version_; }
  bool compressed() const { return version_ >= kBlockFileVersionCompressed; }
  int fd() const { return fd_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t num_data_pages() const { return num_data_pages_; }
  int num_attributes() const { return num_attrs_; }
  int64_t rows_per_block() const { return rows_per_block_; }
  /// Decoded capacity of a full page (frame sizes never exceed this).
  size_t page_bytes() const { return page_bytes_; }
  int64_t total_pages() const { return total_pages_; }
  uint64_t file_bytes() const { return file_bytes_; }
  int index_fanout() const { return index_fanout_; }
  int num_index_levels() const {
    return static_cast<int>(level_counts_.size());
  }
  int64_t level_entries(int level) const {
    return level_counts_[static_cast<size_t>(level)];
  }
  /// Logical payload bytes: ids + values of every row. The out-of-core
  /// ratio in the benches is data_bytes() / pool budget.
  uint64_t data_bytes() const {
    return static_cast<uint64_t>(num_rows_) *
           static_cast<uint64_t>(num_attrs_ + 1) * sizeof(Value);
  }

  int64_t data_page_id(int64_t block) const { return 1 + block; }
  int64_t index_entries_per_page() const { return index_entries_per_page_; }
  int64_t index_page_id(int level, int64_t entry) const {
    return level_start_pages_[static_cast<size_t>(level)] +
           entry / index_entries_per_page_;
  }

  /// Physical location of a page's stored (possibly encoded) bytes.
  struct Extent {
    uint64_t offset;
    uint32_t bytes;
  };
  Extent extent(int64_t page_id) const {
    if (!compressed()) {
      return Extent{static_cast<uint64_t>(page_id) * page_bytes_,
                    static_cast<uint32_t>(page_bytes_)};
    }
    return Extent{page_offsets_[static_cast<size_t>(page_id)],
                  page_enc_bytes_[static_cast<size_t>(page_id)]};
  }

  /// Exact decoded size of a page's frame: 8-byte header + the decoded
  /// payload (never exceeds page_bytes()).
  size_t frame_bytes(int64_t page_id) const;

  /// Validates the fetched bytes of a page (exact expected entry count
  /// from the CRC'd header geometry, then CRC32C over the stored
  /// payload) and materializes the decoded frame — `frame` must hold
  /// frame_bytes(page_id). For v1 this is verify + copy; for v2 the
  /// column runs are decoded into the v1 frame layout. Any structural
  /// inconsistency in the encoded runs fails like a CRC mismatch.
  common::Status DecodePage(int64_t page_id, const uint8_t* raw,
                            size_t raw_len, uint8_t* frame) const;

  struct DataPageView {
    int64_t rows;
    const TupleId* ids;
    const Value* values;  // attribute-major runs: values[a * rows + i]
  };
  DataPageView data_page(const uint8_t* frame) const {
    DataPageView v;
    v.rows = static_cast<int64_t>(
        reinterpret_cast<const uint32_t*>(frame)[1]);
    v.ids = reinterpret_cast<const TupleId*>(frame + kPageHeaderBytes);
    v.values = reinterpret_cast<const Value*>(frame + kPageHeaderBytes) +
               v.rows;
    return v;
  }

  /// Zone entry `slot` of an index frame: 2 * num_attributes values,
  /// entry[2a] = min, entry[2a + 1] = max of attribute a.
  const Value* index_entry(const uint8_t* frame, int64_t slot) const {
    return reinterpret_cast<const Value*>(frame + kPageHeaderBytes) +
           slot * 2 * num_attrs_;
  }

 private:
  BlockFile() = default;

  /// Entries (rows or zone entries) page_id must carry, derived from
  /// the validated geometry. Sets *is_data. Fails for out-of-range ids.
  common::Status ExpectedCount(int64_t page_id, int64_t* count,
                               bool* is_data) const;

  std::string path_;
  Schema schema_;
  std::string ranking_;
  int fd_ = -1;
  uint32_t version_ = 0;
  uint64_t file_bytes_ = 0;
  size_t page_bytes_ = 0;
  int64_t rows_per_block_ = 0;
  int num_attrs_ = 0;
  int64_t num_rows_ = 0;
  int64_t num_data_pages_ = 0;
  int64_t total_pages_ = 0;
  int index_fanout_ = 0;
  int64_t index_entries_per_page_ = 0;
  std::vector<int64_t> level_counts_;
  std::vector<int64_t> level_start_pages_;
  // v2 page directory.
  std::vector<uint64_t> page_offsets_;
  std::vector<uint32_t> page_enc_bytes_;
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_BLOCK_FILE_H_
