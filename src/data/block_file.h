// On-disk paged column-block file ("block file", extension .hdb): the
// out-of-core backing store for a hidden database whose rows exceed RAM.
//
// Layout. The file is a sequence of fixed-size pages (page_bytes, a
// multiple of 4 KiB so every page can be madvise(2)'d independently):
//
//   page 0                  header (magic, geometry, ranking name,
//                           serialized schema, CRC32C)
//   pages 1..D              data pages, one column block each, in the
//                           baked rank order (see below)
//   pages D+1..             zone-map index pages, level 0 first
//
// Data page: an 8-byte header {u32 payload CRC32C, u32 row count},
// then the PAX payload — the block's TupleIds followed by the
// attribute-major value runs (values[a * rows + i]), which is exactly
// the layout the fused leaf-match kernel (interface/exec/kernels.h)
// consumes, so scans run unchanged on a pinned page.
//
// Zone-map index: level 0 holds one entry per data page — per-attribute
// (min, max) over the page, NULL included (NULL sorts worst, so a page
// containing NULLs has max == kNullValue, mirroring the in-memory
// BlockedColumns zone maps). Level l+1 aggregates `index_fanout`
// consecutive level-l entries. The levels form an implicit STR-packed
// tree over the rank-ordered page sequence: an in-order traversal
// visits data pages in rank order, so a top-k scan can prune whole
// subtrees on bounds and stop after k+1 matches — the paged equivalent
// of the VectorEngine early exit. Index pages carry the same
// {CRC, entry count} header and go through the same buffer pool.
//
// Rank order is baked at write time: rows MUST be appended
// best-rank-first (dataset/pack.h does this via the ranking policy's
// static order), and the header records the ranking's name. Readers
// trust the stored order; that is what makes paged top-k exact without
// materializing a rank permutation in memory.
//
// All integers are host-endian (the file is a local cache format, not
// an interchange format). Writes go through common::AtomicFileWriter,
// so a crashed bulk load never leaves a torn file under the target
// name; torn or bit-flipped pages are caught by the per-page CRC at
// buffer-pool load time.

#ifndef HDSKY_DATA_BLOCK_FILE_H_
#define HDSKY_DATA_BLOCK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace hdsky {
namespace data {

inline constexpr uint32_t kBlockFileVersion = 1;
inline constexpr size_t kBlockFileAlign = 4096;
inline constexpr size_t kPageHeaderBytes = 8;  // u32 CRC + u32 count
inline constexpr int kMaxIndexLevels = 8;

struct BlockFileOptions {
  /// Rows per data page. Larger blocks amortize pin/CRC overhead;
  /// smaller blocks give finer zone-map pruning and a finer-grained
  /// buffer pool.
  int64_t rows_per_block = 4096;
  /// Children per zone-map index node.
  int index_fanout = 64;
};

/// Streaming bounded-memory writer: holds one block buffer plus one
/// 2m-value zone entry per data page written (a few bytes per page), so
/// packing a dataset ≫ RAM never materializes it.
class BlockFileWriter {
 public:
  /// Opens "<path>.tmp.<pid>" and reserves the header page. `ranking`
  /// names the order rows will arrive in (recorded in the header).
  static common::Result<std::unique_ptr<BlockFileWriter>> Create(
      const std::string& path, const Schema& schema,
      const std::string& ranking, const BlockFileOptions& options);

  /// Appends one row (`num_attributes` values) with its original
  /// TupleId. Rows must arrive best-rank-first.
  common::Status Append(TupleId id, const Value* row);

  /// Flushes the tail block, writes the index levels and header, and
  /// atomically renames the file into place. Returns rows written.
  common::Result<int64_t> Finish();

  int64_t rows_written() const { return rows_written_; }

 private:
  BlockFileWriter() = default;

  common::Status FlushBlock();

  std::unique_ptr<common::AtomicFileWriter> out_;
  Schema schema_;
  std::string ranking_;
  int64_t rows_per_block_ = 0;
  int index_fanout_ = 0;
  size_t page_bytes_ = 0;
  int num_attrs_ = 0;

  // Current partially-filled block.
  std::vector<TupleId> ids_;
  std::vector<std::vector<Value>> cols_;
  // Per-data-page zone entries: 2 * num_attrs values each (min, max).
  std::vector<Value> level0_zones_;
  int64_t rows_written_ = 0;
  int64_t data_pages_ = 0;
  std::vector<uint8_t> page_buf_;
  bool finished_ = false;
};

/// Read-side view of a block file: the whole file is memory-mapped
/// read-only with MADV_RANDOM at open (header validated eagerly, CRC
/// and all), and pages are handed out as raw pointers into the mapping.
/// Residency, CRC verification, and eviction are the BufferPool's job —
/// everything here is immutable after Open and safe to share across
/// threads.
class BlockFile {
 public:
  static common::Result<std::unique_ptr<BlockFile>> Open(
      const std::string& path);
  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& ranking_name() const { return ranking_; }
  const std::string& path() const { return path_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t num_data_pages() const { return num_data_pages_; }
  int num_attributes() const { return num_attrs_; }
  int64_t rows_per_block() const { return rows_per_block_; }
  size_t page_bytes() const { return page_bytes_; }
  int64_t total_pages() const { return total_pages_; }
  uint64_t file_bytes() const { return file_bytes_; }
  int index_fanout() const { return index_fanout_; }
  int num_index_levels() const {
    return static_cast<int>(level_counts_.size());
  }
  int64_t level_entries(int level) const {
    return level_counts_[static_cast<size_t>(level)];
  }
  /// Logical payload bytes: ids + values of every row. The out-of-core
  /// ratio in the benches is data_bytes() / pool budget.
  uint64_t data_bytes() const {
    return static_cast<uint64_t>(num_rows_) *
           static_cast<uint64_t>(num_attrs_ + 1) * sizeof(Value);
  }

  int64_t data_page_id(int64_t block) const { return 1 + block; }
  int64_t index_entries_per_page() const { return index_entries_per_page_; }
  int64_t index_page_id(int level, int64_t entry) const {
    return level_start_pages_[static_cast<size_t>(level)] +
           entry / index_entries_per_page_;
  }

  /// Raw mapped bytes of a page; valid for any page id in
  /// [0, total_pages). Contents are only trustworthy after VerifyPage
  /// (the buffer pool runs it once per residency).
  const uint8_t* page(int64_t page_id) const {
    return base_ + static_cast<size_t>(page_id) * page_bytes_;
  }

  /// Structural + CRC validation of one data or index page.
  common::Status VerifyPage(int64_t page_id) const;

  /// madvise(2) over one page of the mapping; best-effort.
  void Advise(int64_t page_id, int advice) const;

  struct DataPageView {
    int64_t rows;
    const TupleId* ids;
    const Value* values;  // attribute-major runs: values[a * rows + i]
  };
  DataPageView data_page(const uint8_t* page) const {
    DataPageView v;
    v.rows = static_cast<int64_t>(
        reinterpret_cast<const uint32_t*>(page)[1]);
    v.ids = reinterpret_cast<const TupleId*>(page + kPageHeaderBytes);
    v.values = reinterpret_cast<const Value*>(page + kPageHeaderBytes) +
               v.rows;
    return v;
  }

  /// Zone entry `slot` of an index page: 2 * num_attributes values,
  /// entry[2a] = min, entry[2a + 1] = max of attribute a.
  const Value* index_entry(const uint8_t* page, int64_t slot) const {
    return reinterpret_cast<const Value*>(page + kPageHeaderBytes) +
           slot * 2 * num_attrs_;
  }

 private:
  BlockFile() = default;

  std::string path_;
  Schema schema_;
  std::string ranking_;
  const uint8_t* base_ = nullptr;
  uint64_t file_bytes_ = 0;
  size_t page_bytes_ = 0;
  int64_t rows_per_block_ = 0;
  int num_attrs_ = 0;
  int64_t num_rows_ = 0;
  int64_t num_data_pages_ = 0;
  int64_t total_pages_ = 0;
  int index_fanout_ = 0;
  int64_t index_entries_per_page_ = 0;
  std::vector<int64_t> level_counts_;
  std::vector<int64_t> level_start_pages_;
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_BLOCK_FILE_H_
