#include "data/paged_table.h"

#include "data/table.h"

namespace hdsky {
namespace data {

using common::Result;

Result<std::unique_ptr<PagedTable>> PagedTable::Open(
    const std::string& path, const PagedTableOptions& options) {
  HDSKY_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> file,
                         BlockFile::Open(path));
  BufferPool::Options pool_opts;
  pool_opts.budget_bytes = options.buffer_pool_bytes;
  pool_opts.read_path = options.read_path;
  pool_opts.readahead_pages = options.readahead_pages;
  auto pool = std::make_unique<BufferPool>(file.get(), pool_opts);
  return std::unique_ptr<PagedTable>(
      new PagedTable(std::move(file), std::move(pool)));
}

Result<std::unique_ptr<PagedTable>> Table::OpenPaged(
    const std::string& path, const PagedTableOptions& options) {
  return PagedTable::Open(path, options);
}

}  // namespace data
}  // namespace hdsky
