// Column-major in-memory table: the ground-truth contents of a hidden web
// database. Only the interface layer and dataset generators touch Table
// directly; discovery algorithms must go through interface::TopKInterface.

#ifndef HDSKY_DATA_TABLE_H_
#define HDSKY_DATA_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace hdsky {
namespace data {

class PagedTable;
struct PagedTableOptions;

/// An append-only column store with a fixed schema. Values are validated
/// against their attribute domain at append time (NULL is always legal).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)),
        columns_(static_cast<size_t>(schema_.num_attributes())) {}

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const {
    return columns_.empty() ? 0
                            : static_cast<int64_t>(columns_[0].size());
  }

  /// Value of attribute `attr` in row `row`; bounds are the caller's
  /// responsibility (checked only in debug builds).
  Value value(TupleId row, int attr) const {
    return columns_[static_cast<size_t>(attr)][static_cast<size_t>(row)];
  }

  /// Materializes a full row.
  Tuple GetTuple(TupleId row) const;

  /// Full column for attribute `attr`.
  const std::vector<Value>& column(int attr) const {
    return columns_[static_cast<size_t>(attr)];
  }

  /// Appends a row; fails if the arity is wrong or a non-NULL value falls
  /// outside its attribute domain.
  common::Status Append(const Tuple& tuple);

  /// Opens an on-disk paged table (a block file packed by hdsky_pack /
  /// dataset::PackTable) whose working set is bounded by a buffer pool
  /// instead of materializing the rows in memory. Defined in
  /// paged_table.cc; include data/paged_table.h to use the result.
  static common::Result<std::unique_ptr<PagedTable>> OpenPaged(
      const std::string& path, const PagedTableOptions& options);

  /// Reserves row capacity across all columns.
  void Reserve(int64_t rows);

  /// Uniform random sample of `count` rows (without replacement), as used
  /// by the paper's varying-n experiments on the DOT dataset.
  common::Result<Table> Sample(int64_t count, common::Rng* rng) const;

  /// Keeps only the attributes at `indices`; used by varying-m experiments.
  common::Result<Table> Project(const std::vector<int>& indices) const;

  /// Returns a copy whose schema swaps attribute `index`'s interface type;
  /// data is shared-by-copy (tables are value types).
  common::Result<Table> WithInterface(int index, InterfaceType t) const;

  /// Keeps only rows for which `keep(row_id)` returns true.
  template <typename Pred>
  Table FilterRows(Pred keep) const {
    Table out(schema_);
    out.Reserve(num_rows());
    const int64_t n = num_rows();
    for (int64_t r = 0; r < n; ++r) {
      if (!keep(r)) continue;
      for (size_t c = 0; c < columns_.size(); ++c) {
        out.columns_[c].push_back(columns_[c][static_cast<size_t>(r)]);
      }
    }
    return out;
  }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_TABLE_H_
