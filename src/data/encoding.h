// Lightweight integer compression for block-file pages (src/data).
//
// A format-v2 page stores each column block as an independently encoded
// *run* of int64 values. The writer tries every applicable encoding and
// keeps the smallest; a raw fallback guarantees a pathological column
// never costs more than ~8 bytes/value plus a fixed header, so
// compression can be on by default without a regression risk.
//
// Encodings (chosen per run, recorded in the run header):
//   kRaw   — verbatim little-host int64s. The fallback.
//   kFor   — frame of reference: int64 base (the minimum), then each
//            value - base bit-packed at the run's max delta width.
//            Width 0 encodes a constant run in 16 bytes.
//   kDelta — int64 first value, then zigzag(value[i] - value[i-1])
//            bit-packed. Wins on sorted / locally monotone runs, which
//            the baked static-rank order produces by construction.
//   kDict  — sorted distinct values, then per-value dictionary indexes
//            bit-packed at ceil(log2(#distinct)). Wins on
//            low-cardinality attributes whose values straddle a wide
//            range (so FOR widths stay large).
//
// All arithmetic that could overflow (ranges spanning the full int64
// domain, kNullValue = INT64_MAX deltas) is done in uint64 mod 2^64,
// which is exact for the round-trip. Decoding validates structure
// (known encoding, width <= 64, body length consistent with the value
// count, dictionary indexes in range) and fails with a Status instead
// of reading out of bounds — the buffer pool treats a decode failure
// exactly like a CRC failure.

#ifndef HDSKY_DATA_ENCODING_H_
#define HDSKY_DATA_ENCODING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace hdsky {
namespace data {

enum class Encoding : uint8_t {
  kRaw = 0,
  kFor = 1,
  kDelta = 2,
  kDict = 3,
};

/// Fixed per-run header preceding the encoded body.
///   u8 encoding | u8 bit width | u16 reserved (0) | u32 body bytes
inline constexpr size_t kRunHeaderBytes = 8;

/// Upper bound on the encoded size of any run of n values: the raw
/// fallback plus its header. Sizing a scratch buffer at this bound
/// guarantees EncodeRun never reallocates mid-page.
inline constexpr size_t MaxEncodedRunBytes(size_t n) {
  return kRunHeaderBytes + n * sizeof(Value);
}

/// Encodes `values[0..n)` into `out` (appended), picking the smallest
/// applicable encoding. Returns the number of bytes appended
/// (header + body). n == 0 emits a raw run with an empty body.
size_t EncodeRun(const Value* values, size_t n, std::vector<uint8_t>* out);

/// Forces a specific encoding (tests / diagnostics). Returns 0 without
/// touching `out` when the encoding cannot represent the run (e.g. a
/// FOR width above 64 bits, a dictionary above the cardinality cap).
size_t EncodeRunAs(Encoding enc, const Value* values, size_t n,
                   std::vector<uint8_t>* out);

/// Decodes one run of exactly `n` values from `encoded[0..len)` into
/// `values[0..n)`. On success sets *consumed to the run's total
/// encoded size (header + body). Fails (without writing past
/// `values + n`) on any structural inconsistency.
common::Status DecodeRun(const uint8_t* encoded, size_t len, size_t n,
                         Value* values, size_t* consumed);

/// Peeks the encoding tag of a run header (diagnostics; does not
/// validate the body). Requires len >= kRunHeaderBytes.
Encoding PeekRunEncoding(const uint8_t* encoded);

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_ENCODING_H_
