#include "data/encoding.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

namespace hdsky {
namespace data {
namespace {

// Dictionary entries cost 8 bytes each before a single value is
// indexed, so past a few thousand distinct values FOR or raw always
// wins; capping the probe keeps the distinct scan cheap on
// high-cardinality runs.
constexpr size_t kDictMaxCardinality = 4096;

size_t PackedBytes(size_t n, uint32_t width) {
  // Bit-packed payloads are emitted as whole little-endian u64 words so
  // the unpacker never reads a partial word.
  size_t bits = n * width;
  return ((bits + 63) / 64) * 8;
}

uint32_t BitWidth(uint64_t v) {
  uint32_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}

// Packs fn(i) for i in [0, n) at `width` bits per value.
template <typename Fn>
void PackBits(size_t n, uint32_t width, Fn fn, std::vector<uint8_t>* out) {
  size_t at = out->size();
  out->resize(at + PackedBytes(n, width), 0);
  uint8_t* dst = out->data() + at;
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  size_t word = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = fn(i);
    acc |= v << acc_bits;
    if (acc_bits + width >= 64) {
      std::memcpy(dst + word * 8, &acc, 8);
      ++word;
      uint32_t used = 64 - acc_bits;
      acc = used < 64 ? (v >> used) : 0;
      acc_bits = acc_bits + width - 64;
    } else {
      acc_bits += width;
    }
  }
  if (acc_bits > 0) std::memcpy(dst + word * 8, &acc, 8);
}

// Unpacks n values of `width` bits from src (PackedBytes(n,width) long).
template <typename Fn>
void UnpackBits(const uint8_t* src, size_t n, uint32_t width, Fn emit) {
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  size_t word = 0;
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (size_t i = 0; i < n; ++i) {
    if (acc_bits < width) {
      uint64_t next;
      std::memcpy(&next, src + word * 8, 8);
      ++word;
      uint64_t v = (acc | (next << acc_bits)) & mask;
      uint32_t take = width - acc_bits;
      acc = take < 64 ? (next >> take) : 0;
      acc_bits = 64 - take;
      emit(i, v);
    } else {
      emit(i, acc & mask);
      acc = width < 64 ? (acc >> width) : 0;
      acc_bits -= width;
    }
  }
}

struct RunHeader {
  Encoding enc;
  uint32_t width;
  uint32_t body_bytes;
};

void AppendHeader(std::vector<uint8_t>* out, Encoding enc, uint32_t width,
                  uint32_t body_bytes) {
  out->push_back(static_cast<uint8_t>(enc));
  out->push_back(static_cast<uint8_t>(width));
  out->push_back(0);
  out->push_back(0);
  AppendU32(out, body_bytes);
}

size_t EncodeRaw(const Value* values, size_t n, std::vector<uint8_t>* out) {
  size_t body = n * sizeof(Value);
  AppendHeader(out, Encoding::kRaw, 64, static_cast<uint32_t>(body));
  size_t at = out->size();
  out->resize(at + body);
  if (n > 0) std::memcpy(out->data() + at, values, body);
  return kRunHeaderBytes + body;
}

size_t EncodeFor(const Value* values, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return 0;
  int64_t lo = values[0], hi = values[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  // hi >= lo, so the difference fits in uint64 when computed mod 2^64.
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  uint32_t width = BitWidth(range);
  if (width >= 64) return 0;  // no savings possible; raw covers it
  size_t body = 8 + PackedBytes(n, width);
  AppendHeader(out, Encoding::kFor, width, static_cast<uint32_t>(body));
  AppendU64(out, static_cast<uint64_t>(lo));
  PackBits(
      n, width,
      [&](size_t i) {
        return static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(lo);
      },
      out);
  return kRunHeaderBytes + body;
}

size_t EncodeDelta(const Value* values, size_t n, std::vector<uint8_t>* out) {
  if (n < 2) return 0;
  uint32_t width = 0;
  for (size_t i = 1; i < n; ++i) {
    uint64_t d = ZigZag(static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1])));
    width = std::max(width, BitWidth(d));
  }
  if (width >= 64) return 0;
  size_t body = 8 + PackedBytes(n - 1, width);
  AppendHeader(out, Encoding::kDelta, width, static_cast<uint32_t>(body));
  AppendU64(out, static_cast<uint64_t>(values[0]));
  PackBits(
      n - 1, width,
      [&](size_t i) {
        return ZigZag(static_cast<int64_t>(
            static_cast<uint64_t>(values[i + 1]) -
            static_cast<uint64_t>(values[i])));
      },
      out);
  return kRunHeaderBytes + body;
}

size_t EncodeDict(const Value* values, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return 0;
  std::unordered_set<int64_t> seen;
  for (size_t i = 0; i < n; ++i) {
    seen.insert(values[i]);
    if (seen.size() > kDictMaxCardinality) return 0;
  }
  std::vector<int64_t> dict(seen.begin(), seen.end());
  std::sort(dict.begin(), dict.end());
  uint32_t width = BitWidth(dict.size() - 1);
  size_t body = 8 + dict.size() * 8 + PackedBytes(n, width);
  AppendHeader(out, Encoding::kDict, width, static_cast<uint32_t>(body));
  AppendU64(out, dict.size());
  for (int64_t v : dict) AppendU64(out, static_cast<uint64_t>(v));
  PackBits(
      n, width,
      [&](size_t i) {
        return static_cast<uint64_t>(
            std::lower_bound(dict.begin(), dict.end(), values[i]) -
            dict.begin());
      },
      out);
  return kRunHeaderBytes + body;
}

// Predicted encoded size without materializing, for the picker.
size_t PredictFor(const Value* values, size_t n) {
  if (n == 0) return SIZE_MAX;
  int64_t lo = values[0], hi = values[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  uint32_t width =
      BitWidth(static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo));
  if (width >= 64) return SIZE_MAX;
  return kRunHeaderBytes + 8 + PackedBytes(n, width);
}

size_t PredictDelta(const Value* values, size_t n) {
  if (n < 2) return SIZE_MAX;
  uint32_t width = 0;
  for (size_t i = 1; i < n; ++i) {
    width = std::max(
        width, BitWidth(ZigZag(static_cast<int64_t>(
                   static_cast<uint64_t>(values[i]) -
                   static_cast<uint64_t>(values[i - 1])))));
  }
  if (width >= 64) return SIZE_MAX;
  return kRunHeaderBytes + 8 + PackedBytes(n - 1, width);
}

size_t PredictDict(const Value* values, size_t n) {
  if (n == 0) return SIZE_MAX;
  std::unordered_set<int64_t> seen;
  for (size_t i = 0; i < n; ++i) {
    seen.insert(values[i]);
    if (seen.size() > kDictMaxCardinality) return SIZE_MAX;
  }
  uint32_t width = BitWidth(seen.size() - 1);
  return kRunHeaderBytes + 8 + seen.size() * 8 + PackedBytes(n, width);
}

common::Status Corrupt(const char* what) {
  return common::Status::IOError(std::string("corrupt encoded run: ") + what);
}

}  // namespace

size_t EncodeRun(const Value* values, size_t n, std::vector<uint8_t>* out) {
  size_t raw = kRunHeaderBytes + n * sizeof(Value);
  size_t best = raw;
  Encoding pick = Encoding::kRaw;
  size_t c = PredictFor(values, n);
  if (c < best) {
    best = c;
    pick = Encoding::kFor;
  }
  c = PredictDelta(values, n);
  if (c < best) {
    best = c;
    pick = Encoding::kDelta;
  }
  c = PredictDict(values, n);
  if (c < best) {
    best = c;
    pick = Encoding::kDict;
  }
  size_t bytes = EncodeRunAs(pick, values, n, out);
  return bytes != 0 ? bytes : EncodeRaw(values, n, out);
}

size_t EncodeRunAs(Encoding enc, const Value* values, size_t n,
                   std::vector<uint8_t>* out) {
  switch (enc) {
    case Encoding::kRaw:
      return EncodeRaw(values, n, out);
    case Encoding::kFor:
      return EncodeFor(values, n, out);
    case Encoding::kDelta:
      return EncodeDelta(values, n, out);
    case Encoding::kDict:
      return EncodeDict(values, n, out);
  }
  return 0;
}

common::Status DecodeRun(const uint8_t* encoded, size_t len, size_t n,
                         Value* values, size_t* consumed) {
  if (len < kRunHeaderBytes) return Corrupt("truncated header");
  uint8_t enc_tag = encoded[0];
  uint32_t width = encoded[1];
  if (encoded[2] != 0 || encoded[3] != 0) return Corrupt("nonzero reserved");
  uint32_t body;
  std::memcpy(&body, encoded + 4, 4);
  if (body > len - kRunHeaderBytes) return Corrupt("body past buffer");
  const uint8_t* p = encoded + kRunHeaderBytes;
  switch (static_cast<Encoding>(enc_tag)) {
    case Encoding::kRaw: {
      if (body != n * sizeof(Value)) return Corrupt("raw body size");
      if (n > 0) std::memcpy(values, p, body);
      break;
    }
    case Encoding::kFor: {
      if (width > 63) return Corrupt("FOR width");
      if (n == 0 || body != 8 + PackedBytes(n, width)) {
        return Corrupt("FOR body size");
      }
      uint64_t base;
      std::memcpy(&base, p, 8);
      UnpackBits(p + 8, n, width, [&](size_t i, uint64_t d) {
        values[i] = static_cast<Value>(base + d);
      });
      break;
    }
    case Encoding::kDelta: {
      if (width > 63) return Corrupt("delta width");
      if (n < 2 || body != 8 + PackedBytes(n - 1, width)) {
        return Corrupt("delta body size");
      }
      uint64_t first;
      std::memcpy(&first, p, 8);
      values[0] = static_cast<Value>(first);
      uint64_t prev = first;
      UnpackBits(p + 8, n - 1, width, [&](size_t i, uint64_t z) {
        prev += static_cast<uint64_t>(UnZigZag(z));
        values[i + 1] = static_cast<Value>(prev);
      });
      break;
    }
    case Encoding::kDict: {
      if (width > 63) return Corrupt("dict width");
      if (n == 0 || body < 8) return Corrupt("dict body size");
      uint64_t dict_n;
      std::memcpy(&dict_n, p, 8);
      if (dict_n == 0 || dict_n > n || dict_n > kDictMaxCardinality) {
        return Corrupt("dict cardinality");
      }
      if (body != 8 + dict_n * 8 + PackedBytes(n, width)) {
        return Corrupt("dict body size");
      }
      const uint8_t* dict = p + 8;
      const uint8_t* idx = dict + dict_n * 8;
      bool bad_index = false;
      UnpackBits(idx, n, width, [&](size_t i, uint64_t d) {
        if (d >= dict_n) {
          bad_index = true;
          d = 0;
        }
        int64_t v;
        std::memcpy(&v, dict + d * 8, 8);
        values[i] = v;
      });
      if (bad_index) return Corrupt("dict index out of range");
      break;
    }
    default:
      return Corrupt("unknown encoding");
  }
  *consumed = kRunHeaderBytes + body;
  return common::Status::OK();
}

Encoding PeekRunEncoding(const uint8_t* encoded) {
  return static_cast<Encoding>(encoded[0]);
}

}  // namespace data
}  // namespace hdsky
