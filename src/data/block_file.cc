#include "data/block_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32c.h"
#include "data/encoding.h"

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

namespace {

constexpr char kMagic[8] = {'H', 'D', 'S', 'K', 'Y', 'B', 'F', '1'};

size_t AlignPage(size_t bytes) {
  return (bytes + kBlockFileAlign - 1) / kBlockFileAlign * kBlockFileAlign;
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounds-checked sequential reader over the header bytes.
class HeaderReader {
 public:
  HeaderReader(const uint8_t* base, size_t limit)
      : base_(base), limit_(limit) {}

  bool Raw(void* out, size_t len) {
    if (pos_ + len > limit_) return false;
    std::memcpy(out, base_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool String(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len) || pos_ + len > limit_) return false;
    s->assign(reinterpret_cast<const char*>(base_ + pos_), len);
    pos_ += len;
    return true;
  }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* base_;
  size_t limit_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::IOError(path + ": " + why);
}

/// Entry counts per index level for `data_pages` leaves: level 0 has one
/// entry per data page; each higher level divides by `fanout` until a
/// level fits within one fanout's worth of entries.
std::vector<int64_t> LevelCounts(int64_t data_pages, int fanout) {
  std::vector<int64_t> counts;
  if (data_pages == 0) return counts;
  counts.push_back(data_pages);
  while (counts.back() > fanout) {
    counts.push_back((counts.back() + fanout - 1) / fanout);
  }
  return counts;
}

Status PreadExact(int fd, uint64_t offset, size_t len, uint8_t* out,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, out + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path + ": " + std::strerror(errno));
    }
    if (n == 0) return Corrupt(path, "unexpected EOF");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockFileWriter.

Result<std::unique_ptr<BlockFileWriter>> BlockFileWriter::Create(
    const std::string& path, const Schema& schema,
    const std::string& ranking, const BlockFileOptions& options) {
  if (options.rows_per_block < 1 ||
      options.rows_per_block > (int64_t{1} << 20)) {
    return Status::InvalidArgument("rows_per_block out of range");
  }
  if (options.index_fanout < 2 || options.index_fanout > (1 << 16)) {
    return Status::InvalidArgument("index_fanout out of range");
  }
  if (schema.num_attributes() < 1) {
    return Status::InvalidArgument("schema has no attributes");
  }
  auto w = std::unique_ptr<BlockFileWriter>(new BlockFileWriter());
  w->schema_ = schema;
  w->ranking_ = ranking;
  w->rows_per_block_ = options.rows_per_block;
  w->index_fanout_ = options.index_fanout;
  w->num_attrs_ = schema.num_attributes();
  w->compression_ = options.compression;
  const size_t payload =
      static_cast<size_t>(options.rows_per_block) *
      static_cast<size_t>(w->num_attrs_ + 1) * sizeof(Value);
  w->page_bytes_ = AlignPage(kPageHeaderBytes + payload);
  // The header must fit in the reserved page-0 region alongside its
  // fixed fields: a full slot for v1, one 4 KiB unit for v2.
  const size_t header_upper_bound = 256 + 16 * kMaxIndexLevels +
                                    ranking.size() +
                                    schema.Serialize().size();
  const size_t header_reserved = options.compression == Compression::kOff
                                     ? w->page_bytes_
                                     : kBlockFileAlign;
  if (header_upper_bound > header_reserved) {
    return Status::InvalidArgument(
        "schema too large for header page" +
        std::string(options.compression == Compression::kOff
                        ? ""
                        : " (try --compress=off)"));
  }
  HDSKY_ASSIGN_OR_RETURN(w->out_, common::AtomicFileWriter::Create(path));
  // Reserve page 0; the real header is back-patched in Finish().
  w->page_buf_.assign(header_reserved, 0);
  HDSKY_RETURN_IF_ERROR(
      w->out_->Append(w->page_buf_.data(), header_reserved));
  w->page_offsets_.push_back(0);
  w->page_enc_bytes_.push_back(static_cast<uint32_t>(header_reserved));
  w->stats_.columns.resize(static_cast<size_t>(w->num_attrs_) + 1);
  w->ids_.reserve(static_cast<size_t>(options.rows_per_block));
  w->cols_.resize(static_cast<size_t>(w->num_attrs_));
  for (auto& c : w->cols_) {
    c.reserve(static_cast<size_t>(options.rows_per_block));
  }
  return w;
}

Status BlockFileWriter::Append(TupleId id, const Value* row) {
  if (finished_) return Status::IOError("append after Finish");
  ids_.push_back(id);
  for (int a = 0; a < num_attrs_; ++a) {
    cols_[static_cast<size_t>(a)].push_back(row[a]);
  }
  ++rows_written_;
  if (static_cast<int64_t>(ids_.size()) == rows_per_block_) {
    return FlushBlock();
  }
  return Status::OK();
}

Status BlockFileWriter::AppendPage(const Value* const* runs,
                                   const size_t* counts, size_t num_runs,
                                   uint32_t entry_count,
                                   int first_col_stat) {
  if (compression_ == Compression::kOff) {
    // v1: fixed slot, payload stored raw.
    std::fill(page_buf_.begin(), page_buf_.end(), 0);
    page_buf_.resize(page_bytes_, 0);
    uint8_t* payload = page_buf_.data() + kPageHeaderBytes;
    size_t payload_bytes = 0;
    for (size_t r = 0; r < num_runs; ++r) {
      std::memcpy(payload + payload_bytes, runs[r],
                  counts[r] * sizeof(Value));
      payload_bytes += counts[r] * sizeof(Value);
      if (first_col_stat >= 0) {
        auto& c = stats_.columns[static_cast<size_t>(first_col_stat) + r];
        c.raw_bytes += counts[r] * sizeof(Value);
        c.encoded_bytes += counts[r] * sizeof(Value);
      }
    }
    const uint32_t crc = common::Crc32c(std::string_view(
        reinterpret_cast<const char*>(payload), payload_bytes));
    reinterpret_cast<uint32_t*>(page_buf_.data())[0] = crc;
    reinterpret_cast<uint32_t*>(page_buf_.data())[1] = entry_count;
    page_offsets_.push_back(out_->bytes_appended());
    page_enc_bytes_.push_back(static_cast<uint32_t>(page_bytes_));
    return out_->Append(page_buf_.data(), page_bytes_);
  }

  // v2: encode each run, CRC the encoded payload, pad to alignment.
  page_buf_.clear();
  page_buf_.resize(kPageHeaderBytes, 0);
  for (size_t r = 0; r < num_runs; ++r) {
    const size_t bytes = EncodeRun(runs[r], counts[r], &page_buf_);
    if (first_col_stat >= 0) {
      auto& c = stats_.columns[static_cast<size_t>(first_col_stat) + r];
      c.raw_bytes += counts[r] * sizeof(Value);
      c.encoded_bytes += bytes;
    }
  }
  const size_t enc_bytes = page_buf_.size();
  const uint32_t crc = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(page_buf_.data()) + kPageHeaderBytes,
      enc_bytes - kPageHeaderBytes));
  reinterpret_cast<uint32_t*>(page_buf_.data())[0] = crc;
  reinterpret_cast<uint32_t*>(page_buf_.data())[1] = entry_count;
  page_offsets_.push_back(out_->bytes_appended());
  page_enc_bytes_.push_back(static_cast<uint32_t>(enc_bytes));
  page_buf_.resize(AlignPage(enc_bytes), 0);  // zero-pad to 4 KiB
  return out_->Append(page_buf_.data(), page_buf_.size());
}

Status BlockFileWriter::FlushBlock() {
  const int64_t rows = static_cast<int64_t>(ids_.size());
  if (rows == 0) return Status::OK();
  std::vector<const Value*> runs;
  std::vector<size_t> counts;
  runs.push_back(reinterpret_cast<const Value*>(ids_.data()));
  counts.push_back(static_cast<size_t>(rows));
  for (int a = 0; a < num_attrs_; ++a) {
    runs.push_back(cols_[static_cast<size_t>(a)].data());
    counts.push_back(static_cast<size_t>(rows));
    // Zone entry for this page: min/max including NULL (NULL sorts
    // worst, matching the in-memory BlockedColumns zone maps).
    Value lo = kNullValue;
    Value hi = INT64_MIN;
    for (Value v : cols_[static_cast<size_t>(a)]) {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    level0_zones_.push_back(lo);
    level0_zones_.push_back(hi);
  }
  HDSKY_RETURN_IF_ERROR(AppendPage(runs.data(), counts.data(), runs.size(),
                                   static_cast<uint32_t>(rows),
                                   /*first_col_stat=*/0));
  ++data_pages_;
  ids_.clear();
  for (auto& c : cols_) c.clear();
  return Status::OK();
}

Result<int64_t> BlockFileWriter::Finish() {
  if (finished_) return Status::IOError("double Finish");
  HDSKY_RETURN_IF_ERROR(FlushBlock());
  finished_ = true;

  const int64_t entries_per_page = static_cast<int64_t>(
      (page_bytes_ - kPageHeaderBytes) /
      (2 * static_cast<size_t>(num_attrs_) * sizeof(Value)));
  const std::vector<int64_t> counts =
      LevelCounts(data_pages_, index_fanout_);
  std::vector<int64_t> level_starts;
  int64_t index_pages = 0;

  // Emit the zone levels bottom-up; each level's entries are derived by
  // merging `index_fanout_` children of the previous one.
  std::vector<Value> level = std::move(level0_zones_);
  int64_t next_page = 1 + data_pages_;
  for (size_t l = 0; l < counts.size(); ++l) {
    level_starts.push_back(next_page);
    const int64_t n = counts[l];
    for (int64_t first = 0; first < n; first += entries_per_page) {
      const int64_t in_page = std::min(entries_per_page, n - first);
      const Value* run = level.data() + first * 2 * num_attrs_;
      const size_t run_count = static_cast<size_t>(in_page) * 2 *
                               static_cast<size_t>(num_attrs_);
      HDSKY_RETURN_IF_ERROR(AppendPage(&run, &run_count, 1,
                                       static_cast<uint32_t>(in_page),
                                       /*first_col_stat=*/-1));
      ++next_page;
      ++index_pages;
    }
    if (l + 1 == counts.size()) break;
    const int64_t parents = counts[l + 1];
    std::vector<Value> up(static_cast<size_t>(parents) * 2 *
                          static_cast<size_t>(num_attrs_));
    for (int64_t p = 0; p < parents; ++p) {
      Value* entry = up.data() + p * 2 * num_attrs_;
      for (int a = 0; a < num_attrs_; ++a) {
        entry[2 * a] = kNullValue;
        entry[2 * a + 1] = INT64_MIN;
      }
      const int64_t lo = p * index_fanout_;
      const int64_t hi = std::min(n, lo + index_fanout_);
      for (int64_t c = lo; c < hi; ++c) {
        const Value* child = level.data() + c * 2 * num_attrs_;
        for (int a = 0; a < num_attrs_; ++a) {
          if (child[2 * a] < entry[2 * a]) entry[2 * a] = child[2 * a];
          if (child[2 * a + 1] > entry[2 * a + 1]) {
            entry[2 * a + 1] = child[2 * a + 1];
          }
        }
      }
    }
    level = std::move(up);
  }

  // v2: the page directory, CRC'd, its offset recorded in the header.
  const uint64_t dir_offset = out_->bytes_appended();
  if (compression_ != Compression::kOff) {
    std::string dir;
    PutU64(page_offsets_.size(), &dir);
    for (size_t i = 0; i < page_offsets_.size(); ++i) {
      PutU64(page_offsets_[i], &dir);
      PutU32(page_enc_bytes_[i], &dir);
    }
    PutU32(common::Crc32c(dir), &dir);
    HDSKY_RETURN_IF_ERROR(out_->Append(dir.data(), dir.size()));
  }

  // Header page, back-patched over the reservation at offset 0.
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(compression_ == Compression::kOff ? kBlockFileVersion
                                           : kBlockFileVersionCompressed,
         &header);
  PutU32(static_cast<uint32_t>(page_bytes_), &header);
  PutU32(static_cast<uint32_t>(rows_per_block_), &header);
  PutU32(static_cast<uint32_t>(num_attrs_), &header);
  PutU64(static_cast<uint64_t>(rows_written_), &header);
  PutU64(static_cast<uint64_t>(data_pages_), &header);
  PutU32(static_cast<uint32_t>(index_fanout_), &header);
  PutU32(static_cast<uint32_t>(counts.size()), &header);
  for (int l = 0; l < kMaxIndexLevels; ++l) {
    PutU64(static_cast<size_t>(l) < counts.size()
               ? static_cast<uint64_t>(counts[static_cast<size_t>(l)])
               : 0,
           &header);
    PutU64(static_cast<size_t>(l) < level_starts.size()
               ? static_cast<uint64_t>(
                     level_starts[static_cast<size_t>(l)])
               : 0,
           &header);
  }
  if (compression_ != Compression::kOff) {
    PutU32(1, &header);  // feature flags: bit 0 = per-run encoding
    PutU64(dir_offset, &header);
  }
  PutString(ranking_, &header);
  PutString(schema_.Serialize(), &header);
  PutU32(common::Crc32c(header), &header);
  const size_t header_reserved = compression_ == Compression::kOff
                                     ? page_bytes_
                                     : kBlockFileAlign;
  if (header.size() > header_reserved) {
    return Status::InvalidArgument("header exceeds page size");
  }
  HDSKY_RETURN_IF_ERROR(out_->WriteAt(0, header.data(), header.size()));
  stats_.rows = rows_written_;
  stats_.data_pages = data_pages_;
  stats_.index_pages = index_pages;
  stats_.num_index_levels = static_cast<int>(counts.size());
  stats_.file_bytes = out_->bytes_appended();
  HDSKY_RETURN_IF_ERROR(out_->Commit());
  out_.reset();
  return rows_written_;
}

// ---------------------------------------------------------------------------
// BlockFile.

Result<std::unique_ptr<BlockFile>> BlockFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  auto f = std::unique_ptr<BlockFile>(new BlockFile());
  f->path_ = path;
  f->fd_ = fd;  // closed by ~BlockFile from here on
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < kBlockFileAlign) {
    return Corrupt(path, "too small to hold a header page");
  }
  f->file_bytes_ = file_bytes;

  const size_t hdr_len =
      static_cast<size_t>(std::min<uint64_t>(file_bytes, 1 << 20));
  std::vector<uint8_t> hdr(hdr_len);
  HDSKY_RETURN_IF_ERROR(PreadExact(fd, 0, hdr_len, hdr.data(), path));

  HeaderReader r(hdr.data(), hdr_len);
  char magic[8];
  uint32_t version = 0, page_bytes = 0, rows_per_block = 0, num_attrs = 0;
  uint64_t num_rows = 0, data_pages = 0;
  uint32_t fanout = 0, num_levels = 0;
  uint64_t level_counts[kMaxIndexLevels] = {0};
  uint64_t level_starts[kMaxIndexLevels] = {0};
  uint32_t flags = 0;
  uint64_t dir_offset = 0;
  std::string ranking, schema_line;
  if (!r.Raw(magic, sizeof(magic)) || !r.U32(&version)) {
    return Corrupt(path, "short header");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic (not a block file)");
  }
  if (version != kBlockFileVersion &&
      version != kBlockFileVersionCompressed) {
    return Corrupt(path,
                   "unsupported version " + std::to_string(version));
  }
  bool ok = r.U32(&page_bytes) && r.U32(&rows_per_block) &&
            r.U32(&num_attrs) && r.U64(&num_rows) && r.U64(&data_pages) &&
            r.U32(&fanout) && r.U32(&num_levels);
  for (int l = 0; ok && l < kMaxIndexLevels; ++l) {
    ok = r.U64(&level_counts[l]) && r.U64(&level_starts[l]);
  }
  if (ok && version == kBlockFileVersionCompressed) {
    ok = r.U32(&flags) && r.U64(&dir_offset);
  }
  ok = ok && r.String(&ranking) && r.String(&schema_line);
  if (!ok) return Corrupt(path, "short header");
  const uint32_t stored_crc = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(hdr.data()), r.pos()));
  uint32_t file_crc = 0;
  if (!r.U32(&file_crc)) return Corrupt(path, "short header");
  if (stored_crc != file_crc) return Corrupt(path, "header CRC mismatch");

  const size_t header_reserved =
      version == kBlockFileVersion ? page_bytes : kBlockFileAlign;
  if (page_bytes < kBlockFileAlign || page_bytes % kBlockFileAlign != 0 ||
      r.pos() > header_reserved) {
    return Corrupt(path, "implausible page size");
  }
  if (rows_per_block < 1 || rows_per_block > (1u << 20) || num_attrs < 1 ||
      fanout < 2) {
    return Corrupt(path, "implausible geometry");
  }
  const uint64_t expected_pages =
      rows_per_block == 0
          ? 0
          : (num_rows + rows_per_block - 1) / rows_per_block;
  if (data_pages != expected_pages) {
    return Corrupt(path, "row/page count mismatch");
  }
  HDSKY_ASSIGN_OR_RETURN(f->schema_, Schema::Deserialize(schema_line));
  if (f->schema_.num_attributes() != static_cast<int>(num_attrs)) {
    return Corrupt(path, "schema/attribute count mismatch");
  }

  f->ranking_ = std::move(ranking);
  f->version_ = version;
  f->page_bytes_ = page_bytes;
  f->rows_per_block_ = rows_per_block;
  f->num_attrs_ = static_cast<int>(num_attrs);
  f->num_rows_ = static_cast<int64_t>(num_rows);
  f->num_data_pages_ = static_cast<int64_t>(data_pages);
  f->index_fanout_ = static_cast<int>(fanout);
  f->index_entries_per_page_ = static_cast<int64_t>(
      (page_bytes - kPageHeaderBytes) /
      (2 * static_cast<size_t>(num_attrs) * sizeof(Value)));
  if (f->index_entries_per_page_ < 1 ||
      kPageHeaderBytes + static_cast<size_t>(rows_per_block) *
                             (static_cast<size_t>(num_attrs) + 1) *
                             sizeof(Value) >
          page_bytes) {
    return Corrupt(path, "geometry does not fit page size");
  }

  // Recompute the level structure from the geometry and demand the
  // stored one matches — a corrupted header cannot send the traversal
  // outside the file.
  const std::vector<int64_t> counts =
      LevelCounts(f->num_data_pages_, f->index_fanout_);
  if (counts.size() != num_levels ||
      num_levels > static_cast<uint32_t>(kMaxIndexLevels)) {
    return Corrupt(path, "index level mismatch");
  }
  int64_t next_page = 1 + f->num_data_pages_;
  for (size_t l = 0; l < counts.size(); ++l) {
    if (static_cast<uint64_t>(counts[l]) != level_counts[l] ||
        static_cast<uint64_t>(next_page) != level_starts[l]) {
      return Corrupt(path, "index level mismatch");
    }
    f->level_counts_.push_back(counts[l]);
    f->level_start_pages_.push_back(next_page);
    next_page += (counts[l] + f->index_entries_per_page_ - 1) /
                 f->index_entries_per_page_;
  }
  f->total_pages_ = next_page;

  if (version == kBlockFileVersion) {
    if (static_cast<uint64_t>(f->total_pages_) * page_bytes !=
        file_bytes) {
      return Corrupt(path,
                     "truncated (file size does not match geometry)");
    }
    return f;
  }

  // v2: load + validate the page directory. Every extent must stay
  // inside [header page, dir_offset) and the directory must account for
  // the exact file size, so a corrupted directory cannot aim a read
  // outside the file.
  const uint64_t n_pages = static_cast<uint64_t>(f->total_pages_);
  const uint64_t dir_bytes = 8 + n_pages * 12 + 4;
  if (dir_offset < kBlockFileAlign || dir_offset % kBlockFileAlign != 0 ||
      dir_offset + dir_bytes != file_bytes) {
    return Corrupt(path, "truncated (directory does not match geometry)");
  }
  std::vector<uint8_t> dir(static_cast<size_t>(dir_bytes));
  HDSKY_RETURN_IF_ERROR(
      PreadExact(fd, dir_offset, dir.size(), dir.data(), path));
  const uint32_t dir_crc = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(dir.data()), dir.size() - 4));
  uint32_t stored_dir_crc;
  std::memcpy(&stored_dir_crc, dir.data() + dir.size() - 4, 4);
  if (dir_crc != stored_dir_crc) {
    return Corrupt(path, "page directory CRC mismatch");
  }
  uint64_t dir_n;
  std::memcpy(&dir_n, dir.data(), 8);
  if (dir_n != n_pages) return Corrupt(path, "page directory count");
  f->page_offsets_.resize(static_cast<size_t>(n_pages));
  f->page_enc_bytes_.resize(static_cast<size_t>(n_pages));
  uint64_t prev_end = 0;
  for (uint64_t i = 0; i < n_pages; ++i) {
    uint64_t off;
    uint32_t enc;
    std::memcpy(&off, dir.data() + 8 + i * 12, 8);
    std::memcpy(&enc, dir.data() + 8 + i * 12 + 8, 4);
    if (off % kBlockFileAlign != 0 || off < prev_end ||
        enc < kPageHeaderBytes || off + enc > dir_offset) {
      return Corrupt(path, "page directory extent out of bounds");
    }
    f->page_offsets_[static_cast<size_t>(i)] = off;
    f->page_enc_bytes_[static_cast<size_t>(i)] = enc;
    prev_end = off + enc;
  }
  return f;
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlockFile::ExpectedCount(int64_t page_id, int64_t* count,
                                bool* is_data) const {
  if (page_id < 1 || page_id >= total_pages_) {
    return Corrupt(path_, "page id out of range");
  }
  if (page_id <= num_data_pages_) {
    const int64_t block = page_id - 1;
    *count = std::min(rows_per_block_, num_rows_ - block * rows_per_block_);
    *is_data = true;
    return Status::OK();
  }
  for (size_t l = 0; l < level_start_pages_.size(); ++l) {
    const int64_t pages = (level_counts_[l] + index_entries_per_page_ - 1) /
                          index_entries_per_page_;
    if (page_id >= level_start_pages_[l] &&
        page_id < level_start_pages_[l] + pages) {
      const int64_t first =
          (page_id - level_start_pages_[l]) * index_entries_per_page_;
      *count = std::min(index_entries_per_page_, level_counts_[l] - first);
      *is_data = false;
      return Status::OK();
    }
  }
  return Corrupt(path_, "page id outside any level");
}

size_t BlockFile::frame_bytes(int64_t page_id) const {
  int64_t count = 0;
  bool is_data = false;
  if (!ExpectedCount(page_id, &count, &is_data).ok()) return page_bytes_;
  const size_t values =
      static_cast<size_t>(count) *
      (is_data ? static_cast<size_t>(num_attrs_) + 1
               : 2 * static_cast<size_t>(num_attrs_));
  return kPageHeaderBytes + values * sizeof(Value);
}

Status BlockFile::DecodePage(int64_t page_id, const uint8_t* raw,
                             size_t raw_len, uint8_t* frame) const {
  int64_t expected = 0;
  bool is_data = false;
  HDSKY_RETURN_IF_ERROR(ExpectedCount(page_id, &expected, &is_data));
  const Extent ext = extent(page_id);
  if (raw_len != ext.bytes || raw_len < kPageHeaderBytes) {
    return Corrupt(path_, "page " + std::to_string(page_id) +
                              " fetched with wrong extent");
  }
  uint32_t crc, count;
  std::memcpy(&crc, raw, 4);
  std::memcpy(&count, raw + 4, 4);
  // The count each page must carry is fully determined by the (CRC'd)
  // header geometry, so demand the exact value — a flipped count field
  // cannot redirect the CRC over a shorter payload.
  if (static_cast<int64_t>(count) != expected) {
    return Corrupt(path_, std::string(is_data ? "data" : "index") +
                              " page " + std::to_string(page_id) +
                              " has wrong " +
                              (is_data ? "row" : "entry") + " count");
  }
  const size_t decoded_values =
      static_cast<size_t>(count) *
      (is_data ? static_cast<size_t>(num_attrs_) + 1
               : 2 * static_cast<size_t>(num_attrs_));
  const size_t decoded_payload = decoded_values * sizeof(Value);

  if (!compressed()) {
    if (kPageHeaderBytes + decoded_payload > raw_len) {
      return Corrupt(path_, "page payload exceeds slot");
    }
    const uint32_t actual = common::Crc32c(std::string_view(
        reinterpret_cast<const char*>(raw + kPageHeaderBytes),
        decoded_payload));
    if (actual != crc) {
      return Corrupt(path_,
                     "page " + std::to_string(page_id) + " CRC mismatch");
    }
    std::memcpy(frame, raw, kPageHeaderBytes + decoded_payload);
    return Status::OK();
  }

  // v2: the CRC covers the encoded payload, so corrupt bytes are caught
  // before the decoder touches them; the decoder's own structural
  // validation then guards against a wrong-but-CRC-consistent payload
  // (e.g. a bug writing the file).
  const size_t enc_payload = raw_len - kPageHeaderBytes;
  const uint32_t actual = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(raw + kPageHeaderBytes), enc_payload));
  if (actual != crc) {
    return Corrupt(path_,
                   "page " + std::to_string(page_id) + " CRC mismatch");
  }
  std::memcpy(frame, raw, kPageHeaderBytes);
  Value* dst = reinterpret_cast<Value*>(frame + kPageHeaderBytes);
  const uint8_t* p = raw + kPageHeaderBytes;
  size_t remaining = enc_payload;
  const size_t num_runs =
      is_data ? static_cast<size_t>(num_attrs_) + 1 : 1;
  const size_t run_values = is_data ? static_cast<size_t>(count)
                                    : decoded_values;
  for (size_t r = 0; r < num_runs; ++r) {
    size_t consumed = 0;
    const Status st = DecodeRun(p, remaining, run_values, dst, &consumed);
    if (!st.ok()) {
      return Corrupt(path_, "page " + std::to_string(page_id) + ": " +
                                st.message());
    }
    p += consumed;
    remaining -= consumed;
    dst += run_values;
  }
  if (remaining != 0) {
    return Corrupt(path_, "page " + std::to_string(page_id) +
                              " has trailing encoded bytes");
  }
  // Rewrite the prologue CRC to cover the decoded payload: decoded
  // frames are then bit-identical to the same page in a v1 file, so
  // everything above the pool can treat the two formats as one.
  const uint32_t decoded_crc = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(frame + kPageHeaderBytes),
      decoded_payload));
  std::memcpy(frame, &decoded_crc, 4);
  return Status::OK();
}

}  // namespace data
}  // namespace hdsky
