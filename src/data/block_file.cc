#include "data/block_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32c.h"

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

namespace {

constexpr char kMagic[8] = {'H', 'D', 'S', 'K', 'Y', 'B', 'F', '1'};

size_t AlignPage(size_t bytes) {
  return (bytes + kBlockFileAlign - 1) / kBlockFileAlign * kBlockFileAlign;
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounds-checked sequential reader over the mapped header page.
class HeaderReader {
 public:
  HeaderReader(const uint8_t* base, size_t limit)
      : base_(base), limit_(limit) {}

  bool Raw(void* out, size_t len) {
    if (pos_ + len > limit_) return false;
    std::memcpy(out, base_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool String(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len) || pos_ + len > limit_) return false;
    s->assign(reinterpret_cast<const char*>(base_ + pos_), len);
    pos_ += len;
    return true;
  }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* base_;
  size_t limit_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::IOError(path + ": " + why);
}

/// Entry counts per index level for `data_pages` leaves: level 0 has one
/// entry per data page; each higher level divides by `fanout` until a
/// level fits within one fanout's worth of entries.
std::vector<int64_t> LevelCounts(int64_t data_pages, int fanout) {
  std::vector<int64_t> counts;
  if (data_pages == 0) return counts;
  counts.push_back(data_pages);
  while (counts.back() > fanout) {
    counts.push_back((counts.back() + fanout - 1) / fanout);
  }
  return counts;
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockFileWriter.

Result<std::unique_ptr<BlockFileWriter>> BlockFileWriter::Create(
    const std::string& path, const Schema& schema,
    const std::string& ranking, const BlockFileOptions& options) {
  if (options.rows_per_block < 1 ||
      options.rows_per_block > (int64_t{1} << 20)) {
    return Status::InvalidArgument("rows_per_block out of range");
  }
  if (options.index_fanout < 2 || options.index_fanout > (1 << 16)) {
    return Status::InvalidArgument("index_fanout out of range");
  }
  if (schema.num_attributes() < 1) {
    return Status::InvalidArgument("schema has no attributes");
  }
  auto w = std::unique_ptr<BlockFileWriter>(new BlockFileWriter());
  w->schema_ = schema;
  w->ranking_ = ranking;
  w->rows_per_block_ = options.rows_per_block;
  w->index_fanout_ = options.index_fanout;
  w->num_attrs_ = schema.num_attributes();
  const size_t payload =
      static_cast<size_t>(options.rows_per_block) *
      static_cast<size_t>(w->num_attrs_ + 1) * sizeof(Value);
  w->page_bytes_ = AlignPage(kPageHeaderBytes + payload);
  // The header must fit in page 0 alongside its fixed fields.
  const size_t header_upper_bound = 256 + 16 * kMaxIndexLevels +
                                    ranking.size() +
                                    schema.Serialize().size();
  if (header_upper_bound > w->page_bytes_) {
    return Status::InvalidArgument("schema too large for header page");
  }
  HDSKY_ASSIGN_OR_RETURN(w->out_, common::AtomicFileWriter::Create(path));
  // Reserve page 0; the real header is back-patched in Finish().
  w->page_buf_.assign(w->page_bytes_, 0);
  HDSKY_RETURN_IF_ERROR(
      w->out_->Append(w->page_buf_.data(), w->page_bytes_));
  w->ids_.reserve(static_cast<size_t>(options.rows_per_block));
  w->cols_.resize(static_cast<size_t>(w->num_attrs_));
  for (auto& c : w->cols_) {
    c.reserve(static_cast<size_t>(options.rows_per_block));
  }
  return w;
}

Status BlockFileWriter::Append(TupleId id, const Value* row) {
  if (finished_) return Status::IOError("append after Finish");
  ids_.push_back(id);
  for (int a = 0; a < num_attrs_; ++a) {
    cols_[static_cast<size_t>(a)].push_back(row[a]);
  }
  ++rows_written_;
  if (static_cast<int64_t>(ids_.size()) == rows_per_block_) {
    return FlushBlock();
  }
  return Status::OK();
}

Status BlockFileWriter::FlushBlock() {
  const int64_t rows = static_cast<int64_t>(ids_.size());
  if (rows == 0) return Status::OK();
  std::fill(page_buf_.begin(), page_buf_.end(), 0);
  uint8_t* page = page_buf_.data();
  uint8_t* payload = page + kPageHeaderBytes;
  std::memcpy(payload, ids_.data(),
              static_cast<size_t>(rows) * sizeof(TupleId));
  Value* runs = reinterpret_cast<Value*>(payload) + rows;
  for (int a = 0; a < num_attrs_; ++a) {
    std::memcpy(runs + static_cast<int64_t>(a) * rows,
                cols_[static_cast<size_t>(a)].data(),
                static_cast<size_t>(rows) * sizeof(Value));
    // Zone entry for this page: min/max including NULL (NULL sorts
    // worst, matching the in-memory BlockedColumns zone maps).
    Value lo = kNullValue;
    Value hi = INT64_MIN;
    for (Value v : cols_[static_cast<size_t>(a)]) {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    level0_zones_.push_back(lo);
    level0_zones_.push_back(hi);
  }
  const size_t payload_bytes =
      static_cast<size_t>(rows) * static_cast<size_t>(num_attrs_ + 1) *
      sizeof(Value);
  const uint32_t crc = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(payload), payload_bytes));
  reinterpret_cast<uint32_t*>(page)[0] = crc;
  reinterpret_cast<uint32_t*>(page)[1] = static_cast<uint32_t>(rows);
  HDSKY_RETURN_IF_ERROR(out_->Append(page, page_bytes_));
  ++data_pages_;
  ids_.clear();
  for (auto& c : cols_) c.clear();
  return Status::OK();
}

Result<int64_t> BlockFileWriter::Finish() {
  if (finished_) return Status::IOError("double Finish");
  HDSKY_RETURN_IF_ERROR(FlushBlock());
  finished_ = true;

  const int64_t entries_per_page = static_cast<int64_t>(
      (page_bytes_ - kPageHeaderBytes) /
      (2 * static_cast<size_t>(num_attrs_) * sizeof(Value)));
  const std::vector<int64_t> counts =
      LevelCounts(data_pages_, index_fanout_);
  std::vector<int64_t> level_starts;

  // Emit the zone levels bottom-up; each level's entries are derived by
  // merging `index_fanout_` children of the previous one.
  std::vector<Value> level = std::move(level0_zones_);
  int64_t next_page = 1 + data_pages_;
  for (size_t l = 0; l < counts.size(); ++l) {
    level_starts.push_back(next_page);
    const int64_t n = counts[l];
    for (int64_t first = 0; first < n; first += entries_per_page) {
      const int64_t in_page = std::min(entries_per_page, n - first);
      std::fill(page_buf_.begin(), page_buf_.end(), 0);
      uint8_t* page = page_buf_.data();
      uint8_t* payload = page + kPageHeaderBytes;
      const size_t payload_bytes =
          static_cast<size_t>(in_page) * 2 *
          static_cast<size_t>(num_attrs_) * sizeof(Value);
      std::memcpy(payload,
                  level.data() + first * 2 * num_attrs_, payload_bytes);
      const uint32_t crc = common::Crc32c(std::string_view(
          reinterpret_cast<const char*>(payload), payload_bytes));
      reinterpret_cast<uint32_t*>(page)[0] = crc;
      reinterpret_cast<uint32_t*>(page)[1] =
          static_cast<uint32_t>(in_page);
      HDSKY_RETURN_IF_ERROR(out_->Append(page, page_bytes_));
      ++next_page;
    }
    if (l + 1 == counts.size()) break;
    const int64_t parents = counts[l + 1];
    std::vector<Value> up(static_cast<size_t>(parents) * 2 *
                          static_cast<size_t>(num_attrs_));
    for (int64_t p = 0; p < parents; ++p) {
      Value* entry = up.data() + p * 2 * num_attrs_;
      for (int a = 0; a < num_attrs_; ++a) {
        entry[2 * a] = kNullValue;
        entry[2 * a + 1] = INT64_MIN;
      }
      const int64_t lo = p * index_fanout_;
      const int64_t hi = std::min(n, lo + index_fanout_);
      for (int64_t c = lo; c < hi; ++c) {
        const Value* child = level.data() + c * 2 * num_attrs_;
        for (int a = 0; a < num_attrs_; ++a) {
          if (child[2 * a] < entry[2 * a]) entry[2 * a] = child[2 * a];
          if (child[2 * a + 1] > entry[2 * a + 1]) {
            entry[2 * a + 1] = child[2 * a + 1];
          }
        }
      }
    }
    level = std::move(up);
  }

  // Header page, back-patched over the reservation at offset 0.
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(kBlockFileVersion, &header);
  PutU32(static_cast<uint32_t>(page_bytes_), &header);
  PutU32(static_cast<uint32_t>(rows_per_block_), &header);
  PutU32(static_cast<uint32_t>(num_attrs_), &header);
  PutU64(static_cast<uint64_t>(rows_written_), &header);
  PutU64(static_cast<uint64_t>(data_pages_), &header);
  PutU32(static_cast<uint32_t>(index_fanout_), &header);
  PutU32(static_cast<uint32_t>(counts.size()), &header);
  for (int l = 0; l < kMaxIndexLevels; ++l) {
    PutU64(static_cast<size_t>(l) < counts.size()
               ? static_cast<uint64_t>(counts[static_cast<size_t>(l)])
               : 0,
           &header);
    PutU64(static_cast<size_t>(l) < level_starts.size()
               ? static_cast<uint64_t>(
                     level_starts[static_cast<size_t>(l)])
               : 0,
           &header);
  }
  PutString(ranking_, &header);
  PutString(schema_.Serialize(), &header);
  PutU32(common::Crc32c(header), &header);
  if (header.size() > page_bytes_) {
    return Status::InvalidArgument("header exceeds page size");
  }
  HDSKY_RETURN_IF_ERROR(out_->WriteAt(0, header.data(), header.size()));
  HDSKY_RETURN_IF_ERROR(out_->Commit());
  out_.reset();
  return rows_written_;
}

// ---------------------------------------------------------------------------
// BlockFile.

Result<std::unique_ptr<BlockFile>> BlockFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s =
        Status::IOError("fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < kBlockFileAlign) {
    ::close(fd);
    return Corrupt(path, "too small to hold a header page");
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  // Pages are touched in zone-tree order, not sequentially; stop the
  // kernel from readahead-ing the whole file on first fault.
  ::madvise(map, file_bytes, MADV_RANDOM);

  auto f = std::unique_ptr<BlockFile>(new BlockFile());
  f->path_ = path;
  f->base_ = static_cast<const uint8_t*>(map);
  f->file_bytes_ = file_bytes;

  HeaderReader r(f->base_, std::min<uint64_t>(file_bytes, 1 << 20));
  char magic[8];
  uint32_t version = 0, page_bytes = 0, rows_per_block = 0, num_attrs = 0;
  uint64_t num_rows = 0, data_pages = 0;
  uint32_t fanout = 0, num_levels = 0;
  uint64_t level_counts[kMaxIndexLevels] = {0};
  uint64_t level_starts[kMaxIndexLevels] = {0};
  std::string ranking, schema_line;
  bool ok = r.Raw(magic, sizeof(magic)) && r.U32(&version) &&
            r.U32(&page_bytes) && r.U32(&rows_per_block) &&
            r.U32(&num_attrs) && r.U64(&num_rows) && r.U64(&data_pages);
  ok = ok && r.U32(&fanout) && r.U32(&num_levels);
  for (int l = 0; ok && l < kMaxIndexLevels; ++l) {
    ok = r.U64(&level_counts[l]) && r.U64(&level_starts[l]);
  }
  ok = ok && r.String(&ranking) && r.String(&schema_line);
  if (!ok) return Corrupt(path, "short header");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic (not a block file)");
  }
  if (version != kBlockFileVersion) {
    return Corrupt(path,
                   "unsupported version " + std::to_string(version));
  }
  const uint32_t stored_crc = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(f->base_), r.pos()));
  uint32_t file_crc = 0;
  if (!r.U32(&file_crc)) return Corrupt(path, "short header");
  if (stored_crc != file_crc) return Corrupt(path, "header CRC mismatch");

  if (page_bytes < kBlockFileAlign || page_bytes % kBlockFileAlign != 0 ||
      r.pos() > page_bytes) {
    return Corrupt(path, "implausible page size");
  }
  if (rows_per_block < 1 || rows_per_block > (1u << 20) || num_attrs < 1 ||
      fanout < 2) {
    return Corrupt(path, "implausible geometry");
  }
  const uint64_t expected_pages =
      rows_per_block == 0
          ? 0
          : (num_rows + rows_per_block - 1) / rows_per_block;
  if (data_pages != expected_pages) {
    return Corrupt(path, "row/page count mismatch");
  }
  HDSKY_ASSIGN_OR_RETURN(f->schema_, Schema::Deserialize(schema_line));
  if (f->schema_.num_attributes() != static_cast<int>(num_attrs)) {
    return Corrupt(path, "schema/attribute count mismatch");
  }

  f->ranking_ = std::move(ranking);
  f->page_bytes_ = page_bytes;
  f->rows_per_block_ = rows_per_block;
  f->num_attrs_ = static_cast<int>(num_attrs);
  f->num_rows_ = static_cast<int64_t>(num_rows);
  f->num_data_pages_ = static_cast<int64_t>(data_pages);
  f->index_fanout_ = static_cast<int>(fanout);
  f->index_entries_per_page_ = static_cast<int64_t>(
      (page_bytes - kPageHeaderBytes) /
      (2 * static_cast<size_t>(num_attrs) * sizeof(Value)));
  if (f->index_entries_per_page_ < 1 ||
      kPageHeaderBytes + static_cast<size_t>(rows_per_block) *
                             (static_cast<size_t>(num_attrs) + 1) *
                             sizeof(Value) >
          page_bytes) {
    return Corrupt(path, "geometry does not fit page size");
  }

  // Recompute the level structure from the geometry and demand the
  // stored one matches — a corrupted header cannot send the traversal
  // outside the file.
  const std::vector<int64_t> counts =
      LevelCounts(f->num_data_pages_, f->index_fanout_);
  if (counts.size() != num_levels ||
      num_levels > static_cast<uint32_t>(kMaxIndexLevels)) {
    return Corrupt(path, "index level mismatch");
  }
  int64_t next_page = 1 + f->num_data_pages_;
  for (size_t l = 0; l < counts.size(); ++l) {
    if (static_cast<uint64_t>(counts[l]) != level_counts[l] ||
        static_cast<uint64_t>(next_page) != level_starts[l]) {
      return Corrupt(path, "index level mismatch");
    }
    f->level_counts_.push_back(counts[l]);
    f->level_start_pages_.push_back(next_page);
    next_page += (counts[l] + f->index_entries_per_page_ - 1) /
                 f->index_entries_per_page_;
  }
  f->total_pages_ = next_page;
  if (static_cast<uint64_t>(f->total_pages_) * page_bytes !=
      file_bytes) {
    return Corrupt(path, "truncated (file size does not match geometry)");
  }
  return f;
}

BlockFile::~BlockFile() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), file_bytes_);
  }
}

Status BlockFile::VerifyPage(int64_t page_id) const {
  if (page_id < 1 || page_id >= total_pages_) {
    return Corrupt(path_, "page id out of range");
  }
  const uint8_t* p = page(page_id);
  const uint32_t crc = reinterpret_cast<const uint32_t*>(p)[0];
  const uint32_t count = reinterpret_cast<const uint32_t*>(p)[1];
  // The count each page must carry is fully determined by the (CRC'd)
  // header geometry, so demand the exact value — a flipped count field
  // cannot redirect the CRC over a shorter payload.
  size_t payload_bytes = 0;
  if (page_id <= num_data_pages_) {
    const int64_t block = page_id - 1;
    const int64_t expected =
        std::min(rows_per_block_, num_rows_ - block * rows_per_block_);
    if (static_cast<int64_t>(count) != expected) {
      return Corrupt(path_, "data page " + std::to_string(page_id) +
                                " has wrong row count");
    }
    payload_bytes = static_cast<size_t>(count) *
                    static_cast<size_t>(num_attrs_ + 1) * sizeof(Value);
  } else {
    int level = -1;
    for (size_t l = 0; l < level_start_pages_.size(); ++l) {
      const int64_t pages =
          (level_counts_[l] + index_entries_per_page_ - 1) /
          index_entries_per_page_;
      if (page_id >= level_start_pages_[l] &&
          page_id < level_start_pages_[l] + pages) {
        level = static_cast<int>(l);
        break;
      }
    }
    if (level < 0) return Corrupt(path_, "page id outside any level");
    const int64_t first =
        (page_id - level_start_pages_[static_cast<size_t>(level)]) *
        index_entries_per_page_;
    const int64_t expected =
        std::min(index_entries_per_page_,
                 level_counts_[static_cast<size_t>(level)] - first);
    if (static_cast<int64_t>(count) != expected) {
      return Corrupt(path_, "index page " + std::to_string(page_id) +
                                " has wrong entry count");
    }
    payload_bytes = static_cast<size_t>(count) * 2 *
                    static_cast<size_t>(num_attrs_) * sizeof(Value);
  }
  const uint32_t actual = common::Crc32c(std::string_view(
      reinterpret_cast<const char*>(p + kPageHeaderBytes),
      payload_bytes));
  if (actual != crc) {
    return Corrupt(path_,
                   "page " + std::to_string(page_id) + " CRC mismatch");
  }
  return Status::OK();
}

void BlockFile::Advise(int64_t page_id, int advice) const {
  ::madvise(
      const_cast<uint8_t*>(page(page_id)), page_bytes_, advice);
}

}  // namespace data
}  // namespace hdsky
