// LRU buffer pool of decoded page frames over a BlockFile.
//
// The pool owns the decoded memory: a *frame* is a heap buffer holding
// a page in the v1 layout ({CRC, count} header + PAX payload) that the
// kernels consume directly. Loading a page means fetching its stored
// extent through the pluggable ReadPath (mmap fault or pread copy),
// CRC-verifying the stored bytes, and decoding them into a pool-owned
// frame (for v1 files the "decode" is a verify + copy). Both
// column-block data pages and zone-map index pages go through the same
// pool, so one byte budget bounds the whole decoded working set.
//
// Readahead: with the pread path, Prefetch(ids) enqueues up to
// `readahead_pages` page ids to a single worker thread that performs
// the fetch + decode asynchronously, so a zone-DFS that hints its next
// leaves overlaps disk latency with scan work. Prefetch shares the
// single-flight machinery with Pin (a pin of an in-flight prefetch
// waits instead of re-reading) and never evicts to make room — if the
// budget has no free headroom (the eviction-churn regime) the hint is
// dropped, so readahead cannot thrash the working set. On the mmap
// path the hints degrade to MADV_WILLNEED.
//
// Invariants (exercised by tests/storage_test.cc, TSan-clean under the
// event server's concurrent sessions):
//   * a page with pins > 0 is never evicted, whatever the budget says;
//   * verification + decode run exactly once per residency,
//     single-flight: concurrent first pins of one page (and the
//     readahead worker) wait on the loading thread instead of racing;
//   * a failed CRC or decode makes every waiting Pin fail and leaves
//     the page non-resident (a retry re-reads — and re-fails — from
//     disk);
//   * unpinned residents are evicted in least-recently-*unpinned* order
//     until resident bytes fit the budget; if every resident page is
//     pinned the pool runs over budget rather than deadlock, and
//     records the overcommit in its stats.

#ifndef HDSKY_DATA_BUFFER_POOL_H_
#define HDSKY_DATA_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "data/block_file.h"
#include "data/read_path.h"

namespace hdsky {
namespace data {

class BufferPool {
 public:
  struct Options {
    /// Resident-byte budget. At least one page is always allowed (see
    /// budget_was_clamped()).
    size_t budget_bytes = size_t{256} << 20;
    /// How stored bytes reach memory (read_path.h).
    ReadPathKind read_path = ReadPathKind::kMmap;
    /// Depth of the asynchronous readahead queue (pread path only;
    /// 0 disables the worker). On mmap, hints become MADV_WILLNEED.
    int readahead_pages = 8;
  };

  struct Stats {
    uint64_t hits = 0;    // pins served from residency without a load
    uint64_t misses = 0;  // pins that found the page non-resident
    uint64_t loads = 0;   // verified + decoded frame installs
    uint64_t evictions = 0;
    uint64_t crc_failures = 0;
    uint64_t overcommits = 0;  // budget exceeded because all pins held
    uint64_t prefetch_issued = 0;  // hints accepted (queued or advised)
    uint64_t prefetch_loads = 0;   // frames installed by the worker
    uint64_t prefetch_hits = 0;    // pins served by a prefetched frame
    uint64_t bytes_read = 0;  // stored bytes fetched, incl. prefetch
    uint64_t resident_bytes = 0;
    uint64_t resident_pages = 0;
  };

  /// `file` must outlive the pool.
  BufferPool(const BlockFile* file, const Options& options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin: the page stays resident (and its frame bytes valid)
  /// until the ref is destroyed. Movable, not copyable.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept
        : pool_(o.pool_), page_(o.page_), data_(o.data_) {
      o.pool_ = nullptr;
    }
    PageRef& operator=(PageRef&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = o.pool_;
        page_ = o.page_;
        data_ = o.data_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    ~PageRef() { Release(); }

    const uint8_t* data() const { return data_; }
    int64_t page_id() const { return page_; }
    explicit operator bool() const { return pool_ != nullptr; }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, int64_t page, const uint8_t* data)
        : pool_(pool), page_(page), data_(data) {}
    void Release() {
      if (pool_ != nullptr) {
        pool_->Unpin(page_);
        pool_ = nullptr;
      }
    }

    BufferPool* pool_ = nullptr;
    int64_t page_ = 0;
    const uint8_t* data_ = nullptr;
  };

  /// Pins a page, loading + verifying + decoding it if not resident.
  /// Fails with the BlockFile's corruption status on CRC or decode
  /// mismatch.
  common::Result<PageRef> Pin(int64_t page_id);

  /// Readahead hint: the pages are likely to be pinned soon, in order.
  /// Best-effort and non-blocking; duplicates, resident pages, and
  /// hints beyond the queue depth or the budget's free headroom are
  /// dropped.
  void Prefetch(const int64_t* page_ids, int n);

  /// Evicts every unpinned resident page and drops queued readahead
  /// (the benches' buffer-pool-cold reset). Pinned pages stay.
  void DropAll();

  Stats stats() const;
  size_t budget_bytes() const { return budget_; }
  /// The budget the caller asked for, before the one-page floor. When
  /// budget_was_clamped(), tools warn instead of silently rounding up.
  size_t requested_budget_bytes() const { return requested_budget_; }
  bool budget_was_clamped() const { return budget_ != requested_budget_; }
  const char* read_path_name() const;
  const BlockFile* file() const { return file_; }

 private:
  struct Frame {
    int pins = 0;
    bool loading = false;
    bool prefetched = false;  // installed by the worker, not pinned yet
    std::unique_ptr<uint8_t[]> data;  // non-null == resident
    uint32_t bytes = 0;               // frame size (budget accounting)
    std::list<int64_t>::iterator lru_it{};
    bool in_lru = false;
  };

  void Unpin(int64_t page_id);
  /// Drops LRU unpinned pages until resident bytes fit the budget.
  /// Caller holds mu_.
  void EvictToBudget();
  /// Evicts lru_.front(). Caller holds mu_.
  void EvictFront();
  /// Fetches + verifies + decodes page_id, whose frame the caller has
  /// marked loading. Drops and reacquires `lock` around the I/O;
  /// installs the frame and notifies waiters. Caller handles pin
  /// bookkeeping / LRU insertion afterwards.
  common::Status LoadLocked(std::unique_lock<std::mutex>& lock,
                            int64_t page_id);
  void WorkerLoop();

  const BlockFile* file_;
  const size_t requested_budget_;
  const size_t budget_;
  std::unique_ptr<ReadPath> read_path_;
  common::Status init_status_;
  const ReadPathKind kind_;
  const int readahead_pages_;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::condition_variable work_cv_;
  std::unordered_map<int64_t, Frame> frames_;
  std::list<int64_t> lru_;  // unpinned residents, least recent first
  /// Recycled lru_ nodes (bounded by the peak resident page count):
  /// repinning and unpinning splice nodes between the two lists, so the
  /// steady-state warm path never touches the allocator.
  std::list<int64_t> spare_;
  /// Pages with an outstanding hint: queued for the worker (pread) or
  /// already MADV_WILLNEED'd (mmap). Cleared on eviction so a page can
  /// be hinted again after it leaves.
  std::unordered_set<int64_t> hinted_;
  std::deque<int64_t> queue_;  // readahead work, FIFO
  bool stop_ = false;
  Stats stats_;
  std::thread worker_;  // last member: joins before state tears down
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_BUFFER_POOL_H_
