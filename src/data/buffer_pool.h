// LRU buffer pool over a memory-mapped BlockFile.
//
// The mapping itself is established once at open; what the pool manages
// is *logical residency* within a byte budget: a page is resident after
// its first Pin has CRC-verified the mapped bytes (with MADV_WILLNEED
// prefetch), and eviction drops the physical memory back to the kernel
// with MADV_DONTNEED so a later pin re-faults — and re-verifies — it
// from disk. Both column-block data pages and zone-map index pages go
// through the same pool, so one budget bounds the whole working set.
//
// Invariants (exercised by tests/storage_test.cc, TSan-clean under the
// event server's concurrent sessions):
//   * a page with pins > 0 is never evicted, whatever the budget says;
//   * CRC verification runs exactly once per residency, single-flight:
//     concurrent first pins of one page wait on the loading thread
//     instead of racing the verify;
//   * a failed CRC makes every waiting Pin fail and leaves the page
//     non-resident (a retry re-reads — and re-fails — from disk);
//   * unpinned residents are evicted in least-recently-*unpinned* order
//     until resident bytes fit the budget; if every resident page is
//     pinned the pool runs over budget rather than deadlock, and
//     records the overcommit in its stats.

#ifndef HDSKY_DATA_BUFFER_POOL_H_
#define HDSKY_DATA_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "data/block_file.h"

namespace hdsky {
namespace data {

class BufferPool {
 public:
  struct Options {
    /// Resident-byte budget. At least one page is always allowed.
    size_t budget_bytes = size_t{256} << 20;
  };

  struct Stats {
    uint64_t hits = 0;         // pins of an already-resident page
    uint64_t loads = 0;        // CRC-verified (re)loads
    uint64_t evictions = 0;    // MADV_DONTNEED drops
    uint64_t crc_failures = 0;
    uint64_t overcommits = 0;  // budget exceeded because all pins held
    uint64_t resident_bytes = 0;
    uint64_t resident_pages = 0;
  };

  /// `file` must outlive the pool.
  BufferPool(const BlockFile* file, const Options& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin: the page stays resident (and its bytes valid) until the
  /// ref is destroyed. Movable, not copyable.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept
        : pool_(o.pool_), page_(o.page_), data_(o.data_) {
      o.pool_ = nullptr;
    }
    PageRef& operator=(PageRef&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = o.pool_;
        page_ = o.page_;
        data_ = o.data_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    ~PageRef() { Release(); }

    const uint8_t* data() const { return data_; }
    int64_t page_id() const { return page_; }
    explicit operator bool() const { return pool_ != nullptr; }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, int64_t page, const uint8_t* data)
        : pool_(pool), page_(page), data_(data) {}
    void Release() {
      if (pool_ != nullptr) {
        pool_->Unpin(page_);
        pool_ = nullptr;
      }
    }

    BufferPool* pool_ = nullptr;
    int64_t page_ = 0;
    const uint8_t* data_ = nullptr;
  };

  /// Pins a page, loading + CRC-verifying it if not resident. Fails
  /// with the BlockFile's corruption status on CRC mismatch.
  common::Result<PageRef> Pin(int64_t page_id);

  /// Evicts every unpinned resident page (the benches' buffer-pool-cold
  /// reset). Pinned pages stay.
  void DropAll();

  Stats stats() const;
  size_t budget_bytes() const { return budget_; }
  const BlockFile* file() const { return file_; }

 private:
  struct Frame {
    int pins = 0;
    bool resident = false;
    bool loading = false;
    std::list<int64_t>::iterator lru_it{};
    bool in_lru = false;
  };

  void Unpin(int64_t page_id);
  /// Drops LRU unpinned pages until resident bytes fit the budget.
  /// Caller holds mu_.
  void EvictToBudget();

  const BlockFile* file_;
  const size_t budget_;
  const size_t page_bytes_;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::unordered_map<int64_t, Frame> frames_;
  std::list<int64_t> lru_;  // unpinned residents, least recent first
  /// Recycled lru_ nodes (bounded by the peak resident page count):
  /// repinning and unpinning splice nodes between the two lists, so the
  /// steady-state warm path never touches the allocator.
  std::list<int64_t> spare_;
  Stats stats_;
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_BUFFER_POOL_H_
