#include "data/buffer_pool.h"

#include <sys/mman.h>

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

BufferPool::BufferPool(const BlockFile* file, const Options& options)
    : file_(file),
      budget_(options.budget_bytes < file->page_bytes()
                  ? file->page_bytes()
                  : options.budget_bytes),
      page_bytes_(file->page_bytes()) {}

Result<BufferPool::PageRef> BufferPool::Pin(int64_t page_id) {
  std::unique_lock<std::mutex> lock(mu_);
  Frame& frame = frames_[page_id];
  ++frame.pins;
  if (frame.in_lru) {
    // Resident and unpinned until now: pull it off the eviction list.
    // Splice onto the spare list instead of erasing — node recycling
    // keeps the warm pin/unpin cycle allocation-free.
    spare_.splice(spare_.begin(), lru_, frame.lru_it);
    frame.in_lru = false;
  }
  if (frame.resident) {
    ++stats_.hits;
    return PageRef(this, page_id, file_->page(page_id));
  }
  // Single-flight: one thread verifies, the rest wait for the verdict.
  while (frame.loading) {
    load_cv_.wait(lock);
    if (frame.resident) {
      ++stats_.hits;
      return PageRef(this, page_id, file_->page(page_id));
    }
  }
  if (frame.resident) {
    ++stats_.hits;
    return PageRef(this, page_id, file_->page(page_id));
  }
  frame.loading = true;
  lock.unlock();
  // Fault + verify outside the lock; the frame's loading flag keeps
  // this page out of every other thread's way (it cannot be evicted —
  // it is not resident — and concurrent pins wait above).
  file_->Advise(page_id, MADV_WILLNEED);
  const Status verify = file_->VerifyPage(page_id);
  lock.lock();
  Frame& f = frames_[page_id];
  f.loading = false;
  if (!verify.ok()) {
    ++stats_.crc_failures;
    if (--f.pins == 0) frames_.erase(page_id);
    load_cv_.notify_all();
    return verify;
  }
  f.resident = true;
  ++stats_.loads;
  stats_.resident_bytes += page_bytes_;
  ++stats_.resident_pages;
  EvictToBudget();
  load_cv_.notify_all();
  return PageRef(this, page_id, file_->page(page_id));
}

void BufferPool::Unpin(int64_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return;
  Frame& frame = it->second;
  if (--frame.pins > 0) return;
  if (!frame.resident) {
    frames_.erase(it);
    return;
  }
  if (spare_.empty()) {
    frame.lru_it = lru_.insert(lru_.end(), page_id);
  } else {
    lru_.splice(lru_.end(), spare_, spare_.begin());
    frame.lru_it = std::prev(lru_.end());
    *frame.lru_it = page_id;
  }
  frame.in_lru = true;
  EvictToBudget();
}

void BufferPool::EvictToBudget() {
  while (stats_.resident_bytes > budget_ && !lru_.empty()) {
    const int64_t victim = lru_.front();
    spare_.splice(spare_.begin(), lru_, lru_.begin());
    frames_.erase(victim);
    file_->Advise(victim, MADV_DONTNEED);
    ++stats_.evictions;
    stats_.resident_bytes -= page_bytes_;
    --stats_.resident_pages;
  }
  if (stats_.resident_bytes > budget_) ++stats_.overcommits;
}

void BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) {
    const int64_t victim = lru_.front();
    spare_.splice(spare_.begin(), lru_, lru_.begin());
    frames_.erase(victim);
    file_->Advise(victim, MADV_DONTNEED);
    ++stats_.evictions;
    stats_.resident_bytes -= page_bytes_;
    --stats_.resident_pages;
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace data
}  // namespace hdsky
