#include "data/buffer_pool.h"

#include <algorithm>
#include <vector>

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

BufferPool::BufferPool(const BlockFile* file, const Options& options)
    : file_(file),
      requested_budget_(options.budget_bytes),
      budget_(options.budget_bytes < file->page_bytes()
                  ? file->page_bytes()
                  : options.budget_bytes),
      kind_(options.read_path),
      readahead_pages_(std::max(0, options.readahead_pages)) {
  auto rp = ReadPath::Create(kind_, *file);
  if (!rp.ok()) {
    init_status_ = rp.status();
    return;
  }
  read_path_ = std::move(rp).value();
  if (kind_ == ReadPathKind::kPread && readahead_pages_ > 0) {
    worker_ = std::thread(&BufferPool::WorkerLoop, this);
  }
}

BufferPool::~BufferPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

const char* BufferPool::read_path_name() const {
  return read_path_ != nullptr
             ? read_path_->name()
             : (kind_ == ReadPathKind::kPread ? "pread" : "mmap");
}

Status BufferPool::LoadLocked(std::unique_lock<std::mutex>& lock,
                              int64_t page_id) {
  const BlockFile::Extent ext = file_->extent(page_id);
  const size_t frame_bytes = file_->frame_bytes(page_id);
  lock.unlock();
  // Fetch + verify + decode outside the lock; the frame's loading flag
  // keeps this page out of every other thread's way (it cannot be
  // evicted — it is not resident — and concurrent pins wait).
  std::unique_ptr<uint8_t[]> buf(new uint8_t[frame_bytes]);
  thread_local std::vector<uint8_t> scratch;
  Status st = init_status_;
  bool fetched = false;
  if (st.ok()) {
    auto src = read_path_->Fetch(ext.offset, ext.bytes, &scratch);
    if (!src.ok()) {
      st = src.status();
    } else {
      fetched = true;
      st = file_->DecodePage(page_id, src.value(), ext.bytes, buf.get());
      // The stored bytes are consumed either way — the frame owns the
      // decoded copy now, so the kernel can drop the mapped originals.
      read_path_->Discard(ext.offset, ext.bytes);
    }
  }
  lock.lock();
  if (fetched) stats_.bytes_read += ext.bytes;
  Frame& f = frames_[page_id];
  f.loading = false;
  if (!st.ok()) {
    ++stats_.crc_failures;
    load_cv_.notify_all();
    return st;
  }
  f.data = std::move(buf);
  f.bytes = static_cast<uint32_t>(frame_bytes);
  ++stats_.loads;
  stats_.resident_bytes += frame_bytes;
  ++stats_.resident_pages;
  EvictToBudget();
  load_cv_.notify_all();
  return Status::OK();
}

Result<BufferPool::PageRef> BufferPool::Pin(int64_t page_id) {
  std::unique_lock<std::mutex> lock(mu_);
  Frame& frame = frames_[page_id];
  ++frame.pins;
  if (frame.in_lru) {
    // Resident and unpinned until now: pull it off the eviction list.
    // Splice onto the spare list instead of erasing — node recycling
    // keeps the warm pin/unpin cycle allocation-free.
    spare_.splice(spare_.begin(), lru_, frame.lru_it);
    frame.in_lru = false;
  }
  if (frame.data != nullptr) {
    ++stats_.hits;
    if (frame.prefetched) {
      frame.prefetched = false;
      ++stats_.prefetch_hits;
    }
    return PageRef(this, page_id, frame.data.get());
  }
  ++stats_.misses;
  // Single-flight: one thread (a pin or the readahead worker) loads,
  // the rest wait for the verdict.
  while (frame.loading) {
    load_cv_.wait(lock);
    if (frame.data != nullptr) {
      ++stats_.hits;
      if (frame.prefetched) {
        frame.prefetched = false;
        ++stats_.prefetch_hits;
      }
      return PageRef(this, page_id, frame.data.get());
    }
  }
  if (frame.data != nullptr) {
    ++stats_.hits;
    if (frame.prefetched) {
      frame.prefetched = false;
      ++stats_.prefetch_hits;
    }
    return PageRef(this, page_id, frame.data.get());
  }
  frame.loading = true;
  const Status st = LoadLocked(lock, page_id);
  Frame& f = frames_[page_id];
  if (!st.ok()) {
    if (--f.pins == 0) frames_.erase(page_id);
    return st;
  }
  return PageRef(this, page_id, f.data.get());
}

void BufferPool::Prefetch(const int64_t* page_ids, int n) {
  if (read_path_ == nullptr || n <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < n; ++i) {
    const int64_t id = page_ids[i];
    if (id < 1 || id >= file_->total_pages()) continue;
    auto it = frames_.find(id);
    if (it != frames_.end() &&
        (it->second.data != nullptr || it->second.loading)) {
      continue;
    }
    if (hinted_.count(id) != 0) continue;
    if (kind_ == ReadPathKind::kMmap) {
      const BlockFile::Extent ext = file_->extent(id);
      read_path_->Hint(ext.offset, ext.bytes);
      hinted_.insert(id);
      ++stats_.prefetch_issued;
      continue;
    }
    if (readahead_pages_ == 0 ||
        queue_.size() >= static_cast<size_t>(readahead_pages_)) {
      break;
    }
    // Never evict to make room for readahead: if the budget has no
    // free headroom (the eviction-churn regime), drop the hint.
    if (stats_.resident_bytes + file_->frame_bytes(id) > budget_) break;
    queue_.push_back(id);
    hinted_.insert(id);
    ++stats_.prefetch_issued;
    work_cv_.notify_one();
  }
}

void BufferPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const int64_t id = queue_.front();
    queue_.pop_front();
    hinted_.erase(id);
    auto it = frames_.find(id);
    if (it != frames_.end() &&
        (it->second.data != nullptr || it->second.loading)) {
      continue;
    }
    // Re-check headroom at dequeue time; the pool may have filled up
    // since the hint was accepted.
    if (stats_.resident_bytes + file_->frame_bytes(id) > budget_) {
      continue;
    }
    Frame& frame = frames_[id];
    frame.loading = true;
    const Status st = LoadLocked(lock, id);
    Frame& f = frames_[id];
    if (!st.ok()) {
      if (f.pins == 0 && f.data == nullptr) frames_.erase(id);
      continue;
    }
    ++stats_.prefetch_loads;
    f.prefetched = true;
    if (f.pins == 0 && !f.in_lru) {
      // Unpinned resident: eligible for eviction like any other.
      if (spare_.empty()) {
        f.lru_it = lru_.insert(lru_.end(), id);
      } else {
        lru_.splice(lru_.end(), spare_, spare_.begin());
        f.lru_it = std::prev(lru_.end());
        *f.lru_it = id;
      }
      f.in_lru = true;
    }
  }
}

void BufferPool::Unpin(int64_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return;
  Frame& frame = it->second;
  if (--frame.pins > 0) return;
  if (frame.data == nullptr) {
    frames_.erase(it);
    return;
  }
  if (spare_.empty()) {
    frame.lru_it = lru_.insert(lru_.end(), page_id);
  } else {
    lru_.splice(lru_.end(), spare_, spare_.begin());
    frame.lru_it = std::prev(lru_.end());
    *frame.lru_it = page_id;
  }
  frame.in_lru = true;
  EvictToBudget();
}

void BufferPool::EvictFront() {
  const int64_t victim = lru_.front();
  spare_.splice(spare_.begin(), lru_, lru_.begin());
  auto it = frames_.find(victim);
  stats_.resident_bytes -= it->second.bytes;
  --stats_.resident_pages;
  frames_.erase(it);
  hinted_.erase(victim);
  ++stats_.evictions;
}

void BufferPool::EvictToBudget() {
  while (stats_.resident_bytes > budget_ && !lru_.empty()) {
    EvictFront();
  }
  if (stats_.resident_bytes > budget_) ++stats_.overcommits;
}

void BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  hinted_.clear();
  while (!lru_.empty()) {
    EvictFront();
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace data
}  // namespace hdsky
