// Blocked columnar view: a Table's columns re-materialized in a caller-
// given row order (the interface layer uses static-rank order), chopped
// into fixed-size blocks with per-block per-attribute zone maps.
//
// This is the storage substrate of the vectorized query-execution engine
// (interface/exec): contiguous per-attribute value runs let predicate
// kernels stream cache lines instead of gathering rows, and the zone maps
// (min/max per attribute per block, NULL = kNullValue included as the
// largest value) let selective predicates skip whole blocks before
// touching a single value. The view is an immutable snapshot — Table is
// append-only but the interface freezes it at Create time, exactly like
// the k-d index does.

#ifndef HDSKY_DATA_COLUMN_BLOCK_H_
#define HDSKY_DATA_COLUMN_BLOCK_H_

#include <algorithm>
#include <vector>

#include "data/table.h"
#include "data/value.h"

namespace hdsky {
namespace data {

/// Min/max of one attribute over one block, NULLs included (kNullValue is
/// the numeric maximum, so a block of NULLs has min == max == kNullValue
/// and is prunable by any constrained interval).
struct ZoneMap {
  Value min = kNullValue;
  Value max = std::numeric_limits<Value>::min();
};

class BlockedColumns {
 public:
  /// Rows per block. 1024 int64 values per attribute run = 8 KiB, two
  /// L1-sized runs in flight during a two-predicate kernel.
  static constexpr int64_t kBlockSize = 1024;

  /// Snapshots `table` with rows permuted into `order` (order[i] is the
  /// row id stored at position i). `order` must be a permutation of
  /// [0, num_rows).
  BlockedColumns(const Table& table, const std::vector<TupleId>& order);

  int64_t num_rows() const { return num_rows_; }
  int num_attributes() const { return num_attrs_; }
  int64_t num_blocks() const {
    return (num_rows_ + kBlockSize - 1) / kBlockSize;
  }

  /// Contiguous column of attribute `attr` in permuted order.
  const Value* column(int attr) const {
    return columns_[static_cast<size_t>(attr)].data();
  }

  /// Original row id stored at permuted position `pos`.
  TupleId row_id(int64_t pos) const {
    return row_ids_[static_cast<size_t>(pos)];
  }

  const ZoneMap& zone(int64_t block, int attr) const {
    return zones_[static_cast<size_t>(block * num_attrs_ + attr)];
  }

  int64_t block_begin(int64_t block) const { return block * kBlockSize; }
  int64_t block_end(int64_t block) const {
    return std::min(num_rows_, (block + 1) * kBlockSize);
  }

 private:
  int64_t num_rows_ = 0;
  int num_attrs_ = 0;
  std::vector<std::vector<Value>> columns_;  // [attr][pos], permuted
  std::vector<TupleId> row_ids_;             // [pos] -> original row id
  std::vector<ZoneMap> zones_;               // [block * num_attrs_ + attr]
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_COLUMN_BLOCK_H_
