// Schema: the ordered attribute list of a hidden database, with lookup
// helpers and interface-variant construction used by the experiments
// (the same data is exposed through different interface taxonomies).

#ifndef HDSKY_DATA_SCHEMA_H_
#define HDSKY_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/attribute.h"

namespace hdsky {
namespace data {

/// Immutable ordered collection of AttributeSpecs.
class Schema {
 public:
  Schema() = default;

  /// Validates and builds a schema. Fails if names are empty/duplicated, a
  /// domain is inverted, a filtering attribute claims range support, or a
  /// ranking attribute claims filter-equality support.
  static common::Result<Schema> Create(std::vector<AttributeSpec> attrs);

  int num_attributes() const { return static_cast<int>(attrs_.size()); }
  const AttributeSpec& attribute(int i) const {
    return attrs_[static_cast<size_t>(i)];
  }
  const std::vector<AttributeSpec>& attributes() const { return attrs_; }

  /// Index of the attribute with the given name, or NotFound.
  common::Result<int> IndexOf(const std::string& name) const;

  /// Indices of ranking attributes, in schema order. The skyline is defined
  /// over exactly these.
  const std::vector<int>& ranking_attributes() const { return ranking_; }
  /// Indices of filtering attributes, in schema order.
  const std::vector<int>& filtering_attributes() const { return filtering_; }

  /// Ranking attributes whose interface is the given type.
  std::vector<int> RankingAttributesWithInterface(InterfaceType t) const;

  int num_ranking_attributes() const {
    return static_cast<int>(ranking_.size());
  }

  /// Returns a copy with attribute `index`'s interface changed; used by
  /// experiments that expose one dataset through several taxonomies.
  common::Result<Schema> WithInterface(int index, InterfaceType t) const;

  /// Returns a copy keeping only the attributes at `indices` (in the given
  /// order); used to project datasets for varying-m experiments.
  common::Result<Schema> Project(const std::vector<int>& indices) const;

  std::string ToString() const;

  /// One-line machine-readable form: comma-separated
  /// "name:kind:iface:domain_min:domain_max" columns (kind R/F, iface
  /// SQ/RQ/PQ/EQ, NULL for null domain bounds). This is both the CSV
  /// header line and the schema blob embedded in paged block files.
  std::string Serialize() const;

  /// Parses a Serialize() line back through Create() validation.
  static common::Result<Schema> Deserialize(const std::string& line);

 private:
  std::vector<AttributeSpec> attrs_;
  std::vector<int> ranking_;
  std::vector<int> filtering_;
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_SCHEMA_H_
