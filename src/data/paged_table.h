// PagedTable: an out-of-core hidden-database backing store — a BlockFile
// plus the BufferPool that bounds its resident working set. This is the
// paged counterpart of an in-memory Table for the query path: it does
// not support appends or row-at-a-time access (the data lives in rank
// order inside mapped pages); TopKInterface::CreatePaged and the
// exec::PagedEngine consume it directly.

#ifndef HDSKY_DATA_PAGED_TABLE_H_
#define HDSKY_DATA_PAGED_TABLE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "data/block_file.h"
#include "data/buffer_pool.h"

namespace hdsky {
namespace data {

struct PagedTableOptions {
  /// Buffer-pool resident budget (--buffer-pool-bytes in the tools).
  size_t buffer_pool_bytes = size_t{256} << 20;
  /// How stored bytes reach memory (--read-path in the tools).
  ReadPathKind read_path = ReadPathKind::kMmap;
  /// Asynchronous readahead depth for the pread path
  /// (--readahead-pages in the tools).
  int readahead_pages = 8;
};

class PagedTable {
 public:
  /// Opens a block file written by BlockFileWriter / dataset::PackTable.
  static common::Result<std::unique_ptr<PagedTable>> Open(
      const std::string& path, const PagedTableOptions& options);

  const Schema& schema() const { return file_->schema(); }
  int64_t num_rows() const { return file_->num_rows(); }
  const std::string& ranking_name() const { return file_->ranking_name(); }
  uint64_t data_bytes() const { return file_->data_bytes(); }

  const BlockFile& file() const { return *file_; }
  BufferPool* pool() const { return pool_.get(); }
  BufferPool::Stats pool_stats() const { return pool_->stats(); }

 private:
  PagedTable(std::unique_ptr<BlockFile> file,
             std::unique_ptr<BufferPool> pool)
      : file_(std::move(file)), pool_(std::move(pool)) {}

  std::unique_ptr<BlockFile> file_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_PAGED_TABLE_H_
