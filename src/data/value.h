// Value representation.
//
// Every attribute value in hdsky is an int64 *rank code*. Ranking
// attributes are normalized at ingestion so that SMALLER IS BETTER, which
// makes the skyline definition of Section 2.1 uniform: tuple t dominates u
// iff t[Ai] <= u[Ai] on every ranking attribute and t != u. Preference
// direction (e.g. "higher carat is better") and raw units are recorded in
// the Schema; generators apply the flip before storing values.
//
// Continuous attributes (price, delay minutes) are stored at a fixed
// precision, which the paper's footnote 2 explicitly sanctions: values in a
// database are discrete in nature.

#ifndef HDSKY_DATA_VALUE_H_
#define HDSKY_DATA_VALUE_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace hdsky {
namespace data {

/// An attribute value as a rank code; for ranking attributes smaller is
/// better.
using Value = int64_t;

/// Sentinel for NULL. NULL ranks worse than every real value, so it never
/// dominates and never blocks domination.
inline constexpr Value kNullValue = std::numeric_limits<Value>::max();

/// A materialized tuple: one Value per schema attribute, in schema order.
using Tuple = std::vector<Value>;

/// Identifier of a tuple inside a Table (its row index). The top-k
/// interface exposes it as the opaque "listing id" a real website would
/// show, so discovery algorithms may use it for deduplication but nothing
/// else.
using TupleId = int64_t;

inline constexpr TupleId kInvalidTupleId = -1;

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_VALUE_H_
