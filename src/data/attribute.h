// Attribute metadata: kind (ranking vs filtering), search-interface
// predicate support (the SQ / RQ / PQ taxonomy of Section 2.2), and domain.

#ifndef HDSKY_DATA_ATTRIBUTE_H_
#define HDSKY_DATA_ATTRIBUTE_H_

#include <cstdint>
#include <string>

#include "data/value.h"

namespace hdsky {
namespace data {

/// Whether an attribute participates in the skyline definition.
enum class AttributeKind : int8_t {
  /// Has an inherent preferential order; participates in domination.
  kRanking,
  /// Order-less (make, color name, flight number); usable only as an
  /// equality filter and irrelevant to the skyline (Section 2.1).
  kFiltering,
};

/// Predicate support the web search interface offers for an attribute
/// (Section 2.2). Range support is strictly stronger than point support:
/// RQ > SQ > PQ.
enum class InterfaceType : int8_t {
  /// Single-ended range: Ai < v, Ai <= v, or Ai = v. "Better than v" only;
  /// no lower bound on the preference order (e.g. laptop memory size).
  kSQ,
  /// Two-ended range: both < / <= and > / >= plus equality (e.g. price).
  kRQ,
  /// Point predicate only: Ai = v (e.g. number of stops).
  kPQ,
  /// Equality filter for filtering attributes.
  kFilterEquality,
};

const char* InterfaceTypeToString(InterfaceType t);
const char* AttributeKindToString(AttributeKind k);

/// Static description of one attribute of a hidden web database.
struct AttributeSpec {
  std::string name;
  AttributeKind kind = AttributeKind::kRanking;
  InterfaceType iface = InterfaceType::kRQ;
  /// Inclusive domain bounds in rank-code space (smaller is better for
  /// ranking attributes). PQ discovery iterates these domains, so PQ
  /// attributes should keep them tight.
  Value domain_min = 0;
  Value domain_max = 0;

  /// Number of distinct representable values.
  int64_t DomainSize() const { return domain_max - domain_min + 1; }

  bool is_ranking() const { return kind == AttributeKind::kRanking; }
  bool supports_upper_bound() const {
    return iface == InterfaceType::kSQ || iface == InterfaceType::kRQ;
  }
  bool supports_lower_bound() const { return iface == InterfaceType::kRQ; }
};

inline const char* InterfaceTypeToString(InterfaceType t) {
  switch (t) {
    case InterfaceType::kSQ:
      return "SQ";
    case InterfaceType::kRQ:
      return "RQ";
    case InterfaceType::kPQ:
      return "PQ";
    case InterfaceType::kFilterEquality:
      return "FilterEquality";
  }
  return "Unknown";
}

inline const char* AttributeKindToString(AttributeKind k) {
  switch (k) {
    case AttributeKind::kRanking:
      return "Ranking";
    case AttributeKind::kFiltering:
      return "Filtering";
  }
  return "Unknown";
}

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_ATTRIBUTE_H_
