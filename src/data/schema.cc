#include "data/schema.h"

#include <sstream>
#include <unordered_set>

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

Result<Schema> Schema::Create(std::vector<AttributeSpec> attrs) {
  if (attrs.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::unordered_set<std::string> names;
  Schema s;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const AttributeSpec& a = attrs[i];
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.domain_min > a.domain_max) {
      return Status::InvalidArgument("inverted domain for attribute " +
                                     a.name);
    }
    const bool is_filter_iface = a.iface == InterfaceType::kFilterEquality;
    if (a.kind == AttributeKind::kFiltering && !is_filter_iface) {
      return Status::InvalidArgument(
          "filtering attribute " + a.name +
          " must use FilterEquality interface");
    }
    if (a.kind == AttributeKind::kRanking && is_filter_iface) {
      return Status::InvalidArgument(
          "ranking attribute " + a.name +
          " must use an SQ/RQ/PQ interface");
    }
    if (a.kind == AttributeKind::kRanking) {
      s.ranking_.push_back(static_cast<int>(i));
    } else {
      s.filtering_.push_back(static_cast<int>(i));
    }
  }
  s.attrs_ = std::move(attrs);
  return s;
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no attribute named " + name);
}

std::vector<int> Schema::RankingAttributesWithInterface(
    InterfaceType t) const {
  std::vector<int> out;
  for (int i : ranking_) {
    if (attrs_[static_cast<size_t>(i)].iface == t) out.push_back(i);
  }
  return out;
}

Result<Schema> Schema::WithInterface(int index, InterfaceType t) const {
  if (index < 0 || index >= num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<AttributeSpec> attrs = attrs_;
  attrs[static_cast<size_t>(index)].iface = t;
  return Create(std::move(attrs));
}

Result<Schema> Schema::Project(const std::vector<int>& indices) const {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || i >= num_attributes()) {
      return Status::InvalidArgument("projection index out of range");
    }
    attrs.push_back(attrs_[static_cast<size_t>(i)]);
  }
  return Create(std::move(attrs));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "Schema(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeSpec& a = attrs_[i];
    if (i) os << ", ";
    os << a.name << ":" << AttributeKindToString(a.kind) << "/"
       << InterfaceTypeToString(a.iface) << "[" << a.domain_min << ","
       << a.domain_max << "]";
  }
  os << ")";
  return os.str();
}

}  // namespace data
}  // namespace hdsky
