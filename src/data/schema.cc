#include "data/schema.h"

#include <charconv>
#include <sstream>
#include <unordered_set>

#include "data/value.h"

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

namespace {

const char* IfaceCode(InterfaceType t) {
  switch (t) {
    case InterfaceType::kSQ:
      return "SQ";
    case InterfaceType::kRQ:
      return "RQ";
    case InterfaceType::kPQ:
      return "PQ";
    case InterfaceType::kFilterEquality:
      return "EQ";
  }
  return "??";
}

Result<InterfaceType> ParseIfaceCode(const std::string& s) {
  if (s == "SQ") return InterfaceType::kSQ;
  if (s == "RQ") return InterfaceType::kRQ;
  if (s == "PQ") return InterfaceType::kPQ;
  if (s == "EQ") return InterfaceType::kFilterEquality;
  return Status::IOError("unknown interface code '" + s + "'");
}

std::vector<std::string> SplitOn(const std::string& line, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : line) {
    if (c == sep) {
      parts.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(std::move(cur));
  return parts;
}

Result<Value> ParseDomainValue(const std::string& s) {
  if (s == "NULL") return kNullValue;
  Value v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::IOError("cannot parse value '" + s + "'");
  }
  return v;
}

}  // namespace

Result<Schema> Schema::Create(std::vector<AttributeSpec> attrs) {
  if (attrs.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::unordered_set<std::string> names;
  Schema s;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const AttributeSpec& a = attrs[i];
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.domain_min > a.domain_max) {
      return Status::InvalidArgument("inverted domain for attribute " +
                                     a.name);
    }
    const bool is_filter_iface = a.iface == InterfaceType::kFilterEquality;
    if (a.kind == AttributeKind::kFiltering && !is_filter_iface) {
      return Status::InvalidArgument(
          "filtering attribute " + a.name +
          " must use FilterEquality interface");
    }
    if (a.kind == AttributeKind::kRanking && is_filter_iface) {
      return Status::InvalidArgument(
          "ranking attribute " + a.name +
          " must use an SQ/RQ/PQ interface");
    }
    if (a.kind == AttributeKind::kRanking) {
      s.ranking_.push_back(static_cast<int>(i));
    } else {
      s.filtering_.push_back(static_cast<int>(i));
    }
  }
  s.attrs_ = std::move(attrs);
  return s;
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no attribute named " + name);
}

std::vector<int> Schema::RankingAttributesWithInterface(
    InterfaceType t) const {
  std::vector<int> out;
  for (int i : ranking_) {
    if (attrs_[static_cast<size_t>(i)].iface == t) out.push_back(i);
  }
  return out;
}

Result<Schema> Schema::WithInterface(int index, InterfaceType t) const {
  if (index < 0 || index >= num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<AttributeSpec> attrs = attrs_;
  attrs[static_cast<size_t>(index)].iface = t;
  return Create(std::move(attrs));
}

Result<Schema> Schema::Project(const std::vector<int>& indices) const {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || i >= num_attributes()) {
      return Status::InvalidArgument("projection index out of range");
    }
    attrs.push_back(attrs_[static_cast<size_t>(i)]);
  }
  return Create(std::move(attrs));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "Schema(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeSpec& a = attrs_[i];
    if (i) os << ", ";
    os << a.name << ":" << AttributeKindToString(a.kind) << "/"
       << InterfaceTypeToString(a.iface) << "[" << a.domain_min << ","
       << a.domain_max << "]";
  }
  os << ")";
  return os.str();
}

std::string Schema::Serialize() const {
  std::ostringstream os;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeSpec& a = attrs_[i];
    if (i) os << ',';
    os << a.name << ':'
       << (a.kind == AttributeKind::kRanking ? 'R' : 'F') << ':'
       << IfaceCode(a.iface) << ':';
    if (a.domain_min == kNullValue) {
      os << "NULL";
    } else {
      os << a.domain_min;
    }
    os << ':';
    if (a.domain_max == kNullValue) {
      os << "NULL";
    } else {
      os << a.domain_max;
    }
  }
  return os.str();
}

Result<Schema> Schema::Deserialize(const std::string& line) {
  std::vector<AttributeSpec> attrs;
  for (const std::string& col : SplitOn(line, ',')) {
    const std::vector<std::string> f = SplitOn(col, ':');
    if (f.size() != 5) {
      return Status::IOError("malformed header column '" + col + "'");
    }
    AttributeSpec spec;
    spec.name = f[0];
    if (f[1] == "R") {
      spec.kind = AttributeKind::kRanking;
    } else if (f[1] == "F") {
      spec.kind = AttributeKind::kFiltering;
    } else {
      return Status::IOError("unknown attribute kind '" + f[1] + "'");
    }
    HDSKY_ASSIGN_OR_RETURN(spec.iface, ParseIfaceCode(f[2]));
    HDSKY_ASSIGN_OR_RETURN(spec.domain_min, ParseDomainValue(f[3]));
    HDSKY_ASSIGN_OR_RETURN(spec.domain_max, ParseDomainValue(f[4]));
    attrs.push_back(std::move(spec));
  }
  return Create(std::move(attrs));
}

}  // namespace data
}  // namespace hdsky
