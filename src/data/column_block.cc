#include "data/column_block.h"

namespace hdsky {
namespace data {

BlockedColumns::BlockedColumns(const Table& table,
                               const std::vector<TupleId>& order)
    : num_rows_(static_cast<int64_t>(order.size())),
      num_attrs_(table.schema().num_attributes()),
      row_ids_(order) {
  columns_.resize(static_cast<size_t>(num_attrs_));
  for (int a = 0; a < num_attrs_; ++a) {
    const std::vector<Value>& src = table.column(a);
    std::vector<Value>& dst = columns_[static_cast<size_t>(a)];
    dst.resize(static_cast<size_t>(num_rows_));
    for (int64_t i = 0; i < num_rows_; ++i) {
      dst[static_cast<size_t>(i)] =
          src[static_cast<size_t>(order[static_cast<size_t>(i)])];
    }
  }
  const int64_t blocks = num_blocks();
  zones_.resize(static_cast<size_t>(blocks * num_attrs_));
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t begin = block_begin(b);
    const int64_t end = block_end(b);
    for (int a = 0; a < num_attrs_; ++a) {
      const Value* col = column(a);
      ZoneMap z;
      for (int64_t i = begin; i < end; ++i) {
        const Value v = col[i];
        z.min = std::min(z.min, v);
        z.max = std::max(z.max, v);
      }
      zones_[static_cast<size_t>(b * num_attrs_ + a)] = z;
    }
  }
}

}  // namespace data
}  // namespace hdsky
