#include "data/read_path.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <sys/mman.h>
#include <unistd.h>

#include "data/block_file.h"

namespace hdsky {
namespace data {

using common::Result;
using common::Status;

namespace {

constexpr size_t kPageAlign = 4096;

class MmapReadPath final : public ReadPath {
 public:
  MmapReadPath(const uint8_t* base, uint64_t bytes)
      : base_(base), bytes_(bytes) {}
  ~MmapReadPath() override {
    ::munmap(const_cast<uint8_t*>(base_), bytes_);
  }

  Result<const uint8_t*> Fetch(uint64_t off, size_t len,
                               std::vector<uint8_t>*) override {
    if (off + len > bytes_) {
      return Status::IOError("mmap fetch out of bounds");
    }
    return base_ + off;
  }

  void Discard(uint64_t off, size_t len) override {
    Advise(off, len, MADV_DONTNEED);
  }

  void Hint(uint64_t off, size_t len) override {
    Advise(off, len, MADV_WILLNEED);
  }

  const char* name() const override { return "mmap"; }

 private:
  void Advise(uint64_t off, size_t len, int advice) {
    // Extents start 4 KiB-aligned by format; round the length up so the
    // advice covers the tail page. Best-effort.
    if (off % kPageAlign != 0 || off + len > bytes_) return;
    ::madvise(const_cast<uint8_t*>(base_) + off,
              (len + kPageAlign - 1) / kPageAlign * kPageAlign, advice);
  }

  const uint8_t* base_;
  uint64_t bytes_;
};

class PreadReadPath final : public ReadPath {
 public:
  PreadReadPath(int fd, uint64_t bytes, std::string path)
      : fd_(fd), bytes_(bytes), path_(std::move(path)) {}

  Result<const uint8_t*> Fetch(uint64_t off, size_t len,
                               std::vector<uint8_t>* scratch) override {
    if (off + len > bytes_) {
      return Status::IOError("pread fetch out of bounds");
    }
    if (scratch->size() < len) scratch->resize(len);
    size_t done = 0;
    while (done < len) {
      const ssize_t n = ::pread(fd_, scratch->data() + done, len - done,
                                static_cast<off_t>(off + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pread " + path_ + ": " +
                               std::strerror(errno));
      }
      if (n == 0) return Status::IOError(path_ + ": unexpected EOF");
      done += static_cast<size_t>(n);
    }
    return scratch->data();
  }

  const char* name() const override { return "pread"; }

 private:
  int fd_;
  uint64_t bytes_;
  std::string path_;
};

}  // namespace

bool ParseReadPathKind(const std::string& s, ReadPathKind* out) {
  if (s == "mmap") {
    *out = ReadPathKind::kMmap;
    return true;
  }
  if (s == "pread") {
    *out = ReadPathKind::kPread;
    return true;
  }
  return false;
}

Result<std::unique_ptr<ReadPath>> ReadPath::Create(ReadPathKind kind,
                                                   const BlockFile& file) {
  switch (kind) {
    case ReadPathKind::kMmap: {
      void* map = ::mmap(nullptr, file.file_bytes(), PROT_READ, MAP_SHARED,
                         file.fd(), 0);
      if (map == MAP_FAILED) {
        return Status::IOError("mmap " + file.path() + ": " +
                               std::strerror(errno));
      }
      // Pages are touched in zone-tree order, not sequentially; stop
      // the kernel from readahead-ing the whole file on first fault.
      ::madvise(map, file.file_bytes(), MADV_RANDOM);
      return std::unique_ptr<ReadPath>(new MmapReadPath(
          static_cast<const uint8_t*>(map), file.file_bytes()));
    }
    case ReadPathKind::kPread:
      return std::unique_ptr<ReadPath>(
          new PreadReadPath(file.fd(), file.file_bytes(), file.path()));
  }
  return Status::InvalidArgument("unknown read path");
}

}  // namespace data
}  // namespace hdsky
