#include "data/table.h"

#include <algorithm>

namespace hdsky {
namespace data {

using common::Result;
using common::Rng;
using common::Status;

Tuple Table::GetTuple(TupleId row) const {
  Tuple t(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    t[c] = columns_[c][static_cast<size_t>(row)];
  }
  return t;
}

Status Table::Append(const Tuple& tuple) {
  if (static_cast<int>(tuple.size()) != schema_.num_attributes()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  for (size_t c = 0; c < tuple.size(); ++c) {
    const AttributeSpec& a = schema_.attribute(static_cast<int>(c));
    if (tuple[c] == kNullValue) continue;
    if (tuple[c] < a.domain_min || tuple[c] > a.domain_max) {
      return Status::OutOfRange("value " + std::to_string(tuple[c]) +
                                " outside domain of " + a.name);
    }
  }
  for (size_t c = 0; c < tuple.size(); ++c) {
    columns_[c].push_back(tuple[c]);
  }
  return Status::OK();
}

void Table::Reserve(int64_t rows) {
  for (auto& col : columns_) col.reserve(static_cast<size_t>(rows));
}

Result<Table> Table::Sample(int64_t count, Rng* rng) const {
  if (count < 0 || count > num_rows()) {
    return Status::InvalidArgument("sample size out of range");
  }
  std::vector<int64_t> rows = rng->SampleWithoutReplacement(num_rows(),
                                                            count);
  std::sort(rows.begin(), rows.end());
  Table out(schema_);
  out.Reserve(count);
  for (int64_t r : rows) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out.columns_[c].push_back(columns_[c][static_cast<size_t>(r)]);
    }
  }
  return out;
}

Result<Table> Table::Project(const std::vector<int>& indices) const {
  HDSKY_ASSIGN_OR_RETURN(Schema projected, schema_.Project(indices));
  Table out(std::move(projected));
  out.Reserve(num_rows());
  for (size_t c = 0; c < indices.size(); ++c) {
    out.columns_[c] = columns_[static_cast<size_t>(indices[c])];
  }
  return out;
}

Result<Table> Table::WithInterface(int index, InterfaceType t) const {
  HDSKY_ASSIGN_OR_RETURN(Schema s, schema_.WithInterface(index, t));
  Table out = *this;
  out.schema_ = std::move(s);
  return out;
}

}  // namespace data
}  // namespace hdsky
