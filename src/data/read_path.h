// Pluggable byte-fetch mechanics for the buffer pool: how a page's
// stored (possibly encoded) extent travels from disk into memory before
// BlockFile::DecodePage materializes the frame.
//
//   kMmap   the whole file is mapped PROT_READ/MAP_SHARED with
//           MADV_RANDOM; Fetch returns a pointer into the mapping (the
//           kernel faults the bytes in), Discard hands them back with
//           MADV_DONTNEED, Hint issues MADV_WILLNEED. This is the
//           original PR 7 path: zero-copy, but every cold touch is a
//           blocking page fault on the pinning thread.
//   kPread  Fetch pread(2)s the extent into caller scratch. No page
//           cache aliasing games, and — because the bytes land in
//           caller-owned memory — the buffer pool can move the whole
//           fetch+decode onto its readahead worker, turning cold-run
//           faults into overlapped asynchronous reads.
//
// Both paths are stateless per call and safe to share across threads
// (pread is positionless; the mapping is read-only).

#ifndef HDSKY_DATA_READ_PATH_H_
#define HDSKY_DATA_READ_PATH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hdsky {
namespace data {

class BlockFile;

enum class ReadPathKind : uint8_t {
  kMmap = 0,
  kPread = 1,
};

/// Parses "mmap" / "pread"; returns false on anything else.
bool ParseReadPathKind(const std::string& s, ReadPathKind* out);

class ReadPath {
 public:
  virtual ~ReadPath() = default;

  /// Makes `len` bytes at file offset `off` addressable and returns a
  /// pointer to them. `scratch` may be used as backing storage, in
  /// which case the pointer is into *scratch; either way it stays valid
  /// until scratch is touched again or the extent is Discarded.
  virtual common::Result<const uint8_t*> Fetch(
      uint64_t off, size_t len, std::vector<uint8_t>* scratch) = 0;

  /// Tells the path the extent's bytes were consumed (decoded into a
  /// pool frame) and won't be re-read soon. Best-effort.
  virtual void Discard(uint64_t /*off*/, size_t /*len*/) {}

  /// Readahead hint: the extent is likely to be fetched soon.
  /// Best-effort; the mmap path forwards it to the kernel, the pread
  /// path ignores it (the buffer pool's worker does real readahead).
  virtual void Hint(uint64_t /*off*/, size_t /*len*/) {}

  /// "mmap" or "pread" (stats lines, bench labels).
  virtual const char* name() const = 0;

  static common::Result<std::unique_ptr<ReadPath>> Create(
      ReadPathKind kind, const BlockFile& file);
};

}  // namespace data
}  // namespace hdsky

#endif  // HDSKY_DATA_READ_PATH_H_
