// Closed-form query-cost models from the paper's analysis (Section 3.2,
// 4.2, 5.1). These regenerate Figure 4 and the "Average Cost" overlays
// of Figures 14-15, and give tests an oracle for the measured costs.

#ifndef HDSKY_ANALYSIS_COST_MODEL_H_
#define HDSKY_ANALYSIS_COST_MODEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace hdsky {
namespace analysis {

/// Expected SQ-DB-SKY query cost under the random-ranking model, by the
/// recursion of equation (4): E(C_0) = 1,
/// E(C_s) = 1 + (m/s) * sum_{i=0}^{s-1} E(C_i). Exact and cheap.
double ExpectedSqCost(int m, int64_t s);

/// The closed form of equation (5), corrected by the "+1" the paper's
/// printed formula drops (its own recursion and text give C_1 = m + 1):
/// E(C_s) = m/(m-1) * (C(m+s-1, s) - 1) + 1, evaluated in log space.
/// Matches ExpectedSqCost exactly; for m = 2 it is 2s + 1 (the paper
/// states 2s).
double ExpectedSqCostClosedForm(int m, int64_t s);

/// Worst-case SQ-DB-SKY bound O(m * |S|^{m+1}) (Section 3.2).
double WorstCaseSqBound(int m, int64_t s);

/// Worst-case RQ-DB-SKY bound O(m * min(|S|^{m+1}, n)) (Section 4.2).
double WorstCaseRqBound(int m, int64_t s, int64_t n);

/// The average-case upper bound (e + e*s/m)^m of equation (10).
double AverageCaseUpperBound(int m, int64_t s);

/// PQ-2D-SKY query cost (equation 11) for a 2D database whose skyline
/// points are given (values in rank space, smaller better). Points need
/// not be sorted. (x_max, y_max) are the attribute domain maxima and
/// (x_min, y_min) the minima.
int64_t Pq2dCostFormula(
    std::vector<std::pair<data::Value, data::Value>> skyline_points,
    data::Value x_min, data::Value x_max, data::Value y_min,
    data::Value y_max);

}  // namespace analysis
}  // namespace hdsky

#endif  // HDSKY_ANALYSIS_COST_MODEL_H_
