#include "analysis/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace hdsky {
namespace analysis {

using data::Value;

double ExpectedSqCost(int m, int64_t s) {
  if (m < 1 || s < 0) return 0.0;
  // E(C_0) = 1; E(C_s) = 1 + (m/s) * prefix_sum.
  double prefix = 1.0;  // sum of E(C_0..C_{i-1}) as i grows
  double e = 1.0;       // E(C_0)
  for (int64_t i = 1; i <= s; ++i) {
    e = 1.0 + static_cast<double>(m) / static_cast<double>(i) * prefix;
    prefix += e;
  }
  return e;
}

double ExpectedSqCostClosedForm(int m, int64_t s) {
  if (m < 1 || s < 0) return 0.0;
  if (s == 0) return 1.0;
  if (m == 1) {
    // Degenerate single-attribute case: the recursion gives
    // E(C_s) = 1 + (1/s) * sum, which telescopes to the harmonic-free
    // closed form below only for m >= 2; evaluate the recursion instead.
    return ExpectedSqCost(m, s);
  }
  // The paper's printed equation (5) evaluates to one LESS than its own
  // recursion (4) on every input — e.g. E(C_1) must be m + 1 ("the query
  // cost is always C1 = m + 1", Section 3.2) while (5) yields m. The
  // missing "+1" (the root SELECT * query) is restored here; tests
  // verify exact agreement with the recursion.
  const double log_binom = common::LogBinomial(m + s - 1, s);
  return static_cast<double>(m) / static_cast<double>(m - 1) *
             (std::exp(log_binom) - 1.0) +
         1.0;
}

double WorstCaseSqBound(int m, int64_t s) {
  return static_cast<double>(m) *
         std::pow(static_cast<double>(s), static_cast<double>(m + 1));
}

double WorstCaseRqBound(int m, int64_t s, int64_t n) {
  const double sm = std::pow(static_cast<double>(s),
                             static_cast<double>(m + 1));
  return static_cast<double>(m) *
         std::min(sm, static_cast<double>(n));
}

double AverageCaseUpperBound(int m, int64_t s) {
  const double e = std::exp(1.0);
  return std::pow(e + e * static_cast<double>(s) / static_cast<double>(m),
                  static_cast<double>(m));
}

int64_t Pq2dCostFormula(
    std::vector<std::pair<Value, Value>> skyline_points, Value x_min,
    Value x_max, Value y_min, Value y_max) {
  std::sort(skyline_points.begin(), skyline_points.end());
  // Extend with the two domain corner sentinels t_0 and t_{|S|+1}.
  std::vector<std::pair<Value, Value>> pts;
  pts.reserve(skyline_points.size() + 2);
  pts.push_back({x_min, y_max});
  for (const auto& p : skyline_points) pts.push_back(p);
  pts.push_back({x_max, y_min});
  int64_t cost = 0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const int64_t dx = pts[i + 1].first - pts[i].first;
    const int64_t dy = pts[i].second - pts[i + 1].second;
    cost += std::min(dx, dy);
  }
  return cost;
}

}  // namespace analysis
}  // namespace hdsky
