#include "core/skyband_discovery.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "core/baseline_crawler.h"
#include "core/rq_db_sky.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Schema;
using data::Tuple;
using data::TupleId;
using data::Value;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// Shared candidate pool with the exact in-pool membership test (see the
// header comment for why in-pool dominator counting is exact).
struct Pool {
  std::vector<TupleId> ids;
  std::vector<Tuple> tuples;
  std::unordered_set<TupleId> id_set;

  bool Add(TupleId id, const Tuple& t) {
    if (!id_set.insert(id).second) return false;
    ids.push_back(id);
    tuples.push_back(t);
    return true;
  }

  // Number of pool tuples dominating t, capped at `cap`.
  int64_t CountDominators(const Tuple& t, const std::vector<int>& ranking,
                          int64_t cap) const {
    int64_t c = 0;
    for (const Tuple& s : tuples) {
      if (skyline::Dominates(s, t, ranking)) {
        if (++c >= cap) break;
      }
    }
    return c;
  }

  DiscoveryResult Finish(const std::vector<int>& ranking, int band,
                         int64_t query_cost, bool complete) const {
    DiscoveryResult result;
    result.query_cost = query_cost;
    result.complete = complete;
    std::vector<size_t> keep;
    for (size_t i = 0; i < tuples.size(); ++i) {
      int64_t dominators = 0;
      for (size_t j = 0; j < tuples.size(); ++j) {
        if (i == j) continue;
        if (skyline::Dominates(tuples[j], tuples[i], ranking)) {
          if (++dominators >= band) break;
        }
      }
      if (dominators < band) keep.push_back(i);
    }
    std::sort(keep.begin(), keep.end(),
              [&](size_t a, size_t b) { return ids[a] < ids[b]; });
    for (size_t i : keep) {
      result.skyline_ids.push_back(ids[i]);
      result.skyline.push_back(tuples[i]);
    }
    result.trace.push_back(
        {query_cost, static_cast<int64_t>(keep.size())});
    return result;
  }
};

}  // namespace

// ---------------------------------------------------------------------
// RQ

Result<DiscoveryResult> RqDbSkyband(HiddenDatabase* iface,
                                    const SkybandOptions& options) {
  if (options.band < 1) {
    return Status::InvalidArgument("band must be >= 1");
  }
  const Schema& schema = iface->schema();
  const std::vector<int>& ranking = schema.ranking_attributes();
  for (int attr : ranking) {
    if (!schema.attribute(attr).supports_lower_bound()) {
      return Status::Unsupported(
          "RQ sky-band discovery needs two-ended ranges on every ranking "
          "attribute");
    }
  }

  int64_t cost = 0;
  bool complete = true;
  Pool pool;

  // Level 1: the skyline.
  RqDbSkyOptions rq;
  rq.common = options.common;
  HDSKY_ASSIGN_OR_RETURN(DiscoveryResult level1, RqDbSky(iface, rq));
  cost += level1.query_cost;
  complete = complete && level1.complete;
  std::deque<Tuple> frontier;
  for (size_t i = 0; i < level1.skyline.size(); ++i) {
    pool.Add(level1.skyline_ids[i], level1.skyline[i]);
    frontier.push_back(level1.skyline[i]);
  }

  auto remaining = [&]() -> int64_t {
    if (options.common.max_queries <= 0) return 0;
    return std::max<int64_t>(0, options.common.max_queries - cost);
  };

  for (int level = 2; level <= options.band && complete; ++level) {
    std::deque<Tuple> next;
    while (!frontier.empty() && complete) {
      const Tuple t = std::move(frontier.front());
      frontier.pop_front();
      // Partition t's domination subspace into m disjoint boxes and run
      // RQ-DB-SKY over each.
      for (size_t j = 0; j < ranking.size(); ++j) {
        Query region = options.common.base_filter.has_value()
                           ? *options.common.base_filter
                           : Query(schema.num_attributes());
        for (size_t i = 0; i < ranking.size(); ++i) {
          const int attr = ranking[i];
          const Value v = t[static_cast<size_t>(attr)];
          if (i < j) {
            region.AddEquals(attr, v);
          } else if (i == j) {
            region.AddGreaterThan(attr, v);
          } else {
            region.AddAtLeast(attr, v);
          }
        }
        RqDbSkyOptions sub;
        sub.common = options.common;
        sub.common.base_filter = region;
        sub.common.max_queries = remaining();
        if (options.common.max_queries > 0 &&
            sub.common.max_queries == 0) {
          complete = false;
          break;
        }
        HDSKY_ASSIGN_OR_RETURN(DiscoveryResult part, RqDbSky(iface, sub));
        cost += part.query_cost;
        complete = complete && part.complete;
        for (size_t i = 0; i < part.skyline.size(); ++i) {
          if (pool.Add(part.skyline_ids[i], part.skyline[i])) {
            next.push_back(part.skyline[i]);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return pool.Finish(ranking, options.band, cost, complete);
}

// ---------------------------------------------------------------------
// PQ

Result<DiscoveryResult> PqDbSkyband(HiddenDatabase* iface,
                                    const SkybandOptions& options) {
  if (options.band < 1) {
    return Status::InvalidArgument("band must be >= 1");
  }
  if (iface->k() < options.band) {
    return Status::Unsupported(
        "PQ sky-band discovery needs k >= band: a top-" +
        std::to_string(iface->k()) +
        " interface cannot reveal a line's top-" +
        std::to_string(options.band));
  }
  const Schema& schema = iface->schema();
  const std::vector<int>& ranking = schema.ranking_attributes();
  if (ranking.size() < 2) {
    return Status::InvalidArgument(
        "PQ sky-band discovery needs at least two ranking attributes");
  }

  // Plane attributes: largest domains, as in PQ-DB-SKY.
  std::vector<int> by_domain = ranking;
  std::stable_sort(by_domain.begin(), by_domain.end(), [&](int a, int b) {
    return schema.attribute(a).DomainSize() >
           schema.attribute(b).DomainSize();
  });
  const int ax = by_domain[0];
  const int ay = by_domain[1];
  std::vector<int> others;
  for (int attr : ranking) {
    if (attr != ax && attr != ay) others.push_back(attr);
  }
  constexpr int64_t kMaxPlanes = int64_t{1} << 22;
  int64_t num_planes = 1;
  for (int attr : others) {
    const int64_t d = schema.attribute(attr).DomainSize();
    if (num_planes > kMaxPlanes / d) {
      return Status::Unsupported("non-plane combination space too large");
    }
    num_planes *= d;
  }

  int64_t cost = 0;
  bool complete = true;
  Pool pool;
  auto out_of_budget = [&]() {
    return options.common.max_queries > 0 &&
           cost >= options.common.max_queries;
  };

  // Enumerate plane combinations in ascending (sum, lex).
  std::vector<std::vector<Value>> combos;
  combos.reserve(static_cast<size_t>(num_planes));
  std::vector<Value> current(others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    current[i] = schema.attribute(others[i]).domain_min;
  }
  for (int64_t c = 0; c < num_planes; ++c) {
    combos.push_back(current);
    for (int64_t i = static_cast<int64_t>(others.size()) - 1; i >= 0;
         --i) {
      const auto& spec = schema.attribute(others[static_cast<size_t>(i)]);
      if (current[static_cast<size_t>(i)] < spec.domain_max) {
        ++current[static_cast<size_t>(i)];
        break;
      }
      current[static_cast<size_t>(i)] = spec.domain_min;
    }
  }
  std::stable_sort(
      combos.begin(), combos.end(),
      [](const std::vector<Value>& a, const std::vector<Value>& b) {
        const Value sa = std::accumulate(a.begin(), a.end(), Value{0});
        const Value sb = std::accumulate(b.begin(), b.end(), Value{0});
        if (sa != sb) return sa < sb;
        return a < b;
      });

  const Value x_min = schema.attribute(ax).domain_min;
  const Value x_max = schema.attribute(ax).domain_max;
  const Value y_min = schema.attribute(ay).domain_min;
  const Value y_max = schema.attribute(ay).domain_max;

  for (const std::vector<Value>& vc : combos) {
    if (out_of_budget()) {
      complete = false;
      break;
    }
    for (Value x = x_min; x <= x_max; ++x) {
      if (out_of_budget()) {
        complete = false;
        break;
      }
      // Skip the column when every cell already has >= band pool
      // dominators; test the best cell (x, y_min) — its dominators
      // dominate every other cell of the column.
      {
        Tuple probe(static_cast<size_t>(schema.num_attributes()),
                    data::kNullValue);
        probe[static_cast<size_t>(ax)] = x;
        probe[static_cast<size_t>(ay)] = y_min;
        for (size_t i = 0; i < others.size(); ++i) {
          probe[static_cast<size_t>(others[i])] = vc[i];
        }
        if (pool.CountDominators(probe, ranking, options.band) >=
            options.band) {
          continue;
        }
      }
      Query q = options.common.base_filter.has_value()
                    ? *options.common.base_filter
                    : Query(schema.num_attributes());
      q.AddEquals(ax, x);
      for (size_t i = 0; i < others.size(); ++i) {
        q.AddEquals(others[i], vc[i]);
      }
      Result<QueryResult> answer = iface->Execute(q);
      if (!answer.ok()) {
        if (answer.status().IsResourceExhausted()) {
          complete = false;
          break;
        }
        return answer.status();
      }
      ++cost;
      // A column's j-th answer already has j-1 column-mates dominating
      // it, so the top-`band` suffices; deeper tuples cannot be in the
      // band. (k >= band guarantees visibility.)
      const int take =
          std::min<int>(answer->size(), options.band);
      for (int i = 0; i < take; ++i) {
        pool.Add(answer->ids[static_cast<size_t>(i)],
                 answer->tuples[static_cast<size_t>(i)]);
      }
      (void)y_max;
    }
    if (!complete) break;
  }
  return pool.Finish(ranking, options.band, cost, complete);
}

// ---------------------------------------------------------------------
// SQ

Result<DiscoveryResult> SqDbSkyband(HiddenDatabase* iface,
                                    const SkybandOptions& options) {
  if (options.band < 1) {
    return Status::InvalidArgument("band must be >= 1");
  }
  const Schema& schema = iface->schema();
  const std::vector<int>& ranking = schema.ranking_attributes();
  for (int attr : ranking) {
    if (!schema.attribute(attr).supports_upper_bound()) {
      return Status::Unsupported(
          "SQ sky-band discovery needs range support on every ranking "
          "attribute");
    }
  }

  int64_t cost = 0;
  bool complete = true;
  Pool pool;
  const int k = iface->k();
  std::deque<Query> queue;
  queue.push_back(options.common.base_filter.has_value()
                      ? *options.common.base_filter
                      : Query(schema.num_attributes()));

  while (!queue.empty()) {
    if (options.common.max_queries > 0 &&
        cost >= options.common.max_queries) {
      complete = false;
      break;
    }
    const Query q = std::move(queue.front());
    queue.pop_front();
    Result<QueryResult> answer = iface->Execute(q);
    if (!answer.ok()) {
      if (answer.status().IsResourceExhausted()) {
        complete = false;
        break;
      }
      return answer.status();
    }
    ++cost;
    for (int i = 0; i < answer->size(); ++i) {
      pool.Add(answer->ids[static_cast<size_t>(i)],
               answer->tuples[static_cast<size_t>(i)]);
    }
    if (answer->size() < k) continue;

    // Find a pivot dominated by >= band-1 others within the answer:
    // any band tuple matching q must then beat the pivot somewhere.
    const Tuple* pivot = nullptr;
    for (int i = 0; i < answer->size() && pivot == nullptr; ++i) {
      int64_t dominators = 0;
      for (int j = 0; j < answer->size(); ++j) {
        if (i == j) continue;
        if (skyline::Dominates(answer->tuples[static_cast<size_t>(j)],
                               answer->tuples[static_cast<size_t>(i)],
                               ranking)) {
          if (++dominators >= options.band - 1) break;
        }
      }
      if (dominators >= options.band - 1) {
        pivot = &answer->tuples[static_cast<size_t>(i)];
      }
    }
    if (pivot == nullptr) {
      // No safe branching tuple (Section 7.2's hard case).
      if (!options.crawl_when_stuck) {
        complete = false;
        continue;
      }
      CrawlOptions crawl;
      crawl.common = options.common;
      crawl.common.base_filter.reset();
      crawl.tolerate_value_duplicates = true;
      if (options.common.max_queries > 0) {
        crawl.common.max_queries = std::max<int64_t>(
            0, options.common.max_queries - cost);
        if (crawl.common.max_queries == 0) {
          complete = false;
          continue;
        }
      }
      Result<CrawlResult> crawled = CrawlRegion(iface, q, crawl);
      HDSKY_RETURN_IF_ERROR(crawled.status());
      cost += crawled->query_cost;
      complete = complete && crawled->complete;
      for (size_t i = 0; i < crawled->ids.size(); ++i) {
        pool.Add(crawled->ids[i], crawled->tuples[i]);
      }
      continue;
    }
    for (int attr : ranking) {
      Query child = q;
      child.AddLessThan(attr, (*pivot)[static_cast<size_t>(attr)]);
      queue.push_back(std::move(child));
    }
  }
  return pool.Finish(ranking, options.band, cost, complete);
}

}  // namespace core
}  // namespace hdsky
