// PQ-DB-SKY (Algorithm 5, Section 5.3): skyline discovery over a
// higher-dimensional point-predicate interface.
//
// No instance-optimal algorithm exists beyond 2D (Section 5.2), so the
// algorithm greedily partitions the space into 2D subspaces: the two
// ranking attributes with the LARGEST domains span the plane (their
// domains cost additively; all others multiply), and every value
// combination of the remaining attributes is visited in ascending
// (sum, lexicographic) order — a linear extension of the dominance order,
// which both realizes the anytime property (Section 7.1) and guarantees
// that each plane is pre-pruned by every potential dominator before it is
// searched. Each plane runs PQ-2DSUB-SKY.

#ifndef HDSKY_CORE_PQ_DB_SKY_H_
#define HDSKY_CORE_PQ_DB_SKY_H_

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct PqDbSkyOptions {
  DiscoveryOptions common;
  /// Overrides the largest-domain plane-attribute heuristic with explicit
  /// schema attribute indices (both must be ranking attributes). Used by
  /// the plane-choice ablation bench.
  int force_ax = -1;
  int force_ay = -1;
};

/// Runs PQ-DB-SKY against `iface` (>= 2 ranking attributes; point
/// predicates suffice on all of them). Budget exhaustion yields the
/// anytime partial skyline with complete = false.
common::Result<DiscoveryResult> PqDbSky(interface::HiddenDatabase* iface,
                                        const PqDbSkyOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_PQ_DB_SKY_H_
