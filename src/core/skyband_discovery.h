// Top-h sky-band discovery (Section 7.2): all tuples dominated by fewer
// than h others. The top-1 band is the skyline.
//
// RQ: after discovering the skyline, each band tuple t spawns RQ-DB-SKY
// runs over its domination subspace. The paper treats that subspace as
// one region; since a conjunctive query cannot exclude the single point
// t from the box [t, max], this implementation partitions the subspace
// into m disjoint boxes ((Ai = t_i for i < j), Aj > t_j, (Ai >= t_i for
// i > j)), costing a factor <= m more runs but staying exact. The final
// membership test counts dominators INSIDE the collected pool, which is
// exact: in any finite poset at least min(|dominators|, h) of a tuple's
// dominators have fewer than h dominators themselves, hence are in the
// band and in the pool.
//
// PQ: plane-at-a-time like PQ-DB-SKY, but each column keeps its top-h
// answers (a column's j-th tuple already has j-1 column-mates dominating
// it) and a column is skipped only when every cell already has >= h
// pool dominators. Requires k >= h (with k < h the interface cannot
// reveal a column's h best tuples; the paper's fallback degenerates to
// crawling).
//
// SQ: the weak interface makes completeness unattainable in the worst
// case (the paper's negative result). The best-effort tree branches on a
// returned tuple that is dominated by >= h-1 others within the same
// answer; when an overflowing node has no such tuple the subtree is
// either abandoned (complete = false) or exhaustively crawled, per
// options.

#ifndef HDSKY_CORE_SKYBAND_DISCOVERY_H_
#define HDSKY_CORE_SKYBAND_DISCOVERY_H_

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct SkybandOptions {
  DiscoveryOptions common;
  /// Band depth h >= 1; h = 1 degenerates to skyline discovery.
  int band = 2;
  /// SQ only: crawl subtrees whose node cannot branch safely instead of
  /// abandoning them.
  bool crawl_when_stuck = false;
};

/// Sky-band discovery through a two-ended range interface.
common::Result<DiscoveryResult> RqDbSkyband(
    interface::HiddenDatabase* iface, const SkybandOptions& options = {});

/// Sky-band discovery through a point-predicate interface; needs
/// iface->k() >= options.band.
common::Result<DiscoveryResult> PqDbSkyband(
    interface::HiddenDatabase* iface, const SkybandOptions& options = {});

/// Best-effort sky-band discovery through a single-ended interface.
common::Result<DiscoveryResult> SqDbSkyband(
    interface::HiddenDatabase* iface, const SkybandOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_SKYBAND_DISCOVERY_H_
