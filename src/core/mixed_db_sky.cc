#include "core/mixed_db_sky.h"

#include <algorithm>
#include <unordered_set>

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::InterfaceType;
using data::Schema;
using data::Tuple;
using data::TupleId;
using data::Value;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

Result<MixedPhaseResult> MixedDbSkyPhase(
    HiddenDatabase* iface, const std::vector<Tuple>& range_skyline,
    int64_t cost_so_far, const CrawlOptions& options) {
  const Schema& schema = iface->schema();
  MixedPhaseResult result;
  if (range_skyline.empty()) return result;  // empty database: no phase 2

  const std::vector<int> pq_attrs =
      schema.RankingAttributesWithInterface(InterfaceType::kPQ);
  if (pq_attrs.empty()) return result;  // nothing can have been missed

  // P: for each two-ended range attribute, Aj >= min over the discovered
  // skyline (equation 17). One-ended attributes admit no lower bound and
  // contribute nothing (the weaker pruning of Section 6.1 is exactly the
  // v < max bound below).
  Query base = options.common.base_filter.has_value()
                   ? *options.common.base_filter
                   : Query(schema.num_attributes());
  for (int attr :
       schema.RankingAttributesWithInterface(InterfaceType::kRQ)) {
    Value lo = range_skyline[0][static_cast<size_t>(attr)];
    for (const Tuple& t : range_skyline) {
      lo = std::min(lo, t[static_cast<size_t>(attr)]);
    }
    base.AddAtLeast(attr, lo);
  }

  std::unordered_set<TupleId> seen;
  int64_t cost = cost_so_far;
  auto remaining_budget = [&]() -> int64_t {
    if (options.common.max_queries <= 0) return 0;
    return std::max<int64_t>(0, options.common.max_queries - cost);
  };
  auto absorb = [&](TupleId id, const Tuple& t) {
    if (!seen.insert(id).second) return;
    result.pool.push_back({id, t, cost});
  };

  for (int bi : pq_attrs) {
    // Only values beating some discovered tuple on Bi can host a missed
    // skyline tuple.
    Value vmax = range_skyline[0][static_cast<size_t>(bi)];
    for (const Tuple& t : range_skyline) {
      vmax = std::max(vmax, t[static_cast<size_t>(bi)]);
    }
    const Value lo = schema.attribute(bi).domain_min;
    for (Value v = lo; v < vmax; ++v) {
      if (options.common.max_queries > 0 && remaining_budget() == 0) {
        result.complete = false;
        result.query_cost = cost - cost_so_far;
        return result;
      }
      Query probe = base;
      probe.AddEquals(bi, v);
      Result<QueryResult> answer = iface->Execute(probe);
      if (!answer.ok()) {
        if (answer.status().IsResourceExhausted()) {
          result.complete = false;
          result.query_cost = cost - cost_so_far;
          return result;
        }
        return answer.status();
      }
      ++cost;
      if (answer->empty()) continue;
      for (int i = 0; i < answer->size(); ++i) {
        absorb(answer->ids[static_cast<size_t>(i)],
               answer->tuples[static_cast<size_t>(i)]);
      }
      if (answer->size() == iface->k()) {
        // Overflow: crawl the region exhaustively.
        CrawlOptions crawl_opts = options;
        crawl_opts.common.base_filter.reset();  // folded into `probe`
        crawl_opts.tolerate_value_duplicates = true;
        crawl_opts.common.max_queries = remaining_budget();
        Result<CrawlResult> crawled =
            CrawlRegion(iface, probe, crawl_opts);
        HDSKY_RETURN_IF_ERROR(crawled.status());
        const int64_t base_cost = cost;
        for (size_t i = 0; i < crawled->ids.size(); ++i) {
          cost = base_cost + crawled->found_at[i];
          absorb(crawled->ids[i], crawled->tuples[i]);
        }
        cost = base_cost + crawled->query_cost;
        if (!crawled->complete) {
          result.complete = false;
          if (options.common.max_queries > 0 &&
              remaining_budget() == 0) {
            result.query_cost = cost - cost_so_far;
            return result;
          }
        }
      }
    }
  }
  result.query_cost = cost - cost_so_far;
  return result;
}

}  // namespace core
}  // namespace hdsky
