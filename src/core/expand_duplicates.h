// Duplicate expansion (Section 2.1): the discovery algorithms assume
// general positioning, so tuples sharing a skyline tuple's exact ranking
// values stay hidden behind it. When an application needs every listing
// (not just one per value combination) — e.g. all flights with the same
// price/stops/duration — it issues, per discovered skyline tuple, a
// conjunctive equality query on all ranking attributes and, if that
// overflows, crawls the match set (distinguishable only through
// filtering attributes).

#ifndef HDSKY_CORE_EXPAND_DUPLICATES_H_
#define HDSKY_CORE_EXPAND_DUPLICATES_H_

#include <vector>

#include "core/baseline_crawler.h"
#include "core/discovery.h"

namespace hdsky {
namespace core {

/// All tuples sharing one skyline value combination.
struct DuplicateGroup {
  /// The representative the discovery algorithm returned.
  data::TupleId representative = data::kInvalidTupleId;
  /// Every matching tuple (including the representative).
  std::vector<data::TupleId> ids;
  std::vector<data::Tuple> tuples;
  /// False when the group's point region could not be crawled
  /// exhaustively (no filtering attribute left to enumerate).
  bool complete = true;
};

struct ExpandResult {
  std::vector<DuplicateGroup> groups;
  int64_t query_cost = 0;
  bool complete = true;
};

/// Expands each tuple of `skyline` to its full duplicate group through
/// the interface. Costs one equality query per tuple plus the crawl of
/// any overflowing group.
common::Result<ExpandResult> ExpandDuplicates(
    interface::HiddenDatabase* iface, const DiscoveryResult& skyline,
    const CrawlOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_EXPAND_DUPLICATES_H_
