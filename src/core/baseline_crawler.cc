#include "core/baseline_crawler.h"

#include <algorithm>
#include <unordered_set>

#include "common/math_util.h"
#include "skyline/compute.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::Schema;
using data::Table;
using data::Tuple;
using data::TupleId;
using data::Value;
using interface::Interval;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// The remaining value slice of `attr` under query q, clipped to the
// domain.
struct Slice {
  Value lo, hi;
  int64_t width() const { return hi - lo + 1; }
};

Slice ClippedSlice(const Query& q, const AttributeSpec& spec, int attr) {
  const Interval& iv = q.interval(attr);
  return {std::max(iv.lower, spec.domain_min),
          std::min(iv.upper, spec.domain_max)};
}

struct CrawlState {
  HiddenDatabase* iface;
  const CrawlOptions* options;
  int64_t queries = 0;
  bool exhausted = false;
  bool complete = true;
  std::unordered_set<TupleId> seen;
  CrawlResult out;
  // Shared answer buffer for the recursive walk: every use of an answer
  // happens before the next recursive call, so one buffer (refilled in
  // place by the reuse Execute overload) serves the whole crawl.
  QueryResult answer;
};

// Executes one query into st->answer, respecting both budgets.
Status CrawlExecute(CrawlState* st, const Query& q) {
  if (st->options->common.max_queries > 0 &&
      st->queries >= st->options->common.max_queries) {
    st->exhausted = true;
    return Status::ResourceExhausted("crawl max_queries reached");
  }
  const Status s = st->iface->Execute(q, &st->answer);
  if (!s.ok()) {
    if (s.IsResourceExhausted()) st->exhausted = true;
    return s;
  }
  ++st->queries;
  return s;
}

void Absorb(CrawlState* st, const QueryResult& t) {
  for (int i = 0; i < t.size(); ++i) {
    const TupleId id = t.ids[static_cast<size_t>(i)];
    if (!st->seen.insert(id).second) continue;
    st->out.ids.push_back(id);
    st->out.tuples.push_back(t.tuples[static_cast<size_t>(i)]);
    st->out.found_at.push_back(st->queries);
  }
}

// Recursive binary space partitioning. Returns OK unless a hard error
// occurred; budget exhaustion and unsplittable regions set flags instead.
Status CrawlRec(CrawlState* st, const Query& region) {
  const Status exec_status = CrawlExecute(st, region);
  if (!exec_status.ok()) {
    if (st->exhausted) {
      st->complete = false;
      return Status::OK();
    }
    return exec_status;
  }
  const QueryResult& answer = st->answer;
  Absorb(st, answer);
  // Unlike the discovery algorithms (which conservatively treat a full
  // page as an overflow, Section 3.1), the crawler uses the interface's
  // true overflow signal: web databases display the total match count
  // ("1,234 results"), and the crawling model of [22] assumes it too.
  if (!answer.overflow) return Status::OK();  // region exhausted

  const Schema& schema = st->iface->schema();

  // Preferred split: a two-ended range attribute with a splittable slice,
  // widest first; the split point adapts to the returned values.
  int best_attr = -1;
  Slice best_slice{0, -1};
  for (int attr : schema.ranking_attributes()) {
    const AttributeSpec& spec = schema.attribute(attr);
    if (!spec.supports_lower_bound()) continue;
    const Slice s = ClippedSlice(region, spec, attr);
    if (s.width() >= 2 && s.width() > best_slice.width()) {
      best_attr = attr;
      best_slice = s;
    }
  }
  if (best_attr >= 0) {
    // Median of the returned values on the split attribute, clamped so
    // both halves are non-empty slices.
    std::vector<Value> vals;
    vals.reserve(static_cast<size_t>(answer.size()));
    for (const Tuple& t : answer.tuples) {
      vals.push_back(t[static_cast<size_t>(best_attr)]);
    }
    std::nth_element(vals.begin(), vals.begin() + vals.size() / 2,
                     vals.end());
    Value split = vals[vals.size() / 2];
    split = common::Clamp(split, best_slice.lo, best_slice.hi - 1);
    Query left = region;
    left.AddAtMost(best_attr, split);
    Query right = region;
    right.AddGreaterThan(best_attr, split);
    HDSKY_RETURN_IF_ERROR(CrawlRec(st, left));
    if (st->exhausted) return Status::OK();
    HDSKY_RETURN_IF_ERROR(CrawlRec(st, right));
    return Status::OK();
  }

  // Fallback: enumerate equality predicates on the attribute with the
  // smallest splittable slice (point attributes and small-domain
  // single-ended ranges; then filtering attributes for duplicate-heavy
  // regions).
  int enum_attr = -1;
  Slice enum_slice{0, -1};
  auto consider = [&](int attr) {
    const Slice s =
        ClippedSlice(region, schema.attribute(attr), attr);
    if (s.width() < 2 || s.width() > st->options->max_enumeration) return;
    if (region.interval(attr).is_point()) return;
    if (enum_attr < 0 || s.width() < enum_slice.width()) {
      enum_attr = attr;
      enum_slice = s;
    }
  };
  for (int attr : schema.ranking_attributes()) consider(attr);
  if (enum_attr < 0) {
    for (int attr : schema.filtering_attributes()) consider(attr);
  }
  if (enum_attr < 0) {
    // Nothing left to split on: more than k tuples share every
    // constrainable value. Completeness is unattainable here (the
    // Section 7.2 negative case); keep what the answer gave us. If every
    // ranking attribute is pinned, the hidden tuples are value-
    // duplicates of retrieved ones — harmless to skyline callers.
    bool ranking_pinned = true;
    for (int attr : schema.ranking_attributes()) {
      const Slice s = ClippedSlice(region, schema.attribute(attr), attr);
      if (s.width() != 1) {
        ranking_pinned = false;
        break;
      }
    }
    if (!(st->options->tolerate_value_duplicates && ranking_pinned)) {
      st->complete = false;
    }
    return Status::OK();
  }
  for (Value v = enum_slice.lo; v <= enum_slice.hi; ++v) {
    Query cell = region;
    cell.AddEquals(enum_attr, v);
    HDSKY_RETURN_IF_ERROR(CrawlRec(st, cell));
    if (st->exhausted) return Status::OK();
  }
  return Status::OK();
}

}  // namespace

Result<CrawlResult> CrawlRegion(HiddenDatabase* iface, const Query& region,
                                const CrawlOptions& options) {
  if (region.num_attributes() != iface->schema().num_attributes()) {
    return Status::InvalidArgument(
        "region arity does not match the interface schema");
  }
  HDSKY_RETURN_IF_ERROR(iface->ValidateQuery(region));
  CrawlState st;
  st.iface = iface;
  st.options = &options;
  Query root = region;
  if (options.common.base_filter.has_value()) {
    // Fold the base filter into the region conjunctively.
    const Query& f = *options.common.base_filter;
    for (int a = 0; a < f.num_attributes(); ++a) {
      const Interval& iv = f.interval(a);
      if (!iv.constrained()) continue;
      root.AddAtLeast(a, iv.lower);
      root.AddAtMost(a, iv.upper);
    }
    HDSKY_RETURN_IF_ERROR(iface->ValidateQuery(root));
  }
  HDSKY_RETURN_IF_ERROR(CrawlRec(&st, root));
  st.out.query_cost = st.queries;
  st.out.complete = st.complete && !st.exhausted;
  return std::move(st.out);
}

Result<CrawlResult> CrawlDatabase(HiddenDatabase* iface,
                                  const CrawlOptions& options) {
  return CrawlRegion(iface, Query(iface->schema().num_attributes()),
                     options);
}

Result<DiscoveryResult> BaselineSkyline(HiddenDatabase* iface,
                                        const CrawlOptions& options) {
  CrawlOptions opts = options;
  opts.tolerate_value_duplicates = true;
  HDSKY_ASSIGN_OR_RETURN(CrawlResult crawl, CrawlDatabase(iface, opts));
  // Local skyline over the crawled copy.
  Table local(iface->schema());
  local.Reserve(static_cast<int64_t>(crawl.tuples.size()));
  for (const Tuple& t : crawl.tuples) {
    HDSKY_RETURN_IF_ERROR(local.Append(t));
  }
  const std::vector<TupleId> sky = skyline::SkylineSFS(local);

  DiscoveryResult result;
  result.query_cost = crawl.query_cost;
  result.complete = crawl.complete;
  // Post-hoc anytime curve: when each eventually-skyline tuple arrived.
  std::vector<int64_t> arrival;
  arrival.reserve(sky.size());
  for (TupleId local_row : sky) {
    const size_t idx = static_cast<size_t>(local_row);
    result.skyline_ids.push_back(crawl.ids[idx]);
    result.skyline.push_back(crawl.tuples[idx]);
    arrival.push_back(crawl.found_at[idx]);
  }
  std::sort(arrival.begin(), arrival.end());
  result.trace.push_back({0, 0});
  for (size_t i = 0; i < arrival.size(); ++i) {
    result.trace.push_back({arrival[i], static_cast<int64_t>(i + 1)});
  }
  result.trace.push_back(
      {crawl.query_cost, static_cast<int64_t>(arrival.size())});
  // Keep ids sorted with tuples aligned.
  std::vector<size_t> perm(result.skyline_ids.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return result.skyline_ids[a] < result.skyline_ids[b];
  });
  DiscoveryResult sorted;
  sorted.query_cost = result.query_cost;
  sorted.complete = result.complete;
  sorted.trace = std::move(result.trace);
  for (size_t p : perm) {
    sorted.skyline_ids.push_back(result.skyline_ids[p]);
    sorted.skyline.push_back(result.skyline[p]);
  }
  return sorted;
}

}  // namespace core
}  // namespace hdsky
