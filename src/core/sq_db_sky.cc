#include "core/sq_db_sky.h"

#include <deque>
#include <string>
#include <unordered_set>

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::Schema;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// True when the child predicate Ai < v can never match a domain value.
bool ChildImpossible(const Query& q, const AttributeSpec& spec, int attr) {
  const interface::Interval& iv = q.interval(attr);
  return iv.empty() || iv.upper < spec.domain_min ||
         iv.lower > spec.domain_max;
}

}  // namespace

Result<DiscoveryResult> SqDbSky(HiddenDatabase* iface,
                                const SqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  for (int attr : schema.ranking_attributes()) {
    if (!schema.attribute(attr).supports_upper_bound()) {
      return Status::Unsupported(
          "SQ-DB-SKY needs an upper-bound (SQ/RQ) predicate on every "
          "ranking attribute; " +
          schema.attribute(attr).name + " is point-only");
    }
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }

  DiscoveryRun run(iface, options.common);
  const int k = iface->k();
  std::unordered_set<std::string> processed_regions;
  std::deque<Query> queue;
  queue.push_back(run.MakeBaseQuery());

  // One QueryResult lives across the whole traversal; the buffer-reuse
  // Execute overload refills it in place each iteration.
  QueryResult answer;
  while (!queue.empty()) {
    const Query q = std::move(queue.front());
    queue.pop_front();
    if (options.skip_duplicate_nodes &&
        !processed_regions.insert(q.Signature()).second) {
      continue;  // an identical region's subtree already ran
    }
    const Status st = run.Execute(q, &answer);
    if (!st.ok()) {
      if (run.exhausted()) break;  // anytime: return the partial skyline
      return st;
    }
    const QueryResult& t = answer;
    // Every returned tuple not dominated by anything seen is a skyline
    // tuple (downward-closed query space; see core/discovery.h).
    for (int i = 0; i < t.size(); ++i) {
      run.Observe(t.ids[static_cast<size_t>(i)],
                  t.tuples[static_cast<size_t>(i)]);
    }
    if (t.size() == k) {
      // The paper's overflow test: a full page spawns one child per
      // ranking attribute, pivoted on the top-ranked tuple.
      const data::Tuple& pivot = t.tuples[0];
      for (int attr : schema.ranking_attributes()) {
        Query child = q;
        child.AddLessThan(attr, pivot[static_cast<size_t>(attr)]);
        if (options.skip_impossible_children &&
            ChildImpossible(child, schema.attribute(attr), attr)) {
          continue;
        }
        queue.push_back(std::move(child));
      }
    }
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
