#include "core/sq_db_sky.h"

#include <deque>
#include <string>
#include <unordered_set>

#include "net/wire.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::Schema;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// True when the child predicate Ai < v can never match a domain value.
bool ChildImpossible(const Query& q, const AttributeSpec& spec, int attr) {
  const interface::Interval& iv = q.interval(attr);
  return iv.empty() || iv.upper < spec.domain_min ||
         iv.lower > spec.domain_max;
}

// Frontier codec for checkpoint/resume: the BFS queue plus the
// processed-region memo, tagged 'S' so a blob saved by a different
// algorithm is rejected instead of misread.
void EncodeSqFrontier(const std::deque<Query>& queue,
                      const std::unordered_set<std::string>& processed,
                      std::string* out) {
  net::Encoder enc(out);
  enc.PutU8('S');
  enc.PutU64(queue.size());
  for (const Query& q : queue) net::EncodeQueryBody(q, &enc);
  enc.PutU64(processed.size());
  for (const std::string& sig : processed) enc.PutString(sig);
}

Status DecodeSqFrontier(std::string_view blob, std::deque<Query>* queue,
                        std::unordered_set<std::string>* processed) {
  net::Decoder dec(blob);
  uint8_t tag = 0;
  uint64_t queue_len = 0;
  if (!dec.GetU8(&tag) || tag != 'S' || !dec.GetU64(&queue_len)) {
    return Status::IOError("malformed SQ frontier blob");
  }
  for (uint64_t i = 0; i < queue_len; ++i) {
    Query q;
    if (!net::DecodeQueryBody(&dec, &q)) {
      return Status::IOError("malformed SQ frontier query");
    }
    queue->push_back(std::move(q));
  }
  uint64_t processed_len = 0;
  if (!dec.GetU64(&processed_len)) {
    return Status::IOError("malformed SQ frontier blob");
  }
  for (uint64_t i = 0; i < processed_len; ++i) {
    std::string sig;
    if (!dec.GetString(&sig)) {
      return Status::IOError("malformed SQ frontier signature");
    }
    processed->insert(std::move(sig));
  }
  if (!dec.exhausted()) {
    return Status::IOError("SQ frontier blob carries trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Result<DiscoveryResult> SqDbSky(HiddenDatabase* iface,
                                const SqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  for (int attr : schema.ranking_attributes()) {
    if (!schema.attribute(attr).supports_upper_bound()) {
      return Status::Unsupported(
          "SQ-DB-SKY needs an upper-bound (SQ/RQ) predicate on every "
          "ranking attribute; " +
          schema.attribute(attr).name + " is point-only");
    }
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }

  DiscoveryRun run(iface, options.common);
  const int k = iface->k();
  std::unordered_set<std::string> processed_regions;
  std::deque<Query> queue;
  if (options.common.resume_frontier.has_value()) {
    // Crash-consistent resume: progress and the BFS frontier come from a
    // checkpoint instead of the root (docs/robustness.md).
    if (options.common.resume_run_state.has_value()) {
      HDSKY_RETURN_IF_ERROR(
          run.RestoreState(*options.common.resume_run_state));
    }
    HDSKY_RETURN_IF_ERROR(DecodeSqFrontier(*options.common.resume_frontier,
                                           &queue, &processed_regions));
  } else {
    queue.push_back(run.MakeBaseQuery());
  }

  // One QueryResult lives across the whole traversal; the buffer-reuse
  // Execute overload refills it in place each iteration.
  QueryResult answer;
  while (!queue.empty()) {
    if (options.common.on_checkpoint) {
      // Top of the loop is frontier-consistent: every answer funneled into
      // the collector came from a node no longer in the queue.
      options.common.on_checkpoint(run, [&](std::string* out) {
        EncodeSqFrontier(queue, processed_regions, out);
      });
    }
    const Query q = std::move(queue.front());
    queue.pop_front();
    if (options.skip_duplicate_nodes &&
        !processed_regions.insert(q.Signature()).second) {
      continue;  // an identical region's subtree already ran
    }
    const Status st = run.Execute(q, &answer);
    if (!st.ok()) {
      if (run.exhausted()) break;  // anytime: return the partial skyline
      return st;
    }
    const QueryResult& t = answer;
    // Every returned tuple not dominated by anything seen is a skyline
    // tuple (downward-closed query space; see core/discovery.h).
    for (int i = 0; i < t.size(); ++i) {
      run.Observe(t.ids[static_cast<size_t>(i)],
                  t.tuples[static_cast<size_t>(i)]);
    }
    if (t.size() == k) {
      // The paper's overflow test: a full page spawns one child per
      // ranking attribute, pivoted on the top-ranked tuple.
      const data::Tuple& pivot = t.tuples[0];
      for (int attr : schema.ranking_attributes()) {
        Query child = q;
        child.AddLessThan(attr, pivot[static_cast<size_t>(attr)]);
        if (options.skip_impossible_children &&
            ChildImpossible(child, schema.attribute(attr), attr)) {
          continue;
        }
        queue.push_back(std::move(child));
      }
    }
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
