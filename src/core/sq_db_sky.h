// SQ-DB-SKY (Algorithm 1, Section 3): skyline discovery through a
// single-ended-range interface.
//
// Iterative divide and conquer over a query tree: the root is SELECT *;
// whenever a query returns a full page of k tuples, one child per ranking
// attribute Ai appends the predicate Ai < T0[Ai]. Every skyline tuple
// matches at least one child of every overflowing node it matches (it
// must beat T0 somewhere or be dominated), so a breadth-first drain of
// the tree discovers the complete skyline (Theorem 2). Worst-case cost
// O(m * |S|^{m+1}); expected cost under a random ranking is bounded by
// (e + e|S|/m)^m (Section 3.2).

#ifndef HDSKY_CORE_SQ_DB_SKY_H_
#define HDSKY_CORE_SQ_DB_SKY_H_

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct SqDbSkyOptions {
  DiscoveryOptions common;
  /// When true (default), child queries whose new predicate cannot match
  /// any domain value (e.g. Ai < domain_min) are pruned locally instead
  /// of issued: a real search form cannot even express a bound below the
  /// attribute's domain. Setting false issues them anyway, which is what
  /// the Section 3.2 cost model charges for (E(C_1) = m + 1 counts all m
  /// empty branches); the ablation bench quantifies the difference.
  bool skip_impossible_children = true;
  /// Skips queue entries identical to an already-processed query (safe:
  /// the first instance's subtree covers the region). Off by default to
  /// keep costs faithful to the paper's tree model.
  bool skip_duplicate_nodes = false;
};

/// Runs SQ-DB-SKY against `iface`. Every ranking attribute must support
/// an upper-bound predicate (SQ or RQ). A budget exhaustion (either the
/// interface's or options.common.max_queries) yields complete = false
/// with the partial skyline discovered so far — the anytime property.
common::Result<DiscoveryResult> SqDbSky(interface::HiddenDatabase* iface,
                                        const SqDbSkyOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_SQ_DB_SKY_H_
