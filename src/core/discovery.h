// Shared vocabulary of the discovery algorithms: options, results, anytime
// progress traces (Section 7.1), and the SkylineCollector that turns query
// answers into confirmed skyline tuples.
//
// Confirmation logic. For *downward-closed* query protocols (every issued
// query's match set is closed under domination within the space already
// known to be covered — true for SQ-DB-SKY's queries and for RQ-DB-SKY's
// q/R(q) discipline), a returned tuple is on the skyline if and only if no
// previously seen tuple dominates it, and a tuple once confirmed can never
// be invalidated: any dominator would have outranked it in the very answer
// that returned it. Observe() implements that rule. Point-query
// algorithms lack this property (a dominator need not match a point
// query), so they prove skyline membership geometrically and call
// AddConfirmed() instead.
//
// All algorithms assume the paper's general positioning: skyline tuples
// have unique value combinations on ranking attributes. Tuples whose
// ranking values duplicate a discovered skyline tuple are invisible behind
// a top-k interface (Section 2.1); DiscoveryResult reports skylines as
// value-distinct tuples.

#ifndef HDSKY_CORE_DISCOVERY_H_
#define HDSKY_CORE_DISCOVERY_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "interface/top_k_interface.h"
#include "skyline/dominance_index.h"

namespace hdsky {
namespace core {

/// One point of the anytime curve: after `queries_issued` queries,
/// `skyline_discovered` tuples were confirmed (Figures 20-24).
struct ProgressPoint {
  int64_t queries_issued = 0;
  int64_t skyline_discovered = 0;
};

using ProgressTrace = std::vector<ProgressPoint>;

class DiscoveryRun;

/// Fills *out with the algorithm's encoded frontier (queue / stack /
/// plane cursor). Handed to DiscoveryOptions::on_checkpoint lazily so the
/// frontier is only serialized when a checkpoint actually happens.
using FrontierSaver = std::function<void(std::string*)>;

struct DiscoveryOptions {
  /// Conjunctive constraints appended to every query, e.g. equality on
  /// filtering attributes (DepartureCity = "JFK"). Must be legal for the
  /// interface.
  std::optional<interface::Query> base_filter;
  /// Stop after this many queries issued by this run (0 = unlimited).
  /// The interface's own budget is honored as well; either exhaustion
  /// yields a partial anytime result with complete = false.
  int64_t max_queries = 0;
  /// Called whenever a new skyline tuple is confirmed.
  std::function<void(const ProgressPoint&)> on_progress;
  /// Cooperative cancellation, polled before every query. Returning true
  /// makes the run unwind as ResourceExhausted — the anytime partial-
  /// result path — so a SIGINT'd session still checkpoints and reports.
  std::function<bool()> interrupt;
  /// Checkpoint tick, invoked by frontier-capable drivers (SQ/RQ/PQ) at
  /// points where their traversal state is consistent (top of the node
  /// loop / a plane boundary). The callee decides whether a checkpoint is
  /// actually due; the FrontierSaver serializes the frontier on demand.
  std::function<void(DiscoveryRun&, const FrontierSaver&)> on_checkpoint;
  /// DiscoveryRun::SaveState blob to restore before the first query
  /// (crash-consistent resume; see docs/robustness.md).
  std::optional<std::string> resume_run_state;
  /// Matching frontier blob from the same checkpoint; the driver resumes
  /// its traversal from it instead of the root.
  std::optional<std::string> resume_frontier;
};

struct DiscoveryResult {
  /// Confirmed skyline tuples (ids as reported by the interface).
  std::vector<data::TupleId> skyline_ids;
  /// Materialized tuples aligned with skyline_ids.
  std::vector<data::Tuple> skyline;
  /// Queries issued by this run.
  int64_t query_cost = 0;
  /// False when a budget stopped the run early (the returned skyline is
  /// still a correct subset: the anytime property).
  bool complete = true;
  /// Anytime curve.
  ProgressTrace trace;
};

/// Accumulates query answers into the confirmed skyline. Dominance
/// checks go through an incremental skyline::DominanceIndex instead of a
/// linear scan over every confirmed tuple, so Observe stays sublinear in
/// skyline size (tests/dominance_index_test.cc proves the two agree).
class SkylineCollector {
 public:
  explicit SkylineCollector(std::vector<int> ranking_attrs)
      : ranking_attrs_(std::move(ranking_attrs)), index_(ranking_attrs_) {}

  /// Mode for downward-closed protocols (see file comment): confirms the
  /// tuple iff it is not dominated by a confirmed tuple. Returns true on
  /// a newly confirmed skyline tuple. Value-duplicates of confirmed
  /// tuples are ignored. A tuple's classification is immutable under
  /// the downward-closed rule, so repeat observations of the same id are
  /// memoized (top-k answers re-return popular tuples constantly).
  bool Observe(data::TupleId id, const data::Tuple& t);

  /// Mode for geometric proofs (PQ family): unconditionally records a
  /// tuple the caller has proven to be on the skyline. Returns true when
  /// new.
  bool AddConfirmed(data::TupleId id, const data::Tuple& t);

  /// True iff some confirmed tuple dominates t.
  bool IsDominated(const data::Tuple& t) const;

  /// True iff some confirmed tuple dominates t or equals t on all ranking
  /// attributes.
  bool IsDominatedOrDuplicate(const data::Tuple& t) const;

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }
  const std::vector<data::TupleId>& ids() const { return ids_; }
  const std::vector<data::Tuple>& tuples() const { return tuples_; }
  const std::vector<int>& ranking_attrs() const { return ranking_attrs_; }

  /// Moves the collected skyline into `result` (ids sorted, tuples
  /// aligned).
  void Finish(DiscoveryResult* result);

  /// Serializes the confirmed skyline (ids + tuples, insertion order) for
  /// checkpoint snapshots.
  void SaveState(std::string* out) const;

  /// Rebuilds a collector from SaveState bytes. Only legal on an empty
  /// collector. Restored ids are marked observed, so replayed answers
  /// re-classify without re-confirming.
  common::Status RestoreState(std::string_view blob);

 private:
  std::vector<int> ranking_attrs_;
  skyline::DominanceIndex index_;
  std::vector<data::TupleId> ids_;
  std::vector<data::Tuple> tuples_;
  std::unordered_set<data::TupleId> id_set_;
  /// Ids already classified by Observe (confirmed or rejected).
  std::unordered_set<data::TupleId> observed_;
};

/// Bookkeeping shared by all algorithm drivers: counts queries, enforces
/// max_queries, records the trace, and funnels answers into a collector.
class DiscoveryRun {
 public:
  DiscoveryRun(interface::HiddenDatabase* iface,
               const DiscoveryOptions& options);

  /// Executes `q` (with the base filter already folded in by the caller
  /// or via MakeBaseQuery). ResourceExhausted marks the run incomplete
  /// and is surfaced so the algorithm can unwind.
  common::Result<interface::QueryResult> Execute(const interface::Query& q);

  /// Buffer-reuse variant (see HiddenDatabase::Execute(q, out)): the
  /// query loops of the discovery algorithms keep one QueryResult alive
  /// across iterations so steady-state querying allocates nothing.
  common::Status Execute(const interface::Query& q,
                         interface::QueryResult* out);

  /// A query constrained only by options.base_filter.
  interface::Query MakeBaseQuery() const;

  /// Observes a returned tuple under the downward-closed rule.
  bool Observe(data::TupleId id, const data::Tuple& t);
  /// Records a geometrically proven skyline tuple.
  bool AddConfirmed(data::TupleId id, const data::Tuple& t);

  SkylineCollector& collector() { return collector_; }
  interface::HiddenDatabase* iface() { return iface_; }
  int64_t queries_issued() const { return queries_issued_; }
  bool exhausted() const { return exhausted_; }

  /// Packages the final DiscoveryResult.
  DiscoveryResult Finish();

  /// Serializes progress (query count, trace, confirmed skyline) for a
  /// checkpoint. The trace is saved whole — including the initial {0,0}
  /// point — so a resumed run's final trace is byte-identical to the
  /// uninterrupted run's.
  void SaveState(std::string* out) const;

  /// Restores a SaveState blob. Only legal before the first Execute.
  common::Status RestoreState(std::string_view blob);

 private:
  void RecordProgress();

  interface::HiddenDatabase* iface_;
  const DiscoveryOptions& options_;
  SkylineCollector collector_;
  int64_t queries_issued_ = 0;
  bool exhausted_ = false;
  ProgressTrace trace_;
};

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_DISCOVERY_H_
