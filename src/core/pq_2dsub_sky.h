// PQ-2DSUB-SKY (Algorithm 4, Section 5.3.1): instance-optimal skyline
// discovery inside one 2D subspace of a higher-dimensional PQ database.
//
// A subspace ("plane") fixes every ranking attribute except two (ax, ay)
// to a concrete value combination vc. Unlike the standalone 2D case, the
// plane arrives pre-pruned by global knowledge:
//  * empty regions — cells that would have outranked the top-1 answer of
//    a query covering the plane (e.g. the initial SELECT *) are provably
//    unoccupied;
//  * dominated regions — cells dominated by an already-confirmed skyline
//    tuple whose non-plane values are component-wise <= vc.
// The remainder sits between two monotone staircases. Each round removes
// fully resolved rows/columns, tiles the lower staircase with the paper's
// block-diagonal rectangles, picks one whose (compressed) width-vs-height
// comparison agrees with the whole region's, and drains it with the
// PQ-2D-SKY strategy. Every 1D query resolves an entire row or column of
// the plane, so at most |Dom(ax)| + |Dom(ay)| queries are spent per plane.
//
// Correctness of global confirmation requires the caller to process
// planes in a linear extension of the dominance order over vc (PQ-DB-SKY
// uses ascending (sum, lexicographic)): then every potential dominator of
// a tuple found here is already confirmed and has pruned its cell.

#ifndef HDSKY_CORE_PQ_2DSUB_SKY_H_
#define HDSKY_CORE_PQ_2DSUB_SKY_H_

#include <vector>

#include "core/discovery.h"

namespace hdsky {
namespace core {

/// Identifies one 2D subspace of the ranking-attribute space.
struct PlaneSpec {
  int ax = -1;  // plane attribute (schema index), the "x" of the plane
  int ay = -1;  // plane attribute, the "y"
  /// The remaining ranking attributes and the fixed value combination vc.
  std::vector<int> other_attrs;
  std::vector<data::Value> plane_values;
};

/// A (query, top-1 answer) pair whose query region covers the plane;
/// feeds the empty-region pruning of Algorithm 4 lines 2-4.
struct CoveringObservation {
  interface::Query query;
  data::Tuple top1;
};

/// Discovers every global-skyline tuple living in `plane`, adding them to
/// run->collector(). Returns OK on normal completion or budget
/// exhaustion (check run->exhausted()); real errors propagate.
common::Status Pq2dSubSky(
    DiscoveryRun* run, const PlaneSpec& plane,
    const std::vector<CoveringObservation>& observations);

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_PQ_2DSUB_SKY_H_
