// MQ-DB-SKY (Algorithm 6, Section 6.3): the generic skyline discovery
// algorithm for any mixture of one-ended range, two-ended range, and
// point predicate attributes.
//
// Dispatch:
//  * only range attributes -> RQ-DB-SKY (all two-ended), SQ-DB-SKY (all
//    one-ended), or the mixed-range revision of RQ-DB-SKY;
//  * only point attributes -> PQ-DB-SKY;
//  * both -> phase 1 runs the range algorithm branching on the range
//    attributes only, phase 2 runs MIXED-DB-SKY to recover the
//    range-dominated-but-point-superior tuples, and a local dominance
//    filter over the union yields the exact skyline.

#ifndef HDSKY_CORE_MQ_DB_SKY_H_
#define HDSKY_CORE_MQ_DB_SKY_H_

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct MqDbSkyOptions {
  DiscoveryOptions common;
  /// Passed through to the crawl of overflowing mixed-phase probes.
  int64_t max_enumeration = 4096;
};

/// Runs MQ-DB-SKY against `iface`. Budget exhaustion yields the anytime
/// partial skyline with complete = false.
common::Result<DiscoveryResult> MqDbSky(interface::HiddenDatabase* iface,
                                        const MqDbSkyOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_MQ_DB_SKY_H_
