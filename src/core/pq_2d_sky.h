// PQ-2D-SKY (Algorithm 3, Section 5.1): instance-optimal skyline
// discovery over a two-attribute point-predicate interface.
//
// SELECT * yields one skyline tuple (x1, y1) that splits the plane into
// two rectangles, [0, x1-1] x [y1+1, ymax] and [x1+1, xmax] x [0, y1-1]
// (everything dominating (x1, y1) is provably empty; everything dominated
// is pruned). Each rectangle is then drained with 1D queries along its
// SHORTER side — x = xL when the rectangle is taller than wide, else
// y = yB — and every answer either proves a line empty or returns exactly
// one new skyline tuple that shrinks the rectangle. Equation (11),
// sum_i min(t_{i+1}[A1] - t_i[A1], t_i[A2] - t_{i+1}[A2]),
// is the instance-optimal query count. The greedy meets it whenever each
// gap's cheap direction agrees with its enclosing rectangle's — the
// common case, and the reading under which the paper states the formula
// as the algorithm's cost — and pays the gap's other side otherwise.

#ifndef HDSKY_CORE_PQ_2D_SKY_H_
#define HDSKY_CORE_PQ_2D_SKY_H_

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct Pq2dSkyOptions {
  DiscoveryOptions common;
};

/// Runs PQ-2D-SKY against `iface`, which must expose exactly two ranking
/// attributes (any interface type admits point predicates). Budget
/// exhaustion yields the anytime partial skyline with complete = false.
common::Result<DiscoveryResult> Pq2dSky(interface::HiddenDatabase* iface,
                                        const Pq2dSkyOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_PQ_2D_SKY_H_
