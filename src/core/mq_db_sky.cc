#include "core/mq_db_sky.h"

#include <algorithm>

#include "core/mixed_db_sky.h"
#include "core/pq_db_sky.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::InterfaceType;
using data::Schema;
using data::Tuple;
using data::TupleId;
using interface::HiddenDatabase;

Result<DiscoveryResult> MqDbSky(HiddenDatabase* iface,
                                const MqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  const std::vector<int> rq_attrs =
      schema.RankingAttributesWithInterface(InterfaceType::kRQ);
  const std::vector<int> sq_attrs =
      schema.RankingAttributesWithInterface(InterfaceType::kSQ);
  const std::vector<int> pq_attrs =
      schema.RankingAttributesWithInterface(InterfaceType::kPQ);

  // Pure cases reduce to the specialized algorithms.
  if (pq_attrs.empty()) {
    if (sq_attrs.empty()) {
      RqDbSkyOptions rq;
      rq.common = options.common;
      rq.skip_duplicate_nodes = true;
      return RqDbSky(iface, rq);
    }
    if (rq_attrs.empty()) {
      SqDbSkyOptions sq;
      sq.common = options.common;
      return SqDbSky(iface, sq);
    }
    // Mixed one-/two-ended ranges: the revision of RQ-DB-SKY that uses
    // ">=" only where supported. Two-ended attributes branch first so
    // R(q)'s exclusions bite (see RqDbSkyOptions::branch_attrs).
    RqDbSkyOptions rq;
    rq.common = options.common;
    rq.require_two_ended = false;
    rq.skip_duplicate_nodes = true;
    rq.branch_attrs = rq_attrs;
    rq.branch_attrs.insert(rq.branch_attrs.end(), sq_attrs.begin(),
                           sq_attrs.end());
    return RqDbSky(iface, rq);
  }
  // Two-ended attributes first: R(q)'s exclusions apply to earlier
  // branches only where ">=" is supported, so this order maximizes the
  // early-termination power on mixed interfaces.
  std::vector<int> range_attrs = rq_attrs;
  range_attrs.insert(range_attrs.end(), sq_attrs.begin(), sq_attrs.end());
  if (range_attrs.empty()) {
    PqDbSkyOptions pq;
    pq.common = options.common;
    return PqDbSky(iface, pq);
  }

  // ---- Phase 1: range-only discovery with point attributes left as *.
  RqDbSkyOptions rq;
  rq.common = options.common;
  rq.require_two_ended = false;
  rq.skip_duplicate_nodes = true;
  rq.branch_attrs = range_attrs;
  HDSKY_ASSIGN_OR_RETURN(DiscoveryResult phase1, RqDbSky(iface, rq));
  if (!phase1.complete) return phase1;  // budget died early: anytime

  // ---- Phase 2: recover range-dominated, point-superior tuples.
  CrawlOptions crawl;
  crawl.common = options.common;
  crawl.max_enumeration = options.max_enumeration;
  HDSKY_ASSIGN_OR_RETURN(
      MixedPhaseResult phase2,
      MixedDbSkyPhase(iface, phase1.skyline, phase1.query_cost, crawl));

  // ---- Union + local dominance filter.
  const std::vector<int>& ranking = schema.ranking_attributes();
  struct Entry {
    TupleId id;
    Tuple tuple;
    int64_t found_at;
    bool from_phase1;
  };
  std::vector<Entry> pool;
  pool.reserve(phase1.skyline.size() + phase2.pool.size());
  // Phase-1 arrival costs come from its trace (one point per confirm).
  {
    for (size_t i = 0; i < phase1.skyline.size(); ++i) {
      pool.push_back({phase1.skyline_ids[i], phase1.skyline[i], 0, true});
    }
    // The trace is (queries, count) with count increasing by 1 per
    // confirm; map the i-th confirm to its query stamp conservatively.
    std::vector<int64_t> confirm_costs;
    for (const ProgressPoint& p : phase1.trace) {
      while (static_cast<int64_t>(confirm_costs.size()) <
             p.skyline_discovered) {
        confirm_costs.push_back(p.queries_issued);
      }
    }
    // Confirm order is not id order; stamp by sorted arrival as an
    // approximation for the anytime curve.
    std::sort(confirm_costs.begin(), confirm_costs.end());
    for (size_t i = 0; i < pool.size() && i < confirm_costs.size(); ++i) {
      pool[i].found_at = confirm_costs[i];
    }
  }
  for (const PooledTuple& p : phase2.pool) {
    bool duplicate = false;
    for (const Entry& e : pool) {
      if (e.id == p.id) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) pool.push_back({p.id, p.tuple, p.found_at_cost, false});
  }

  DiscoveryResult result;
  result.query_cost = phase1.query_cost + phase2.query_cost;
  result.complete = phase1.complete && phase2.complete;

  // Every non-skyline pool member has its skyline dominator in the pool,
  // so a pairwise filter is exact.
  std::vector<size_t> keep;
  for (size_t i = 0; i < pool.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pool.size() && !dominated; ++j) {
      if (i == j) continue;
      const skyline::DomRelation rel =
          skyline::Compare(pool[j].tuple, pool[i].tuple, ranking);
      if (rel == skyline::DomRelation::kDominates) dominated = true;
      // Value-duplicates: keep the smaller id deterministically.
      if (rel == skyline::DomRelation::kEqual &&
          pool[j].id < pool[i].id) {
        dominated = true;
      }
    }
    if (!dominated) keep.push_back(i);
  }
  std::sort(keep.begin(), keep.end(),
            [&](size_t a, size_t b) { return pool[a].id < pool[b].id; });

  // Post-hoc anytime curve over the final skyline's arrival stamps.
  std::vector<int64_t> arrivals;
  for (size_t i : keep) {
    result.skyline_ids.push_back(pool[i].id);
    result.skyline.push_back(pool[i].tuple);
    arrivals.push_back(pool[i].found_at);
  }
  std::sort(arrivals.begin(), arrivals.end());
  result.trace.push_back({0, 0});
  for (size_t i = 0; i < arrivals.size(); ++i) {
    result.trace.push_back({arrivals[i], static_cast<int64_t>(i + 1)});
  }
  result.trace.push_back(
      {result.query_cost, static_cast<int64_t>(arrivals.size())});
  return result;
}

}  // namespace core
}  // namespace hdsky
