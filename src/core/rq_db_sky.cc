#include "core/rq_db_sky.h"

#include <vector>

#include "skyline/dominance.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::Schema;
using data::Tuple;
using data::TupleId;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// One node of the traversal: the SQ-form query q and its mutually
// exclusive counterpart R(q), both built incrementally along the path.
struct Node {
  Query sq;
  Query rq;
};

bool ChildImpossible(const Query& q, const AttributeSpec& spec, int attr) {
  const interface::Interval& iv = q.interval(attr);
  return iv.empty() || iv.upper < spec.domain_min ||
         iv.lower > spec.domain_max;
}

}  // namespace

Result<DiscoveryResult> RqDbSky(HiddenDatabase* iface,
                                const RqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  const std::vector<int> branch_attrs = options.branch_attrs.empty()
                                            ? schema.ranking_attributes()
                                            : options.branch_attrs;
  for (int attr : branch_attrs) {
    if (attr < 0 || attr >= schema.num_attributes() ||
        !schema.attribute(attr).is_ranking()) {
      return Status::InvalidArgument(
          "branch attributes must be ranking attributes");
    }
    if (!schema.attribute(attr).supports_upper_bound()) {
      return Status::Unsupported(
          "RQ-DB-SKY needs range support on every branch attribute; " +
          schema.attribute(attr).name + " is point-only");
    }
    if (options.require_two_ended &&
        !schema.attribute(attr).supports_lower_bound()) {
      return Status::Unsupported(
          "RQ-DB-SKY needs two-ended range support on every ranking "
          "attribute; " +
          schema.attribute(attr).name + " is not RQ");
    }
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }

  DiscoveryRun run(iface, options.common);
  const int k = iface->k();
  const std::vector<int>& ranking = branch_attrs;

  // All tuples ever returned; the seen-match test of Algorithm 2 line 3.
  std::vector<Tuple> seen_tuples;
  std::unordered_set<TupleId> seen_ids;
  auto remember = [&](const QueryResult& t) {
    for (int i = 0; i < t.size(); ++i) {
      const TupleId id = t.ids[static_cast<size_t>(i)];
      if (seen_ids.insert(id).second) {
        seen_tuples.push_back(t.tuples[static_cast<size_t>(i)]);
      }
      run.Observe(id, t.tuples[static_cast<size_t>(i)]);
    }
  };
  auto seen_matches = [&](const Query& q) {
    for (const Tuple& t : seen_tuples) {
      if (q.MatchesTuple(t)) return true;
    }
    return false;
  };

  // Depth-first preorder via an explicit stack. One QueryResult lives
  // across the whole walk: the buffer-reuse Execute overload refills it
  // in place, so the query loop stops allocating once the buffers reach
  // steady-state size.
  QueryResult answer;
  std::unordered_set<std::string> processed_regions;
  std::vector<Node> stack;
  {
    Node root;
    root.sq = run.MakeBaseQuery();
    root.rq = root.sq;
    stack.push_back(std::move(root));
  }

  auto push_children = [&](const Node& node, const Tuple& pivot) {
    // Children are pushed in reverse so the Ai-ascending branch order of
    // the paper is preserved under stack-based preorder. Each child i
    // carries sq = node.sq + (Ai < pivot[Ai]) and rq additionally
    // excludes earlier branches with Aj >= pivot[Aj], j < i.
    std::vector<Node> children;
    children.reserve(ranking.size());
    Query rq_prefix = node.rq;
    for (size_t i = 0; i < ranking.size(); ++i) {
      const int attr = ranking[i];
      Node child;
      child.sq = node.sq;
      child.sq.AddLessThan(attr, pivot[static_cast<size_t>(attr)]);
      child.rq = rq_prefix;
      child.rq.AddLessThan(attr, pivot[static_cast<size_t>(attr)]);
      if (schema.attribute(attr).supports_lower_bound()) {
        rq_prefix.AddAtLeast(attr, pivot[static_cast<size_t>(attr)]);
      }
      if (options.skip_impossible_children &&
          ChildImpossible(child.sq, schema.attribute(attr), attr)) {
        continue;
      }
      children.push_back(std::move(child));
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(std::move(*it));
    }
  };

  while (!stack.empty()) {
    const Node node = std::move(stack.back());
    stack.pop_back();
    if (options.skip_duplicate_nodes &&
        !processed_regions.insert(node.sq.Signature()).second) {
      continue;  // an identical region's subtree already ran
    }

    if (options.disable_early_termination || !seen_matches(node.sq)) {
      const Status st = run.Execute(node.sq, &answer);
      if (!st.ok()) {
        if (run.exhausted()) break;
        return st;
      }
      const QueryResult& t = answer;
      remember(t);
      if (t.size() == k) push_children(node, t.tuples[0]);
      continue;
    }

    // Early-termination branch: issue the mutually exclusive R(q).
    const Status st = run.Execute(node.rq, &answer);
    if (!st.ok()) {
      if (run.exhausted()) break;
      return st;
    }
    const QueryResult& t = answer;
    if (t.empty()) continue;  // subtree holds nothing new: prune
    remember(t);
    if (t.size() == k) {
      // Pivot on a confirmed-skyline dominator of T0 when one exists
      // (Algorithm 2 lines 10-12), otherwise on T0 itself.
      const Tuple& t0 = t.tuples[0];
      const Tuple* pivot = &t0;
      for (const Tuple& s : run.collector().tuples()) {
        if (skyline::Dominates(s, t0, ranking)) {
          pivot = &s;
          break;
        }
      }
      push_children(node, *pivot);
    }
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
