#include "core/rq_db_sky.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "net/wire.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::AttributeSpec;
using data::Schema;
using data::Tuple;
using data::TupleId;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// One node of the traversal: the SQ-form query q and its mutually
// exclusive counterpart R(q), both built incrementally along the path.
struct Node {
  Query sq;
  Query rq;
};

bool ChildImpossible(const Query& q, const AttributeSpec& spec, int attr) {
  const interface::Interval& iv = q.interval(attr);
  return iv.empty() || iv.upper < spec.domain_min ||
         iv.lower > spec.domain_max;
}

// Frontier codec for checkpoint/resume: the DFS stack (each node is its
// sq/R(q) query pair), the seen-tuple memo, and the processed-region set,
// tagged 'R' against cross-algorithm blob mixups.
void EncodeRqFrontier(const std::vector<Node>& stack,
                      const std::vector<TupleId>& seen_order,
                      const std::vector<Tuple>& seen_tuples,
                      const std::unordered_set<std::string>& processed,
                      std::string* out) {
  net::Encoder enc(out);
  enc.PutU8('R');
  enc.PutU64(stack.size());
  for (const Node& n : stack) {
    net::EncodeQueryBody(n.sq, &enc);
    net::EncodeQueryBody(n.rq, &enc);
  }
  enc.PutU64(seen_order.size());
  for (size_t i = 0; i < seen_order.size(); ++i) {
    enc.PutI64(seen_order[i]);
    enc.PutU32(static_cast<uint32_t>(seen_tuples[i].size()));
    for (data::Value v : seen_tuples[i]) enc.PutI64(v);
  }
  enc.PutU64(processed.size());
  for (const std::string& sig : processed) enc.PutString(sig);
}

Status DecodeRqFrontier(std::string_view blob, std::vector<Node>* stack,
                        std::vector<TupleId>* seen_order,
                        std::vector<Tuple>* seen_tuples,
                        std::unordered_set<std::string>* processed) {
  net::Decoder dec(blob);
  uint8_t tag = 0;
  uint64_t stack_len = 0;
  if (!dec.GetU8(&tag) || tag != 'R' || !dec.GetU64(&stack_len)) {
    return Status::IOError("malformed RQ frontier blob");
  }
  for (uint64_t i = 0; i < stack_len; ++i) {
    Node n;
    if (!net::DecodeQueryBody(&dec, &n.sq) ||
        !net::DecodeQueryBody(&dec, &n.rq)) {
      return Status::IOError("malformed RQ frontier node");
    }
    stack->push_back(std::move(n));
  }
  uint64_t seen_len = 0;
  if (!dec.GetU64(&seen_len)) {
    return Status::IOError("malformed RQ frontier blob");
  }
  for (uint64_t i = 0; i < seen_len; ++i) {
    int64_t id = 0;
    uint32_t width = 0;
    dec.GetI64(&id);
    if (!dec.GetU32(&width) ||
        static_cast<size_t>(width) * 8 > dec.remaining()) {
      return Status::IOError("malformed RQ frontier seen tuple");
    }
    Tuple t(width);
    for (uint32_t a = 0; a < width; ++a) dec.GetI64(&t[a]);
    if (!dec.ok()) return Status::IOError("malformed RQ frontier seen tuple");
    seen_order->push_back(id);
    seen_tuples->push_back(std::move(t));
  }
  uint64_t processed_len = 0;
  if (!dec.GetU64(&processed_len)) {
    return Status::IOError("malformed RQ frontier blob");
  }
  for (uint64_t i = 0; i < processed_len; ++i) {
    std::string sig;
    if (!dec.GetString(&sig)) {
      return Status::IOError("malformed RQ frontier signature");
    }
    processed->insert(std::move(sig));
  }
  if (!dec.exhausted()) {
    return Status::IOError("RQ frontier blob carries trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Result<DiscoveryResult> RqDbSky(HiddenDatabase* iface,
                                const RqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  const std::vector<int> branch_attrs = options.branch_attrs.empty()
                                            ? schema.ranking_attributes()
                                            : options.branch_attrs;
  for (int attr : branch_attrs) {
    if (attr < 0 || attr >= schema.num_attributes() ||
        !schema.attribute(attr).is_ranking()) {
      return Status::InvalidArgument(
          "branch attributes must be ranking attributes");
    }
    if (!schema.attribute(attr).supports_upper_bound()) {
      return Status::Unsupported(
          "RQ-DB-SKY needs range support on every branch attribute; " +
          schema.attribute(attr).name + " is point-only");
    }
    if (options.require_two_ended &&
        !schema.attribute(attr).supports_lower_bound()) {
      return Status::Unsupported(
          "RQ-DB-SKY needs two-ended range support on every ranking "
          "attribute; " +
          schema.attribute(attr).name + " is not RQ");
    }
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }

  DiscoveryRun run(iface, options.common);
  const int k = iface->k();
  const std::vector<int>& ranking = branch_attrs;

  // All tuples ever returned; the seen-match test of Algorithm 2 line 3.
  // seen_order keeps ids aligned with seen_tuples so checkpoints can
  // serialize the memo deterministically.
  std::vector<Tuple> seen_tuples;
  std::vector<TupleId> seen_order;
  std::unordered_set<TupleId> seen_ids;
  auto remember = [&](const QueryResult& t) {
    for (int i = 0; i < t.size(); ++i) {
      const TupleId id = t.ids[static_cast<size_t>(i)];
      if (seen_ids.insert(id).second) {
        seen_order.push_back(id);
        seen_tuples.push_back(t.tuples[static_cast<size_t>(i)]);
      }
      run.Observe(id, t.tuples[static_cast<size_t>(i)]);
    }
  };
  auto seen_matches = [&](const Query& q) {
    for (const Tuple& t : seen_tuples) {
      if (q.MatchesTuple(t)) return true;
    }
    return false;
  };

  // Depth-first preorder via an explicit stack. One QueryResult lives
  // across the whole walk: the buffer-reuse Execute overload refills it
  // in place, so the query loop stops allocating once the buffers reach
  // steady-state size.
  QueryResult answer;
  std::unordered_set<std::string> processed_regions;
  std::vector<Node> stack;
  if (options.common.resume_frontier.has_value()) {
    // Crash-consistent resume: progress, the DFS stack, and the seen
    // memo come from a checkpoint instead of the root.
    if (options.common.resume_run_state.has_value()) {
      HDSKY_RETURN_IF_ERROR(
          run.RestoreState(*options.common.resume_run_state));
    }
    HDSKY_RETURN_IF_ERROR(
        DecodeRqFrontier(*options.common.resume_frontier, &stack,
                         &seen_order, &seen_tuples, &processed_regions));
    seen_ids.insert(seen_order.begin(), seen_order.end());
  } else {
    Node root;
    root.sq = run.MakeBaseQuery();
    root.rq = root.sq;
    stack.push_back(std::move(root));
  }

  auto push_children = [&](const Node& node, const Tuple& pivot) {
    // Children are pushed in reverse so the Ai-ascending branch order of
    // the paper is preserved under stack-based preorder. Each child i
    // carries sq = node.sq + (Ai < pivot[Ai]) and rq additionally
    // excludes earlier branches with Aj >= pivot[Aj], j < i.
    std::vector<Node> children;
    children.reserve(ranking.size());
    Query rq_prefix = node.rq;
    for (size_t i = 0; i < ranking.size(); ++i) {
      const int attr = ranking[i];
      Node child;
      child.sq = node.sq;
      child.sq.AddLessThan(attr, pivot[static_cast<size_t>(attr)]);
      child.rq = rq_prefix;
      child.rq.AddLessThan(attr, pivot[static_cast<size_t>(attr)]);
      if (schema.attribute(attr).supports_lower_bound()) {
        rq_prefix.AddAtLeast(attr, pivot[static_cast<size_t>(attr)]);
      }
      if (options.skip_impossible_children &&
          ChildImpossible(child.sq, schema.attribute(attr), attr)) {
        continue;
      }
      children.push_back(std::move(child));
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(std::move(*it));
    }
  };

  while (!stack.empty()) {
    if (options.common.on_checkpoint) {
      // Top of the loop is frontier-consistent: the node about to run is
      // still on the stack.
      options.common.on_checkpoint(run, [&](std::string* out) {
        EncodeRqFrontier(stack, seen_order, seen_tuples, processed_regions,
                         out);
      });
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    if (options.skip_duplicate_nodes &&
        !processed_regions.insert(node.sq.Signature()).second) {
      continue;  // an identical region's subtree already ran
    }

    if (options.disable_early_termination || !seen_matches(node.sq)) {
      const Status st = run.Execute(node.sq, &answer);
      if (!st.ok()) {
        if (run.exhausted()) break;
        return st;
      }
      const QueryResult& t = answer;
      remember(t);
      if (t.size() == k) push_children(node, t.tuples[0]);
      continue;
    }

    // Early-termination branch: issue the mutually exclusive R(q).
    const Status st = run.Execute(node.rq, &answer);
    if (!st.ok()) {
      if (run.exhausted()) break;
      return st;
    }
    const QueryResult& t = answer;
    if (t.empty()) continue;  // subtree holds nothing new: prune
    remember(t);
    if (t.size() == k) {
      // Pivot on a confirmed-skyline dominator of T0 when one exists
      // (Algorithm 2 lines 10-12), otherwise on T0 itself.
      const Tuple& t0 = t.tuples[0];
      const Tuple* pivot = &t0;
      for (const Tuple& s : run.collector().tuples()) {
        if (skyline::Dominates(s, t0, ranking)) {
          pivot = &s;
          break;
        }
      }
      push_children(node, *pivot);
    }
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
