// MIXED-DB-SKY (Section 6.2): the second phase of skyline discovery over
// databases mixing range- and point-predicate attributes.
//
// Running RQ-DB-SKY over the range attributes alone (point attributes
// unconstrained) finds every skyline tuple that is NOT dominated on all
// range attributes by another skyline tuple, but misses the rest. Each
// missed tuple t is range-dominated by some discovered tuple D(t) yet
// beats it on a point attribute — the range-domination property — which
// bounds the remaining search space:
//  * the single pruning predicate P appends, for every two-ended range
//    attribute Aj, the constraint Aj >= min over the discovered skyline
//    (equation 17) — one predicate for the UNION of dominated spaces, so
//    the phase executes exactly once;
//  * only point-attribute values v < max over the discovered skyline can
//    host a missed tuple, so the probes are P AND (Bi = v) per point
//    attribute Bi and each such v.
// A probe that overflows is crawled exhaustively (CrawlRegion). The
// caller finishes by a local dominance filter over the union of
// everything retrieved: every missed skyline tuple is in the union, and
// every non-skyline union member has its (skyline) dominator there too.

#ifndef HDSKY_CORE_MIXED_DB_SKY_H_
#define HDSKY_CORE_MIXED_DB_SKY_H_

#include <vector>

#include "core/baseline_crawler.h"
#include "core/discovery.h"

namespace hdsky {
namespace core {

/// A tuple retrieved during the mixed phase, stamped with the cumulative
/// query cost at retrieval (for post-hoc anytime curves).
struct PooledTuple {
  data::TupleId id;
  data::Tuple tuple;
  int64_t found_at_cost;
};

struct MixedPhaseResult {
  std::vector<PooledTuple> pool;
  int64_t query_cost = 0;
  bool complete = true;
};

/// Executes the mixed phase. `range_skyline` is the phase-1 output (the
/// discovered skyline tuples); `cost_so_far` offsets the found_at stamps.
/// Probes and crawls respect options.common (base filter, max_queries as
/// a TOTAL budget including cost_so_far).
common::Result<MixedPhaseResult> MixedDbSkyPhase(
    interface::HiddenDatabase* iface,
    const std::vector<data::Tuple>& range_skyline, int64_t cost_so_far,
    const CrawlOptions& options);

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_MIXED_DB_SKY_H_
