#include "core/discovery.h"

#include <algorithm>
#include <numeric>

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Tuple;
using data::TupleId;
using interface::Query;
using interface::QueryResult;

bool SkylineCollector::Observe(TupleId id, const Tuple& t) {
  if (!observed_.insert(id).second) return false;
  if (index_.DominatedOrEqual(t)) return false;
  return AddConfirmed(id, t);
}

bool SkylineCollector::AddConfirmed(TupleId id, const Tuple& t) {
  if (!id_set_.insert(id).second) return false;
  ids_.push_back(id);
  tuples_.push_back(t);
  index_.Insert(t);
  return true;
}

bool SkylineCollector::IsDominated(const Tuple& t) const {
  return index_.Dominated(t);
}

bool SkylineCollector::IsDominatedOrDuplicate(const Tuple& t) const {
  return index_.DominatedOrEqual(t);
}

void SkylineCollector::Finish(DiscoveryResult* result) {
  std::vector<size_t> perm(ids_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [this](size_t a, size_t b) { return ids_[a] < ids_[b]; });
  result->skyline_ids.clear();
  result->skyline.clear();
  result->skyline_ids.reserve(ids_.size());
  result->skyline.reserve(ids_.size());
  for (size_t p : perm) {
    result->skyline_ids.push_back(ids_[p]);
    result->skyline.push_back(tuples_[p]);
  }
}

DiscoveryRun::DiscoveryRun(interface::HiddenDatabase* iface,
                           const DiscoveryOptions& options)
    : iface_(iface),
      options_(options),
      collector_(iface->schema().ranking_attributes()) {
  trace_.push_back({0, 0});
}

Result<QueryResult> DiscoveryRun::Execute(const Query& q) {
  QueryResult r;
  HDSKY_RETURN_IF_ERROR(Execute(q, &r));
  return r;
}

Status DiscoveryRun::Execute(const Query& q, QueryResult* out) {
  if (options_.max_queries > 0 && queries_issued_ >= options_.max_queries) {
    exhausted_ = true;
    return Status::ResourceExhausted("discovery max_queries reached");
  }
  const Status s = iface_->Execute(q, out);
  if (!s.ok()) {
    if (s.IsResourceExhausted()) exhausted_ = true;
    return s;
  }
  ++queries_issued_;
  return s;
}

Query DiscoveryRun::MakeBaseQuery() const {
  if (options_.base_filter.has_value()) return *options_.base_filter;
  return Query(iface_->schema().num_attributes());
}

bool DiscoveryRun::Observe(TupleId id, const Tuple& t) {
  const bool added = collector_.Observe(id, t);
  if (added) RecordProgress();
  return added;
}

bool DiscoveryRun::AddConfirmed(TupleId id, const Tuple& t) {
  const bool added = collector_.AddConfirmed(id, t);
  if (added) RecordProgress();
  return added;
}

void DiscoveryRun::RecordProgress() {
  const ProgressPoint point{queries_issued_, collector_.size()};
  trace_.push_back(point);
  if (options_.on_progress) options_.on_progress(point);
}

DiscoveryResult DiscoveryRun::Finish() {
  DiscoveryResult result;
  collector_.Finish(&result);
  result.query_cost = queries_issued_;
  result.complete = !exhausted_;
  trace_.push_back({queries_issued_, collector_.size()});
  result.trace = std::move(trace_);
  return result;
}

}  // namespace core
}  // namespace hdsky
