#include "core/discovery.h"

#include <algorithm>
#include <numeric>

#include "net/wire.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Tuple;
using data::TupleId;
using interface::Query;
using interface::QueryResult;

bool SkylineCollector::Observe(TupleId id, const Tuple& t) {
  if (!observed_.insert(id).second) return false;
  if (index_.DominatedOrEqual(t)) return false;
  return AddConfirmed(id, t);
}

bool SkylineCollector::AddConfirmed(TupleId id, const Tuple& t) {
  if (!id_set_.insert(id).second) return false;
  ids_.push_back(id);
  tuples_.push_back(t);
  index_.Insert(t);
  return true;
}

bool SkylineCollector::IsDominated(const Tuple& t) const {
  return index_.Dominated(t);
}

bool SkylineCollector::IsDominatedOrDuplicate(const Tuple& t) const {
  return index_.DominatedOrEqual(t);
}

void SkylineCollector::Finish(DiscoveryResult* result) {
  std::vector<size_t> perm(ids_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [this](size_t a, size_t b) { return ids_[a] < ids_[b]; });
  result->skyline_ids.clear();
  result->skyline.clear();
  result->skyline_ids.reserve(ids_.size());
  result->skyline.reserve(ids_.size());
  for (size_t p : perm) {
    result->skyline_ids.push_back(ids_[p]);
    result->skyline.push_back(tuples_[p]);
  }
}

void SkylineCollector::SaveState(std::string* out) const {
  net::Encoder enc(out);
  enc.PutU64(static_cast<uint64_t>(ids_.size()));
  for (size_t i = 0; i < ids_.size(); ++i) {
    enc.PutI64(ids_[i]);
    enc.PutU32(static_cast<uint32_t>(tuples_[i].size()));
    for (data::Value v : tuples_[i]) enc.PutI64(v);
  }
}

Status SkylineCollector::RestoreState(std::string_view blob) {
  if (!ids_.empty()) {
    return Status::Internal("RestoreState on a non-empty SkylineCollector");
  }
  net::Decoder dec(blob);
  uint64_t count = 0;
  if (!dec.GetU64(&count)) {
    return Status::IOError("truncated collector state");
  }
  for (uint64_t i = 0; i < count; ++i) {
    int64_t id = 0;
    uint32_t width = 0;
    dec.GetI64(&id);
    if (!dec.GetU32(&width) ||
        static_cast<size_t>(width) * 8 > dec.remaining()) {
      return Status::IOError("truncated collector state tuple");
    }
    Tuple t(width);
    for (uint32_t a = 0; a < width; ++a) dec.GetI64(&t[a]);
    if (!dec.ok()) return Status::IOError("truncated collector state tuple");
    AddConfirmed(id, t);
    observed_.insert(id);
  }
  if (!dec.exhausted()) {
    return Status::IOError("collector state carries trailing bytes");
  }
  return Status::OK();
}

DiscoveryRun::DiscoveryRun(interface::HiddenDatabase* iface,
                           const DiscoveryOptions& options)
    : iface_(iface),
      options_(options),
      collector_(iface->schema().ranking_attributes()) {
  trace_.push_back({0, 0});
}

Result<QueryResult> DiscoveryRun::Execute(const Query& q) {
  QueryResult r;
  HDSKY_RETURN_IF_ERROR(Execute(q, &r));
  return r;
}

Status DiscoveryRun::Execute(const Query& q, QueryResult* out) {
  if (options_.interrupt && options_.interrupt()) {
    exhausted_ = true;
    return Status::ResourceExhausted("discovery interrupted");
  }
  if (options_.max_queries > 0 && queries_issued_ >= options_.max_queries) {
    exhausted_ = true;
    return Status::ResourceExhausted("discovery max_queries reached");
  }
  const Status s = iface_->Execute(q, out);
  if (!s.ok()) {
    if (s.IsResourceExhausted()) exhausted_ = true;
    return s;
  }
  ++queries_issued_;
  return s;
}

Query DiscoveryRun::MakeBaseQuery() const {
  if (options_.base_filter.has_value()) return *options_.base_filter;
  return Query(iface_->schema().num_attributes());
}

bool DiscoveryRun::Observe(TupleId id, const Tuple& t) {
  const bool added = collector_.Observe(id, t);
  if (added) RecordProgress();
  return added;
}

bool DiscoveryRun::AddConfirmed(TupleId id, const Tuple& t) {
  const bool added = collector_.AddConfirmed(id, t);
  if (added) RecordProgress();
  return added;
}

void DiscoveryRun::RecordProgress() {
  const ProgressPoint point{queries_issued_, collector_.size()};
  trace_.push_back(point);
  if (options_.on_progress) options_.on_progress(point);
}

void DiscoveryRun::SaveState(std::string* out) const {
  net::Encoder enc(out);
  enc.PutU64(static_cast<uint64_t>(queries_issued_));
  enc.PutU8(exhausted_ ? 1 : 0);
  enc.PutU64(static_cast<uint64_t>(trace_.size()));
  for (const ProgressPoint& p : trace_) {
    enc.PutI64(p.queries_issued);
    enc.PutI64(p.skyline_discovered);
  }
  std::string collector_blob;
  collector_.SaveState(&collector_blob);
  enc.PutString(collector_blob);
}

Status DiscoveryRun::RestoreState(std::string_view blob) {
  if (queries_issued_ != 0 || collector_.size() != 0) {
    return Status::Internal("RestoreState on a DiscoveryRun already in use");
  }
  net::Decoder dec(blob);
  uint64_t queries = 0;
  uint8_t exhausted = 0;
  uint64_t trace_len = 0;
  dec.GetU64(&queries);
  dec.GetU8(&exhausted);
  if (!dec.GetU64(&trace_len) ||
      trace_len * 16 > dec.remaining()) {
    return Status::IOError("truncated discovery-run state");
  }
  ProgressTrace trace;
  trace.reserve(trace_len);
  for (uint64_t i = 0; i < trace_len; ++i) {
    ProgressPoint p;
    dec.GetI64(&p.queries_issued);
    dec.GetI64(&p.skyline_discovered);
    trace.push_back(p);
  }
  std::string collector_blob;
  if (!dec.GetString(&collector_blob) || !dec.exhausted()) {
    return Status::IOError("truncated discovery-run state");
  }
  HDSKY_RETURN_IF_ERROR(collector_.RestoreState(collector_blob));
  queries_issued_ = static_cast<int64_t>(queries);
  exhausted_ = exhausted != 0;
  // Replace the constructor's initial {0,0} point with the saved trace
  // (which begins with its own {0,0}), keeping resumed traces
  // byte-identical to uninterrupted ones.
  trace_ = std::move(trace);
  return Status::OK();
}

DiscoveryResult DiscoveryRun::Finish() {
  DiscoveryResult result;
  collector_.Finish(&result);
  result.query_cost = queries_issued_;
  result.complete = !exhausted_;
  trace_.push_back({queries_issued_, collector_.size()});
  result.trace = std::move(trace_);
  return result;
}

}  // namespace core
}  // namespace hdsky
