// BASELINE (Section 8.1): crawl the entire hidden database with the
// state-of-the-art top-k crawling approach of Sheng et al. [22], then
// extract the skyline locally.
//
// CrawlRegion recursively partitions an overflowing query region into
// disjoint sub-regions: two-ended range attributes split at the median of
// the returned values (data-adaptive binary space partitioning); point
// attributes and small-domain single-ended attributes enumerate equality
// predicates. A region is done when its answer underflows. The crawler
// needs two-ended ranges to be complete in general — with single-ended
// interfaces completeness can be unattainable (the paper's Section 7.2
// negative result) and the result is flagged incomplete.
//
// MIXED-DB-SKY reuses CrawlRegion to exhaustively crawl the overflowing
// point-value regions of its second phase.

#ifndef HDSKY_CORE_BASELINE_CRAWLER_H_
#define HDSKY_CORE_BASELINE_CRAWLER_H_

#include <vector>

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct CrawlOptions {
  DiscoveryOptions common;
  /// Equality-enumeration is attempted only on attributes whose remaining
  /// domain slice is at most this many values; beyond it (e.g. a
  /// large-domain SQ attribute that cannot be range-partitioned) the
  /// region is abandoned and the crawl is flagged incomplete.
  int64_t max_enumeration = 4096;
  /// When true, an unsplittable overflowing region whose RANKING
  /// attributes are all pinned to single values does not clear
  /// `complete`: the hidden tuples there duplicate a retrieved tuple on
  /// every ranking attribute and can never contribute a new skyline
  /// value. Skyline-oriented callers (BaselineSkyline, MIXED-DB-SKY)
  /// enable this; a faithful full-crawl keeps it off.
  bool tolerate_value_duplicates = false;
};

struct CrawlResult {
  std::vector<data::TupleId> ids;
  std::vector<data::Tuple> tuples;
  /// For each crawled tuple, the (1-based) query count at which it was
  /// first retrieved; feeds post-hoc progress curves.
  std::vector<int64_t> found_at;
  int64_t query_cost = 0;
  bool complete = true;
};

/// Crawls all tuples matching `region` (plus options.common.base_filter).
common::Result<CrawlResult> CrawlRegion(interface::HiddenDatabase* iface,
                                        const interface::Query& region,
                                        const CrawlOptions& options = {});

/// Crawls the whole database.
common::Result<CrawlResult> CrawlDatabase(interface::HiddenDatabase* iface,
                                          const CrawlOptions& options = {});

/// The full BASELINE: crawl everything, then compute the skyline locally.
/// The trace reports, post hoc, how many eventually-confirmed skyline
/// tuples had been crawled after each query — the paper's point that
/// BASELINE lacks the anytime property (it cannot *certify* any of them
/// before the crawl completes) stands; this is the optimistic curve
/// Figure 22/24 plots.
common::Result<DiscoveryResult> BaselineSkyline(
    interface::HiddenDatabase* iface, const CrawlOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_BASELINE_CRAWLER_H_
