// RQ-DB-SKY (Algorithm 2, Section 4): skyline discovery through a
// two-ended-range interface.
//
// Traverses the same query tree as SQ-DB-SKY in depth-first preorder, but
// exploits the two-ended interface for early termination: before issuing
// node q, if some already-seen tuple matches q, the node instead issues
// R(q) — the mutually exclusive counterpart of q that excludes every
// sibling branch taken before it (Aj >= pivot[Aj] for the earlier branch
// attributes at each ancestor). An empty R(q) proves q's subtree holds no
// undiscovered tuple and prunes it. Worst case O(m * min(|S|^{m+1}, n)).

#ifndef HDSKY_CORE_RQ_DB_SKY_H_
#define HDSKY_CORE_RQ_DB_SKY_H_

#include "core/discovery.h"

namespace hdsky {
namespace core {

struct RqDbSkyOptions {
  DiscoveryOptions common;
  /// Prune locally-impossible children (see SqDbSkyOptions).
  bool skip_impossible_children = true;
  /// Disables the seen-match check so every node issues its plain SQ
  /// query and children always pivot on the answer — this degenerates to
  /// SQ-DB-SKY issued over the RQ interface. Only for the ablation bench
  /// measuring the value of early termination.
  bool disable_early_termination = false;
  /// Ranking attributes to branch on (empty = all). MQ-DB-SKY's first
  /// phase restricts branching to the range-predicate attributes and
  /// leaves point attributes unconstrained ("Ai = *", Section 6.1).
  /// ORDER MATTERS under mixed one-/two-ended support: R(q) excludes
  /// earlier branches with ">=" only where supported, so putting
  /// two-ended (RQ) attributes first maximizes the exclusion power.
  std::vector<int> branch_attrs;
  /// Skips a node whose SQ-form query is identical to one already
  /// processed (different tree paths can assemble the same conjunctive
  /// region, especially over small discrete domains). Safe: the first
  /// instance's subtree already covers the region's skyline. Off by
  /// default to keep measured costs faithful to the paper's tree model;
  /// MQ-DB-SKY enables it for the live-site experiments.
  bool skip_duplicate_nodes = false;
  /// When false, attributes without two-ended support are tolerated:
  /// R(q) adds its excluding ">=" predicates only where supported, which
  /// over-covers R(q) but stays correct (the "simple revision of
  /// RQ-DB-SKY" for mixed one-/two-ended databases, Section 6.3). The
  /// default demands full RQ support as in Section 4.
  bool require_two_ended = true;
};

/// Runs RQ-DB-SKY against `iface`. Every ranking attribute must support
/// two-ended ranges (RQ). Budget exhaustion yields the anytime partial
/// skyline with complete = false.
common::Result<DiscoveryResult> RqDbSky(interface::HiddenDatabase* iface,
                                        const RqDbSkyOptions& options = {});

}  // namespace core
}  // namespace hdsky

#endif  // HDSKY_CORE_RQ_DB_SKY_H_
