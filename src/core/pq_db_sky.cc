#include "core/pq_db_sky.h"

#include <algorithm>
#include <numeric>

#include "core/pq_2dsub_sky.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Schema;
using data::Value;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

Result<DiscoveryResult> PqDbSky(HiddenDatabase* iface,
                                const PqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  const std::vector<int>& ranking = schema.ranking_attributes();
  if (ranking.size() < 2) {
    return Status::InvalidArgument(
        "PQ-DB-SKY needs at least two ranking attributes");
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }

  // Plane attributes: the two largest domains (additive cost), unless the
  // caller forces a pair (ablation).
  int ax = options.force_ax;
  int ay = options.force_ay;
  if (ax < 0 || ay < 0) {
    std::vector<int> by_domain = ranking;
    std::stable_sort(by_domain.begin(), by_domain.end(), [&](int a, int b) {
      return schema.attribute(a).DomainSize() >
             schema.attribute(b).DomainSize();
    });
    ax = by_domain[0];
    ay = by_domain[1];
  } else {
    const bool ax_ok =
        std::find(ranking.begin(), ranking.end(), ax) != ranking.end();
    const bool ay_ok =
        std::find(ranking.begin(), ranking.end(), ay) != ranking.end();
    if (!ax_ok || !ay_ok || ax == ay) {
      return Status::InvalidArgument(
          "forced plane attributes must be two distinct ranking "
          "attributes");
    }
  }
  std::vector<int> others;
  for (int attr : ranking) {
    if (attr != ax && attr != ay) others.push_back(attr);
  }

  // The non-plane combination space must be enumerable.
  constexpr int64_t kMaxPlanes = int64_t{1} << 22;
  int64_t num_planes = 1;
  for (int attr : others) {
    const int64_t d = schema.attribute(attr).DomainSize();
    if (num_planes > kMaxPlanes / d) {
      return Status::Unsupported(
          "non-plane attribute domains multiply beyond the supported "
          "plane count");
    }
    num_planes *= d;
  }

  DiscoveryRun run(iface, options.common);

  // Root query: prunes every plane and seeds the skyline.
  Result<QueryResult> root = run.Execute(run.MakeBaseQuery());
  if (!root.ok()) {
    if (run.exhausted()) return run.Finish();
    return root.status();
  }
  if (root->empty()) return run.Finish();
  // SELECT * is downward-closed: observe the full answer.
  for (int i = 0; i < root->size(); ++i) {
    run.Observe(root->ids[static_cast<size_t>(i)],
                root->tuples[static_cast<size_t>(i)]);
  }
  if (root->size() < iface->k()) {
    // Underflow: the entire (filtered) database was returned.
    return run.Finish();
  }
  std::vector<CoveringObservation> observations;
  observations.push_back({run.MakeBaseQuery(), root->tuples[0]});

  // Enumerate non-plane value combinations in ascending (sum, lex): a
  // linear extension of dominance, so every plane sees all its potential
  // dominators confirmed (see pq_2dsub_sky.h).
  std::vector<std::vector<Value>> combos;
  combos.reserve(static_cast<size_t>(num_planes));
  std::vector<Value> current(others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    current[i] = schema.attribute(others[i]).domain_min;
  }
  for (int64_t c = 0; c < num_planes; ++c) {
    combos.push_back(current);
    for (int64_t i = static_cast<int64_t>(others.size()) - 1; i >= 0;
         --i) {
      const auto& spec = schema.attribute(others[static_cast<size_t>(i)]);
      if (current[static_cast<size_t>(i)] < spec.domain_max) {
        ++current[static_cast<size_t>(i)];
        break;
      }
      current[static_cast<size_t>(i)] = spec.domain_min;
    }
  }
  std::stable_sort(combos.begin(), combos.end(),
                   [](const std::vector<Value>& a,
                      const std::vector<Value>& b) {
                     const Value sa =
                         std::accumulate(a.begin(), a.end(), Value{0});
                     const Value sb =
                         std::accumulate(b.begin(), b.end(), Value{0});
                     if (sa != sb) return sa < sb;
                     return a < b;
                   });

  for (const std::vector<Value>& vc : combos) {
    PlaneSpec plane;
    plane.ax = ax;
    plane.ay = ay;
    plane.other_attrs = others;
    plane.plane_values = vc;
    HDSKY_RETURN_IF_ERROR(Pq2dSubSky(&run, plane, observations));
    if (run.exhausted()) break;
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
