#include "core/pq_db_sky.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "core/pq_2dsub_sky.h"
#include "net/wire.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Schema;
using data::Tuple;
using data::Value;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

// Frontier codec for checkpoint/resume: the index of the next plane in
// the (sum, lex)-sorted combination order plus the covering observations
// that prune planes, tagged 'P' against cross-algorithm blob mixups.
void EncodePqFrontier(int64_t next_combo,
                      const std::vector<CoveringObservation>& observations,
                      std::string* out) {
  net::Encoder enc(out);
  enc.PutU8('P');
  enc.PutU64(static_cast<uint64_t>(next_combo));
  enc.PutU64(observations.size());
  for (const CoveringObservation& obs : observations) {
    net::EncodeQueryBody(obs.query, &enc);
    enc.PutU32(static_cast<uint32_t>(obs.top1.size()));
    for (Value v : obs.top1) enc.PutI64(v);
  }
}

Status DecodePqFrontier(std::string_view blob, int64_t* next_combo,
                        std::vector<CoveringObservation>* observations) {
  net::Decoder dec(blob);
  uint8_t tag = 0;
  uint64_t combo = 0;
  uint64_t obs_len = 0;
  if (!dec.GetU8(&tag) || tag != 'P' || !dec.GetU64(&combo) ||
      !dec.GetU64(&obs_len)) {
    return Status::IOError("malformed PQ frontier blob");
  }
  for (uint64_t i = 0; i < obs_len; ++i) {
    CoveringObservation obs;
    uint32_t width = 0;
    if (!net::DecodeQueryBody(&dec, &obs.query) || !dec.GetU32(&width) ||
        static_cast<size_t>(width) * 8 > dec.remaining()) {
      return Status::IOError("malformed PQ frontier observation");
    }
    obs.top1 = Tuple(width);
    for (uint32_t a = 0; a < width; ++a) dec.GetI64(&obs.top1[a]);
    if (!dec.ok()) {
      return Status::IOError("malformed PQ frontier observation");
    }
    observations->push_back(std::move(obs));
  }
  if (!dec.exhausted()) {
    return Status::IOError("PQ frontier blob carries trailing bytes");
  }
  *next_combo = static_cast<int64_t>(combo);
  return Status::OK();
}

}  // namespace

Result<DiscoveryResult> PqDbSky(HiddenDatabase* iface,
                                const PqDbSkyOptions& options) {
  const Schema& schema = iface->schema();
  const std::vector<int>& ranking = schema.ranking_attributes();
  if (ranking.size() < 2) {
    return Status::InvalidArgument(
        "PQ-DB-SKY needs at least two ranking attributes");
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }

  // Plane attributes: the two largest domains (additive cost), unless the
  // caller forces a pair (ablation).
  int ax = options.force_ax;
  int ay = options.force_ay;
  if (ax < 0 || ay < 0) {
    std::vector<int> by_domain = ranking;
    std::stable_sort(by_domain.begin(), by_domain.end(), [&](int a, int b) {
      return schema.attribute(a).DomainSize() >
             schema.attribute(b).DomainSize();
    });
    ax = by_domain[0];
    ay = by_domain[1];
  } else {
    const bool ax_ok =
        std::find(ranking.begin(), ranking.end(), ax) != ranking.end();
    const bool ay_ok =
        std::find(ranking.begin(), ranking.end(), ay) != ranking.end();
    if (!ax_ok || !ay_ok || ax == ay) {
      return Status::InvalidArgument(
          "forced plane attributes must be two distinct ranking "
          "attributes");
    }
  }
  std::vector<int> others;
  for (int attr : ranking) {
    if (attr != ax && attr != ay) others.push_back(attr);
  }

  // The non-plane combination space must be enumerable.
  constexpr int64_t kMaxPlanes = int64_t{1} << 22;
  int64_t num_planes = 1;
  for (int attr : others) {
    const int64_t d = schema.attribute(attr).DomainSize();
    if (num_planes > kMaxPlanes / d) {
      return Status::Unsupported(
          "non-plane attribute domains multiply beyond the supported "
          "plane count");
    }
    num_planes *= d;
  }

  DiscoveryRun run(iface, options.common);

  std::vector<CoveringObservation> observations;
  int64_t start_combo = 0;
  if (options.common.resume_frontier.has_value()) {
    // Crash-consistent resume: progress, the plane cursor, and the
    // covering observations come from a checkpoint; the root query and
    // the planes before the cursor already ran.
    if (options.common.resume_run_state.has_value()) {
      HDSKY_RETURN_IF_ERROR(
          run.RestoreState(*options.common.resume_run_state));
    }
    HDSKY_RETURN_IF_ERROR(DecodePqFrontier(*options.common.resume_frontier,
                                           &start_combo, &observations));
  } else {
    // Root query: prunes every plane and seeds the skyline.
    Result<QueryResult> root = run.Execute(run.MakeBaseQuery());
    if (!root.ok()) {
      if (run.exhausted()) return run.Finish();
      return root.status();
    }
    if (root->empty()) return run.Finish();
    // SELECT * is downward-closed: observe the full answer.
    for (int i = 0; i < root->size(); ++i) {
      run.Observe(root->ids[static_cast<size_t>(i)],
                  root->tuples[static_cast<size_t>(i)]);
    }
    if (root->size() < iface->k()) {
      // Underflow: the entire (filtered) database was returned.
      return run.Finish();
    }
    observations.push_back({run.MakeBaseQuery(), root->tuples[0]});
  }

  // Enumerate non-plane value combinations in ascending (sum, lex): a
  // linear extension of dominance, so every plane sees all its potential
  // dominators confirmed (see pq_2dsub_sky.h).
  std::vector<std::vector<Value>> combos;
  combos.reserve(static_cast<size_t>(num_planes));
  std::vector<Value> current(others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    current[i] = schema.attribute(others[i]).domain_min;
  }
  for (int64_t c = 0; c < num_planes; ++c) {
    combos.push_back(current);
    for (int64_t i = static_cast<int64_t>(others.size()) - 1; i >= 0;
         --i) {
      const auto& spec = schema.attribute(others[static_cast<size_t>(i)]);
      if (current[static_cast<size_t>(i)] < spec.domain_max) {
        ++current[static_cast<size_t>(i)];
        break;
      }
      current[static_cast<size_t>(i)] = spec.domain_min;
    }
  }
  std::stable_sort(combos.begin(), combos.end(),
                   [](const std::vector<Value>& a,
                      const std::vector<Value>& b) {
                     const Value sa =
                         std::accumulate(a.begin(), a.end(), Value{0});
                     const Value sb =
                         std::accumulate(b.begin(), b.end(), Value{0});
                     if (sa != sb) return sa < sb;
                     return a < b;
                   });

  for (int64_t c = start_combo; c < num_planes; ++c) {
    if (options.common.on_checkpoint) {
      // Plane boundaries are frontier-consistent: every query of earlier
      // planes is answered, none of plane c's queries has been issued.
      options.common.on_checkpoint(run, [&](std::string* out) {
        EncodePqFrontier(c, observations, out);
      });
    }
    PlaneSpec plane;
    plane.ax = ax;
    plane.ay = ay;
    plane.other_attrs = others;
    plane.plane_values = combos[static_cast<size_t>(c)];
    HDSKY_RETURN_IF_ERROR(Pq2dSubSky(&run, plane, observations));
    if (run.exhausted()) break;
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
