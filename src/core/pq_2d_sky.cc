#include "core/pq_2d_sky.h"

#include <deque>

#include "common/logging.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Schema;
using data::Tuple;
using data::Value;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

namespace {

struct Rect {
  Value x_lo, x_hi, y_lo, y_hi;  // inclusive
  bool empty() const { return x_lo > x_hi || y_lo > y_hi; }
  Value width() const { return x_hi - x_lo; }
  Value height() const { return y_hi - y_lo; }
};

}  // namespace

Result<DiscoveryResult> Pq2dSky(HiddenDatabase* iface,
                                const Pq2dSkyOptions& options) {
  const Schema& schema = iface->schema();
  if (schema.num_ranking_attributes() != 2) {
    return Status::InvalidArgument(
        "PQ-2D-SKY handles exactly two ranking attributes; got " +
        std::to_string(schema.num_ranking_attributes()));
  }
  if (options.common.base_filter.has_value()) {
    HDSKY_RETURN_IF_ERROR(
        iface->ValidateQuery(*options.common.base_filter));
  }
  const int ax = schema.ranking_attributes()[0];
  const int ay = schema.ranking_attributes()[1];
  const Value x_min = schema.attribute(ax).domain_min;
  const Value x_max = schema.attribute(ax).domain_max;
  const Value y_min = schema.attribute(ay).domain_min;
  const Value y_max = schema.attribute(ay).domain_max;

  DiscoveryRun run(iface, options.common);
  const int k = iface->k();

  Result<QueryResult> root = run.Execute(run.MakeBaseQuery());
  if (!root.ok()) {
    if (run.exhausted()) return run.Finish();
    return root.status();
  }
  if (root->empty()) return run.Finish();
  if (root->size() < k) {
    // Underflow: the whole (filtered) database fits in one answer; any
    // returned tuple not dominated inside it is a skyline tuple.
    for (int i = 0; i < root->size(); ++i) {
      run.Observe(root->ids[static_cast<size_t>(i)],
                  root->tuples[static_cast<size_t>(i)]);
    }
    return run.Finish();
  }
  // SELECT * is downward-closed, so the full answer can be observed.
  for (int i = 0; i < root->size(); ++i) {
    run.Observe(root->ids[static_cast<size_t>(i)],
                root->tuples[static_cast<size_t>(i)]);
  }
  const Value x1 = root->tuples[0][static_cast<size_t>(ax)];
  const Value y1 = root->tuples[0][static_cast<size_t>(ay)];

  std::deque<Rect> rects;
  rects.push_back({x_min, x1 - 1, y1 + 1, y_max});
  rects.push_back({x1 + 1, x_max, y_min, y1 - 1});

  while (!rects.empty()) {
    Rect r = rects.front();
    rects.pop_front();
    while (!r.empty()) {
      const bool query_column = r.width() < r.height();
      Query q = run.MakeBaseQuery();
      if (query_column) {
        q.AddEquals(ax, r.x_lo);
      } else {
        q.AddEquals(ay, r.y_lo);
      }
      Result<QueryResult> answer = run.Execute(q);
      if (!answer.ok()) {
        if (run.exhausted()) return run.Finish();
        return answer.status();
      }
      if (query_column) {
        if (answer->empty()) {
          ++r.x_lo;
          continue;
        }
        // Top-1 of a column is its minimum-y tuple.
        const Tuple& t0 = answer->tuples[0];
        const Value yc = t0[static_cast<size_t>(ay)];
        // yc < y_lo is impossible under the rectangle invariants (the
        // strip below was proven empty); checked in debug, skipped
        // defensively in release.
        HDSKY_DCHECK(yc >= r.y_lo);
        if (yc > r.y_hi || yc < r.y_lo) {
          // The column's best tuple lies outside the rectangle (in the
          // dominated region); the column holds nothing inside it.
          ++r.x_lo;
          continue;
        }
        run.AddConfirmed(answer->ids[0], t0);
        ++r.x_lo;
        r.y_hi = yc - 1;
      } else {
        if (answer->empty()) {
          ++r.y_lo;
          continue;
        }
        const Tuple& t0 = answer->tuples[0];
        const Value xc = t0[static_cast<size_t>(ax)];
        HDSKY_DCHECK(xc >= r.x_lo);
        if (xc > r.x_hi || xc < r.x_lo) {
          ++r.y_lo;
          continue;
        }
        run.AddConfirmed(answer->ids[0], t0);
        ++r.y_lo;
        r.x_hi = xc - 1;
      }
    }
  }
  return run.Finish();
}

}  // namespace core
}  // namespace hdsky
