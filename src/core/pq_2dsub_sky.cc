#include "core/pq_2dsub_sky.h"

#include <algorithm>

#include "common/logging.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Schema;
using data::Tuple;
using data::TupleId;
using data::Value;
using interface::Interval;
using interface::Query;
using interface::QueryResult;

namespace {

// Plane bookkeeping in zero-based grid coordinates (value - domain_min).
//
// Invariants maintained:
//  * empty_top[x]: every cell (x, y <= empty_top[x]) is provably
//    unoccupied. Unions of lower-anchored boxes keep it meaningful.
//  * dom_bot[x]: every cell (x, y >= dom_bot[x]) is dominated by a known
//    tuple (confirmed, pending, or dropped — domination between concrete
//    tuples is absolute, so the dominator's own status is irrelevant).
//  * col_resolved / row_resolved: a 1D query against that line was
//    answered, so its global minimum (if any) is known and the rest of
//    the line is empty or dominated.
struct PlaneState {
  int64_t nx = 0;
  int64_t ny = 0;
  std::vector<int64_t> empty_top;   // init -1
  std::vector<int64_t> dom_bot;     // init ny
  std::vector<bool> col_resolved;
  std::vector<bool> row_resolved;

  int64_t ColLow(int64_t x) const {
    return empty_top[static_cast<size_t>(x)] + 1;
  }
  int64_t ColHigh(int64_t x) const {
    return dom_bot[static_cast<size_t>(x)] - 1;
  }

  // Marks the closed quadrant (x' >= x, y' >= y) dominated.
  void PruneQuadrant(int64_t x, int64_t y) {
    if (y < 0) y = 0;
    for (int64_t c = std::max<int64_t>(x, 0); c < nx; ++c) {
      auto& d = dom_bot[static_cast<size_t>(c)];
      if (y < d) d = y;
    }
  }

  // Dominated quadrant of a discovered tuple at (x, y), keeping the
  // tuple's own cell.
  void PruneDominatedBy(int64_t x, int64_t y) {
    PruneQuadrant(x + 1, y);
    PruneQuadrant(x, y + 1);
  }
};

bool AllLeq(const std::vector<int>& attrs, const Tuple& a,
            const std::vector<Value>& b) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (a[static_cast<size_t>(attrs[i])] > b[i]) return false;
  }
  return true;
}

bool AllLeqValues(const std::vector<int>& attrs,
                  const std::vector<Value>& a, const Tuple& b) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (a[i] > b[static_cast<size_t>(attrs[i])]) return false;
  }
  return true;
}

struct Pending {
  TupleId id;
  Tuple tuple;
};

}  // namespace

Status Pq2dSubSky(DiscoveryRun* run, const PlaneSpec& plane,
                  const std::vector<CoveringObservation>& observations) {
  const Schema& schema = run->iface()->schema();
  const Value x_min = schema.attribute(plane.ax).domain_min;
  const Value y_min = schema.attribute(plane.ay).domain_min;
  PlaneState st;
  st.nx = schema.attribute(plane.ax).DomainSize();
  st.ny = schema.attribute(plane.ay).DomainSize();
  constexpr int64_t kMaxPlaneDomain = int64_t{1} << 22;
  if (st.nx > kMaxPlaneDomain || st.ny > kMaxPlaneDomain) {
    return Status::Unsupported(
        "plane attribute domain too large for point-query discovery");
  }
  st.empty_top.assign(static_cast<size_t>(st.nx), -1);
  st.dom_bot.assign(static_cast<size_t>(st.nx), st.ny);
  st.col_resolved.assign(static_cast<size_t>(st.nx), false);
  st.row_resolved.assign(static_cast<size_t>(st.ny), false);

  // ---- Empty-region pruning from covering observations (Algorithm 4
  // lines 2-4): a cell is empty when a tuple there would have outranked
  // the observation's top-1 inside the observation's own query.
  for (const CoveringObservation& obs : observations) {
    const Tuple& t = obs.top1;
    if (!AllLeqValues(plane.other_attrs, plane.plane_values, t)) continue;
    bool vc_ok = true;
    for (size_t i = 0; i < plane.other_attrs.size(); ++i) {
      if (!obs.query.interval(plane.other_attrs[i])
               .Contains(plane.plane_values[i])) {
        vc_ok = false;
        break;
      }
    }
    if (!vc_ok) continue;
    // Column staircases assert "everything at or below is empty", so the
    // observation must cover the plane from the bottom on y.
    const Interval& qy = obs.query.interval(plane.ay);
    if (qy.lower > y_min) continue;
    const Interval& qx = obs.query.interval(plane.ax);
    const int64_t tx = t[static_cast<size_t>(plane.ax)] - x_min;
    const int64_t ty = t[static_cast<size_t>(plane.ay)] - y_min;
    const int64_t cx_lo = std::max<int64_t>(
        0, qx.lower == Interval::kMin ? 0 : qx.lower - x_min);
    const int64_t cx_hi =
        std::min<int64_t>(st.nx - 1, std::min<int64_t>(
                                         qx.upper == Interval::kMax
                                             ? st.nx - 1
                                             : qx.upper - x_min,
                                         tx));
    const int64_t cy_hi =
        std::min<int64_t>(st.ny - 1, std::min<int64_t>(
                                         qy.upper == Interval::kMax
                                             ? st.ny - 1
                                             : qy.upper - y_min,
                                         ty));
    if (cy_hi < 0) continue;
    const bool exact_plane =
        AllLeq(plane.other_attrs, t, plane.plane_values);
    for (int64_t x = cx_lo; x <= cx_hi; ++x) {
      // The observation tuple's own cell is occupied, not empty.
      const int64_t top =
          (exact_plane && x == tx && cy_hi == ty) ? ty - 1 : cy_hi;
      auto& e = st.empty_top[static_cast<size_t>(x)];
      if (top > e) e = top;
    }
  }

  // ---- Dominated-region pruning from already-confirmed skyline tuples
  // with non-plane values <= vc (Algorithm 4 lines 5-6). The corner cell
  // is pruned as well: a tuple there would duplicate or be dominated.
  for (const Tuple& s : run->collector().tuples()) {
    if (!AllLeq(plane.other_attrs, s, plane.plane_values)) continue;
    st.PruneQuadrant(s[static_cast<size_t>(plane.ax)] - x_min,
                     s[static_cast<size_t>(plane.ay)] - y_min);
  }

  std::vector<Pending> pendings;

  // ---- Round loop: compress, tile the lower staircase, drain one
  // block-diagonal rectangle with the 2D strategy, repeat.
  for (;;) {
    // Active rows/columns ("remove the pruned rows and columns").
    std::vector<bool> row_active(static_cast<size_t>(st.ny), false);
    std::vector<int64_t> cand_cols;
    for (int64_t x = 0; x < st.nx; ++x) {
      if (st.col_resolved[static_cast<size_t>(x)]) continue;
      const int64_t lo = st.ColLow(x);
      const int64_t hi = st.ColHigh(x);
      if (lo > hi) continue;
      bool any = false;
      for (int64_t y = lo; y <= hi; ++y) {
        if (!st.row_resolved[static_cast<size_t>(y)]) {
          row_active[static_cast<size_t>(y)] = true;
          any = true;
        }
      }
      if (any) cand_cols.push_back(x);
    }
    if (cand_cols.empty()) break;
    int64_t total_h = 0;
    for (int64_t y = 0; y < st.ny; ++y) {
      if (row_active[static_cast<size_t>(y)]) ++total_h;
    }
    const int64_t total_w = static_cast<int64_t>(cand_cols.size());

    // Block-diagonal rectangles: runs of active columns sharing a
    // ColLow value hug the (non-increasing) lower staircase.
    struct BlockRect {
      size_t col_begin, col_end;  // indices into cand_cols
      int64_t y_lo, y_hi;
      int64_t w, h;
    };
    std::vector<BlockRect> rects;
    {
      size_t i = 0;
      int64_t prev_low = st.ny;
      while (i < cand_cols.size()) {
        const int64_t low = st.ColLow(cand_cols[i]);
        size_t j = i;
        int64_t min_high = st.ny - 1;
        while (j < cand_cols.size() && st.ColLow(cand_cols[j]) == low) {
          min_high = std::min(min_high, st.ColHigh(cand_cols[j]));
          ++j;
        }
        BlockRect r;
        r.col_begin = i;
        r.col_end = j;
        r.y_lo = low;
        r.y_hi = std::min(prev_low - 1, min_high);
        r.w = static_cast<int64_t>(j - i);
        r.h = 0;
        for (int64_t y = std::max<int64_t>(r.y_lo, 0);
             y <= r.y_hi && y < st.ny; ++y) {
          if (row_active[static_cast<size_t>(y)]) ++r.h;
        }
        if (r.h > 0 && r.y_lo <= r.y_hi) rects.push_back(r);
        prev_low = low;
        i = j;
      }
    }
    const BlockRect* chosen = nullptr;
    if (!rects.empty()) {
      // Prefer a rectangle agreeing with the whole region's direction
      // (Section 5.3.1); default to the first.
      const bool want_columns = total_w < total_h;
      chosen = &rects[0];
      for (const BlockRect& r : rects) {
        if ((r.w < r.h) == want_columns) {
          chosen = &r;
          break;
        }
      }
    }
    // Degenerate fallback (upper-staircase clipping removed every tile):
    // resolve the first active column outright to guarantee progress.
    BlockRect fallback;
    if (chosen == nullptr) {
      fallback = {0, 1, st.ColLow(cand_cols[0]), st.ColHigh(cand_cols[0]),
                  1, 1};
      chosen = &fallback;
    }

    // ---- Drain the chosen rectangle with the PQ-2D-SKY strategy.
    size_t col_cursor = chosen->col_begin;
    int64_t y_lo = chosen->y_lo;
    int64_t y_hi = chosen->y_hi;
    while (true) {
      std::vector<int64_t> rows;
      for (int64_t y = std::max<int64_t>(y_lo, 0);
           y <= y_hi && y < st.ny; ++y) {
        if (!st.row_resolved[static_cast<size_t>(y)]) rows.push_back(y);
      }
      if (rows.empty()) break;
      y_lo = rows.front();
      std::vector<int64_t> cols;
      for (size_t c = col_cursor; c < chosen->col_end; ++c) {
        const int64_t x = cand_cols[c];
        if (st.col_resolved[static_cast<size_t>(x)]) continue;
        if (st.ColLow(x) <= y_hi && st.ColHigh(x) >= y_lo) {
          cols.push_back(x);
        }
      }
      if (cols.empty()) break;

      const bool query_column =
          static_cast<int64_t>(cols.size()) <
          static_cast<int64_t>(rows.size());
      Query q = run->MakeBaseQuery();
      for (size_t i = 0; i < plane.other_attrs.size(); ++i) {
        q.AddEquals(plane.other_attrs[i], plane.plane_values[i]);
      }
      if (query_column) {
        q.AddEquals(plane.ax, cols.front() + x_min);
      } else {
        q.AddEquals(plane.ay, rows.front() + y_min);
      }
      Result<QueryResult> answer = run->Execute(q);
      if (!answer.ok()) {
        if (run->exhausted()) return Status::OK();
        return answer.status();
      }

      if (query_column) {
        const int64_t x = cols.front();
        st.col_resolved[static_cast<size_t>(x)] = true;
        if (answer->empty()) continue;
        const Tuple& t0 = answer->tuples[0];
        const int64_t yc = t0[static_cast<size_t>(plane.ay)] - y_min;
        // Global column minimum: below is empty, above is dominated.
        const bool cell_dominated =
            st.dom_bot[static_cast<size_t>(x)] <= yc;
        st.empty_top[static_cast<size_t>(x)] =
            std::max(st.empty_top[static_cast<size_t>(x)], yc - 1);
        st.PruneDominatedBy(x, yc);
        if (cell_dominated) continue;  // not on the skyline
        if (yc <= y_hi) {
          // In-tile: every cell weakly left-and-below is resolved, so
          // the tuple is provably on the skyline.
          run->AddConfirmed(answer->ids[0], t0);
          st.PruneQuadrant(x, yc);
          y_hi = yc - 1;
        } else {
          // Above the tile: potential dominators remain unresolved.
          pendings.push_back({answer->ids[0], t0});
        }
      } else {
        const int64_t y = rows.front();
        st.row_resolved[static_cast<size_t>(y)] = true;
        if (answer->empty()) continue;
        const Tuple& t0 = answer->tuples[0];
        const int64_t xc = t0[static_cast<size_t>(plane.ax)] - x_min;
        // Global row minimum: the row left of xc is empty (the resolved
        // flag retires the row), right of and above are dominated.
        const bool cell_dominated =
            st.dom_bot[static_cast<size_t>(xc)] <= y;
        st.PruneDominatedBy(xc, y);
        if (cell_dominated) continue;
        HDSKY_DCHECK(st.empty_top[static_cast<size_t>(xc)] < y);
        if (xc <= cols.back()) {
          run->AddConfirmed(answer->ids[0], t0);
          st.PruneQuadrant(xc, y);
        } else {
          pendings.push_back({answer->ids[0], t0});
        }
      }
    }
  }

  // ---- Pending resolution: once the plane is fully classified, a
  // pending tuple is on the skyline iff no confirmed tuple and no other
  // pending dominates it (dominators hiding in unresolved cells no
  // longer exist).
  const std::vector<int>& ranking = run->collector().ranking_attrs();
  for (const Pending& p : pendings) {
    if (run->collector().IsDominatedOrDuplicate(p.tuple)) continue;
    bool dominated = false;
    for (const Pending& other : pendings) {
      if (other.id == p.id) continue;
      if (skyline::Dominates(other.tuple, p.tuple, ranking)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) run->AddConfirmed(p.id, p.tuple);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace hdsky
