#include "core/expand_duplicates.h"

namespace hdsky {
namespace core {

using common::Result;
using common::Status;
using data::Schema;
using data::Tuple;
using interface::Query;
using interface::QueryResult;
using interface::HiddenDatabase;

Result<ExpandResult> ExpandDuplicates(HiddenDatabase* iface,
                                      const DiscoveryResult& skyline,
                                      const CrawlOptions& options) {
  const Schema& schema = iface->schema();
  ExpandResult out;
  int64_t cost = 0;
  for (size_t i = 0; i < skyline.skyline.size(); ++i) {
    const Tuple& t = skyline.skyline[i];
    Query q = options.common.base_filter.has_value()
                  ? *options.common.base_filter
                  : Query(schema.num_attributes());
    for (int attr : schema.ranking_attributes()) {
      q.AddEquals(attr, t[static_cast<size_t>(attr)]);
    }
    if (options.common.max_queries > 0 &&
        cost >= options.common.max_queries) {
      out.complete = false;
      break;
    }
    DuplicateGroup group;
    group.representative = skyline.skyline_ids[i];
    Result<QueryResult> answer = iface->Execute(q);
    if (!answer.ok()) {
      if (answer.status().IsResourceExhausted()) {
        out.complete = false;
        break;
      }
      return answer.status();
    }
    ++cost;
    if (!answer->overflow) {
      group.ids = answer->ids;
      group.tuples = answer->tuples;
    } else {
      // More value-twins than one page: crawl the point region (only
      // filtering attributes can split it further).
      CrawlOptions crawl = options;
      crawl.common.base_filter.reset();  // folded into q already
      if (options.common.max_queries > 0) {
        crawl.common.max_queries = options.common.max_queries - cost;
      }
      HDSKY_ASSIGN_OR_RETURN(CrawlResult crawled,
                             CrawlRegion(iface, q, crawl));
      cost += crawled.query_cost;
      group.ids = std::move(crawled.ids);
      group.tuples = std::move(crawled.tuples);
      group.complete = crawled.complete;
      out.complete = out.complete && crawled.complete;
    }
    out.groups.push_back(std::move(group));
  }
  out.query_cost = cost;
  return out;
}

}  // namespace core
}  // namespace hdsky
