// Blocking data-parallel loops over an index range.
//
// ParallelFor(pool, begin, end, fn) calls fn(i) exactly once for every i
// in [begin, end), distributing indices across the pool's workers with a
// shared atomic cursor (dynamic scheduling — discovery trials have wildly
// uneven costs, so static chunking would leave cores idle). The call
// returns only after every index has completed.
//
// Determinism contract: fn must write its result into state owned by
// index i alone (e.g. results[i]). Under that discipline the outcome is
// identical for every pool size, including the serial pool — the
// scheduling order is unobservable. All of bench/'s parallel sweeps are
// built on this rule.

#ifndef HDSKY_RUNTIME_PARALLEL_FOR_H_
#define HDSKY_RUNTIME_PARALLEL_FOR_H_

#include <atomic>
#include <cstdint>
#include <latch>
#include <utility>

#include "runtime/thread_pool.h"

namespace hdsky {
namespace runtime {

/// Runs fn(i) for every i in [begin, end) on `pool`, blocking until all
/// iterations finish. fn is invoked concurrently from up to pool.size()
/// threads and must not throw.
template <typename Fn>
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end, Fn&& fn) {
  if (begin >= end) return;
  const int64_t count = end - begin;
  if (pool.size() <= 1 || count == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const int num_tasks =
      count < static_cast<int64_t>(pool.size())
          ? static_cast<int>(count)
          : pool.size();
  std::atomic<int64_t> next{begin};
  std::latch done{num_tasks};
  for (int t = 0; t < num_tasks; ++t) {
    pool.Submit([&next, &done, end, &fn] {
      for (;;) {
        const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        fn(i);
      }
      done.count_down();
    });
  }
  done.wait();
}

/// Convenience overload: runs on a transient pool of `threads` workers
/// (serial inline when threads <= 1).
template <typename Fn>
void ParallelFor(int threads, int64_t begin, int64_t end, Fn&& fn) {
  if (threads <= 1 || end - begin <= 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  ParallelFor(pool, begin, end, std::forward<Fn>(fn));
}

}  // namespace runtime
}  // namespace hdsky

#endif  // HDSKY_RUNTIME_PARALLEL_FOR_H_
