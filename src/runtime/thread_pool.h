// A small fixed-size thread pool for the embarrassingly parallel parts
// of the reproduction: independent discovery trials, figure-sweep points,
// and multi-seed averaging loops.
//
// Design notes:
//  * Workers are std::jthread and honor a std::stop_token: destroying the
//    pool requests stop, wakes everyone, drains the queue, and joins.
//  * The pool is deliberately minimal — no futures, no priorities. Fan-out
//    primitives (ParallelFor, bench::RunTrialsParallel) layer determinism
//    on top: each parallel unit owns its output slot, so results never
//    depend on scheduling order.
//  * Thread-count policy lives here too: HDSKY_THREADS picks the degree of
//    parallelism for benches and tools (default 1 = serial, the paper's
//    setting; 0 = all hardware threads).

#ifndef HDSKY_RUNTIME_THREAD_POOL_H_
#define HDSKY_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

namespace hdsky {
namespace runtime {

/// Number of worker threads requested via $HDSKY_THREADS: 1 when unset
/// (serial, the default everywhere), 0 means "all hardware threads",
/// otherwise clamped to [1, 256].
int EnvThreadCount();

/// std::thread::hardware_concurrency with a floor of 1.
int HardwareThreadCount();

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Requests stop, wakes all workers, joins. Already queued tasks are
  /// drained before the workers exit (ParallelFor relies on this).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (the codebase is Status-based);
  /// a task that does throw terminates via std::terminate in the worker.
  void Submit(std::function<void()> task);

  /// Enqueues only when fewer than `max_pending` tasks are queued or
  /// running; returns false (task untouched) otherwise. The admission-
  /// control primitive of the event-driven service: an overloaded server
  /// sheds work at the door instead of growing an unbounded queue.
  /// `max_pending` <= 0 means unlimited (always admits).
  bool TrySubmit(std::function<void()>& task, int64_t max_pending);

  /// Tasks queued plus tasks currently running. Advisory: the value may
  /// be stale by the time the caller acts on it — use TrySubmit for an
  /// atomic check-and-enqueue.
  int64_t pending() const;

  /// Blocks until every submitted task has finished and the queue is
  /// empty. Safe to call from any non-worker thread.
  void WaitIdle();

 private:
  void Worker(std::stop_token stop);

  mutable std::mutex mu_;
  std::condition_variable_any work_cv_;   // signals: task queued / stop
  std::condition_variable idle_cv_;       // signals: pool drained
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // dequeued but unfinished tasks
  std::vector<std::jthread> workers_;     // last member: joins first
};

}  // namespace runtime
}  // namespace hdsky

#endif  // HDSKY_RUNTIME_THREAD_POOL_H_
