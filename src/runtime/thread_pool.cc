#include "runtime/thread_pool.h"

#include <cstdlib>

namespace hdsky {
namespace runtime {

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreadCount() {
  const char* env = std::getenv("HDSKY_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long v = std::strtol(env, nullptr, 10);
  if (v == 0) return HardwareThreadCount();
  if (v < 1) return 1;
  if (v > 256) return 256;
  return static_cast<int>(v);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { Worker(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()>& task,
                           int64_t max_pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_pending > 0 &&
        static_cast<int64_t>(queue_.size()) + in_flight_ >= max_pending) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

int64_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size()) + in_flight_;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::Worker(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace hdsky
