#!/usr/bin/env bash
# Runs every micro_* benchmark built in $BUILD_DIR/bench and writes one
# machine-readable perf artifact per binary at the repo root
# (google-benchmark JSON: real_time/cpu_time per bench plus counters
# such as items_per_second, queries_per_sec, p99_us, dedup_ratio):
#
#   micro_substrate       -> BENCH_substrate.json
#   micro_discovery       -> BENCH_discovery.json
#   micro_service_load    -> BENCH_service.json
#   micro_<anything else> -> BENCH_<anything else>.json
#
# Benchmarks that are not built are skipped, so a tree configured for a
# subset (e.g. CI's perf-smoke builds only substrate + discovery) still
# works unchanged.
#
# Environment knobs:
#   BUILD_DIR          build tree holding bench/ binaries (default: ./build)
#   HDSKY_BENCH_REPS   --benchmark_repetitions (default: 3; medians are
#                      reported, which resists scheduler noise)
#   HDSKY_BENCH_FILTER optional --benchmark_filter regex
#   HDSKY_BENCH_OUT    output directory (default: repo root)
#   HDSKY_SCALE        dataset scale multiplier, honored by the benches
#                      themselves (e.g. 0.02 for a CI smoke run)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
REPS="${HDSKY_BENCH_REPS:-3}"
FILTER="${HDSKY_BENCH_FILTER:-}"
OUT_DIR="${HDSKY_BENCH_OUT:-$ROOT}"

if [ ! -x "$BUILD_DIR/bench/micro_substrate" ]; then
  echo "error: $BUILD_DIR/bench/micro_substrate not found." >&2
  echo "Build first:  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

# Refuse non-Release build trees: a debug tree records
# "library_build_type": "debug" in every BENCH_*.json and silently
# poisons any baseline pinned from it. HDSKY_ALLOW_DEBUG_BENCH=1
# overrides for local experiments, with a loud tag on stderr.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
case "$BUILD_TYPE" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    if [ "${HDSKY_ALLOW_DEBUG_BENCH:-0}" = "1" ]; then
      echo "WARNING: benching a '${BUILD_TYPE:-unset}' build tree" \
           "(HDSKY_ALLOW_DEBUG_BENCH=1); do NOT pin baselines from" \
           "these numbers" >&2
    else
      echo "error: $BUILD_DIR is configured as" \
           "'${BUILD_TYPE:-unset}', not Release; its numbers would" \
           "poison perf baselines." >&2
      echo "Reconfigure with -DCMAKE_BUILD_TYPE=Release, or set" \
           "HDSKY_ALLOW_DEBUG_BENCH=1 to run anyway." >&2
      exit 1
    fi
    ;;
esac

run_bench() {
  local bin="$1" out="$2"
  "$BUILD_DIR/bench/$bin" \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    --benchmark_repetitions="$REPS" \
    --benchmark_report_aggregates_only=true \
    --benchmark_out_format=json \
    --benchmark_out="$out"
  echo "wrote $out"
}

# Generic discovery: every built micro_* binary produces BENCH_*.json.
# micro_service_load keeps the historical artifact name BENCH_service.json
# (the name the service perf gate and its pinned baseline use).
ran=0
for bin in "$BUILD_DIR"/bench/micro_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  name="$(basename "$bin")"
  suffix="${name#micro_}"
  case "$suffix" in
    service_load) suffix=service ;;
  esac
  run_bench "$name" "$OUT_DIR/BENCH_${suffix}.json"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "error: no micro_* benchmarks found in $BUILD_DIR/bench" >&2
  exit 1
fi
