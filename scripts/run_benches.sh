#!/usr/bin/env bash
# Runs the substrate + discovery microbenchmarks and writes the
# machine-readable perf artifacts BENCH_substrate.json and
# BENCH_discovery.json (google-benchmark JSON: real_time/cpu_time per
# bench, items_per_second / queries_per_sec counters) at the repo root.
#
# Environment knobs:
#   BUILD_DIR          build tree holding bench/ binaries (default: ./build)
#   HDSKY_BENCH_REPS   --benchmark_repetitions (default: 3; medians are
#                      reported, which resists scheduler noise)
#   HDSKY_BENCH_FILTER optional --benchmark_filter regex
#   HDSKY_BENCH_OUT    output directory (default: repo root)
#   HDSKY_SCALE        dataset scale multiplier, honored by the benches
#                      themselves (e.g. 0.02 for a CI smoke run)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
REPS="${HDSKY_BENCH_REPS:-3}"
FILTER="${HDSKY_BENCH_FILTER:-}"
OUT_DIR="${HDSKY_BENCH_OUT:-$ROOT}"

if [ ! -x "$BUILD_DIR/bench/micro_substrate" ]; then
  echo "error: $BUILD_DIR/bench/micro_substrate not found." >&2
  echo "Build first:  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

run_bench() {
  local bin="$1" out="$2"
  "$BUILD_DIR/bench/$bin" \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    --benchmark_repetitions="$REPS" \
    --benchmark_report_aggregates_only=true \
    --benchmark_out_format=json \
    --benchmark_out="$out"
  echo "wrote $out"
}

run_bench micro_substrate "$OUT_DIR/BENCH_substrate.json"
run_bench micro_discovery "$OUT_DIR/BENCH_discovery.json"
