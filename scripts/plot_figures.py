#!/usr/bin/env python3
"""Plot the paper-reproduction figures from the bench CSV output.

Usage:
    for b in build/bench/*; do $b; done      # writes bench_out/*.csv
    python3 scripts/plot_figures.py          # writes bench_out/*.png

Requires matplotlib (optional dependency; the benches themselves do not).
Each figure mirrors the corresponding figure of "Discovering the Skyline
of Web Databases" (VLDB 2016).
"""

import csv
import os
import sys

OUT_DIR = "bench_out"


def read(name):
    path = os.path.join(OUT_DIR, name + ".csv")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return list(csv.DictReader(f))


def save(fig, name):
    path = os.path.join(OUT_DIR, name + ".png")
    fig.savefig(path, dpi=120, bbox_inches="tight")
    print("wrote", path)


def main():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    # Figure 4: worst vs average cost models.
    rows = read("fig04_sq_cost_model")
    if rows:
        for m in ("4", "8"):
            sub = [r for r in rows if r["m"] == m]
            fig, ax = plt.subplots()
            xs = [int(r["skyline"]) for r in sub]
            ax.semilogy(xs, [float(r["avg_cost"]) for r in sub],
                        "o-", label="Average Cost")
            ax.semilogy(xs, [float(r["worst_case"]) for r in sub],
                        "s--", label="Worst-case Cost")
            ax.set_xlabel("Number of Skylines")
            ax.set_ylabel("Query Cost")
            ax.set_title(f"Figure 4: m = {m}")
            ax.legend()
            save(fig, f"fig04_m{m}")

    # Figure 6: SQ vs RQ by skyline size.
    rows = read("fig06_sq_vs_rq_simulation")
    if rows:
        for m in ("4", "8"):
            sub = sorted((r for r in rows if r["m"] == m),
                         key=lambda r: int(r["actual_skyline"]))
            fig, ax = plt.subplots()
            xs = [int(r["actual_skyline"]) for r in sub]
            ax.semilogy(xs, [int(r["sq_cost"]) for r in sub], "o-",
                        label="SQ-DB-SKY")
            ax.semilogy(xs, [int(r["rq_cost"]) for r in sub], "s-",
                        label="RQ-DB-SKY")
            ax.set_xlabel("Number of Skylines")
            ax.set_ylabel("Query Cost")
            ax.set_title(f"Figure 6: {m}D")
            ax.legend()
            save(fig, f"fig06_{m}d")

    # Figure 13: RQ vs BASELINE over k.
    rows = read("fig13_rq_vs_baseline_k")
    if rows:
        fig, ax = plt.subplots()
        xs = [int(r["k"]) for r in rows]
        ax.semilogy(xs, [int(r["rq_cost"]) for r in rows], "o-",
                    label="RQ-DB-SKY")
        ax.semilogy(xs, [int(r["baseline_cost"]) for r in rows], "s--",
                    label="BASELINE")
        ax.set_xlabel("K")
        ax.set_ylabel("Query Cost (log scale)")
        ax.set_title("Figure 13")
        ax.legend()
        save(fig, "fig13")

    # Figures 14/15/16/17/18: simple series.
    simple = {
        "fig14_range_impact_n": ("n", ["sq_cost", "rq_cost", "skyline"],
                                 False),
        "fig15_range_impact_m": ("m", ["sq_cost", "rq_cost"], True),
        "fig16_pq_impact_n": ("n", ["pq_cost"], False),
        "fig17_pq_domain_size": ("domain", ["pq_cost"], False),
        "fig18_mixed_impact_n": ("n", ["mq_cost"], False),
    }
    for name, (xkey, ykeys, log) in simple.items():
        rows = read(name)
        if not rows:
            continue
        fig, ax = plt.subplots()
        if name == "fig16_pq_impact_n":
            for m in sorted({r["m"] for r in rows}):
                sub = [r for r in rows if r["m"] == m]
                ax.plot([int(r[xkey]) for r in sub],
                        [int(r["pq_cost"]) for r in sub], "o-",
                        label=f"{m}D")
        else:
            for y in ykeys:
                ys = [float(r[y]) for r in rows]
                xs = [int(r[xkey]) for r in rows]
                (ax.semilogy if log else ax.plot)(xs, ys, "o-", label=y)
        ax.set_xlabel(xkey)
        ax.set_ylabel("Query Cost")
        ax.set_title(name)
        ax.legend()
        save(fig, name)

    # Figure 19: the two sweeps.
    rows = read("fig19_mixed_vary_attrs")
    if rows:
        fig, ax = plt.subplots()
        for sweep, label in (("vary_point", "Varying Point Predicates"),
                             ("vary_range", "Varying Range Predicates")):
            sub = [r for r in rows if r["sweep"] == sweep]
            ax.plot([int(r["total_attrs"]) for r in sub],
                    [int(r["mq_cost"]) for r in sub], "o-", label=label)
        ax.set_xlabel("Number of Attributes")
        ax.set_ylabel("Query Cost")
        ax.set_title("Figure 19")
        ax.legend()
        save(fig, "fig19")

    # Anytime curves: Figures 20-24.
    anytime = {
        "fig20_anytime_range": "algorithm",
        "fig21_anytime_pq": None,
        "fig22_bluenile": "algorithm",
        "fig24_yahooautos": "algorithm",
    }
    for name, group in anytime.items():
        rows = read(name)
        if not rows:
            continue
        fig, ax = plt.subplots()
        if group:
            for algo in sorted({r[group] for r in rows}):
                sub = [r for r in rows if r[group] == algo]
                ax.plot([int(r["skyline_index"]) for r in sub],
                        [int(r["query_cost"]) for r in sub], "-",
                        label=algo)
            ax.legend()
        else:
            ax.plot([int(r["skyline_index"]) for r in rows],
                    [int(r["query_cost"]) for r in rows], "-")
        ax.set_xlabel("Skyline Discovery Progress")
        ax.set_ylabel("Query Cost")
        ax.set_title(name)
        save(fig, name)

    rows = read("fig23_googleflights")
    if rows:
        fig, ax = plt.subplots()
        ax.plot([int(r["skyline_index"]) for r in rows],
                [float(r["avg_query_cost"]) for r in rows], "o-")
        ax.axhline(50, linestyle="--", label="QPX free daily limit")
        ax.set_xlabel("Skyline Discovery Progress")
        ax.set_ylabel("Average Query Cost")
        ax.set_title("Figure 23: Google Flights")
        ax.legend()
        save(fig, "fig23")


if __name__ == "__main__":
    main()
