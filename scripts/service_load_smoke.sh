#!/usr/bin/env bash
# Service load smoke: drives the event-driven server with thousands of
# concurrent pipelined sessions (tools/hdsky_loadgen, in-process backend),
# writes the google-benchmark-shaped BENCH_service.json artifact, and
# gates it with scripts/compare_bench.py service mode:
#
#   * the run must complete (all sessions answered, none failed),
#   * the cross-session single-flight dedup ratio must reach the
#     session-count-scaled floor (0.9 at full scale), and
#   * p99 latency must stay within tolerance of the pinned baseline
#     bench/baselines/BENCH_service.json.
#
# Environment knobs:
#   BUILD_DIR       build tree holding tools/hdsky_loadgen (default: ./build)
#   HDSKY_SCALE     session/query scale multiplier (default: 0.25 — CI
#                   smoke; 1 reproduces the full 1000-session acceptance run)
#   HDSKY_BENCH_OUT output directory for BENCH_service.json (default: repo
#                   root)
#   LOADGEN_FLAGS   extra flags passed through to hdsky_loadgen
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT_DIR="${HDSKY_BENCH_OUT:-$ROOT}"
SCALE="${HDSKY_SCALE:-0.25}"
BIN="$BUILD_DIR/tools/hdsky_loadgen"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found." >&2
  echo "Build first:  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build --target hdsky_loadgen" >&2
  exit 1
fi

OUT="$OUT_DIR/BENCH_service.json"
echo "== hdsky_loadgen (HDSKY_SCALE=$SCALE) =="
HDSKY_SCALE="$SCALE" "$BIN" --json "$OUT" ${LOADGEN_FLAGS:-}
echo "wrote $OUT"

echo "== service perf gate =="
python3 "$ROOT/scripts/compare_bench.py" "$OUT" \
  --baseline "$ROOT/bench/baselines/BENCH_service.json"
